"""Fairness and utilization metrics."""

import pytest

from repro.analysis.metrics import (
    channel_utilization,
    jain_fairness,
    max_spread,
    per_cell_fairness,
    throughput_timeseries,
    total_throughput,
)
from repro.net.sink import FlowRecorder


def test_jain_perfectly_fair():
    assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_jain_single_hog():
    # One of n getting everything: index = 1/n.
    assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_jain_all_zero_defined_as_fair():
    assert jain_fairness([0.0, 0.0]) == 1.0


def test_jain_rejects_bad_input():
    with pytest.raises(ValueError):
        jain_fairness([])
    with pytest.raises(ValueError):
        jain_fairness([1.0, -2.0])


def test_max_spread():
    assert max_spread([23.82, 23.32]) == pytest.approx(0.5)
    assert max_spread([4.0]) == 0.0
    with pytest.raises(ValueError):
        max_spread([])


def test_total_throughput():
    assert total_throughput([1.0, 2.0, 3.0]) == 6.0


def test_channel_utilization_matches_paper_quote():
    # §3.5: "MACA achieves a data rate of roughly 217 kbps, which is 84%
    # channel capacity" at 53.04 pps.
    assert channel_utilization(53.04) == pytest.approx(0.848, abs=0.01)
    assert channel_utilization(49.07) == pytest.approx(0.785, abs=0.01)


def test_channel_utilization_validation():
    with pytest.raises(ValueError):
        channel_utilization(-1.0)
    with pytest.raises(ValueError):
        channel_utilization(1.0, packet_bytes=0)


def test_throughput_timeseries_bins():
    recorder = FlowRecorder()
    for t in (0.5, 1.5, 1.6, 2.5):
        recorder.record("s", t, 512)
    series = throughput_timeseries(recorder, "s", 0.0, 3.0, bin_s=1.0)
    assert series == [(0.0, 1.0), (1.0, 2.0), (2.0, 1.0)]


def test_throughput_timeseries_validation():
    recorder = FlowRecorder()
    with pytest.raises(ValueError):
        throughput_timeseries(recorder, "s", 0.0, 1.0, bin_s=0.0)
    with pytest.raises(ValueError):
        throughput_timeseries(recorder, "s", 2.0, 1.0)


def test_per_cell_fairness():
    throughputs = {"a": 4.0, "b": 6.0, "c": 10.0}
    cells = {"C1": ["a", "b"], "C2": ["c"], "C3": ["missing"]}
    spreads = per_cell_fairness(throughputs, cells)
    assert spreads == {"C1": 2.0, "C2": 0.0}


def test_throughput_timeseries_empty_stream_is_all_zero():
    recorder = FlowRecorder()
    series = throughput_timeseries(recorder, "missing", 0.0, 30.0, bin_s=10.0)
    assert series == [(0.0, 0.0), (10.0, 0.0), (20.0, 0.0)]


def test_throughput_timeseries_partial_final_bin_keeps_tail_packets():
    recorder = FlowRecorder()
    for t in (0.5, 10.5, 24.0):  # last packet lands in the 4 s partial bin
        recorder.record("s", t, 512)
    series = throughput_timeseries(recorder, "s", 0.0, 25.0, bin_s=10.0)
    assert [lo for lo, _ in series] == [0.0, 10.0, 20.0]
    # Final bin spans [20, 25]: one packet over 5 s, not over bin_s.
    assert series[2][1] == pytest.approx(1 / 5.0)


def test_throughput_timeseries_counts_packet_at_exactly_end():
    # Simulator.run(until) fires deliveries at exactly `until`; the last
    # bin is inclusive so those packets are not silently dropped.
    recorder = FlowRecorder()
    recorder.record("s", 30.0, 512)
    series = throughput_timeseries(recorder, "s", 0.0, 30.0, bin_s=10.0)
    assert series[-1] == (20.0, pytest.approx(1 / 10.0))
    # ... but an interior bin edge still belongs to the bin it opens
    # (times are appended in delivery order, so use a fresh recorder).
    recorder = FlowRecorder()
    recorder.record("s", 10.0, 512)
    series = throughput_timeseries(recorder, "s", 0.0, 30.0, bin_s=10.0)
    assert series[0][1] == pytest.approx(0.0)
    assert series[1][1] == pytest.approx(1 / 10.0)


def test_throughput_timeseries_window_shorter_than_bin():
    recorder = FlowRecorder()
    recorder.record("s", 1.0, 512)
    series = throughput_timeseries(recorder, "s", 0.0, 4.0, bin_s=10.0)
    assert series == [(0.0, pytest.approx(1 / 4.0))]


def test_throughput_timeseries_no_zero_width_bin_from_float_roundoff():
    recorder = FlowRecorder()
    series = throughput_timeseries(recorder, "s", 0.0, 0.3, bin_s=0.1)
    # 0.3/0.1 is 2.9999... in floats; tolerance keeps it at 3 bins.
    assert len(series) == 3
