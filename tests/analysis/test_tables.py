"""Table rendering."""

import math

import pytest

from repro.analysis.tables import ComparisonTable, format_table


def test_format_table_aligns_columns():
    out = format_table(["stream", "pps"], [["P1-B", "23.82"], ["P2", "0.1"]])
    lines = out.splitlines()
    assert lines[0].startswith("stream")
    assert len(lines) == 4  # header, rule, two rows
    assert all(len(line) == len(lines[0]) for line in lines[2:])


def test_format_table_rejects_ragged_rows():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def make_table():
    table = ComparisonTable("Table X")
    table.add("MACA", "P1-B", 9.61, paper_value=9.61)
    table.add("MACA", "P2-B", 2.45, paper_value=2.45)
    table.add("MACAW", "P1-B", 3.45, paper_value=3.45)
    table.add("MACAW", "P2-B", 3.84, paper_value=3.84)
    return table


def test_stream_order_preserved():
    table = make_table()
    assert table.stream_order == ["P1-B", "P2-B"]
    assert table.variants() == ["MACA", "MACAW"]


def test_value_and_totals():
    table = make_table()
    assert table.value("MACA", "P1-B") == 9.61
    assert table.totals()["MACA"] == pytest.approx(12.06)


def test_render_includes_paper_columns():
    out = make_table().render()
    assert "MACA (paper)" in out
    assert "TOTAL" in out
    assert "9.61" in out


def test_render_can_hide_paper():
    out = make_table().render(show_paper=False)
    assert "(paper)" not in out


def test_missing_cell_renders_nan():
    table = ComparisonTable("t")
    table.add("A", "x", 1.0)
    table.add("B", "y", 2.0)
    rendered = table.render()
    assert "nan" in rendered
    assert math.isnan(table.measured["A"].get("y", float("nan")))
