"""End-to-end delay accounting."""

import math

import pytest

from repro.analysis.metrics import delay_percentiles
from repro.net.sink import FlowRecorder
from repro.topo.figures import fig3_six_pads, single_stream_cell


def test_delay_percentiles_math():
    rec = FlowRecorder()
    for i in range(100):
        rec.record("s", float(i), 512, created=float(i) - (i % 10) / 100.0)
    result = delay_percentiles(rec, "s", 0.0, 100.0, percentiles=(50.0, 99.0))
    assert 0.0 <= result[50.0] <= 0.09
    assert result[99.0] <= 0.09 + 1e-9
    assert result[50.0] <= result[99.0]


def test_delay_percentiles_empty_window_raises():
    rec = FlowRecorder()
    with pytest.raises(ValueError):
        delay_percentiles(rec, "s", 0.0, 1.0)


def test_records_without_created_are_nan_and_skipped():
    rec = FlowRecorder()
    rec.record("s", 1.0, 512)                 # no created: NaN delay
    rec.record("s", 2.0, 512, created=1.9)
    delays = rec.flow("s").delays_between(0.0, 3.0)
    assert delays == [pytest.approx(0.1)]
    assert math.isnan(rec.flow("s").delays[0])


def test_uncontended_udp_delay_is_one_exchange():
    scenario = single_stream_cell(protocol="macaw", seed=3, rate_pps=16.0)
    scenario = scenario.build().run(30.0)
    result = delay_percentiles(scenario.recorder, "P-B", 5.0, 30.0)
    # One MACAW exchange is ~21 ms; an unloaded stream should deliver
    # within a few exchange times even at the tail.
    assert result[50.0] < 0.05
    assert result[99.0] < 0.2


def test_contention_inflates_delay():
    light = single_stream_cell(protocol="macaw", seed=3, rate_pps=16.0).build().run(40.0)
    heavy = fig3_six_pads(protocol="macaw", seed=3).build().run(40.0)
    light_p50 = delay_percentiles(light.recorder, "P-B", 5.0, 40.0)[50.0]
    heavy_p50 = delay_percentiles(heavy.recorder, "P1-B", 5.0, 40.0)[50.0]
    assert heavy_p50 > 2 * light_p50
