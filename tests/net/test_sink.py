"""FlowRecorder and Dispatcher."""

import pytest

from repro.core.config import macaw_config
from repro.core.macaw import MacawMac
from repro.net.packets import NetPacket
from repro.net.sink import Dispatcher, FlowRecorder
from repro.phy.graph_medium import GraphMedium
from repro.sim.kernel import Simulator


def test_recorder_counts_and_rates():
    rec = FlowRecorder()
    for t in (1.0, 2.0, 3.0, 4.0):
        rec.record("s", t, 512)
    assert rec.flow("s").count_between(0.0, 5.0) == 4
    assert rec.flow("s").count_between(2.0, 4.0) == 2  # [2, 4): t=2, 3
    # Windows are half-open: [0, 4) holds t = 1, 2, 3.
    assert rec.throughput_pps("s", 0.0, 4.0) == 0.75
    assert rec.throughput_bps("s", 0.0, 4.0) == 3 * 512 * 8 / 4.0
    assert rec.throughput_pps("s", 0.0, 4.5) == pytest.approx(4 / 4.5)


def test_recorder_unknown_stream_is_empty():
    rec = FlowRecorder()
    assert rec.throughput_pps("nope", 0.0, 1.0) == 0.0
    assert rec.streams() == []


def test_recorder_invalid_window():
    rec = FlowRecorder()
    with pytest.raises(ValueError):
        rec.throughput_pps("s", 2.0, 2.0)


def test_dispatcher_routes_registered_stream():
    sim = Simulator()
    medium = GraphMedium(sim)
    mac = MacawMac(sim, medium, "B", config=macaw_config())
    rec = FlowRecorder()
    dispatcher = Dispatcher(mac, rec)
    handled = []
    dispatcher.register("tcp-1", lambda p, src: handled.append(p))
    packet = NetPacket(stream="tcp-1", kind="tcp_data", seq=0, size_bytes=512, created=0.0)
    mac.deliver_up(packet, "A")
    assert handled == [packet]
    assert rec.flow("tcp-1").count_between(0, 1) == 0  # handler owns recording


def test_dispatcher_records_unregistered_stream():
    sim = Simulator()
    medium = GraphMedium(sim)
    mac = MacawMac(sim, medium, "B", config=macaw_config())
    rec = FlowRecorder()
    Dispatcher(mac, rec)
    packet = NetPacket(stream="udp-1", kind="udp", seq=0, size_bytes=512, created=0.0)
    mac.deliver_up(packet, "A")
    assert rec.flow("udp-1").count_between(0, 1) == 1


def test_dispatcher_duplicate_registration_rejected():
    sim = Simulator()
    medium = GraphMedium(sim)
    mac = MacawMac(sim, medium, "B", config=macaw_config())
    dispatcher = Dispatcher(mac, FlowRecorder())
    dispatcher.register("s", lambda p, src: None)
    with pytest.raises(ValueError):
        dispatcher.register("s", lambda p, src: None)


def test_dispatcher_counts_unclaimed_without_recorder():
    sim = Simulator()
    medium = GraphMedium(sim)
    mac = MacawMac(sim, medium, "B", config=macaw_config())
    dispatcher = Dispatcher(mac, recorder=None)
    packet = NetPacket(stream="x", kind="udp", seq=0, size_bytes=512, created=0.0)
    mac.deliver_up(packet, "A")
    assert dispatcher.unclaimed == 1
