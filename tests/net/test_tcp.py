"""TCP: in-order delivery, the 0.5 s minimum RTO, retransmission, delayed ACKs."""

import pytest

from repro.core.config import macaw_config
from repro.core.macaw import MacawMac
from repro.net.sink import Dispatcher, FlowRecorder
from repro.net.tcp import TcpConfig, TcpStream
from repro.phy.graph_medium import GraphMedium
from repro.phy.noise import PacketErrorModel, TimeWindowErrorModel
from repro.sim.kernel import Simulator


def build_pair(seed=3, tcp_config=TcpConfig(), rate=32.0):
    sim = Simulator(seed=seed)
    medium = GraphMedium(sim)
    a = MacawMac(sim, medium, "A", config=macaw_config())
    b = MacawMac(sim, medium, "B", config=macaw_config())
    medium.connect_clique([a, b])
    recorder = FlowRecorder()
    stream = TcpStream(
        sim, Dispatcher(a, recorder), Dispatcher(b, recorder),
        "A-B", rate, recorder=recorder, config=tcp_config,
    )
    return sim, medium, stream, recorder


def test_config_validation():
    with pytest.raises(ValueError):
        TcpConfig(min_rto_s=0.0)
    with pytest.raises(ValueError):
        TcpConfig(min_rto_s=1.0, initial_rto_s=0.5)
    with pytest.raises(ValueError):
        TcpConfig(max_window=0)
    with pytest.raises(ValueError):
        TcpConfig(ack_every=0)


def test_clean_link_delivers_everything_in_order():
    sim, medium, stream, recorder = build_pair(rate=20.0)
    sim.run(until=10.0)
    # 20 pps for 10 s with startup ramp: expect nearly all 200 delivered.
    assert stream.delivered_in_order >= 190
    assert stream.rcv_next == stream.delivered_in_order
    assert stream.timeouts == 0


def test_throughput_recorded_under_stream_id():
    sim, medium, stream, recorder = build_pair(rate=20.0)
    sim.run(until=10.0)
    assert recorder.flow("A-B").count_between(0, 10.0) == stream.delivered_in_order


def test_min_rto_floor_is_half_second():
    sim, medium, stream, recorder = build_pair(rate=20.0)
    sim.run(until=10.0)
    # One-hop RTTs are tens of ms; the floor must keep RTO at 0.5 s.
    assert stream.rto == pytest.approx(0.5)


def test_loss_recovered_by_retransmission():
    sim, medium, stream, recorder = build_pair(rate=20.0)
    # Kill everything for 2 seconds mid-flow: the MAC gives up, TCP retransmits.
    medium.add_noise_model(TimeWindowErrorModel(1.0, start=2.0, end=4.0))
    sim.run(until=20.0)
    assert stream.timeouts >= 1
    assert stream.retransmissions >= 1
    # No holes: the receiver's in-order count can only lead the sender's
    # cumulative-ack state by the ACK still in flight.
    assert stream.snd_una <= stream.delivered_in_order <= stream.snd_una + 2
    assert stream.delivered_in_order >= 300  # ~400 offered minus the outage


def test_rto_backs_off_exponentially_during_outage():
    sim, medium, stream, recorder = build_pair(rate=20.0)
    medium.add_noise_model(TimeWindowErrorModel(1.0, start=1.0, end=9.0))
    sim.run(until=9.5)
    assert stream.timeouts >= 3
    assert stream.rto > 1.0  # grew beyond the floor


def test_cwnd_collapses_on_timeout_and_regrows():
    sim, medium, stream, recorder = build_pair(rate=64.0)
    sim.run(until=3.0)
    grown = stream.cwnd
    assert grown > 1.0
    medium.add_noise_model(TimeWindowErrorModel(1.0, start=3.0, end=4.5))
    sim.run(until=4.4)
    assert stream.cwnd == 1.0
    sim.run(until=30.0)
    assert stream.cwnd > 1.0


def test_delayed_ack_halves_ack_traffic():
    sim, medium, stream, recorder = build_pair(rate=20.0)
    sim.run(until=10.0)
    # Ack-every-2: acks ≈ delivered/2 (plus delayed-ack timer flushes).
    assert stream.acks_sent <= 0.7 * stream.delivered_in_order


def test_ack_every_one_acks_each_segment():
    sim, medium, stream, recorder = build_pair(tcp_config=TcpConfig(ack_every=1),
                                               rate=20.0)
    sim.run(until=5.0)
    assert stream.acks_sent >= stream.delivered_in_order


def test_send_buffer_overflow_counts():
    config = TcpConfig(send_buffer=4)
    sim, medium, stream, recorder = build_pair(tcp_config=config, rate=64.0)
    medium.add_noise_model(TimeWindowErrorModel(1.0, start=0.0, end=3.0))
    sim.run(until=3.0)
    assert stream.app_overflow > 0


def test_window_never_exceeds_configured_max():
    config = TcpConfig(max_window=4)
    sim, medium, stream, recorder = build_pair(tcp_config=config, rate=64.0)
    checks = []

    def sample():
        checks.append(stream.snd_next - stream.snd_una <= 4)
        if sim.now < 5.0:
            sim.schedule(0.05, sample)

    sim.schedule(0.05, sample)
    sim.run(until=5.0)
    assert all(checks)


def test_reorder_buffer_handles_gap():
    """A MAC-level drop creates a sequence gap; later segments are buffered
    and delivered in order once the hole is retransmitted."""
    sim, medium, stream, recorder = build_pair(rate=32.0)
    medium.add_noise_model(TimeWindowErrorModel(1.0, start=1.0, end=2.5))
    sim.run(until=30.0)
    flow = recorder.flow("A-B")
    # Recorded deliveries are the in-order sequence: strictly increasing count
    assert stream.delivered_in_order == flow.count_between(0, 30.0)
    # Tahoe repairs one hole per RTO; a 1.5 s blackout with a full window
    # in flight costs several seconds of serial repair.
    assert stream.delivered_in_order >= 500  # of ~960 offered


def test_karn_rule_no_rtt_sample_from_retransmission():
    sim, medium, stream, recorder = build_pair(rate=20.0)
    medium.add_noise_model(TimeWindowErrorModel(1.0, start=1.0, end=3.0))
    sim.run(until=3.1)
    rto_during = stream.rto  # backed off
    sim.run(until=10.0)
    # After recovery, fresh (non-retransmitted) samples pull RTO back to floor.
    assert stream.rto <= rto_during
