"""UDP streams: wiring, loss semantics, accounting."""

import pytest

from repro.core.config import macaw_config
from repro.core.macaw import MacawMac
from repro.net.sink import Dispatcher, FlowRecorder
from repro.net.udp import UdpStream
from repro.phy.graph_medium import GraphMedium
from repro.sim.kernel import Simulator


def build(rate=32.0, linked=True, seed=3, queue_capacity=64, **kwargs):
    sim = Simulator(seed=seed)
    medium = GraphMedium(sim)
    a = MacawMac(sim, medium, "A", config=macaw_config(), queue_capacity=queue_capacity)
    b = MacawMac(sim, medium, "B", config=macaw_config(), queue_capacity=queue_capacity)
    if linked:
        medium.connect_clique([a, b])
    recorder = FlowRecorder()
    Dispatcher(a, recorder)
    Dispatcher(b, recorder)
    stream = UdpStream(sim, a, b, "A-B", rate, **kwargs)
    return sim, stream, recorder


def test_low_rate_stream_is_lossless():
    sim, stream, recorder = build(rate=16.0)
    sim.run(until=10.0)
    delivered = recorder.flow("A-B").count_between(0, 10.0)
    assert delivered == stream.offered
    assert stream.rejected == 0


def test_saturating_stream_fills_queue_and_drops():
    sim, stream, recorder = build(rate=128.0, queue_capacity=8)
    sim.run(until=10.0)
    delivered = recorder.flow("A-B").count_between(0, 10.0)
    assert stream.offered > delivered          # queue overflow lost some
    assert stream.rejected > 0
    assert delivered > 40 * 9                  # but the channel stayed busy


def test_unreachable_destination_loses_everything():
    sim, stream, recorder = build(rate=16.0, linked=False)
    sim.run(until=5.0)
    assert recorder.flow("A-B").count_between(0, 5.0) == 0
    assert stream.offered > 0


def test_start_stop_window():
    sim, stream, recorder = build(rate=16.0, start=1.0, stop=2.0)
    sim.run(until=5.0)
    assert 14 <= stream.offered <= 17


def test_poisson_arrivals_supported():
    sim, stream, recorder = build(rate=16.0, arrival="poisson")
    sim.run(until=10.0)
    assert recorder.flow("A-B").count_between(0, 10.0) > 100


def test_unknown_arrival_rejected():
    with pytest.raises(ValueError):
        build(arrival="bursty")


def test_halt():
    sim, stream, recorder = build(rate=16.0)
    sim.at(1.0, stream.halt)
    sim.run(until=5.0)
    assert stream.offered <= 17
