"""Traffic sources: CBR exactness, Poisson statistics, on/off behaviour."""

import pytest

from repro.net.traffic import CbrSource, OnOffSource, PoissonSource
from repro.sim.kernel import Simulator


def collect(source_factory, until):
    sim = Simulator(seed=3)
    emitted = []
    source_factory(sim, lambda i: emitted.append((i, sim.now)))
    sim.run(until=until)
    return emitted


def test_cbr_rate_is_exact():
    emitted = collect(lambda sim, emit: CbrSource(sim, emit, rate_pps=64.0), 10.0)
    assert len(emitted) in (639, 640, 641)  # 64/s for 10s, +/- phase


def test_cbr_intervals_are_constant():
    emitted = collect(lambda sim, emit: CbrSource(sim, emit, rate_pps=10.0, phase=0.0), 2.0)
    times = [t for _, t in emitted]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert all(g == pytest.approx(0.1) for g in gaps)


def test_cbr_phase_offsets_first_packet():
    emitted = collect(
        lambda sim, emit: CbrSource(sim, emit, rate_pps=10.0, phase=0.05), 1.0
    )
    assert emitted[0][1] == pytest.approx(0.05)


def test_cbr_start_stop_window():
    emitted = collect(
        lambda sim, emit: CbrSource(sim, emit, rate_pps=10.0, start=1.0, stop=2.0, phase=0.0),
        5.0,
    )
    assert all(1.0 <= t < 2.0 for _, t in emitted)
    assert 9 <= len(emitted) <= 11


def test_cbr_indices_are_sequential():
    emitted = collect(lambda sim, emit: CbrSource(sim, emit, rate_pps=50.0), 1.0)
    assert [i for i, _ in emitted] == list(range(len(emitted)))


def test_halt_stops_generation():
    sim = Simulator(seed=3)
    emitted = []
    source = CbrSource(sim, lambda i: emitted.append(i), rate_pps=10.0, phase=0.0)
    sim.at(1.0, source.halt)
    sim.run(until=5.0)
    assert len(emitted) <= 11


def test_invalid_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        CbrSource(sim, lambda i: None, rate_pps=0.0)
    with pytest.raises(ValueError):
        PoissonSource(sim, lambda i: None, rate_pps=-1.0)


def test_stop_before_start_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        CbrSource(sim, lambda i: None, rate_pps=1.0, start=2.0, stop=1.0)


def test_poisson_mean_rate():
    emitted = collect(lambda sim, emit: PoissonSource(sim, emit, rate_pps=50.0), 40.0)
    # 2000 expected; 5 sigma ≈ 220.
    assert 1780 <= len(emitted) <= 2220


def test_poisson_interarrivals_vary():
    emitted = collect(lambda sim, emit: PoissonSource(sim, emit, rate_pps=20.0), 10.0)
    times = [t for _, t in emitted]
    gaps = {round(b - a, 9) for a, b in zip(times, times[1:])}
    assert len(gaps) > 10  # genuinely random, unlike CBR


def test_onoff_produces_bursts_and_silences():
    emitted = collect(
        lambda sim, emit: OnOffSource(
            sim, emit, rate_pps=100.0, mean_on_s=0.5, mean_off_s=0.5
        ),
        60.0,
    )
    # Roughly half duty cycle: well below the full 6000, well above zero.
    assert 1200 < len(emitted) < 4800
    times = [t for _, t in emitted]
    gaps = [b - a for a, b in zip(times, times[1:])]
    assert max(gaps) > 0.2   # a silence
    assert min(gaps) == pytest.approx(0.01, rel=0.01)  # in-burst CBR spacing


def test_onoff_invalid_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        OnOffSource(sim, lambda i: None, rate_pps=10.0, mean_on_s=0.0, mean_off_s=1.0)
