"""NetPacket invariants."""

import pytest

from repro.net.packets import DATA_PACKET_BYTES, NetPacket, TCP_ACK_BYTES


def test_paper_constants():
    assert DATA_PACKET_BYTES == 512
    assert TCP_ACK_BYTES == 40


def test_construction():
    p = NetPacket(stream="P1-B", kind="udp", seq=3, size_bytes=512, created=1.5)
    assert p.stream == "P1-B"
    assert p.ack is None
    assert not p.retransmitted


def test_tcp_ack_carries_cumulative_ack():
    p = NetPacket(stream="s:ack", kind="tcp_ack", seq=0, size_bytes=40,
                  created=0.0, ack=17)
    assert p.ack == 17


def test_unique_uids():
    a = NetPacket(stream="s", kind="udp", seq=0, size_bytes=512, created=0.0)
    b = NetPacket(stream="s", kind="udp", seq=0, size_bytes=512, created=0.0)
    assert a.uid != b.uid


def test_invalid_kind_rejected():
    with pytest.raises(ValueError):
        NetPacket(stream="s", kind="sctp", seq=0, size_bytes=512, created=0.0)


def test_invalid_size_rejected():
    with pytest.raises(ValueError):
        NetPacket(stream="s", kind="udp", seq=0, size_bytes=0, created=0.0)
