"""BaseMac plumbing: guards, callbacks, power semantics, slot draws."""

import pytest

from repro.core.config import macaw_config
from repro.core.macaw import MacawMac
from repro.mac.base import MacStats
from repro.mac.frames import FrameType, control_frame
from repro.net.packets import NetPacket
from repro.phy.graph_medium import GraphMedium
from repro.sim.kernel import Simulator


def make(n=2):
    sim = Simulator(seed=2)
    medium = GraphMedium(sim)
    macs = [MacawMac(sim, medium, f"S{i}", config=macaw_config()) for i in range(n)]
    medium.connect_clique(macs)
    return sim, medium, macs


def test_draw_slots_respects_bounds():
    sim, medium, (a, b) = make()
    draws = [a.draw_slots(4.0) for _ in range(300)]
    assert min(draws) >= 1
    assert max(draws) <= 4


def test_draw_slots_minimum_is_one():
    sim, medium, (a, b) = make()
    assert all(a.draw_slots(0.3) == 1 for _ in range(10))


def test_send_frame_while_transmitting_returns_none():
    sim, medium, (a, b) = make()
    frame1 = control_frame(FrameType.RTS, "S0", "S1", data_bytes=512)
    frame2 = control_frame(FrameType.RTS, "S0", "S1", data_bytes=512)
    assert a.send_frame(frame1) is not None
    assert a.send_frame(frame2) is None
    # Only the first was counted as sent.
    assert a.stats.sent_of(FrameType.RTS) == 1


def test_send_frame_while_off_returns_none():
    sim, medium, (a, b) = make()
    a.power_off()
    frame = control_frame(FrameType.RTS, "S0", "S1", data_bytes=512)
    assert a.send_frame(frame) is None


def test_power_off_is_idempotent():
    sim, medium, (a, b) = make()
    a.power_off()
    a.power_off()
    a.power_on()
    a.power_on()
    assert a.powered


def test_deliver_and_drop_callbacks():
    sim, medium, (a, b) = make()
    events = []
    a.on_deliver = lambda payload, src: events.append(("deliver", src))
    a.on_drop = lambda payload, dst: events.append(("drop", dst))
    a.on_sent = lambda payload, dst: events.append(("sent", dst))
    packet = NetPacket(stream="s", kind="udp", seq=0, size_bytes=512, created=0.0)
    a.deliver_up(packet, "S1")
    a.notify_drop(packet, "S1")
    a.notify_sent(packet, "S1")
    assert events == [("deliver", "S1"), ("drop", "S1"), ("sent", "S1")]
    assert a.stats.delivered == 1
    assert a.stats.drops == 1
    assert a.stats.successes == 1


def test_callbacks_optional():
    sim, medium, (a, b) = make()
    packet = NetPacket(stream="s", kind="udp", seq=0, size_bytes=512, created=0.0)
    a.deliver_up(packet, "S1")  # no callbacks set: must not raise
    a.notify_drop(packet, "S1")
    a.notify_sent(packet, "S1")


def test_stats_helpers():
    stats = MacStats()
    stats.count_sent(FrameType.RTS)
    stats.count_sent(FrameType.RTS)
    stats.count_received(FrameType.CTS)
    assert stats.sent_of(FrameType.RTS) == 2
    assert stats.received_of(FrameType.CTS) == 1
    assert stats.sent_of(FrameType.ACK) == 0


def test_default_timing_derived_from_medium_bitrate():
    sim = Simulator()
    medium = GraphMedium(sim, bitrate_bps=512_000.0)
    mac = MacawMac(sim, medium, "X", config=macaw_config())
    assert mac.timing.bitrate_bps == 512_000.0
    assert mac.timing.slot == pytest.approx(30 * 8 / 512_000.0)
