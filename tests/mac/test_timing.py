"""Slot and timeout arithmetic: the paper's constants."""

import pytest

from repro.mac.timing import MacTiming


@pytest.fixture
def timing():
    return MacTiming()  # 256 kbps, 30-byte control, null turnaround


def test_slot_is_control_airtime(timing):
    # 30 bytes at 256 kbps = 937.5 microseconds.
    assert timing.slot == pytest.approx(937.5e-6)


def test_data_airtime(timing):
    # 512 bytes at 256 kbps = 16 ms.
    assert timing.airtime(512) == pytest.approx(16e-3)


def test_airtime_rejects_nonpositive(timing):
    with pytest.raises(ValueError):
        timing.airtime(0)


def test_invalid_construction():
    with pytest.raises(ValueError):
        MacTiming(bitrate_bps=0)
    with pytest.raises(ValueError):
        MacTiming(control_bytes=0)
    with pytest.raises(ValueError):
        MacTiming(turnaround_s=-1e-3)


def test_cts_timeout_covers_cts_and_margin(timing):
    assert timing.cts_timeout() == pytest.approx(timing.slot + timing.margin)


def test_defer_after_rts_covers_cts(timing):
    assert timing.defer_after_rts() >= timing.slot


def test_defer_after_cts_scales_with_features(timing):
    plain = timing.defer_after_cts(512, use_ds=False, use_ack=False)
    with_ds = timing.defer_after_cts(512, use_ds=True, use_ack=False)
    with_both = timing.defer_after_cts(512, use_ds=True, use_ack=True)
    assert plain >= timing.airtime(512)
    assert with_ds == pytest.approx(plain + timing.slot)
    assert with_both == pytest.approx(with_ds + timing.slot)


def test_defer_after_ds_covers_data_and_ack(timing):
    span = timing.defer_after_ds(512, use_ack=True)
    assert span >= timing.airtime(512) + timing.slot
    assert timing.defer_after_ds(512, use_ack=False) == pytest.approx(
        span - timing.slot
    )


def test_defer_after_rrts_is_two_slots_plus_margin(timing):
    assert timing.defer_after_rrts() == pytest.approx(2 * timing.slot + timing.margin)


def test_full_exchange_defer_exceeds_all_parts(timing):
    span = timing.defer_full_exchange(512)
    assert span >= 3 * timing.slot + timing.airtime(512)


def test_exchange_airtime():
    timing = MacTiming()
    maca = timing.exchange_airtime(512, use_ds=False, use_ack=False)
    macaw = timing.exchange_airtime(512, use_ds=True, use_ack=True)
    # MACA: RTS+CTS+DATA = 2 slots + 16ms; MACAW adds DS and ACK slots.
    assert maca == pytest.approx(2 * timing.slot + 16e-3)
    assert macaw == pytest.approx(4 * timing.slot + 16e-3)


def test_turnaround_included():
    timing = MacTiming(turnaround_s=1e-3)
    assert timing.cts_timeout() == pytest.approx(1e-3 + timing.slot + timing.margin)


def test_multicast_rts_defer_covers_data(timing):
    assert timing.defer_after_multicast_rts(512) >= timing.airtime(512)
