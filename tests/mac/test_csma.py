"""CSMA baseline: carrier deference, ACK/retry, hidden/exposed pathologies."""

import pytest

from repro.mac.csma import CsmaConfig, CsmaMac
from repro.net.packets import NetPacket
from repro.phy.graph_medium import GraphMedium
from repro.sim.kernel import Simulator


def build(n=2, config=CsmaConfig(), links="clique"):
    sim = Simulator(seed=5)
    medium = GraphMedium(sim)
    macs = [CsmaMac(sim, medium, f"S{i}", config=config) for i in range(n)]
    if links == "clique":
        medium.connect_clique(macs)
    return sim, medium, macs


def packet(stream="s", seq=0, size=512):
    return NetPacket(stream=stream, kind="udp", seq=seq, size_bytes=size, created=0.0)


def deliveries(mac):
    out = []
    mac.on_deliver = lambda payload, src: out.append((payload, src))
    return out


def test_config_validation():
    with pytest.raises(ValueError):
        CsmaConfig(persistence="2-persistent")
    with pytest.raises(ValueError):
        CsmaConfig(bo_min=0)


def test_single_packet_delivered_and_acked():
    sim, medium, (a, b) = build()
    got = deliveries(b)
    assert a.enqueue(packet(), "S1", 512)
    sim.run(until=1.0)
    assert len(got) == 1
    assert a.stats.successes == 1
    assert a.queue_len() == 0


def test_sender_defers_while_carrier_busy():
    sim, medium, (a, b, c) = build(3)
    got = deliveries(c)
    # B transmits a long frame; A senses carrier and defers, then delivers.
    b.enqueue(packet("x"), "S2", 512)
    sim.run(until=0.001)  # B's transmission is now on the air
    a.enqueue(packet("y"), "S2", 512)
    assert medium.carrier_sensed(a)
    sim.run(until=1.0)
    assert len(got) == 2  # both eventually delivered (no collision)


def test_retransmission_after_lost_ack():
    from repro.phy.noise import LinkErrorModel

    sim, medium, (a, b) = build()
    got = deliveries(b)
    # Destroy the first two ACK deliveries B→A, then let them through.
    model = LinkErrorModel([("S1", "S0")], 1.0)
    medium.add_noise_model(model)
    a.enqueue(packet(), "S1", 512)
    sim.run(until=0.2)
    model.error_rate = 0.0
    sim.run(until=2.0)
    assert a.stats.successes == 1
    assert a.stats.ack_timeouts >= 1
    # Duplicates were suppressed at B: payload delivered exactly once.
    assert len(got) == 1
    assert b.stats.duplicates >= 1


def test_gives_up_after_max_retries():
    sim, medium, (a, b) = build(config=CsmaConfig(max_retries=3))
    drops = []
    a.on_drop = lambda payload, dst: drops.append(payload)
    medium.set_link(a, b, False)  # B unreachable
    a.enqueue(packet(), "S1", 512)
    sim.run(until=5.0)
    assert len(drops) == 1
    assert a.stats.successes == 0


def test_no_ack_mode_is_fire_and_forget():
    sim, medium, (a, b) = build(config=CsmaConfig(use_ack=False))
    got = deliveries(b)
    a.enqueue(packet(), "S1", 512)
    sim.run(until=1.0)
    assert len(got) == 1
    assert a.stats.successes == 1
    assert b.stats.sent == {}  # no ACK was sent


def test_hidden_terminal_collision_rate():
    # A—B—C chain: A and C hidden from each other, both send to B.
    sim = Simulator(seed=7)
    medium = GraphMedium(sim)
    a = CsmaMac(sim, medium, "A")
    b = CsmaMac(sim, medium, "B")
    c = CsmaMac(sim, medium, "C")
    medium.set_link(a, b)
    medium.set_link(b, c)
    got = deliveries(b)
    for i in range(50):
        sim.at(i * 0.016, lambda i=i: a.enqueue(packet("a", i), "B", 512))
        sim.at(i * 0.016, lambda i=i: c.enqueue(packet("c", i), "B", 512))
    sim.run(until=20.0)
    # Carrier sense cannot prevent these collisions: many first attempts
    # die at B and must be recovered by ACK-timeout retransmission.
    assert b.stats.corrupted > 20
    assert a.stats.ack_timeouts + c.stats.ack_timeouts > 20


def test_exposed_terminal_deference():
    # B→A while C→D: C hears B and (non-persistent) defers needlessly.
    sim = Simulator(seed=7)
    medium = GraphMedium(sim)
    a = CsmaMac(sim, medium, "A")
    b = CsmaMac(sim, medium, "B")
    c = CsmaMac(sim, medium, "C")
    d = CsmaMac(sim, medium, "D")
    medium.set_link(a, b)
    medium.set_link(b, c)
    medium.set_link(c, d)
    b.enqueue(packet("b"), "A", 512)
    sim.run(until=0.001)
    c.enqueue(packet("c"), "D", 512)
    # C senses B's carrier and backs off rather than transmitting.
    assert medium.carrier_sensed(c)
    assert not medium.is_transmitting(c)


def test_one_persistent_waits_for_idle():
    config = CsmaConfig(persistence="1persistent")
    sim, medium, (a, b) = build(config=config)
    got = deliveries(b)
    b_packet = packet("b")
    b.enqueue(b_packet, "S0", 512)
    sim.run(until=0.001)
    a.enqueue(packet("a"), "S1", 512)
    assert a._waiting_for_idle
    sim.run(until=1.0)
    assert len(got) == 1  # A's packet went out once B's finished


def test_power_off_rejects_enqueue():
    sim, medium, (a, b) = build()
    a.power_off()
    assert not a.enqueue(packet(), "S1", 512)
    assert a.stats.enqueue_rejected == 1
    a.power_on()
    assert a.enqueue(packet(), "S1", 512)
