"""Polling MAC: schedule, registration, fairness, and its weaknesses."""

import pytest

from repro.mac.polling import PollingBaseMac, PollingConfig, PollingPadMac
from repro.net.packets import NetPacket
from repro.phy.graph_medium import GraphMedium
from repro.sim.kernel import Simulator
from repro.topo.builder import ScenarioBuilder
from repro.topo.figures import fig3_six_pads


def build_cell(n_pads=2):
    sim = Simulator(seed=3)
    medium = GraphMedium(sim)
    base = PollingBaseMac(sim, medium, "B")
    pads = [PollingPadMac(sim, medium, f"P{i}") for i in range(1, n_pads + 1)]
    medium.connect_clique([base] + pads)
    for pad in pads:
        base.register_pad(pad.name)
    return sim, medium, base, pads


def packet(stream="s", seq=0):
    return NetPacket(stream=stream, kind="udp", seq=seq, size_bytes=512, created=0.0)


def test_config_validation():
    with pytest.raises(ValueError):
        PollingConfig(inter_poll_slots=-1)
    with pytest.raises(ValueError):
        PollingConfig(answer_margin_slots=0)
    with pytest.raises(ValueError):
        PollingConfig(max_data_bytes=0)


def test_uplink_delivery_via_poll():
    sim, medium, base, (p1, p2) = build_cell()
    got = []
    base.on_deliver = lambda payload, src: got.append((payload.seq, src))
    for i in range(5):
        p1.enqueue(packet(seq=i), "B", 512)
    sim.run(until=2.0)
    assert [seq for seq, _ in got] == [0, 1, 2, 3, 4]


def test_downlink_delivery():
    sim, medium, base, (p1, p2) = build_cell()
    got = []
    p2.on_deliver = lambda payload, src: got.append(payload.seq)
    for i in range(3):
        base.enqueue(packet(seq=i), "P2", 512)
    sim.run(until=2.0)
    assert got == [0, 1, 2]


def test_round_robin_is_fair():
    sim, medium, base, pads = build_cell(n_pads=3)
    counts = {}
    base.on_deliver = lambda payload, src: counts.__setitem__(
        src, counts.get(src, 0) + 1
    )
    for pad in pads:
        for i in range(100):
            pad.enqueue(packet(pad.name, i), "B", 512)
    sim.run(until=5.0)
    values = list(counts.values())
    assert len(values) == 3
    assert max(values) - min(values) <= 1  # strict alternation


def test_empty_polls_are_counted():
    sim, medium, base, pads = build_cell()
    sim.run(until=1.0)
    assert base.idle_polls > 0
    assert base.polls_sent >= base.idle_polls


def test_unregistered_pad_is_never_served():
    sim, medium, base, (p1, p2) = build_cell()
    base.unregister_pad("P2")
    got = []
    base.on_deliver = lambda payload, src: got.append(src)
    p1.enqueue(packet("a"), "B", 512)
    p2.enqueue(packet("b"), "B", 512)
    sim.run(until=3.0)
    assert "P1" in got
    assert "P2" not in got


def test_unregister_keeps_schedule_consistent():
    sim, medium, base, pads = build_cell(n_pads=3)
    base.unregister_pad("P1")
    base.unregister_pad("P1")  # idempotent
    got = set()
    base.on_deliver = lambda payload, src: got.add(src)
    for pad in pads:
        pad.enqueue(packet(pad.name), "B", 512)
    sim.run(until=3.0)
    assert got == {"P2", "P3"}


def test_dead_pad_just_wastes_its_poll():
    sim, medium, base, (p1, p2) = build_cell()
    p2.power_off()
    got = []
    base.on_deliver = lambda payload, src: got.append(src)
    for i in range(10):
        p1.enqueue(packet(seq=i), "B", 512)
    sim.run(until=5.0)
    assert got.count("P1") == 10  # service continues around the dead pad


def test_builder_registers_in_range_pads():
    scenario = fig3_six_pads(protocol="polling", seed=1).build()
    base = scenario.station("B").mac
    assert isinstance(base, PollingBaseMac)
    assert len(base._pads) == 6


def test_polling_outperforms_contention_in_isolated_cell():
    polled = fig3_six_pads(protocol="polling", seed=1, rate_pps=64.0).build().run(60.0)
    contended = fig3_six_pads(protocol="macaw", seed=1, rate_pps=64.0).build().run(60.0)
    assert sum(polled.throughputs(warmup=10).values()) > sum(
        contended.throughputs(warmup=10).values()
    )


def test_polling_base_power_cycle():
    sim, medium, base, (p1, p2) = build_cell()
    got = []
    base.on_deliver = lambda payload, src: got.append(src)
    p1.enqueue(packet(), "B", 512)
    base.power_off()
    sim.run(until=1.0)
    assert got == []
    base.power_on()
    medium.connect_clique([base, p1, p2])  # detach cleared the links
    sim.run(until=3.0)
    assert got == ["P1"]
