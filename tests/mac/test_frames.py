"""Frame formats and constructors."""

import pytest

from repro.mac.frames import (
    CONTROL_BYTES,
    Frame,
    FrameType,
    MULTICAST,
    control_frame,
    data_frame,
)


def test_control_frame_size_is_30_bytes():
    frame = control_frame(FrameType.RTS, "A", "B", data_bytes=512)
    assert frame.size_bytes == CONTROL_BYTES == 30


def test_all_control_kinds_constructible():
    for kind in (FrameType.RTS, FrameType.CTS, FrameType.DS, FrameType.ACK, FrameType.RRTS):
        frame = control_frame(kind, "A", "B")
        assert frame.kind is kind
        assert frame.kind.is_control


def test_control_frame_rejects_data_kind():
    with pytest.raises(ValueError):
        control_frame(FrameType.DATA, "A", "B")


def test_data_frame_carries_payload():
    frame = data_frame("A", "B", 512, payload={"seq": 1})
    assert frame.kind is FrameType.DATA
    assert not frame.kind.is_control
    assert frame.payload == {"seq": 1}
    assert frame.data_bytes == 512


def test_control_frame_rejects_payload():
    with pytest.raises(ValueError):
        Frame(kind=FrameType.RTS, src="A", dst="B", size_bytes=30, payload="x")


def test_positive_size_required():
    with pytest.raises(ValueError):
        data_frame("A", "B", 0)


def test_addressing():
    frame = control_frame(FrameType.RTS, "A", "B")
    assert frame.addressed_to("B")
    assert not frame.addressed_to("C")
    assert not frame.is_multicast


def test_multicast_addressing():
    frame = control_frame(FrameType.RTS, "A", MULTICAST, data_bytes=512)
    assert frame.is_multicast
    assert frame.addressed_to("anyone")


def test_backoff_fields_and_esn():
    frame = control_frame(
        FrameType.RTS, "A", "B", data_bytes=512,
        local_backoff=4.0, remote_backoff=None, esn=7, retry=True,
    )
    assert frame.local_backoff == 4.0
    assert frame.remote_backoff is None  # I_DONT_KNOW
    assert frame.esn == 7
    assert frame.retry


def test_uids_are_unique():
    a = control_frame(FrameType.RTS, "A", "B")
    b = control_frame(FrameType.RTS, "A", "B")
    assert a.uid != b.uid


def test_describe():
    frame = control_frame(FrameType.CTS, "B", "A", esn=3)
    assert frame.describe() == "CTS B→A esn=3"
    retry = control_frame(FrameType.RTS, "A", "B", esn=4, retry=True)
    assert "retry" in retry.describe()
