"""Job-spec identity, normalization, serialization, lookup."""

import pytest

from repro.core.config import RunProfile
from repro.service.job import DEFAULT_JOB_DIR, Job, JobSpec, find_job
from repro.service.policy import AdaptiveSeeds, FixedSeeds


def _spec(**changes):
    base = dict(
        experiments=("table2", "table9"),
        policy=FixedSeeds(seeds=(0, 1)),
        duration=5.0,
        warmup=1.0,
    )
    base.update(changes)
    return JobSpec(**base)


def test_spec_validates_experiments():
    with pytest.raises(ValueError):
        _spec(experiments=())
    with pytest.raises(ValueError):
        _spec(experiments=("table2", "table2"))
    with pytest.raises(KeyError):
        _spec(experiments=("table99",))


def test_spec_validates_bounds_and_types():
    with pytest.raises(ValueError):
        _spec(duration=5.0, warmup=5.0)
    with pytest.raises(TypeError):
        _spec(policy=[0, 1])
    with pytest.raises(TypeError):
        _spec(profile={"trace": True})


def test_spec_digest_stable_and_content_sensitive():
    assert _spec().digest() == _spec().digest()
    assert _spec().job_id == _spec().digest()[:12]
    assert _spec().digest() != _spec(duration=6.0).digest()
    assert _spec().digest() != _spec(
        policy=FixedSeeds(seeds=(0, 1, 2))
    ).digest()
    assert _spec().digest() != _spec(
        profile=RunProfile(queue="wheel")
    ).digest()


def test_spec_round_trips_through_dict():
    spec = _spec(
        policy=AdaptiveSeeds(epsilon=2.0, metric="variant:MACAW",
                             min_seeds=4, max_seeds=8),
        profile=RunProfile(trace=True, queue="wheel", sanitize=True),
    )
    clone = JobSpec.from_dict(spec.to_dict())
    assert clone == spec
    assert clone.digest() == spec.digest()


def test_job_layout_and_spec_file(tmp_path):
    spec = _spec()
    job = Job(spec=spec, directory=tmp_path / spec.job_id)
    job.write_spec()
    assert job.spec_path.exists()
    assert job.journal_path.name == "journal.jsonl"
    assert job.progress_path.name == "progress.jsonl"
    loaded = Job.load(job.directory)
    assert loaded.spec == spec


def test_find_job_by_prefix_path_and_ambiguity(tmp_path):
    spec_a = _spec()
    spec_b = _spec(duration=6.0)
    for spec in (spec_a, spec_b):
        Job(spec=spec, directory=tmp_path / spec.job_id).write_spec()
    assert find_job(spec_a.job_id[:6], tmp_path).spec == spec_a
    assert find_job(str(tmp_path / spec_b.job_id), tmp_path).spec == spec_b
    with pytest.raises(FileNotFoundError):
        find_job("ffffffffffff", tmp_path)
    with pytest.raises(ValueError, match="ambiguous"):
        find_job("", tmp_path)


def test_default_job_dir_is_dotfile():
    assert DEFAULT_JOB_DIR.startswith(".")
