"""Journal chain integrity, torn-tail tolerance, digest-set hashing."""

import json

import pytest

from repro.service.journal import (
    GENESIS,
    Journal,
    JournalError,
    chain_hash,
    digest_set_hash,
)


def test_append_load_round_trip(tmp_path):
    journal = Journal(tmp_path / "j.jsonl")
    journal.append({"kind": "job", "n": 1})
    journal.append({"kind": "cell", "n": 2})
    records = Journal(tmp_path / "j.jsonl").load()
    assert [r["n"] for r in records] == [1, 2]
    assert records[0]["prev"] == GENESIS
    first_line = (tmp_path / "j.jsonl").read_text().splitlines()[0]
    assert records[1]["prev"] == chain_hash(first_line)


def test_append_rejects_caller_prev(tmp_path):
    journal = Journal(tmp_path / "j.jsonl")
    with pytest.raises(ValueError, match="journal-managed"):
        journal.append({"kind": "cell", "prev": "forged"})


def test_missing_file_loads_empty(tmp_path):
    journal = Journal(tmp_path / "absent.jsonl")
    assert journal.load() == []
    assert journal.tip == GENESIS


def test_torn_final_line_dropped(tmp_path):
    journal = Journal(tmp_path / "j.jsonl")
    journal.append({"n": 1})
    journal.append({"n": 2})
    path = tmp_path / "j.jsonl"
    text = path.read_text()
    # Crash mid-append: the last line is half-written, no newline.
    path.write_text(text + '{"n": 3, "prev": "' )
    records = Journal(path).load()
    assert [r["n"] for r in records] == [1, 2]


def test_append_after_load_continues_chain(tmp_path):
    path = tmp_path / "j.jsonl"
    Journal(path).append({"n": 1})
    journal = Journal(path)
    journal.load()
    journal.append({"n": 2})
    assert [r["n"] for r in Journal(path).load()] == [1, 2]


def test_mid_file_tamper_detected(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = Journal(path)
    for n in range(3):
        journal.append({"n": n})
    lines = path.read_text().splitlines()
    record = json.loads(lines[1])
    record["n"] = 99  # rewrite history
    lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="chain break"):
        Journal(path).load()


def test_mid_file_garbage_detected(tmp_path):
    path = tmp_path / "j.jsonl"
    journal = Journal(path)
    journal.append({"n": 1})
    journal.append({"n": 2})
    lines = path.read_text().splitlines()
    path.write_text(lines[0] + "\nnot json\n" + lines[1] + "\n")
    with pytest.raises(JournalError, match="unparseable"):
        Journal(path).load()


def test_digest_set_hash_order_independent():
    forward = digest_set_hash(["aa", "bb", "cc"])
    shuffled = digest_set_hash(["cc", "aa", "bb"])
    assert forward == shuffled
    assert digest_set_hash(["aa", "bb"]) != forward


def test_digest_set_hash_none_marker():
    assert digest_set_hash([None, "aa"]) == digest_set_hash(["aa", None])
    assert digest_set_hash([None]) != digest_set_hash([])
