"""Orchestrator end-to-end: resume byte-equality, retry, adaptive stops.

Every test uses the fast fake experiments from ``conftest`` (tiny real
scenarios, forked into workers), a throwaway job dir, and a throwaway
result cache — nothing touches ``.macaw_jobs`` / ``.macaw_cache``.
"""

import pytest

from repro.runner import ResultCache
from repro.service import (
    AdaptiveSeeds,
    CellFailure,
    FixedSeeds,
    JobSpec,
    JournalError,
    WorkerDeath,
    ci_half_width,
    resume_job,
    run_job,
)

DUR, WARM = 2.0, 0.5


def _spec(exp="svc-fast", policy=None, **changes):
    base = dict(
        experiments=(exp,),
        policy=policy or FixedSeeds(seeds=(0, 1)),
        duration=DUR,
        warmup=WARM,
    )
    base.update(changes)
    return JobSpec(**base)


def _run(spec, tmp_path, tag="a", **kwargs):
    kwargs.setdefault("cache", ResultCache(str(tmp_path / f"cache-{tag}")))
    return run_job(spec, job_dir=tmp_path / f"jobs-{tag}", **kwargs)


def test_fixed_job_completes(fake_experiments, tmp_path):
    job = _run(_spec(), tmp_path)
    assert job.status == "complete"
    assert job.executed == 2 and job.replayed == 0
    assert [o.cell.seed for o in job.outcomes] == [0, 1]
    assert all(o.digest for o in job.outcomes)
    assert job.stops["svc-fast"]["n"] == 2
    records = job.journal().load()
    kinds = [r["kind"] for r in records]
    assert kinds[0] == "job" and kinds[-1] == "complete"
    assert kinds.count("cell") == 2
    assert records[-1]["digest_set"] == job.digest_set()


def test_rerun_replays_from_journal(fake_experiments, tmp_path):
    spec = _spec()
    cache = ResultCache(str(tmp_path / "cache"))
    first = run_job(spec, job_dir=tmp_path / "jobs", cache=cache)
    again = run_job(spec, job_dir=tmp_path / "jobs", cache=cache)
    assert again.executed == 0 and again.replayed == 2
    assert again.status == "complete"
    assert again.digest_set() == first.digest_set()
    # Replays append nothing: the journal still ends at the same record.
    assert len(again.journal().load()) == len(first.journal().load())


def test_cache_hits_from_other_jobs_are_reused(fake_experiments, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    first = run_job(_spec(), job_dir=tmp_path / "jobs-a", cache=cache)
    second = run_job(_spec(), job_dir=tmp_path / "jobs-b", cache=cache)
    assert all(o.cached for o in second.outcomes)
    assert second.digest_set() == first.digest_set()


@pytest.mark.parametrize("queue", ["heap", "wheel"])
@pytest.mark.parametrize("jobs", [1, 4])
def test_interrupt_resume_digest_set_byte_equal(
    fake_experiments, tmp_path, queue, jobs
):
    from repro.core.config import RunProfile

    spec = _spec(policy=FixedSeeds(seeds=(0, 1, 2, 3)),
                 profile=RunProfile(queue=queue))
    reference = _run(spec, tmp_path, tag="ref", jobs=jobs)
    assert reference.status == "complete"

    cache = ResultCache(str(tmp_path / "cache-int"))
    partial = run_job(spec, jobs=jobs, job_dir=tmp_path / "jobs-int",
                      cache=cache, stop_after=2)
    if jobs == 1:
        # Inline execution halts deterministically: 2 cells journaled.
        assert partial.status == "interrupted"
        assert partial.executed == 2
    resumed = resume_job(partial, jobs=jobs, cache=cache)
    assert resumed.status == "complete"
    assert len(resumed.outcomes) == 4
    assert resumed.digest_set() == reference.digest_set()
    assert sorted(o.digest for o in resumed.outcomes) == sorted(
        o.digest for o in reference.outcomes
    )


def test_resume_after_cache_wipe_reexecutes(fake_experiments, tmp_path):
    spec = _spec(policy=FixedSeeds(seeds=(0, 1, 2)))
    cache = ResultCache(str(tmp_path / "cache"))
    partial = run_job(spec, job_dir=tmp_path / "jobs", cache=cache,
                      stop_after=2)
    assert partial.status == "interrupted"
    reference = _run(spec, tmp_path, tag="ref")
    # The journal names the finished cells, but the cache that held their
    # full results is gone: resume re-executes and stays byte-identical.
    resumed = resume_job(partial, cache=ResultCache(str(tmp_path / "c2")))
    assert resumed.status == "complete"
    assert resumed.digest_set() == reference.digest_set()


def test_worker_death_retried(fake_experiments, tmp_path):
    spec = _spec(exp="svc-crash-once")
    job = _run(spec, tmp_path, jobs=2, backoff_s=0.01)
    assert job.status == "complete"
    assert job.retries == 2  # one death per cell, both recovered
    cells = [r for r in job.journal().load() if r["kind"] == "cell"]
    assert sorted(r["attempts"] for r in cells) == [2, 2]
    assert all(o.digest for o in job.outcomes)


def test_worker_death_exhausts_retry_budget(fake_experiments, tmp_path):
    spec = _spec(exp="svc-crash-always")
    with pytest.raises(WorkerDeath, match="retry budget"):
        _run(spec, tmp_path, jobs=2, retries=1, backoff_s=0.01)


def test_in_cell_exception_not_retried(fake_experiments, tmp_path):
    spec = _spec(exp="svc-raise")
    with pytest.raises(CellFailure, match="deliberate in-cell failure"):
        _run(spec, tmp_path, jobs=2, retries=5, backoff_s=0.01)


def test_adaptive_stops_at_min_when_epsilon_wide(fake_experiments, tmp_path):
    spec = _spec(policy=AdaptiveSeeds(epsilon=1e6, min_seeds=3, max_seeds=8))
    job = _run(spec, tmp_path)
    stop = job.stops["svc-fast"]
    assert stop["n"] == 3 and stop["reason"] == "ci"
    assert len(job.outcomes) == 3


def test_adaptive_runs_to_cap_when_epsilon_tiny(fake_experiments, tmp_path):
    spec = _spec(policy=AdaptiveSeeds(epsilon=1e-9, min_seeds=3, max_seeds=5))
    job = _run(spec, tmp_path)
    stop = job.stops["svc-fast"]
    assert stop["n"] == 5 and stop["reason"] == "cap"
    stops = [r for r in job.journal().load() if r["kind"] == "stop"]
    assert stops and stops[-1]["reason"] == "cap"


def test_adaptive_stop_point_independent_of_jobs(fake_experiments, tmp_path):
    # Pick an epsilon that genuinely requires growth past min_seeds when
    # the metric series allows it: probe the first 5 metrics serially,
    # then target a half-width between n=3 and n=5.
    probe = _run(_spec(policy=FixedSeeds(seeds=(0, 1, 2, 3, 4))),
                 tmp_path, tag="probe")
    from repro.service.policy import cell_metric

    metrics = [cell_metric(o.result.table, "total") for o in probe.outcomes]
    hw3, hw5 = ci_half_width(metrics[:3]), ci_half_width(metrics[:5])
    epsilon = (hw3 + hw5) / 2 if hw5 < hw3 else hw3 * 2
    policy = AdaptiveSeeds(epsilon=epsilon, min_seeds=3, max_seeds=8)

    serial = _run(_spec(policy=policy), tmp_path, tag="s", jobs=1)
    fanned = _run(_spec(policy=policy), tmp_path, tag="p", jobs=4)
    assert serial.stops == fanned.stops
    assert serial.digest_set() == fanned.digest_set()


def test_resume_rejects_tampered_journal(fake_experiments, tmp_path):
    import json

    spec = _spec()
    job = _run(spec, tmp_path)
    lines = job.journal_path.read_text().splitlines()
    record = json.loads(lines[1])
    record["digest"] = "0" * 64
    lines[1] = json.dumps(record, sort_keys=True, separators=(",", ":"))
    job.journal_path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError):
        resume_job(job, cache=ResultCache(str(tmp_path / "cache-a")))


def test_foreign_journal_rejected(fake_experiments, tmp_path):
    spec_a = _spec()
    spec_b = _spec(policy=FixedSeeds(seeds=(5, 6)))
    job_a = _run(spec_a, tmp_path)
    # Graft job A's journal under job B's identity.
    directory = tmp_path / "jobs-a" / spec_b.job_id
    directory.mkdir(parents=True)
    (directory / "journal.jsonl").write_text(
        job_a.journal_path.read_text()
    )
    with pytest.raises(JournalError, match="job"):
        run_job(spec_b, job_dir=tmp_path / "jobs-a",
                cache=ResultCache(str(tmp_path / "cache-a")))


def test_no_digest_mode_completes(fake_experiments, tmp_path):
    job = _run(_spec(collect_digests=False), tmp_path)
    assert job.status == "complete"
    assert all(o.digest is None for o in job.outcomes)


def test_progress_stream_written(fake_experiments, tmp_path):
    import json

    events = []
    job = _run(_spec(), tmp_path,
               on_event=lambda kind, payload: events.append(kind))
    assert events.count("cell") == 2
    lines = job.progress_path.read_text().splitlines()
    kinds = [json.loads(line)["kind"] for line in lines]
    assert kinds.count("cell") == 2
    assert all("t_wall" in json.loads(line) for line in lines)
