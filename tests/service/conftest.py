"""Fast fake experiments for the service-layer tests.

Cells run in forked workers (Linux), so anything registered into the
experiment registry here is visible to children too — no real 400 s
table runs needed to exercise scheduling, journaling, and retry.
"""

import os
from typing import Dict

import pytest

from repro.analysis.tables import ComparisonTable
from repro.experiments.base import Experiment, ExperimentSpec
from repro.experiments import registry
from repro.service.scheduler import ATTEMPT_ENV
from repro.topo import ScenarioBuilder

FAST_DURATION = 2.0
FAST_WARMUP = 0.5


class FastContention(Experiment):
    """Two contending pads, 2 simulated seconds: seed-dependent totals."""

    spec = ExperimentSpec(
        exp_id="svc-fast",
        title="service test: two contending pads",
        figure="",
        description="tiny contention cell for orchestrator tests",
    )
    default_duration = FAST_DURATION
    default_warmup = FAST_WARMUP

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        builder = ScenarioBuilder(seed=seed, protocol="macaw")
        builder.add_base("B")
        builder.add_pad("P1")
        builder.add_pad("P2")
        builder.clique("B", "P1", "P2")
        builder.udp("P1", "B", rate_pps=64.0)
        builder.udp("P2", "B", rate_pps=64.0)
        scenario = builder.build().run(duration)
        table = ComparisonTable(self.spec.title)
        for stream, pps in scenario.throughputs(warmup=warmup).items():
            table.add("macaw", stream, pps, None)
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        return {"ran": True}


class CrashOnce(FastContention):
    """Dies (hard, no traceback) on every cell's first dispatch attempt.

    Exercises the worker-death retry path: attempt 1 exits without a
    payload, attempt 2 succeeds.  Only meaningful with ``jobs > 1`` —
    inline execution would take the test process down with it.
    """

    spec = ExperimentSpec(
        exp_id="svc-crash-once",
        title="service test: worker dies on first attempt",
        figure="",
        description="crash-once cell for retry tests",
    )

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        if os.environ.get(ATTEMPT_ENV) == "1":
            os._exit(17)
        return super()._run(seed, duration, warmup)


class AlwaysCrash(FastContention):
    """Dies on every attempt: exhausts the retry budget."""

    spec = ExperimentSpec(
        exp_id="svc-crash-always",
        title="service test: worker always dies",
        figure="",
        description="always-crash cell for retry-exhaustion tests",
    )

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        os._exit(23)


class RaisesInside(FastContention):
    """Raises deterministically inside the cell (never retried)."""

    spec = ExperimentSpec(
        exp_id="svc-raise",
        title="service test: deterministic in-cell failure",
        figure="",
        description="raising cell for failure-propagation tests",
    )

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        raise ValueError("deliberate in-cell failure")


_FAKES = (FastContention, CrashOnce, AlwaysCrash, RaisesInside)


@pytest.fixture
def fake_experiments():
    """Register the fast fakes for the duration of one test."""
    for cls in _FAKES:
        registry._FACTORIES[cls.spec.exp_id] = cls
    try:
        yield {cls.spec.exp_id: cls for cls in _FAKES}
    finally:
        for cls in _FAKES:
            registry._FACTORIES.pop(cls.spec.exp_id, None)
