"""Seed-policy math: CI half-widths, sequential stopping, round-trips."""

import pytest

from repro.service.policy import (
    AdaptiveSeeds,
    FixedSeeds,
    ci_half_width,
    policy_from_dict,
    t_critical,
)


def test_t_critical_small_df_exceeds_z():
    assert t_critical(2, 0.95) == pytest.approx(4.303, abs=0.01)
    assert t_critical(1000, 0.95) == pytest.approx(1.96, abs=0.01)
    assert t_critical(2, 0.99) > t_critical(2, 0.95)


def test_t_critical_rejects_unknown_confidence():
    with pytest.raises(ValueError):
        t_critical(5, 0.90)


def test_ci_half_width_needs_two_samples():
    assert ci_half_width([3.0]) == float("inf")
    assert ci_half_width([]) == float("inf")


def test_ci_half_width_zero_variance():
    assert ci_half_width([5.0, 5.0, 5.0]) == 0.0


def test_ci_half_width_known_value():
    # n=4, mean 2.5, sample sd sqrt(5/3); t(3, .95)=3.182
    values = [1.0, 2.0, 3.0, 4.0]
    sd = (5.0 / 3.0) ** 0.5
    expected = 3.182 * sd / 2.0
    assert ci_half_width(values) == pytest.approx(expected, rel=1e-3)


def test_fixed_seeds_allocates_once():
    policy = FixedSeeds(seeds=(4, 5, 6))
    assert policy.initial_seeds() == [4, 5, 6]
    assert policy.next_seeds([1.0, 2.0, 3.0]) == []


def test_fixed_seeds_validation():
    with pytest.raises(ValueError):
        FixedSeeds(seeds=())
    with pytest.raises(ValueError):
        FixedSeeds(seeds=(1, 1))


def test_adaptive_stops_when_ci_tight():
    policy = AdaptiveSeeds(epsilon=100.0, min_seeds=3, max_seeds=10)
    assert policy.initial_seeds() == [0, 1, 2]
    # Wide epsilon: three near-identical samples satisfy it immediately.
    assert policy.next_seeds([50.0, 50.1, 49.9]) == []
    assert policy.stop_reason([50.0, 50.1, 49.9]) == "ci"


def test_adaptive_grows_until_cap():
    policy = AdaptiveSeeds(epsilon=1e-9, min_seeds=3, max_seeds=5, step=1)
    metrics = [10.0, 20.0, 30.0]
    assert policy.next_seeds(metrics) == [3]
    metrics.append(40.0)
    assert policy.next_seeds(metrics) == [4]
    metrics.append(50.0)
    assert policy.next_seeds(metrics) == []
    assert policy.stop_reason(metrics) == "cap"


def test_adaptive_respects_base_seed_and_step():
    policy = AdaptiveSeeds(epsilon=1e-9, min_seeds=2, max_seeds=6, step=2,
                           base_seed=10)
    assert policy.initial_seeds() == [10, 11]
    assert policy.next_seeds([1.0, 100.0]) == [12, 13]


def test_adaptive_decision_is_pure_function_of_series():
    policy = AdaptiveSeeds(epsilon=5.0, min_seeds=3, max_seeds=12)
    series = [40.0, 55.0, 45.0, 50.0, 48.0]
    assert policy.next_seeds(list(series)) == policy.next_seeds(list(series))


def test_policy_round_trips():
    for policy in (
        FixedSeeds(seeds=(0, 2, 4)),
        AdaptiveSeeds(epsilon=1.5, metric="variant:MACAW", min_seeds=4,
                      max_seeds=16, step=2, base_seed=7, confidence=0.99),
    ):
        clone = policy_from_dict(policy.to_dict())
        assert clone == policy
