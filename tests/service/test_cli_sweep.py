"""``macaw-sim sweep``: job lifecycle through the CLI front door."""

import re

from repro.cli import main


def _sweep(tmp_path, *argv):
    return main(["sweep", *argv,
                 "--job-dir", str(tmp_path / "jobs"),
                 "--cache-dir", str(tmp_path / "cache")])


def _digest_set(out):
    match = re.search(r"digest set: ([0-9a-f]{64})", out)
    assert match, f"no digest set in output:\n{out}"
    return match.group(1)


def test_sweep_completes_and_reports(fake_experiments, tmp_path, capsys):
    code = _sweep(tmp_path, "svc-fast", "--seeds", "0,1")
    out = capsys.readouterr().out
    assert code == 0
    assert "complete" in out and "2 cells" in out
    assert "2 executed, 0 replayed" in out
    _digest_set(out)


def test_sweep_rerun_replays(fake_experiments, tmp_path, capsys):
    _sweep(tmp_path, "svc-fast", "--seeds", "0,1")
    first = _digest_set(capsys.readouterr().out)
    assert _sweep(tmp_path, "svc-fast", "--seeds", "0,1") == 0
    out = capsys.readouterr().out
    assert "0 executed, 2 replayed" in out
    assert _digest_set(out) == first


def test_sweep_stop_after_then_resume_matches_reference(
    fake_experiments, tmp_path, capsys
):
    reference = main(["sweep", "svc-fast", "--seeds", "0,1,2",
                      "--job-dir", str(tmp_path / "ref-jobs"),
                      "--cache-dir", str(tmp_path / "ref-cache")])
    assert reference == 0
    expected = _digest_set(capsys.readouterr().out)

    code = _sweep(tmp_path, "svc-fast", "--seeds", "0,1,2",
                  "--stop-after", "1")
    out = capsys.readouterr().out
    assert code == 130
    assert "interrupted" in out
    match = re.search(r"--resume ([0-9a-f]{12})", out)
    assert match, out
    job_id = match.group(1)

    code = _sweep(tmp_path, "--resume", job_id[:6])
    out = capsys.readouterr().out
    assert code == 0
    assert "complete" in out
    assert _digest_set(out) == expected


def test_sweep_list_shows_jobs(fake_experiments, tmp_path, capsys):
    _sweep(tmp_path, "svc-fast", "--seeds", "0,1")
    capsys.readouterr()
    assert _sweep(tmp_path, "--list") == 0
    out = capsys.readouterr().out
    assert "complete" in out and "svc-fast" in out and "seeds=2" in out


def test_sweep_list_empty_dir(tmp_path, capsys):
    assert _sweep(tmp_path, "--list") == 0
    assert "no jobs under" in capsys.readouterr().out


def test_sweep_adaptive_reports_stop(fake_experiments, tmp_path, capsys):
    code = _sweep(tmp_path, "svc-fast", "--adaptive", "--epsilon", "1e6",
                  "--min-seeds", "3", "--max-seeds", "6")
    out = capsys.readouterr().out
    assert code == 0
    assert "stopped after 3 seeds (ci)" in out
    assert "CI half-width" in out


def test_sweep_no_digest_skips_fingerprint(fake_experiments, tmp_path,
                                           capsys):
    code = _sweep(tmp_path, "svc-fast", "--seeds", "0,1", "--no-digest")
    out = capsys.readouterr().out
    assert code == 0
    assert "digest set" not in out
