"""Real ^C against a live sweep subprocess: drain, journal, exit 130.

The CLI process runs in its own session (process group); SIGINT goes to
the whole group, exactly like a terminal ^C.  Workers ignore it, the
orchestrator drains them, journals, and exits 130 (or 0 when the drain
happened to finish the job).  Either way: a chain-valid journal, no
orphan workers, and a resume that completes byte-identically.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.journal import Journal

REPO = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))


def _sweep_cmd(tmp_path, *extra):
    return [
        sys.executable, "-m", "repro", "sweep", "table9",
        "--seeds", "0,1,2,3,4,5", "--duration", "40", "--warmup", "5",
        "--jobs", "2",
        "--job-dir", str(tmp_path / "jobs"),
        "--cache-dir", str(tmp_path / "cache"),
        *extra,
    ]


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["PYTHONUNBUFFERED"] = "1"
    return env


@pytest.mark.slow
def test_sigint_drains_journals_and_resumes(tmp_path):
    proc = subprocess.Popen(
        _sweep_cmd(tmp_path), cwd=REPO, env=_env(),
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        start_new_session=True,
    )
    # Wait for the first completed cell, then ^C the whole group.
    saw_cell = False
    deadline = time.monotonic() + 120
    for line in proc.stdout:
        if "seed" in line and "s" in line and line.strip().startswith("["):
            saw_cell = True
            break
        if time.monotonic() > deadline:
            break
    assert saw_cell, "no cell completed within the deadline"
    os.killpg(os.getpgid(proc.pid), signal.SIGINT)
    proc.stdout.read()
    code = proc.wait(timeout=120)
    # 130 = genuinely interrupted; 0 = the drain finished the last cells.
    assert code in (0, 130)

    job_dirs = [d for d in (tmp_path / "jobs").iterdir() if d.is_dir()]
    assert len(job_dirs) == 1
    journal_path = job_dirs[0] / "journal.jsonl"
    records = Journal(journal_path).load()  # raises on a broken chain
    kinds = [r["kind"] for r in records]
    assert kinds[0] == "job"
    assert kinds[-1] in ("interrupted", "complete")
    cells_before = kinds.count("cell")
    assert cells_before >= 1

    # No orphans: every worker was a child of the dead group.
    alive = subprocess.run(
        ["pgrep", "-g", str(proc.pid)], capture_output=True, text=True
    )
    assert alive.stdout.strip() == ""

    resume = subprocess.run(
        _sweep_cmd(tmp_path), cwd=REPO, env=_env(),
        capture_output=True, text=True, timeout=600,
    )
    assert resume.returncode == 0, resume.stdout + resume.stderr
    assert "complete" in resume.stdout
    final = Journal(journal_path).load()
    assert [r["kind"] for r in final].count("cell") == 6
    assert final[-1]["kind"] == "complete"
    # The progress stream is well-formed JSONL throughout.
    for line in (job_dirs[0] / "progress.jsonl").read_text().splitlines():
        json.loads(line)
