"""The repro.api facade: one import surface, legacy paths intact."""

import pytest

import repro.api as api


def test_all_names_resolve():
    assert api.__all__ == sorted(api.__all__)
    for name in api.__all__:
        assert getattr(api, name) is not None, name


def test_facade_matches_legacy_objects():
    # The facade re-exports the same objects, not copies.
    from repro.core.config import RunProfile
    from repro.runner import ResultCache
    from repro.service import JobSpec
    from repro.topo import ScenarioBuilder

    assert api.RunProfile is RunProfile
    assert api.ResultCache is ResultCache
    assert api.JobSpec is JobSpec
    assert api.ScenarioBuilder is ScenarioBuilder


def test_load_experiment_accepts_id_or_instance():
    exp = api.load_experiment("table9")
    assert exp.spec.exp_id == "table9"
    assert api.load_experiment(exp) is exp
    with pytest.raises(KeyError):
        api.load_experiment("table99")


def test_run_returns_experiment_result():
    result = api.run("table9", seed=3, duration=40.0, warmup=5.0)
    assert result.spec.exp_id == "table9"
    assert result.seed == 3
    assert result.digest is None
    with_digest = api.run("table9", seed=3, duration=40.0, warmup=5.0,
                          collect_digest=True)
    assert with_digest.digest is not None


def test_sweep_fixed_seed_count(tmp_path):
    job = api.sweep(
        "table9", seeds=2, duration=40.0, warmup=5.0,
        job_dir=tmp_path / "jobs",
        cache=api.ResultCache(str(tmp_path / "cache")),
    )
    assert job.status == "complete"
    assert [o.cell.seed for o in job.outcomes] == [0, 1]
    assert job.digest_set()


def test_sweep_explicit_seeds_and_policy_are_exclusive(tmp_path):
    with pytest.raises(ValueError, match="not both"):
        api.sweep("table9", seeds=[0, 1],
                  policy=api.FixedSeeds(seeds=(0, 1)),
                  job_dir=tmp_path)


def test_sweep_rejects_unknown_experiment(tmp_path):
    with pytest.raises(KeyError):
        api.sweep("table99", seeds=1, job_dir=tmp_path)


def test_scenario_quickstart_surface():
    builder = api.ScenarioBuilder(seed=1, protocol="macaw")
    builder.add_base("B")
    builder.add_pad("P1")
    builder.clique("B", "P1")
    builder.udp("P1", "B", rate_pps=16.0)
    scenario = builder.build().run(5.0)
    throughputs = scenario.throughputs(warmup=1.0)
    assert throughputs
    assert 0.0 <= api.jain_fairness(list(throughputs.values())) <= 1.0
