"""Statecharts: the declarative Appendix A/B transition tables."""

from repro.core.config import maca_config, macaw_config
from repro.verify.statecharts import (
    MACA_STATECHART,
    MACAW_STATECHART,
    statechart_for,
)


def test_macaw_has_all_ten_states():
    assert MACAW_STATECHART.states == {
        "IDLE", "CONTEND", "WFRTS", "WFCTS", "WFCONTEND",
        "SendData", "WFDS", "WFData", "WFACK", "QUIET",
    }


def test_maca_omits_macaw_only_states():
    # Appendix A's 5 states plus the two documented refinements
    # (SendData for explicit airtime, WFCONTEND for queued deferral).
    assert MACA_STATECHART.states == {
        "IDLE", "CONTEND", "WFCTS", "WFCONTEND", "SendData", "WFData", "QUIET",
    }
    for missing in ("WFDS", "WFACK", "WFRTS"):
        assert missing not in MACA_STATECHART


def test_every_state_reachable_from_idle():
    assert MACAW_STATECHART.unreachable_states() == frozenset()
    assert MACA_STATECHART.unreachable_states() == frozenset()


def test_core_exchange_transitions_legal():
    chart = MACAW_STATECHART
    assert chart.allows("IDLE", "CONTEND")
    assert chart.allows("CONTEND", "WFCTS")
    assert chart.allows("WFCTS", "SendData")
    assert chart.allows("SendData", "WFACK")
    assert chart.allows("WFACK", "IDLE")
    assert chart.allows("IDLE", "WFDS")        # receiver grants a CTS
    assert chart.allows("WFDS", "WFData")      # DS arrived
    assert chart.allows("WFData", "IDLE")


def test_nonsense_transitions_rejected():
    chart = MACAW_STATECHART
    assert not chart.allows("IDLE", "WFACK")   # can't await an ACK from idle
    assert not chart.allows("QUIET", "WFCTS")  # no RTS while deferring
    assert not chart.allows("WFACK", "WFCTS")  # new RTS needs contention
    assert not chart.allows("IDLE", "IDLE")    # self-loops are not recorded


def test_grant_target_depends_on_ds_flag():
    with_ds = statechart_for(macaw_config(use_ds=True))
    without_ds = statechart_for(macaw_config(use_ds=False))
    assert with_ds.allows("IDLE", "WFDS")
    assert not with_ds.allows("IDLE", "WFData")
    assert without_ds.allows("IDLE", "WFData")
    assert "WFDS" not in without_ds


def test_ack_and_rrts_flags_gate_their_states():
    no_ack = statechart_for(macaw_config(use_ack=False))
    assert "WFACK" not in no_ack
    assert no_ack.allows("SendData", "IDLE")
    no_rrts = statechart_for(macaw_config(use_rrts=False))
    assert "WFRTS" not in no_rrts
    assert not no_rrts.allows("IDLE", "WFCTS")  # rule 13 only with RRTS


def test_rule_13_immediate_rts_after_rrts():
    assert MACAW_STATECHART.allows("IDLE", "WFCTS")


def test_maca_statechart_matches_maca_config():
    assert statechart_for(maca_config()).transitions == MACA_STATECHART.transitions


def test_successors_and_names():
    assert "CONTEND" in MACAW_STATECHART.successors("IDLE")
    assert MACAW_STATECHART.name == "MACAW"
    assert MACA_STATECHART.name == "MACA"
    assert statechart_for(macaw_config(use_ds=False)).name == "custom"
