"""Determinism regression: one seed must reproduce the trace byte for byte."""

from repro.topo.builder import ScenarioBuilder


def traced_builder(protocol, seed):
    builder = ScenarioBuilder(seed=seed, protocol=protocol, trace=True)
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", 48.0)
    builder.udp("P2", "B", 48.0)
    return builder


def run_digest(protocol, seed):
    scenario = traced_builder(protocol, seed).build().run(8.0)
    return scenario.sim.trace.digest()


def test_macaw_trace_digest_is_seed_deterministic():
    assert run_digest("macaw", seed=7) == run_digest("macaw", seed=7)


def test_maca_trace_digest_is_seed_deterministic():
    assert run_digest("maca", seed=7) == run_digest("maca", seed=7)


def test_different_seeds_diverge():
    # Sanity check that the digest actually covers the interesting bits:
    # contention slots are random, so two seeds must produce different runs.
    assert run_digest("macaw", seed=1) != run_digest("macaw", seed=2)


def test_digest_is_order_and_detail_sensitive():
    from repro.sim.trace import Trace

    a, b = Trace(), Trace()
    a.record(1.0, "send", "A", kind="RTS")
    b.record(1.0, "send", "A", kind="CTS")
    assert a.digest() != b.digest()
    c = Trace()
    c.record(1.0, "send", "A", kind="RTS")
    assert a.digest() == c.digest()
