"""Conformance checker: synthetic known-bad traces and real known-good runs."""

import pytest

from repro.sim.trace import Trace
from repro.verify.conformance import (
    ConformanceError,
    ConformanceReport,
    StationProfile,
    Violation,
    check_trace,
    profile_for_mac,
)
from repro.verify.statecharts import MACAW_STATECHART
from repro.topo.builder import ScenarioBuilder

CTRL_AIR = 30 * 8 / 256_000
DATA_AIR = 512 * 8 / 256_000


def macaw_profiles(*names):
    return {
        name: StationProfile(
            name, statechart=MACAW_STATECHART, use_ds=True, use_ack=True
        )
        for name in names
    }


def send(trace, t, station, kind, dst, esn=None, size=30):
    trace.record(t, "send", station, frame=f"{kind} {station}→{dst}",
                 kind=kind, src=station, dst=dst, esn=esn, size=size,
                 data_bytes=512, retry=False)


def recv(trace, t, station, kind, src, esn=None, clean=True, size=30):
    trace.record(t, "recv", station, frame=f"{kind} {src}→{station}",
                 kind=kind, src=src, dst=station, esn=esn, size=size,
                 clean=clean)


def state(trace, t, station, frm, to):
    trace.record(t, "state", station, frm=frm, to=to)


# ---------------------------------------------------------------- known-good


def test_complete_macaw_exchange_is_clean():
    trace = Trace()
    state(trace, 0.000, "A", "IDLE", "CONTEND")
    state(trace, 0.001, "A", "CONTEND", "WFCTS")
    send(trace, 0.001, "A", "RTS", "B", esn=0)
    recv(trace, 0.003, "B", "RTS", "A", esn=0)
    state(trace, 0.003, "B", "IDLE", "WFDS")
    send(trace, 0.003, "B", "CTS", "A", esn=0)
    recv(trace, 0.005, "A", "CTS", "B", esn=0)
    state(trace, 0.005, "A", "WFCTS", "SendData")
    send(trace, 0.005, "A", "DS", "B", esn=0)
    recv(trace, 0.007, "B", "DS", "A", esn=0)
    state(trace, 0.007, "B", "WFDS", "WFData")
    send(trace, 0.007, "A", "DATA", "B", esn=0, size=512)
    state(trace, 0.024, "A", "SendData", "WFACK")
    recv(trace, 0.024, "B", "DATA", "A", esn=0, size=512)
    send(trace, 0.024, "B", "ACK", "A", esn=0)
    state(trace, 0.024, "B", "WFData", "IDLE")
    recv(trace, 0.026, "A", "ACK", "B", esn=0)
    state(trace, 0.026, "A", "WFACK", "IDLE")
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert report.ok, report.render()
    assert report.examined == {"state": 8, "send": 5, "recv": 5}


def test_empty_trace_is_trivially_clean():
    report = check_trace(Trace(), macaw_profiles("A"))
    assert report.ok
    assert report.examined == {}


# ----------------------------------------------------------------- known-bad


def test_illegal_transition_yields_exactly_one_diagnostic():
    trace = Trace()
    state(trace, 0.0, "A", "IDLE", "WFACK")  # can't await an ACK from idle
    report = check_trace(trace, macaw_profiles("A"))
    assert [v.code for v in report.violations] == ["illegal-transition"]


def test_trace_gap_reported_as_illegal_transition():
    trace = Trace()
    # Claims to leave CONTEND, but the station was never seen entering it.
    state(trace, 0.0, "A", "CONTEND", "WFCTS")
    report = check_trace(trace, macaw_profiles("A"))
    assert [v.code for v in report.violations] == ["illegal-transition"]
    assert "trace gap" in report.violations[0].message


def test_unknown_state_reported():
    trace = Trace()
    state(trace, 0.0, "A", "IDLE", "LIMBO")
    report = check_trace(trace, macaw_profiles("A"))
    assert "unknown-state" in [v.code for v in report.violations]


def test_cts_without_rts_yields_exactly_one_diagnostic():
    trace = Trace()
    send(trace, 0.0, "B", "CTS", "A")  # no RTS was ever received from A
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert [v.code for v in report.violations] == ["cts-without-rts"]


def test_cts_answers_one_rts_only():
    trace = Trace()
    recv(trace, 0.000, "B", "RTS", "A", esn=0)
    send(trace, 0.001, "B", "CTS", "A", esn=0)   # answers the RTS: fine
    send(trace, 0.003, "B", "CTS", "A", esn=0)   # second grant: violation
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert [v.code for v in report.violations] == ["cts-without-rts"]


def test_data_without_ds_reported():
    trace = Trace()
    send(trace, 0.0, "A", "DATA", "B", esn=0, size=512)
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert [v.code for v in report.violations] == ["data-without-ds"]


def test_multicast_data_needs_no_ds():
    trace = Trace()
    send(trace, 0.0, "A", "DATA", "*", esn=0, size=512)
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert report.ok


def test_ds_esn_mismatch_reported():
    trace = Trace()
    send(trace, 0.000, "A", "DS", "B", esn=1)
    send(trace, 0.002, "A", "DATA", "B", esn=2, size=512)
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert [v.code for v in report.violations] == ["data-without-ds"]
    assert "announced" in report.violations[0].message


def test_duplicate_esn_ack_yields_exactly_one_diagnostic():
    trace = Trace()
    recv(trace, 0.000, "B", "DATA", "A", esn=5, size=512)
    send(trace, 0.001, "B", "ACK", "A", esn=5)   # the real ACK: fine
    send(trace, 0.003, "B", "ACK", "A", esn=5)   # re-ACK without rule-7 RTS
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert [v.code for v in report.violations] == ["ack-duplicate-esn"]


def test_rule7_reack_after_retransmitted_rts_is_legal():
    trace = Trace()
    recv(trace, 0.000, "B", "DATA", "A", esn=5, size=512)
    send(trace, 0.001, "B", "ACK", "A", esn=5)
    recv(trace, 0.010, "B", "RTS", "A", esn=5)   # sender missed the ACK
    send(trace, 0.011, "B", "ACK", "A", esn=5)   # control rule 7
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert report.ok, report.render()


def test_unsolicited_ack_reported():
    trace = Trace()
    send(trace, 0.0, "B", "ACK", "A", esn=9)     # no DATA ever received
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert [v.code for v in report.violations] == ["ack-unsolicited"]


def test_esn_regression_reported_only_for_ordered_profiles():
    def data_pair(profiles):
        trace = Trace()
        send(trace, 0.00, "A", "DS", "B", esn=3)
        send(trace, 0.01, "A", "DATA", "B", esn=3, size=512)
        send(trace, 0.05, "A", "DS", "B", esn=1)
        send(trace, 0.06, "A", "DATA", "B", esn=1, size=512)
        return check_trace(trace, profiles)

    ordered = macaw_profiles("A", "B")
    report = data_pair(ordered)
    assert [v.code for v in report.violations] == ["esn-regression"]

    piggyback = {
        "A": StationProfile("A", statechart=MACAW_STATECHART, use_ds=True,
                            use_ack=True, ordered_esn=False),
        "B": ordered["B"],
    }
    assert data_pair(piggyback).ok


def test_overlapping_transmissions_reported():
    trace = Trace()
    send(trace, 0.0, "A", "DATA", "*", esn=0, size=512)
    send(trace, 0.001, "A", "RTS", "B")  # DATA still on the air until 0.016
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert "overlapping-transmission" in [v.code for v in report.violations]


def test_non_monotonic_clock_reported():
    trace = Trace()
    state(trace, 1.0, "A", "IDLE", "CONTEND")
    state(trace, 0.5, "A", "CONTEND", "WFCTS")
    report = check_trace(trace, macaw_profiles("A"))
    assert "non-monotonic-clock" in [v.code for v in report.violations]


def test_corrupt_frames_do_not_enter_the_dialogue():
    trace = Trace()
    recv(trace, 0.000, "B", "RTS", "A", esn=0, clean=False)
    send(trace, 0.001, "B", "CTS", "A", esn=0)
    report = check_trace(trace, macaw_profiles("A", "B"))
    assert [v.code for v in report.violations] == ["cts-without-rts"]


def test_profileless_station_gets_invariants_only():
    trace = Trace()
    send(trace, 0.0, "C", "CTS", "A")              # no profile: not checked
    send(trace, 0.0001, "C", "DATA", "A", size=512)  # but overlap still is
    report = check_trace(trace, macaw_profiles("A"))
    assert [v.code for v in report.violations] == ["overlapping-transmission"]


# ------------------------------------------------------------ report plumbing


def test_report_render_and_by_code():
    report = ConformanceReport(violations=[
        Violation("cts-without-rts", 1.0, "B", "boom"),
        Violation("cts-without-rts", 2.0, "B", "boom again"),
    ])
    assert not report.ok
    assert report.by_code() == {"cts-without-rts": 2}
    assert "2 conformance violation(s)" in report.render()
    with pytest.raises(AssertionError):
        raise ConformanceError(report)


def test_profile_for_mac_distinguishes_protocols():
    builder = ScenarioBuilder(seed=1, protocol="macaw")
    builder.add_pad("P")
    builder.add_pad("Q", protocol="csma")
    scenario = builder.build()
    macaw_profile = profile_for_mac(scenario.station("P").mac)
    assert macaw_profile.statechart is not None
    assert macaw_profile.use_ds and macaw_profile.use_ack
    csma_profile = profile_for_mac(scenario.station("Q").mac)
    assert csma_profile.statechart is None


# ------------------------------------------------------------- scenario glue


def test_real_run_passes_the_checker():
    builder = ScenarioBuilder(seed=3, trace=True)
    builder.add_base("B")
    builder.add_pad("P")
    builder.clique("B", "P")
    builder.udp("P", "B", 32.0)
    scenario = builder.build().run(5.0)
    report = scenario.verify()
    assert report.ok, report.render()
    assert sum(report.examined.values()) == len(scenario.sim.trace)
    assert scenario.conformance is report


def test_sanitize_flag_enables_tracing_and_checks():
    builder = ScenarioBuilder(seed=3, sanitize=True)
    builder.add_base("B")
    builder.add_pad("P")
    builder.clique("B", "P")
    builder.udp("P", "B", 32.0)
    scenario = builder.build()
    assert scenario.sanitize
    assert scenario.sim.trace.enabled
    scenario.run(5.0)
    assert scenario.conformance is not None
    assert scenario.conformance.ok


def test_sanitized_context_reaches_nested_builds():
    from repro.verify.runtime import sanitize_enabled, sanitized

    assert not sanitize_enabled()
    with sanitized(True) as stats:
        builder = ScenarioBuilder(seed=3)
        builder.add_base("B")
        builder.add_pad("P")
        builder.clique("B", "P")
        builder.udp("P", "B", 32.0)
        scenario = builder.build()
        assert scenario.sanitize
        scenario.run(2.0)
    assert stats.runs == 1
    assert stats.records == len(scenario.sim.trace)
    assert stats.violations == 0
    assert not sanitize_enabled()


def test_env_var_enables_sanitize(monkeypatch):
    from repro.verify.runtime import sanitize_enabled

    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitize_enabled()
    assert not sanitize_enabled(explicit=False)  # explicit choice wins
    monkeypatch.setenv("REPRO_SANITIZE", "off")
    assert not sanitize_enabled()
