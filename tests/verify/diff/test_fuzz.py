"""Fuzzer grammar determinism, serialization, and shrinker minimality."""

from repro.fault import BurstNoise, LinkFlap
from repro.verify.diff.fuzz import FuzzScenario, generate_case, run_fuzz
from repro.verify.diff.modes import ExecMode
from repro.verify.diff.oracle import ScenarioOracle
from repro.verify.diff.shrink import shrink_case


def test_generate_case_is_deterministic():
    assert generate_case(42, 3).to_dict() == generate_case(42, 3).to_dict()
    assert generate_case(42, 3).to_dict() != generate_case(42, 4).to_dict()
    assert generate_case(42, 3).to_dict() != generate_case(43, 3).to_dict()


def test_generated_cases_are_well_formed():
    for index in range(8):
        case = generate_case(9, index)
        assert 2 <= len(case.pads) <= 5
        stations = set(case.pads) | {"B"}
        assert case.flows
        for src, dst, rate in case.flows:
            assert {src, dst} <= stations
            assert rate > 0
        for a, b in case.extra_links:
            assert {a, b} <= set(case.pads)
        assert len(case.faults) <= 3


def test_case_dict_round_trip():
    case = generate_case(5, 1)
    assert FuzzScenario.from_dict(case.to_dict()).to_dict() == case.to_dict()


def test_shrink_is_greedy_1_minimal_under_a_synthetic_predicate():
    noise = BurstNoise(start=2.0, end=3.0, error_rate=0.5)
    case = FuzzScenario(
        seed=5, duration=8.0,
        pads=("P1", "P2", "P3"),
        extra_links=(("P1", "P2"),),
        flows=(("P1", "B", 32.0), ("B", "P2", 16.0), ("P3", "B", 48.0)),
        faults=(noise, LinkFlap(a="B", b="P1", start=4.0, end=5.0)),
    )

    def still_fails(smaller: FuzzScenario) -> bool:
        return any(isinstance(f, BurstNoise) for f in smaller.faults)

    shrunk = shrink_case(case, still_fails)
    # Everything irrelevant to the predicate is gone ...
    assert shrunk.faults == (noise,)
    assert len(shrunk.pads) == 1
    assert len(shrunk.flows) == 1
    assert shrunk.extra_links == ()
    # ... and the result is 1-minimal: no single further removal both
    # stays valid and keeps failing.
    for candidate in shrunk.removal_candidates():
        smaller = shrunk.remove(candidate)
        assert smaller is None or not still_fails(smaller)


def test_shrink_respects_the_probe_budget():
    calls = []

    def always_fails(smaller: FuzzScenario) -> bool:
        calls.append(smaller)
        return True

    case = FuzzScenario(
        seed=1, duration=8.0,
        pads=("P1", "P2", "P3", "P4"),
        flows=(("P1", "B", 32.0), ("P2", "B", 32.0),
               ("P3", "B", 32.0), ("P4", "B", 32.0)),
    )
    shrink_case(case, always_fails, max_probes=2)
    assert len(calls) == 2


def test_run_fuzz_finds_shrinks_and_localizes(perturb_queue):
    modes = [ExecMode(), ExecMode(queue=perturb_queue)]
    failure = run_fuzz(budget=1, seed=0, duration=6.0, modes=modes)
    assert failure is not None
    assert failure.index == 0

    # The shrunk case still reproduces the divergence ...
    oracle = ScenarioOracle(modes=modes)
    assert oracle.check(failure.shrunk) is not None
    # ... and under a perturbation that breaks *every* scenario, the
    # 1-minimal case is the grammar's smallest valid one.
    assert len(failure.shrunk.pads) == 1
    assert len(failure.shrunk.flows) == 1
    assert failure.shrunk.faults == ()
    assert failure.shrunk.extra_links == ()

    assert failure.point is not None
    assert failure.point.time > 0.0
    assert failure.repro["kind"] == "scenario"
    assert failure.repro["divergence"]["event_index"] == failure.point.event_index
    assert failure.repro["mode_b"]["queue"] == perturb_queue


def test_run_fuzz_clean_budget_returns_none():
    failure = run_fuzz(budget=2, seed=11, duration=4.0,
                       modes=[ExecMode(), ExecMode(queue="wheel")])
    assert failure is None
