"""ExecMode: validation, labels, profile application, matrices."""

import pytest

from repro.core.config import RunProfile
from repro.verify.diff.modes import ExecMode, default_matrix, full_matrix


def test_default_matrix_covers_every_axis_once():
    labels = [mode.label for mode in default_matrix()]
    assert labels == ["heap", "wheel", "heap+jobs2", "heap+snap", "heap+metrics"]


def test_default_matrix_respects_queue_order():
    labels = [mode.label for mode in default_matrix(("wheel", "heap"))]
    assert labels[0] == "wheel"
    assert "heap" in labels
    assert labels[2:] == ["wheel+jobs2", "wheel+snap", "wheel+metrics"]


def test_full_matrix_is_the_cross_product():
    matrix = full_matrix(("heap", "wheel"))
    assert len(matrix) == 16
    assert len({mode.label for mode in matrix}) == 16
    assert ExecMode() in matrix
    assert ExecMode(queue="wheel", jobs=2, snapshot=True, metrics=True) in matrix


def test_mode_validates_eagerly():
    with pytest.raises(ValueError):
        ExecMode(queue="bogus")
    with pytest.raises(ValueError):
        ExecMode(jobs=0)


def test_mode_apply_sets_queue_and_metrics_knobs():
    profile = RunProfile()
    applied = ExecMode(queue="wheel", metrics=True).apply(profile)
    assert applied.queue == "wheel"
    assert applied.metrics  # normalized to a MetricsConfig
    plain = ExecMode().apply(profile)
    assert plain.queue == "heap"
    assert not plain.metrics


def test_mode_dict_round_trip():
    mode = ExecMode(queue="wheel", jobs=2, snapshot=True, metrics=True)
    assert ExecMode.from_dict(mode.to_dict()) == mode
    assert ExecMode.from_dict({}) == ExecMode()
