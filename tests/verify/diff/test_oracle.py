"""The oracle passes clean on stock backends, at both granularities."""

import pytest

from repro.verify.diff.fuzz import FuzzScenario
from repro.verify.diff.modes import ExecMode, default_matrix
from repro.verify.diff.oracle import DiffOracle, ScenarioOracle


def _case() -> FuzzScenario:
    return FuzzScenario(
        seed=3, duration=6.0,
        pads=("P1", "P2"),
        flows=(("P1", "B", 32.0), ("B", "P2", 16.0)),
    )


def test_scenario_oracle_mode_matrix_clean_on_stock_backends():
    # Covers every axis: wheel queue, a pool worker, a genuine snapshot
    # capture/restore roundtrip, and metrics collection.
    oracle = ScenarioOracle(modes=default_matrix())
    assert oracle.check(_case()) is None


def test_scenario_oracle_digest_is_horizon_prefix_stable():
    # The property bisection rests on: stopping early never changes the
    # records already emitted, so a short run's digest only depends on
    # the horizon, not on how far the run would have continued.
    oracle = ScenarioOracle(modes=[ExecMode(), ExecMode(queue="wheel")])
    case = _case()
    half_a = oracle.run_case(case, oracle.modes[0], horizon=3.0, traced=True)
    half_b = oracle.run_case(case, oracle.modes[1], horizon=3.0, traced=True)
    assert half_a.digest == half_b.digest
    full = oracle.run_case(case, oracle.modes[0], traced=True)
    assert full.records[:len(half_a.records)] == half_a.records


def test_diff_oracle_experiment_grid_clean():
    oracle = DiffOracle(["table2"], seeds=(0,), duration=12.0, warmup=2.0)
    report = oracle.check()
    assert report.ok
    assert set(report.digests) == {mode.label for mode in oracle.modes}
    # Every mode produced the same per-cell digest list.
    assert len({tuple(column) for column in report.digests.values()}) == 1


def test_oracles_require_two_modes():
    with pytest.raises(ValueError):
        DiffOracle(["table2"], modes=[ExecMode()])
    with pytest.raises(ValueError):
        ScenarioOracle(modes=[ExecMode()])
