"""``macaw-sim diff`` / ``macaw-sim fuzz`` front doors: exit codes + repro."""

from repro.verify.diff.cli import main_diff, main_fuzz
from repro.verify.diff.fuzz import load_repro


def test_diff_unknown_experiment_exits_2(capsys):
    assert main_diff(["no-such-experiment"]) == 2
    assert "no-such-experiment" in capsys.readouterr().err


def test_diff_unknown_queue_exits_2(capsys):
    assert main_diff(["table2", "--queues", "bogus"]) == 2
    assert "bogus" in capsys.readouterr().err


def test_fuzz_bad_seed_exits_2(capsys):
    assert main_fuzz(["--seed", "nope"]) == 2
    assert "from-run-id" in capsys.readouterr().err


def test_fuzz_bad_budget_exits_2(capsys):
    assert main_fuzz(["--budget", "0"]) == 2
    assert "budget" in capsys.readouterr().err


def test_fuzz_clean_budget_smoke(capsys):
    code = main_fuzz(["--budget", "1", "--seed", "3", "--duration", "4",
                      "--quiet"])
    assert code == 0
    assert "passed the mode matrix clean" in capsys.readouterr().out


def test_fuzz_seed_from_run_id(monkeypatch, capsys):
    monkeypatch.setenv("GITHUB_RUN_ID", "123")
    code = main_fuzz(["--budget", "1", "--seed", "from-run-id",
                      "--duration", "4", "--quiet"])
    assert code == 0
    assert "seed 123" in capsys.readouterr().out


def test_diff_cli_localizes_and_writes_repro(tmp_path, perturb_queue, capsys):
    out = tmp_path / "repro.json"
    code = main_diff([
        "table2", "--duration", "6", "--warmup", "1",
        "--queues", f"heap,{perturb_queue}", "--out", str(out),
    ])
    assert code == 1
    captured = capsys.readouterr()
    assert "DIVERGENCE" in captured.err
    assert "first divergent event" in captured.out

    payload = load_repro(str(out))
    assert payload["kind"] == "experiment"
    assert payload["exp_id"] == "table2"
    assert payload["mode_b"]["queue"] == perturb_queue
    assert payload["divergence"]["event_index"] >= 0
    assert payload["divergence"]["record_a"] != payload["divergence"]["record_b"]
