"""Shared fixture: a test-only queue backend that injects a divergence.

``late-shift`` behaves exactly like the stock heap except that every
event scheduled past :data:`PERTURB_TRIGGER_S` lands
:data:`PERTURB_EPS_S` late.  The perturbation is deterministic (a pure
function of the push sequence) and horizon-prefix-stable (it depends
only on the executed prefix, never on the total horizon), so a clean
backend and this one share a byte-identical record prefix and then part
ways at the first post-trigger event — exactly the synthetic divergence
the bisector must localize.
"""

from __future__ import annotations

import pytest

from repro.sim.events import EventHandle
from repro.sim.queues import QUEUE_BACKENDS
from repro.sim.queues.heap import HeapQueue

#: Events scheduled strictly after this simulated time get delayed.
PERTURB_TRIGGER_S = 3.0

#: How late each post-trigger event lands.
PERTURB_EPS_S = 0.25


class LateShiftQueue(HeapQueue):
    """Heap clone that delays every post-trigger event by a fixed eps."""

    name = "late-shift"

    def push(self, time: float, priority: int, seq: int,
             handle: EventHandle) -> None:
        if time > PERTURB_TRIGGER_S:
            time = time + PERTURB_EPS_S
            # The kernel reads the fire time back off the handle, so the
            # entry key and the handle must stay consistent.
            handle.time = time
        super().push(time, priority, seq, handle)


@pytest.fixture
def perturb_queue():
    """Register the perturbing backend for one test; always deregister."""
    QUEUE_BACKENDS["late-shift"] = LateShiftQueue
    try:
        yield "late-shift"
    finally:
        QUEUE_BACKENDS.pop("late-shift", None)
