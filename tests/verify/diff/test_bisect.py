"""Satellite: the bisector pins an injected single-backend divergence.

The ``late-shift`` backend (see conftest) delays every event scheduled
past a trigger time, so a heap run and a late-shift run of the same
scenario share a byte-identical record prefix and then part ways at the
clean run's first post-trigger event.  These tests prove the bisector
localizes exactly that record — against a reference answer computed the
expensive way, from two full traced runs — and that the repro JSON it
emits replays standalone to the same spot.
"""

import pytest

from repro.verify.diff.bisect import locate_first_divergence
from repro.verify.diff.fuzz import (
    FuzzScenario,
    load_repro,
    replay_repro,
    scenario_repro,
    write_repro,
)
from repro.verify.diff.modes import ExecMode
from repro.verify.diff.oracle import ScenarioOracle

from tests.verify.diff.conftest import PERTURB_TRIGGER_S


def _case() -> FuzzScenario:
    return FuzzScenario(
        seed=7, duration=6.0,
        pads=("P1", "P2"),
        flows=(("P1", "B", 32.0), ("B", "P2", 16.0)),
    )


def _oracle(perturb_queue: str) -> ScenarioOracle:
    return ScenarioOracle(modes=[ExecMode(), ExecMode(queue=perturb_queue)])


def test_oracle_flags_the_perturbed_backend(perturb_queue):
    divergence = _oracle(perturb_queue).check(_case())
    assert divergence is not None
    assert divergence.mode_a.queue == "heap"
    assert divergence.mode_b.queue == perturb_queue
    assert divergence.digest_a != divergence.digest_b


def test_bisector_pins_the_exact_first_divergent_record(perturb_queue):
    case = _case()
    oracle = _oracle(perturb_queue)
    clean_mode, shifted_mode = oracle.modes

    # Reference answer: two full traced runs, first index where they part.
    clean = oracle.run_case(case, clean_mode, traced=True)
    shifted = oracle.run_case(case, shifted_mode, traced=True)
    expected = next(
        (i for i in range(min(len(clean.records), len(shifted.records)))
         if clean.records[i] != shifted.records[i]),
        None,
    )
    assert expected is not None

    point = locate_first_divergence(
        oracle.replayer(case, clean_mode),
        oracle.replayer(case, shifted_mode),
        case.duration,
    )
    assert point is not None
    assert point.scenario_index == 0
    assert point.event_index == expected
    assert point.time == clean.records[expected].time
    # Nothing before the trigger may diverge.
    assert point.time > PERTURB_TRIGGER_S
    assert point.record_a != point.record_b
    assert point.digest_a != point.digest_b
    # The search converged onto the divergent event's own time.
    assert 0.0 <= point.horizon - point.time <= 1e-5
    assert 0 < point.probes <= 48


def test_bisector_returns_none_when_runs_agree(perturb_queue):
    oracle = ScenarioOracle(modes=[ExecMode(), ExecMode(queue="wheel")])
    case = _case()
    point = locate_first_divergence(
        oracle.replayer(case, oracle.modes[0]),
        oracle.replayer(case, oracle.modes[1]),
        case.duration,
    )
    assert point is None


def test_repro_json_replays_to_the_same_event(tmp_path, perturb_queue):
    case = _case()
    oracle = _oracle(perturb_queue)
    divergence = oracle.check(case)
    assert divergence is not None
    point = locate_first_divergence(
        oracle.replayer(case, oracle.modes[0]),
        oracle.replayer(case, oracle.modes[1]),
        case.duration,
    )
    assert point is not None

    payload = scenario_repro(case, oracle.profile, divergence, point)
    path = write_repro(str(tmp_path / "repro.json"), payload)
    loaded = load_repro(str(path))
    assert loaded["kind"] == "scenario"
    assert loaded["scenario"]["seed"] == case.seed
    assert loaded["divergence"]["event_index"] == point.event_index

    replayed = replay_repro(loaded)
    assert replayed is not None
    assert replayed.event_index == point.event_index
    assert replayed.time == point.time


def test_load_repro_rejects_unknown_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text('{"schema": 99}', encoding="utf-8")
    with pytest.raises(ValueError, match="schema"):
        load_repro(str(bad))
