"""Metrics instrumentation must be invisible to the event stream.

The observability contract (DESIGN.md §8): a run with probes attached
fires the same events in the same order, draws the same random numbers
and produces byte-identical traces as a run without.  These tests pin
that with the strongest fingerprints the simulator has — ``Trace.digest``
and ``events_fired``.
"""

from repro.topo.builder import ScenarioBuilder


def traced_builder(protocol, seed, metrics):
    builder = ScenarioBuilder(seed=seed, protocol=protocol, trace=True,
                              metrics=metrics)
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.add_pad("P3")
    builder.clique("B", "P1", "P2", "P3")
    builder.udp("P1", "B", 48.0)
    builder.udp("P2", "B", 48.0)
    builder.udp("P3", "B", 24.0)
    return builder


def fingerprint(protocol, seed, metrics):
    scenario = traced_builder(protocol, seed, metrics).build().run(15.0)
    return scenario.sim.trace.digest(), scenario.sim.events_fired


def test_macaw_metrics_on_off_identical_digest_and_event_count():
    off = fingerprint("macaw", seed=7, metrics=False)
    on = fingerprint("macaw", seed=7, metrics=0.5)
    assert off == on


def test_maca_metrics_on_off_identical_digest_and_event_count():
    off = fingerprint("maca", seed=7, metrics=False)
    on = fingerprint("maca", seed=7, metrics=0.5)
    assert off == on


def test_csma_metrics_on_off_identical_digest_and_event_count():
    off = fingerprint("csma", seed=7, metrics=False)
    on = fingerprint("csma", seed=7, metrics=0.5)
    assert off == on


def test_sampling_cadence_does_not_perturb_the_run_either():
    coarse = fingerprint("macaw", seed=11, metrics=5.0)
    fine = fingerprint("macaw", seed=11, metrics=0.05)
    assert coarse == fine


def test_instrumented_run_still_collects_series():
    scenario = traced_builder("macaw", seed=7, metrics=0.5).build().run(15.0)
    assert scenario.metrics is not None
    times, _ = scenario.metrics.series("mac.queue", station="P1")
    assert len(times) == 31  # baseline + 30 deadlines at 0.5 s
