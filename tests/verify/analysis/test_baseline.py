"""Baseline round-trips, fingerprint stability, SARIF output."""

import json
from pathlib import Path

from repro.verify.analysis import (
    Baseline,
    analyze_paths,
    analyze_source,
    apply_baseline,
    get_rules,
)
from repro.verify.analysis.output import render_sarif

DIRTY = "import time\nt = time.time()\n"


def _pairs(source, path="mod.py"):
    result = analyze_source(source, path, get_rules())
    return list(zip(result.findings, result.fingerprints))


# ------------------------------------------------------------- round trip


def test_baseline_round_trip(tmp_path):
    pairs = _pairs(DIRTY)
    assert pairs, "fixture should produce findings"

    target = tmp_path / "baseline.json"
    Baseline.from_findings(pairs).save(target)

    loaded = Baseline.load(target)
    assert len(loaded) == len(pairs)
    delta = apply_baseline(pairs, loaded)
    assert delta.new == [] and len(delta.baselined) == len(pairs)
    assert delta.stale == []


def test_baseline_reports_new_and_stale(tmp_path):
    target = tmp_path / "baseline.json"
    Baseline.from_findings(_pairs(DIRTY)).save(target)
    loaded = Baseline.load(target)

    # The wall-clock call is fixed; a new unused import appears instead.
    delta = apply_baseline(_pairs("import os\n"), loaded)
    assert [f.code for f, _ in delta.new] == ["REPRO105"]
    assert delta.baselined == []
    assert len(delta.stale) == len(loaded)


def test_missing_baseline_file_is_empty(tmp_path):
    loaded = Baseline.load(tmp_path / "absent.json")
    assert len(loaded) == 0


def test_unknown_baseline_format_rejected(tmp_path):
    target = tmp_path / "baseline.json"
    target.write_text(json.dumps({"format": "something-else"}))
    try:
        Baseline.load(target)
    except ValueError as exc:
        assert "format" in str(exc)
    else:
        raise AssertionError("expected ValueError")


# ---------------------------------------------------- fingerprint stability


def test_fingerprints_stable_under_line_renumbering():
    before = _pairs(DIRTY)
    # Prepend lines: positions shift, content does not.
    shifted = _pairs("# header\n\n" + DIRTY)
    assert [fp for _, fp in before] == [fp for _, fp in shifted]
    assert [f.line for f, _ in before] != [f.line for f, _ in shifted]


def test_fingerprints_disambiguate_identical_lines():
    twice = "t = time.time()\nt = time.time()\n"
    pairs = _pairs("import time\n" + twice)
    fps = [fp for _, fp in pairs]
    assert len(fps) == len(set(fps)), "duplicate lines need distinct prints"


def test_committed_baseline_matches_current_tree():
    repo = Path(__file__).resolve().parents[3]
    committed = Baseline.load(repo / "benchmarks" / "ANALYSIS_baseline.json")
    run = analyze_paths([repo / "src" / "repro"])
    delta = apply_baseline(run.fingerprints, committed)
    assert delta.new == [], "\n".join(f.render() for f, _ in delta.new)
    assert delta.stale == [], "stale baseline entries; run --update-baseline"


# ------------------------------------------------------------------- SARIF


def test_sarif_log_shape():
    pairs = _pairs(DIRTY)
    log = json.loads(render_sarif(pairs, get_rules()))
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    (run,) = log["runs"]

    driver = run["tool"]["driver"]
    assert driver["name"] == "repro-analysis"
    rule_ids = {r["id"] for r in driver["rules"]}
    assert {"REPRO101", "REPRO110", "REPRO113"} <= rule_ids
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]

    assert len(run["results"]) == len(pairs)
    for result, (finding, fingerprint) in zip(run["results"], pairs):
        assert result["ruleId"] == finding.code
        assert result["ruleId"] in rule_ids
        assert result["message"]["text"] == finding.message
        (loc,) = result["locations"]
        region = loc["physicalLocation"]["region"]
        assert region["startLine"] == finding.line
        assert region["startColumn"] == finding.col + 1
        assert result["partialFingerprints"]["reproAnalysis/v1"] == fingerprint


def test_sarif_baseline_states():
    pairs = _pairs(DIRTY)
    new, old = pairs[:1], pairs[1:]
    log = json.loads(render_sarif(new, get_rules(), baselined=old))
    states = [r["baselineState"] for r in log["runs"][0]["results"]]
    assert states == ["new"] + ["unchanged"] * len(old)
