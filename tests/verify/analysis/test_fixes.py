"""``--fix``: unused-import removal, stale-pragma stripping, idempotency."""

from pathlib import Path

from repro.verify.analysis import analyze_paths, collect_files
from repro.verify.analysis.fixes import fix_paths


def _fix_tree(root):
    run = analyze_paths([root])
    files = collect_files([root])
    return fix_paths(files, run.files, run.index)


def test_wholly_unused_import_statement_deleted(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import os\nimport sys\nx = sys.argv\n")
    outcomes = _fix_tree(tmp_path)
    assert outcomes[0].changed and outcomes[0].removed_imports == 1
    assert target.read_text() == "import sys\nx = sys.argv\n"


def test_partially_unused_from_import_rewritten(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "from collections import deque, OrderedDict\n"
        "q = deque()\n"
    )
    _fix_tree(tmp_path)
    assert target.read_text() == "from collections import deque\nq = deque()\n"


def test_multiline_partial_import_left_alone(tmp_path):
    source = (
        "from collections import (\n"
        "    deque,\n"
        "    OrderedDict,\n"
        ")\n"
        "q = deque()\n"
    )
    target = tmp_path / "mod.py"
    target.write_text(source)
    outcomes = _fix_tree(tmp_path)
    assert not outcomes[0].changed
    assert target.read_text() == source  # a fixer must never guess


def test_import_line_with_comment_left_alone(tmp_path):
    source = "from os import sep, altsep  # platform separators\nx = sep\n"
    target = tmp_path / "mod.py"
    target.write_text(source)
    _fix_tree(tmp_path)
    assert target.read_text() == source


def test_stale_pragma_stripped(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "x = 1  # repro-lint: allow=REPRO102\n"
        "y = 2\n"
    )
    outcomes = _fix_tree(tmp_path)
    assert outcomes[0].changed and outcomes[0].removed_pragmas == 1
    assert target.read_text() == "x = 1\ny = 2\n"


def test_live_pragma_kept(tmp_path):
    source = (
        "import time\n"
        "t = time.time()  # repro-lint: allow=REPRO102\n"
    )
    target = tmp_path / "mod.py"
    target.write_text(source)
    outcomes = _fix_tree(tmp_path)
    assert not outcomes[0].changed
    assert target.read_text() == source


def test_comment_only_pragma_line_deleted(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "# repro-lint: allow=REPRO101\n"
        "x = 1\n"
    )
    _fix_tree(tmp_path)
    assert target.read_text() == "x = 1\n"


def test_fix_is_idempotent(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        "import os\n"
        "from collections import deque, OrderedDict\n"
        "q = deque()  # repro-lint: allow=REPRO102\n"
        "y = 2  # repro-lint: allow=all\n"
    )
    first = _fix_tree(tmp_path)
    assert first[0].changed
    after_first = target.read_text()

    second = _fix_tree(tmp_path)
    assert not second[0].changed
    assert target.read_text() == after_first


def test_fixed_file_parses_and_is_cleaner(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("import os\nimport sys\n")
    _fix_tree(tmp_path)
    run = analyze_paths([tmp_path])
    assert run.findings == []
    assert target.read_text() == ""


def test_repro_tree_has_nothing_to_fix():
    repo = Path(__file__).resolve().parents[3]
    src = repo / "src" / "repro"
    run = analyze_paths([src])
    files = collect_files([src])
    # Plan only — never write into the source tree from a test.
    from repro.verify.analysis.fixes import plan_fixes

    for path, result in zip(files, run.files):
        new_source, _, _ = plan_fixes(
            path.read_text(encoding="utf-8"), result
        )
        assert new_source is None, f"unexpected fix available in {path}"
