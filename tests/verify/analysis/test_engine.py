"""Engine behaviour: shim equivalence, parallel parity, caching, REPRO105."""

import json
from pathlib import Path

from repro.verify.analysis import (
    LEGACY_RULE_CODES,
    AnalysisCache,
    analyze_paths,
    analyze_source,
    get_rules,
)
from repro.verify.lint import lint_paths, lint_source

SRC = Path(__file__).resolve().parents[3] / "src" / "repro"

FIXTURES = {
    "clean.py": "def f(x):\n    return x + 1\n",
    "dirty.py": (
        "import random\n"
        "import time\n"
        "def f(x=[]):\n"
        "    t = time.time()\n"
        "    return random.random() + t\n"
    ),
    "pragma.py": (
        "import time\n"
        "t = time.time()  # repro-lint: allow=REPRO102\n"
    ),
    "counter.py": (
        "counts = {}\n"
        "counts[k] = counts.get(k, 0) + 1\n"
    ),
}


def _write_fixtures(tmp_path):
    for name, source in FIXTURES.items():
        (tmp_path / name).write_text(source)
    return tmp_path


# ----------------------------------------------------- compat equivalence


def test_shim_matches_engine_on_fixtures(tmp_path):
    """The legacy entry points and the engine agree byte-for-byte."""
    root = _write_fixtures(tmp_path)
    legacy = lint_paths([root])
    rules = get_rules(list(LEGACY_RULE_CODES))
    engine = analyze_paths([root], rules=rules).findings
    assert [f.render() for f in legacy] == [f.render() for f in engine]


def test_shim_single_file_matches_engine():
    for source in FIXTURES.values():
        legacy = lint_source(source, "model.py")
        rules = get_rules(list(LEGACY_RULE_CODES))
        engine = analyze_source(source, "model.py", rules).findings
        assert [f.render() for f in legacy] == [f.render() for f in engine]


def test_repro_tree_clean_under_full_rule_set():
    run = analyze_paths([SRC])
    assert run.findings == [], "\n".join(f.render() for f in run.findings)


def test_legacy_rule_subset_is_exactly_101_to_108():
    codes = [r.code for r in get_rules(list(LEGACY_RULE_CODES))]
    assert codes == sorted(LEGACY_RULE_CODES)


# ------------------------------------------------------- parallel parity


def test_jobs_match_serial_byte_for_byte(tmp_path):
    root = _write_fixtures(tmp_path)
    serial = analyze_paths([root], jobs=1)
    fanned = analyze_paths([root], jobs=4)
    assert [f.render() for f in serial.findings] == \
        [f.render() for f in fanned.findings]
    assert [fp for _, fp in serial.fingerprints] == \
        [fp for _, fp in fanned.fingerprints]


def test_jobs_match_serial_on_repro_tree():
    serial = analyze_paths([SRC], jobs=1)
    fanned = analyze_paths([SRC], jobs=4)
    assert [f.render() for f in serial.findings] == \
        [f.render() for f in fanned.findings]


# --------------------------------------------------------------- caching


def test_cache_round_trip(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    _write_fixtures(root)
    cache_dir = tmp_path / "cache"

    cold = AnalysisCache(cache_dir)
    first = analyze_paths([root], cache=cold)
    assert cold.hits == 0 and cold.misses == len(first.files)

    warm = AnalysisCache(cache_dir)
    second = analyze_paths([root], cache=warm)
    assert warm.misses == 0 and warm.hits == len(second.files)
    assert [f.render() for f in first.findings] == \
        [f.render() for f in second.findings]
    assert all(result.from_cache for result in second.files)


def test_cache_invalidated_by_content_change(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    target = root / "mod.py"
    target.write_text("import os\n")
    cache_dir = tmp_path / "cache"

    analyze_paths([root], cache=AnalysisCache(cache_dir))
    target.write_text("import os\nx = os.sep\n")
    warm = AnalysisCache(cache_dir)
    run = analyze_paths([root], cache=warm)
    assert warm.hits == 0  # content hash changed -> stale key
    assert run.findings == []


def test_cache_ignores_rule_selection_crossover(tmp_path):
    root = tmp_path / "tree"
    root.mkdir()
    (root / "mod.py").write_text("import time\nt = time.time()\n")
    cache_dir = tmp_path / "cache"

    full = analyze_paths([root], cache=AnalysisCache(cache_dir))
    assert [f.code for f in full.findings] == ["REPRO102"]
    subset = analyze_paths(
        [root], rules=get_rules(["REPRO101"]),
        cache=AnalysisCache(cache_dir),
    )
    assert subset.findings == []  # different signature -> different key


# ------------------------------------------- REPRO105 re-export awareness


def test_init_all_reexport_not_flagged(tmp_path):
    root = tmp_path / "repro"
    pkg = root / "mac"
    pkg.mkdir(parents=True)
    (pkg / "__init__.py").write_text(
        "from repro.mac.maca import MacaMac\n__all__ = ['MacaMac']\n"
    )
    (pkg / "maca.py").write_text(
        "from repro.mac.frames import Frame\n"
        "class MacaMac:\n"
        "    kind = Frame\n"
    )
    # `helper` is imported by maca.py's sibling but NOT re-exported.
    (pkg / "frames.py").write_text(
        "from repro.mac.helper import pack\n"
        "class Frame:\n"
        "    pass\n"
    )
    (pkg / "helper.py").write_text("def pack():\n    return b''\n")
    run = analyze_paths([root], rules=get_rules(["REPRO105"]))
    flagged = {(Path(f.path).name, f.code) for f in run.findings}
    assert ("frames.py", "REPRO105") in flagged  # unused, not re-exported
    assert ("maca.py", "REPRO105") not in flagged  # __all__ re-export


def test_redundant_alias_reexport_idiom_not_flagged():
    src = "from repro.mac.maca import MacaMac as MacaMac\n"
    result = analyze_source(src, "mod.py", get_rules(["REPRO105"]))
    assert result.findings == []
    plain = "from repro.mac.maca import MacaMac\n"
    result = analyze_source(plain, "mod.py", get_rules(["REPRO105"]))
    assert [f.code for f in result.findings] == ["REPRO105"]


# ------------------------------------------------------------ plumbing


def test_suppressed_findings_and_pragma_lines_tracked():
    src = (
        "import time\n"
        "t = time.time()  # repro-lint: allow=REPRO102\n"
        "x = 1  # repro-lint: allow=REPRO101\n"
    )
    result = analyze_source(src, "mod.py", get_rules())
    assert [f.code for f in result.suppressed] == ["REPRO102"]
    assert result.pragma_lines == [2, 3]


def test_file_result_blob_round_trip(tmp_path):
    result = analyze_source("import os\n", "mod.py", get_rules())
    blob = json.loads(json.dumps(result.to_blob()))
    from repro.verify.analysis import FileResult

    back = FileResult.from_blob(blob)
    assert [f.render() for f in back.findings] == \
        [f.render() for f in result.findings]
    assert back.fingerprints == result.fingerprints
    assert back.from_cache
