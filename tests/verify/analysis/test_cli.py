"""The analyze CLI: exit codes, formats, baseline flow, dispatch."""

import json
import subprocess
import sys
from pathlib import Path

from repro.verify.analysis.cli import main

REPO = Path(__file__).resolve().parents[3]
SRC = REPO / "src" / "repro"

DIRTY = "import time\nt = time.time()\n"


def test_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)

    assert main([str(clean), "--no-baseline"]) == 0
    assert main([str(dirty), "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert "REPRO102" in out and "1 finding(s)" in out
    assert main([]) == 2
    assert main([str(tmp_path / "absent.py")]) == 2
    assert main([str(clean), "--rules", "REPRO999"]) == 2
    assert main([str(clean), "--jobs", "0"]) == 2


def test_rule_selection(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    assert main([str(dirty), "--rules", "REPRO101", "--no-baseline"]) == 0
    assert main([str(dirty), "--rules", "REPRO102", "--no-baseline"]) == 1


def test_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("REPRO101", "REPRO108", "REPRO110", "REPRO113"):
        assert code in out


def test_json_format(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    assert main([str(dirty), "--format", "json", "--no-baseline"]) == 1
    blob = json.loads(capsys.readouterr().out)
    assert blob["tool"] == "repro-analysis"
    assert [f["code"] for f in blob["findings"]] == ["REPRO102"]
    assert all(f["fingerprint"] for f in blob["findings"])


def test_sarif_format_to_file(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    out_file = tmp_path / "report.sarif"
    code = main([str(dirty), "--format", "sarif",
                 "--output", str(out_file), "--no-baseline"])
    assert code == 1
    log = json.loads(out_file.read_text())
    assert log["version"] == "2.1.0"
    assert log["runs"][0]["results"]


def test_update_baseline_then_clean_then_stale(tmp_path, capsys):
    dirty = tmp_path / "dirty.py"
    dirty.write_text(DIRTY)
    baseline = tmp_path / "baseline.json"

    # Accept the current debt: subsequent runs are clean.
    assert main([str(dirty), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert main([str(dirty), "--baseline", str(baseline)]) == 0
    err = capsys.readouterr().err
    assert "baselined finding(s) hidden" in err

    # New findings are NOT masked by the baseline.
    dirty.write_text(DIRTY + "import os\n")
    assert main([str(dirty), "--baseline", str(baseline)]) == 1

    # Paying the debt leaves a stale entry, pruned by --update-baseline.
    dirty.write_text("x = 1\n")
    assert main([str(dirty), "--baseline", str(baseline)]) == 0
    assert "stale baseline" in capsys.readouterr().err
    assert main([str(dirty), "--baseline", str(baseline),
                 "--update-baseline"]) == 0
    assert json.loads(baseline.read_text())["findings"] == {}


def test_fix_flag_rewrites_and_reports_clean(tmp_path, capsys):
    target = tmp_path / "mod.py"
    target.write_text("import os\nimport sys\nx = sys.argv\n")
    assert main([str(tmp_path), "--fix", "--no-baseline"]) == 0
    assert target.read_text() == "import sys\nx = sys.argv\n"
    assert "fixed" in capsys.readouterr().out


def test_jobs_flag_matches_serial(tmp_path, capsys):
    for name in ("a.py", "b.py", "c.py"):
        (tmp_path / name).write_text(DIRTY)
    assert main([str(tmp_path), "--no-baseline"]) == 1
    serial_out = capsys.readouterr().out
    assert main([str(tmp_path), "--jobs", "4", "--no-baseline"]) == 1
    assert capsys.readouterr().out == serial_out


def test_module_entrypoint_runs_clean_on_tree():
    result = subprocess.run(
        [sys.executable, "-m", "repro.verify.analysis", str(SRC)],
        capture_output=True, text=True, cwd=str(REPO),
        env={"PYTHONPATH": str(SRC.parent), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_macaw_sim_analyze_dispatch():
    from repro.cli import main as macaw_main

    assert macaw_main(["analyze", str(SRC), "--no-baseline"]) == 0
