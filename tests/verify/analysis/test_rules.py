"""Per-rule fixtures: one positive and one negative case per rule.

REPRO101-108 are exercised in depth by ``tests/verify/test_lint.py``
(against the compat shim); here each gets a smoke pair to pin the
plugin port, and the new REPRO110-113 families get full coverage.
"""

from pathlib import Path

from repro.verify.analysis import analyze_paths, analyze_source, get_rules


def codes(source, path="model.py", project=None):
    result = analyze_source(source, path, get_rules(), project)
    return [f.code for f in result.findings]


def tree_codes(tmp_path, files):
    """Write ``files`` under a fake repro tree and run the full engine."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(source)
    run = analyze_paths([root])
    return [(str(Path(f.path).relative_to(root)), f.code)
            for f in run.findings]


# ------------------------------------------------- REPRO101-108 smoke pairs


def test_repro101_pair():
    assert "REPRO101" in codes("import random\nrandom.seed(1)\n")
    assert "REPRO101" not in codes("import numpy\nx = numpy.zeros(3)\n")


def test_repro102_pair():
    assert "REPRO102" in codes("import time\nt = time.time()\n")
    assert "REPRO102" not in codes("import time\nt = time.sleep\n")


def test_repro103_pair():
    assert "REPRO103" in codes("def f(x=[]):\n    pass\n")
    assert "REPRO103" not in codes("def f(x=None):\n    pass\n")


def test_repro104_pair():
    assert "REPRO104" in codes("sim._now = 5.0\n")
    assert codes("self._now = 0.0\n", path="src/repro/sim/kernel.py") == []


def test_repro105_pair():
    assert "REPRO105" in codes("import os\n")
    assert "REPRO105" not in codes("import os\nx = os.sep\n")


def test_repro106_pair():
    bad = "def f(self):\n    return self.m._audible(a, b)\n"
    assert "REPRO106" in codes(bad, path="src/repro/mac/macaw.py")
    assert codes(bad, path="src/repro/phy/medium.py") == []


def test_repro107_pair():
    assert "REPRO107" in codes('print("x")\n', path="repro/mac/maca.py")
    assert codes('print("x")\n', path="repro/cli.py") == []


def test_repro108_pair():
    bad = 'rng = sim.streams.get("mac:P1")\n'
    assert "REPRO108" in codes(bad, path="repro/fault/inject.py")
    ok = 'rng = sim.streams.get("fault:burst:0")\n'
    assert "REPRO108" not in codes(ok, path="repro/fault/inject.py")


# ------------------------------------------------------ REPRO110 (layering)


def test_repro110_upward_import_flagged():
    src = "from repro.topo.builder import ScenarioBuilder\nx = ScenarioBuilder\n"
    assert "REPRO110" in codes(src, path="src/repro/mac/maca.py")


def test_repro110_downward_import_allowed():
    src = "from repro.sim.kernel import Simulator\nx = Simulator\n"
    assert "REPRO110" not in codes(src, path="src/repro/mac/maca.py")


def test_repro110_mac_core_are_one_layer():
    up = "from repro.core.macaw import MacawEngine\nx = MacawEngine\n"
    down = "from repro.mac.base import MacBase\nx = MacBase\n"
    assert "REPRO110" not in codes(up, path="src/repro/mac/maca.py")
    assert "REPRO110" not in codes(down, path="src/repro/core/macaw.py")


def test_repro110_service_layer_reach_in_flagged():
    src = "from repro.obs.registry import MetricsRegistry\nx = MetricsRegistry\n"
    assert "REPRO110" in codes(src, path="src/repro/mac/maca.py")


def test_repro110_declared_hook_points_exempt():
    src = "from repro.obs.registry import MetricsRegistry\nx = MetricsRegistry\n"
    assert "REPRO110" not in codes(src, path="src/repro/topo/builder.py")
    assert "REPRO110" not in codes(src, path="src/repro/core/config.py")


def test_repro110_type_checking_imports_exempt():
    src = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.topo.builder import ScenarioBuilder\n"
        "def f(b: 'ScenarioBuilder') -> None:\n"
        "    pass\n"
    )
    assert "REPRO110" not in codes(src, path="src/repro/mac/maca.py")


def test_repro110_relative_imports_resolved():
    src = "from ..topo import builder\nx = builder\n"
    assert "REPRO110" in codes(src, path="src/repro/mac/maca.py")
    sibling = "from . import frames\nx = frames\n"
    assert "REPRO110" not in codes(sibling, path="src/repro/mac/maca.py")


def test_repro110_cross_layer_private_attr(tmp_path):
    found = tree_codes(tmp_path, {
        "phy/medium.py": (
            "class Medium:\n"
            "    def __init__(self):\n"
            "        self._link_cache = {}\n"
        ),
        "mac/maca.py": (
            "def peek(medium):\n"
            "    return medium._link_cache\n"
        ),
    })
    assert ("mac/maca.py", "REPRO110") in found


def test_repro110_same_layer_private_attr_ok(tmp_path):
    found = tree_codes(tmp_path, {
        "mac/base.py": (
            "class MacBase:\n"
            "    def __init__(self):\n"
            "        self._state = 0\n"
        ),
        "core/macaw.py": (  # mac/core are one layer group
            "def peek(mac):\n"
            "    return mac._state\n"
        ),
    })
    assert ("core/macaw.py", "REPRO110") not in found


def test_repro110_audible_left_to_repro106(tmp_path):
    found = tree_codes(tmp_path, {
        "phy/medium.py": (
            "class Medium:\n"
            "    def __init__(self):\n"
            "        self._audible = {}\n"
        ),
        "mac/maca.py": (
            "def peek(medium):\n"
            "    return medium._audible\n"
        ),
    })
    assert ("mac/maca.py", "REPRO106") in found
    assert ("mac/maca.py", "REPRO110") not in found


# ------------------------------------------------ REPRO111 (frozen-mutation)


def test_repro111_object_setattr_outside_init_flagged():
    src = (
        "class Thing:\n"
        "    def poke(self):\n"
        "        object.__setattr__(self, 'a', 1)\n"
    )
    assert "REPRO111" in codes(src, path="src/repro/net/transport.py")


def test_repro111_object_setattr_in_post_init_allowed():
    src = (
        "class Thing:\n"
        "    def __post_init__(self):\n"
        "        object.__setattr__(self, 'a', 1)\n"
    )
    assert "REPRO111" not in codes(src, path="src/repro/net/transport.py")


def test_repro111_direct_write_on_frozen_dataclass():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass(frozen=True)\n"
        "class P:\n"
        "    x: int\n"
        "def f():\n"
        "    p = P(1)\n"
        "    p.x = 2\n"
    )
    assert "REPRO111" in codes(src, path="src/repro/net/transport.py")


def test_repro111_write_on_unfrozen_dataclass_allowed():
    src = (
        "from dataclasses import dataclass\n"
        "@dataclass\n"
        "class P:\n"
        "    x: int\n"
        "def f():\n"
        "    p = P(1)\n"
        "    p.x = 2\n"
    )
    assert "REPRO111" not in codes(src, path="src/repro/net/transport.py")


def test_repro111_cross_module_frozen_class(tmp_path):
    found = tree_codes(tmp_path, {
        "core/config.py": (
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class RunProfile:\n"
            "    seed: int\n"
        ),
        "mac/maca.py": (
            "from repro.core.config import RunProfile\n"
            "def f():\n"
            "    p = RunProfile(1)\n"
            "    p.seed = 2\n"
        ),
    })
    assert ("mac/maca.py", "REPRO111") in found


# ------------------------------------------ REPRO112 (order-sensitive sets)


def test_repro112_sum_over_set_flagged():
    assert "REPRO112" in codes("def f():\n    return sum({1.0, 2.0})\n")


def test_repro112_accumulation_over_set_flagged():
    src = (
        "def f(xs):\n"
        "    total = 0.0\n"
        "    for x in set(xs):\n"
        "        total += x\n"
    )
    assert "REPRO112" in codes(src)


def test_repro112_scheduling_over_set_flagged():
    src = (
        "def f(sim, stations):\n"
        "    for s in set(stations):\n"
        "        sim.schedule(0.0, s.wake)\n"
    )
    assert "REPRO112" in codes(src)


def test_repro112_sorted_set_is_the_sanctioned_fix():
    src = (
        "def f(xs):\n"
        "    total = 0.0\n"
        "    for x in sorted(set(xs)):\n"
        "        total += x\n"
        "    return total, sum(sorted({1.0, 2.0}))\n"
    )
    assert "REPRO112" not in codes(src)


def test_repro112_list_iteration_allowed():
    src = (
        "def f(xs):\n"
        "    total = 0.0\n"
        "    for x in xs:\n"
        "        total += x\n"
    )
    assert "REPRO112" not in codes(src)


def test_repro112_tracks_set_variables():
    src = (
        "def f(xs, sim):\n"
        "    pending = set(xs)\n"
        "    for x in pending:\n"
        "        sim.call_soon(x.fire)\n"
    )
    assert "REPRO112" in codes(src)


# -------------------------------------- REPRO113 (callback discipline)


def test_repro113_callback_calling_run_flagged():
    src = (
        "def cb(sim):\n"
        "    sim.run()\n"
        "def go(sim):\n"
        "    sim.schedule(1.0, cb)\n"
    )
    assert "REPRO113" in codes(src)


def test_repro113_constant_absolute_schedule_flagged():
    src = (
        "def cb(sim):\n"
        "    sim.at(5.0, cb)\n"
        "def go(sim):\n"
        "    sim.call_soon(cb)\n"
    )
    assert "REPRO113" in codes(src)


def test_repro113_now_derived_schedule_allowed():
    src = (
        "def cb(sim):\n"
        "    sim.at(sim.now + 1.0, cb)\n"
        "    sim.schedule(2.0, cb)\n"
        "def go(sim):\n"
        "    sim.schedule(1.0, cb)\n"
    )
    assert "REPRO113" not in codes(src)


def test_repro113_non_callback_run_allowed():
    src = (
        "def drive(sim):\n"
        "    sim.run()\n"
    )
    assert "REPRO113" not in codes(src)


def test_repro113_callback_rebinding_clock_flagged():
    src = (
        "def cb(sim):\n"
        "    sim._now = 0.0\n"
        "def go(sim):\n"
        "    sim.schedule(1.0, cb)\n"
    )
    found = codes(src)
    assert "REPRO113" in found
    assert "REPRO104" in found  # the flat rule still fires too


def test_repro113_kernel_module_exempt():
    src = (
        "def cb(self):\n"
        "    self._now = 1.0\n"
    )
    assert "REPRO113" not in codes(src, path="src/repro/sim/kernel.py")


# -------------------------------- REPRO114 (pickle confined to snapshot)


def test_repro114_pickle_import_flagged():
    src = "import pickle\nx = pickle.dumps\n"
    assert "REPRO114" in codes(src, path="src/repro/runner/cache.py")


def test_repro114_copyreg_flagged():
    src = "import copyreg\nx = copyreg.pickle\n"
    assert "REPRO114" in codes(src, path="src/repro/mac/macaw.py")


def test_repro114_from_import_flagged():
    src = "from pickle import dumps\nx = dumps\n"
    assert "REPRO114" in codes(src, path="src/repro/net/flows.py")


def test_repro114_snapshot_package_exempt():
    src = "import pickle\nx = pickle.dumps\n"
    assert "REPRO114" not in codes(src, path="src/repro/snapshot/codec.py")
    assert "REPRO114" not in codes(src, path="snapshot/codec.py")


def test_repro114_type_checking_exempt():
    src = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    import pickle\n"
        "def f(x: 'pickle.Pickler') -> None:\n"
        "    pass\n"
    )
    assert "REPRO114" not in codes(src, path="src/repro/runner/cache.py")


def test_repro114_allow_pragma():
    src = "import pickle  # repro-lint: allow=REPRO114 (plain records)\nx = pickle.dumps\n"
    assert "REPRO114" not in codes(src, path="src/repro/runner/cache.py")


def test_repro114_unrelated_modules_clean():
    src = "import json\nx = json.dumps\n"
    assert "REPRO114" not in codes(src, path="src/repro/runner/cache.py")


# ------------------------------------------------------------------ REPRO116


def test_repro116_fuzz_streams_flagged_outside_diff():
    bad = "def draw(streams):\n    return streams.get('fuzz:topology')\n"
    assert "REPRO116" in codes(bad, path="repro/mac/macaw.py")
    assert "REPRO116" in codes(bad, path="repro/fault/inject.py")
    fstring = ("def draw(streams, i):\n"
               "    return streams.get(f'fuzz:{i}:traffic')\n")
    assert "REPRO116" in codes(fstring, path="repro/topo/builder.py")


def test_repro116_diff_subtree_and_other_namespaces_clean():
    fuzzy = "def draw(streams):\n    return streams.get('fuzz:topology')\n"
    assert "REPRO116" not in codes(fuzzy, path="repro/verify/diff/fuzz.py")
    other = "def draw(streams):\n    return streams.get('mac:P1')\n"
    assert "REPRO116" not in codes(other, path="repro/mac/macaw.py")
    dynamic = "def draw(streams, name):\n    return streams.get(name)\n"
    assert "REPRO116" not in codes(dynamic, path="repro/mac/macaw.py")


def test_repro110_diff_subtree_may_import_the_whole_tree():
    src = ("from repro.runner.parallel import run_cells\n"
           "from repro.service.job import profile_to_dict\n"
           "from repro.snapshot import Snapshot\n"
           "x = (run_cells, profile_to_dict, Snapshot)\n")
    assert "REPRO110" not in codes(src, path="repro/verify/diff/oracle.py")
    # The rest of verify keeps its narrow surface.
    outside = ("from repro.runner.parallel import run_cells\n"
               "x = run_cells\n")
    assert "REPRO110" in codes(outside, path="repro/verify/conformance.py")
