"""Heap-vs-wheel backend parity: byte-identical runs on every seed.

The event-queue backend is a pure performance knob (DESIGN.md §7): both
backends deliver events in ascending ``(time, priority, seq)``, consume
exactly one sequence number per (re)arm, and therefore produce identical
``events_fired`` and byte-identical ``Trace.digest()`` fingerprints.
These tests pin that contract across full protocol scenarios, a
fault-injected run, and a randomized schedule/cancel/reschedule storm on
the bare kernel.
"""

import random

import pytest

from repro.core.config import RunProfile
from repro.fault import FaultSchedule, GilbertElliott, LinkFlapProcess
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer
from repro.topo.builder import ScenarioBuilder

#: Short horizon — parity, not accuracy, is under test.
DURATION = 20.0

BACKENDS = ["heap", "wheel", "wheel:0.0005"]


def fingerprint(protocol, queue, seed=9, faults=None):
    profile = RunProfile(trace=True, queue=queue, faults=faults)
    builder = ScenarioBuilder(seed=seed, protocol=protocol, profile=profile)
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.add_pad("P3")
    builder.clique("B", "P1", "P2", "P3")
    builder.udp("P1", "B", 48.0)
    builder.udp("P2", "B", 48.0)
    builder.udp("P3", "B", 24.0)
    scenario = builder.build().run(DURATION)
    return scenario.sim.trace.digest(), scenario.sim.events_fired


@pytest.mark.parametrize("protocol", ["macaw", "maca", "csma"])
def test_scenario_digest_and_event_count_identical_across_backends(protocol):
    reference = fingerprint(protocol, "heap")
    for queue in BACKENDS[1:]:
        assert fingerprint(protocol, queue) == reference, queue


def test_multiple_seeds_agree_on_the_contended_macaw_cell():
    for seed in (0, 1, 17):
        assert (
            fingerprint("macaw", "wheel", seed=seed)
            == fingerprint("macaw", "heap", seed=seed)
        ), seed


def test_fault_schedule_runs_identically_on_both_backends():
    chaos = FaultSchedule((
        GilbertElliott(mean_good_s=4.0, mean_bad_s=2.0, error_rate=0.4),
        LinkFlapProcess(mean_up_s=6.0, mean_down_s=2.0),
    ))
    assert (
        fingerprint("macaw", "wheel", faults=chaos)
        == fingerprint("macaw", "heap", faults=chaos)
    )


def _kernel_storm(queue, seed):
    """Randomized schedule/cancel/rearm workload on the bare kernel.

    The RNG is seeded outside the simulator and every random draw happens
    in the same order regardless of backend, so the generated operation
    stream — including Timer rearms, which exercise the wheel's in-place
    reschedule against the heap's cancel-then-push — is identical; only
    the queue implementation differs.
    """
    sim = Simulator(seed=0, queue=queue)
    rng = random.Random(seed)
    log = []
    handles = []

    def fire(tag):
        log.append((round(sim.now, 12), tag))
        if rng.random() < 0.3:
            handles.append(sim.schedule(rng.random(), fire, tag + 10_000))

    timers = [
        Timer(sim, (lambda i=i: log.append(("timer", i, round(sim.now, 12)))))
        for i in range(40)
    ]
    for step in range(400):
        roll = rng.random()
        if roll < 0.35:
            handles.append(sim.schedule(rng.random() * 4.0, fire, step))
        elif roll < 0.75:
            # Rearm a timer — possibly already running (reschedule path),
            # possibly idle (fresh, pooled arming).
            rng.choice(timers).start(rng.random() * 6.0)
        elif roll < 0.9 and handles:
            handles[rng.randrange(len(handles))].cancel()
        else:
            rng.choice(timers).stop()
        if step % 50 == 49:
            sim.run(until=sim.now + rng.random() * 0.5)
    sim.run(until=30.0)
    return log, sim.events_fired, sim.pending_count()


@pytest.mark.parametrize("seed", [2, 5, 23])
def test_randomized_storm_fires_identically_on_every_backend(seed):
    reference = _kernel_storm("heap", seed)
    assert reference[0], "storm produced no events — workload is broken"
    for queue in BACKENDS[1:]:
        assert _kernel_storm(queue, seed) == reference, queue
