"""The determinism lint pass: each rule, the pragma, and the clean tree."""

import subprocess
import sys
from pathlib import Path

from repro.verify.lint import lint_paths, lint_source, main

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def codes(source, path="model.py"):
    return [f.code for f in lint_source(source, path)]


# ------------------------------------------------------------------ REPRO101


def test_random_import_flagged():
    assert "REPRO101" in codes("import random\nrandom.seed(1)\n")


def test_random_from_import_flagged():
    assert "REPRO101" in codes("from random import choice\n")


def test_random_attribute_use_flagged():
    found = codes("import random\nx = random.random()\n")
    assert found.count("REPRO101") == 2  # the import and the call site


def test_numpy_random_outside_rng_module_flagged():
    src = "import numpy as np\nrng = np.random.default_rng(0)\n"
    assert "REPRO101" in codes(src)
    # The stream registry itself is the one legitimate call site.
    assert "REPRO101" not in codes(src, path="src/repro/sim/rng.py")


# ------------------------------------------------------------------ REPRO102


def test_wall_clock_calls_flagged():
    assert "REPRO102" in codes("import time\nt = time.time()\n")
    assert "REPRO102" in codes("import time\nt = time.perf_counter()\n")
    assert "REPRO102" in codes(
        "import datetime\nt = datetime.datetime.now()\n"
    )
    assert "REPRO102" in codes(
        "from datetime import datetime\nt = datetime.now()\n"
    )
    assert "REPRO102" in codes(
        "from time import perf_counter\nt = perf_counter()\n"
    )


def test_non_clock_time_use_not_flagged():
    assert codes("import time\nt = time.sleep\n") == []


def test_pragma_waives_named_rule():
    src = "import time\nt = time.time()  # repro-lint: allow=REPRO102\n"
    assert codes(src) == []
    wrong = "import time\nt = time.time()  # repro-lint: allow=REPRO101\n"
    assert "REPRO102" in codes(wrong)


# ------------------------------------------------------------------ REPRO103


def test_mutable_default_literal_flagged():
    assert "REPRO103" in codes("def f(x=[]):\n    pass\n")
    assert "REPRO103" in codes("def f(x={}):\n    pass\n")
    assert "REPRO103" in codes("def f(*, x=set()):\n    pass\n")
    assert "REPRO103" in codes("f = lambda x=[]: x\n")


def test_immutable_defaults_not_flagged():
    assert codes("def f(x=(), y=None, z=0):\n    pass\n") == []
    # Frozen-config constructor defaults are fine: only the known mutable
    # builtins are banned.
    assert codes("def f(x=Config()):\n    pass\n") == []


# ------------------------------------------------------------------ REPRO104


def test_clock_mutation_flagged_outside_kernel():
    assert "REPRO104" in codes("sim._now = 5.0\n")
    assert "REPRO104" in codes("self.sim._now += 1.0\n")
    assert codes("self._now = 0.0\n", path="src/repro/sim/kernel.py") == []


# ------------------------------------------------------------------ REPRO105


def test_unused_import_flagged():
    assert "REPRO105" in codes("import os\n")
    assert "REPRO105" in codes("from typing import List\n")


def test_used_and_reexported_imports_not_flagged():
    assert codes("import os\nx = os.sep\n") == []  # REPRO107 bans print()
    assert codes('from repro.mac.maca import MacaMac\n__all__ = ["MacaMac"]\n') == []
    assert codes('from typing import List\nx: "List[int]" = []\n') == []


def test_init_modules_exempt_from_unused_import():
    assert codes("from os import sep\n", path="pkg/__init__.py") == []


# ------------------------------------------------------------------ REPRO106


def test_private_audible_access_flagged_outside_phy():
    src = "def defer(self):\n    return self.medium._audible(a, b)\n"
    assert "REPRO106" in codes(src, path="src/repro/mac/macaw.py")


def test_private_audible_allowed_inside_phy():
    src = "def transmit(self):\n    return self._audible(a, b)\n"
    assert codes(src, path="src/repro/phy/grid_medium.py") == []


def test_public_audible_accessor_not_flagged():
    src = "def defer(self):\n    return self.medium.audible(a, b)\n"
    assert codes(src, path="src/repro/mac/macaw.py") == []


def test_private_audible_pragma_waivable():
    src = (
        "def probe(self):\n"
        "    return m._audible(a, b)  # repro-lint: allow=REPRO106\n"
    )
    assert codes(src, path="src/repro/mac/macaw.py") == []


# ---------------------------------------------------------------- whole tree


def test_repro_tree_is_lint_clean():
    findings = lint_paths([SRC])
    assert findings == [], "\n".join(f.render() for f in findings)


def test_syntax_error_reported_not_raised(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(:\n")
    findings = lint_paths([bad])
    assert [f.code for f in findings] == ["REPRO100"]


# -------------------------------------------------------------------- driver


def test_main_exit_codes(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\nt = time.time()\n")
    assert main([str(clean)]) == 0
    assert main([str(dirty)]) == 1
    out = capsys.readouterr().out
    assert "REPRO102" in out and "1 finding(s)" in out
    assert main([]) == 2
    assert main([str(tmp_path / "absent.py")]) == 2


def test_module_entrypoint_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro.verify.lint", str(SRC)],
        capture_output=True, text=True,
        cwd=str(SRC.parents[1].parent),
        env={"PYTHONPATH": str(SRC.parent), "PATH": "/usr/bin:/bin"},
    )
    assert result.returncode == 0, result.stdout + result.stderr


# ---------------------------------------------------------------- REPRO107


def test_print_in_model_code_flagged():
    assert "REPRO107" in codes('print("debug")\n', path="repro/mac/maca.py")


def test_print_exempt_in_obs_and_cli_modules():
    assert codes('print("ok")\n', path="repro/obs/aggregate.py") == []
    assert codes('print("ok")\n', path="repro/cli.py") == []


def test_manual_counter_dict_flagged():
    src = "counts = {}\ncounts[key] = counts.get(key, 0) + 1\n"
    assert "REPRO107" in codes(src, path="repro/mac/maca.py")


def test_counter_dict_with_amount_on_either_side_flagged():
    left = "d[k] = d.get(k, 0) + n\n"
    right = "d[k] = n + d.get(k, 0)\n"
    assert "REPRO107" in codes(left, path="repro/core/x.py")
    assert "REPRO107" in codes(right, path="repro/core/x.py")


def test_unrelated_dict_assignment_not_flagged():
    # Not the counter idiom: different dict, non-zero default, plain set.
    assert codes("d[k] = other.get(k, 0) + 1\n", path="repro/core/x.py") == []
    assert codes("d[k] = d.get(k, 5) + 1\n", path="repro/core/x.py") == []
    assert codes("d[k] = 1\n", path="repro/core/x.py") == []


def test_repro107_pragma_waives():
    src = 'print("report")  # repro-lint: allow=REPRO107\n'
    assert codes(src, path="repro/mac/maca.py") == []


# ------------------------------------------------------------------ REPRO108


def test_fault_module_random_import_flagged():
    found = codes("import random\n", path="repro/fault/generators.py")
    assert "REPRO108" in found and "REPRO101" in found


def test_fault_module_numpy_random_flagged():
    src = "import numpy\nx = numpy.random.default_rng()\n"
    assert "REPRO108" in codes(src, path="repro/fault/inject.py")


def test_fault_module_private_randomstreams_flagged():
    src = "from repro.sim.rng import RandomStreams\ns = RandomStreams(7)\n"
    assert "REPRO108" in codes(src, path="repro/fault/inject.py")


def test_fault_module_foreign_stream_name_flagged():
    src = 'rng = sim.streams.get("mac:P1")\n'
    assert "REPRO108" in codes(src, path="repro/fault/inject.py")


def test_fault_module_foreign_fstring_stream_flagged():
    src = 'rng = sim.streams.get(f"mac:{name}")\n'
    assert "REPRO108" in codes(src, path="repro/fault/inject.py")


def test_fault_module_fault_streams_allowed():
    ok = (
        'a = sim.streams.get("fault:burst_noise:0")\n'
        'b = sim.streams.get(f"fault:link_flap:{name}")\n'
    )
    assert codes(ok, path="repro/fault/inject.py") == []


def test_fault_module_dynamic_stream_name_not_judged():
    src = "rng = sim.streams.get(proc.stream_name)\n"
    assert codes(src, path="repro/fault/inject.py") == []


def test_non_fault_module_exempt_from_repro108():
    src = 'rng = sim.streams.get("mac:P1")\n'
    assert "REPRO108" not in codes(src, path="repro/phy/noise.py")


def test_repro108_pragma_waives():
    src = 'rng = sim.streams.get("mac:P1")  # repro-lint: allow=REPRO108\n'
    assert "REPRO108" not in codes(src, path="repro/fault/inject.py")
