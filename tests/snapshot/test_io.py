"""Snapshot file format: save/load round-trip and corruption handling."""

import struct

import pytest

from repro.snapshot import FORMAT_VERSION, MAGIC, Snapshot, SnapshotError
from repro.topo.figures import fig2_two_pads

CAPTURE_AT = 8.0
HORIZON = 20.0


def build(seed=0):
    builder = fig2_two_pads(protocol="macaw", seed=seed)
    builder.trace = True
    return builder


@pytest.fixture(scope="module")
def snap():
    builder = build()
    scenario = builder.build()
    scenario.sim.run(until=CAPTURE_AT)
    return Snapshot.capture(scenario, builder)


def test_save_load_roundtrip(tmp_path, snap):
    path = snap.save(tmp_path / "store" / "mid.snap")
    loaded = Snapshot.load(path)
    assert loaded.digest == snap.digest
    assert loaded.blob == snap.blob
    assert loaded.at == CAPTURE_AT
    assert loaded.meta["queue"] == snap.meta["queue"]
    assert loaded.meta["pending"] == snap.meta["pending"]


def test_loaded_snapshot_restores(tmp_path, snap):
    path = snap.save(tmp_path / "mid.snap")
    builder = build()
    reference = builder.build()
    reference.sim.run(until=HORIZON)
    expected = (reference.sim.events_fired, reference.sim.trace.digest())

    target = build()
    fresh = target.build()
    Snapshot.load(path).restore(fresh, target)
    fresh.sim.run(until=HORIZON)
    assert (fresh.sim.events_fired, fresh.sim.trace.digest()) == expected


def test_load_rejects_non_snapshot_file(tmp_path):
    path = tmp_path / "bogus.snap"
    path.write_bytes(b"definitely not a snapshot")
    with pytest.raises(SnapshotError, match="not a snapshot"):
        Snapshot.load(path)


def test_load_rejects_corrupt_blob(tmp_path, snap):
    path = snap.save(tmp_path / "mid.snap")
    raw = bytearray(path.read_bytes())
    raw[-10] ^= 0xFF  # flip a byte inside the pickle blob
    path.write_bytes(bytes(raw))
    with pytest.raises(SnapshotError, match="digest mismatch"):
        Snapshot.load(path)


def test_load_rejects_truncated_file(tmp_path, snap):
    path = snap.save(tmp_path / "mid.snap")
    raw = path.read_bytes()
    path.write_bytes(raw[:len(raw) // 2])
    with pytest.raises(SnapshotError, match="digest mismatch"):
        Snapshot.load(path)


def test_load_rejects_newer_format(tmp_path, snap):
    future = Snapshot({**snap.meta, "format": FORMAT_VERSION + 1}, snap.blob)
    path = future.save(tmp_path / "future.snap")
    with pytest.raises(SnapshotError, match="newer"):
        Snapshot.load(path)


def test_restore_rejects_newer_format(snap):
    builder = build()
    scenario = builder.build()
    future = Snapshot({**snap.meta, "format": FORMAT_VERSION + 1}, snap.blob)
    with pytest.raises(SnapshotError, match="newer"):
        future.restore(scenario, builder)


def test_restore_rejects_mismatched_topology(snap):
    from repro.topo.figures import fig3_six_pads

    builder = fig3_six_pads(protocol="macaw", seed=0)
    builder.trace = True
    scenario = builder.build()
    with pytest.raises(SnapshotError, match="equivalent builder"):
        snap.restore(scenario, builder)


def test_file_layout_is_magic_header_blob(tmp_path, snap):
    path = snap.save(tmp_path / "mid.snap")
    raw = path.read_bytes()
    assert raw.startswith(MAGIC)
    (header_len,) = struct.unpack_from("<I", raw, len(MAGIC))
    blob = raw[len(MAGIC) + 4 + header_len:]
    assert blob == snap.blob
