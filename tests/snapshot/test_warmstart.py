"""Warm-start sweeps: keyed stores, run_cells integration, cache keys.

The acceptance contract: ``run_cells(warm_start=...)`` produces per-cell
digests byte-identical to cold runs while simulating measurably fewer
in-process events, and the warm-start descriptor folds into the profile
digest so warm results can never be served from (or poison) cold cache
entries.
"""

import pytest

from repro.core.config import RunProfile, WarmStart
from repro.runner import expand_cells, run_cells
from repro.runner.cache import ResultCache
from repro.snapshot import store_digest, warm_key
from repro.topo.figures import fig2_two_pads

BOUNDS = dict(duration=30.0, warmup=5.0)
BRANCH_AT = 10.0


def warm(tmp_path, **kwargs):
    return WarmStart(at=BRANCH_AT, store=str(tmp_path / "store"), **kwargs)


def digests(outcomes):
    return [(o.cell, o.digest) for o in outcomes]


# --------------------------------------------------------- run_cells
def test_warm_run_cells_matches_cold_digests(tmp_path):
    cells = expand_cells(["table9"], [0, 1], **BOUNDS)
    cold = run_cells(cells, jobs=1, collect_digests=True)
    priming = run_cells(cells, jobs=1, collect_digests=True,
                        warm_start=warm(tmp_path))
    restoring = run_cells(cells, jobs=1, collect_digests=True,
                          warm_start=warm(tmp_path))
    assert digests(priming) == digests(cold)
    assert digests(restoring) == digests(cold)
    assert all(o.digest is not None for o in cold)


def test_warm_store_holds_one_snapshot_per_variant(tmp_path):
    # table9 builds two scenarios per seed (maca + macaw), each with its
    # own builder spec and hence its own store key.
    run_cells(expand_cells(["table9"], [0], **BOUNDS), jobs=1,
              warm_start=warm(tmp_path))
    store = tmp_path / "store"
    first = sorted(p.name for p in store.glob("*.snap"))
    assert len(first) == 2
    # A second run restores: no new keys, contents untouched.
    before = {p.name: p.read_bytes() for p in store.glob("*.snap")}
    run_cells(expand_cells(["table9"], [0], **BOUNDS), jobs=1,
              warm_start=warm(tmp_path))
    assert sorted(p.name for p in store.glob("*.snap")) == first
    assert {p.name: p.read_bytes() for p in store.glob("*.snap")} == before


def test_warm_restore_skips_warmup_events(tmp_path):
    builder = fig2_two_pads(protocol="macaw", seed=0)
    builder.trace = True
    cold = builder.build()
    cold.sim.run(until=BOUNDS["duration"])
    reference = (cold.sim.events_fired, cold.sim.trace.digest())

    def warm_build():
        b = fig2_two_pads(protocol="macaw", seed=0)
        b.trace = True
        b.profile = b.profile.but(warm_start=warm(tmp_path))
        return b.build()

    primed = warm_build()
    assert primed.warm_start_info["restored"] is False

    restored = warm_build()
    info = restored.warm_start_info
    assert info["restored"] is True
    assert info["events_at_branch"] > 0
    assert restored.sim.now == BRANCH_AT

    restored.sim.run(until=BOUNDS["duration"])
    assert (restored.sim.events_fired, restored.sim.trace.digest()) == reference
    # The in-process work really shrank: only the post-branch slice ran.
    simulated = restored.sim.events_fired - info["events_at_branch"]
    assert 0 < simulated < reference[0]


# --------------------------------------------------------- store keys
def test_warm_key_is_stable_and_sensitive():
    base = fig2_two_pads(protocol="macaw", seed=0)
    again = fig2_two_pads(protocol="macaw", seed=0)
    assert warm_key(base, BRANCH_AT) == warm_key(again, BRANCH_AT)
    assert warm_key(base, BRANCH_AT) != warm_key(base, BRANCH_AT + 1.0)
    other_seed = fig2_two_pads(protocol="macaw", seed=1)
    assert warm_key(base, BRANCH_AT) != warm_key(other_seed, BRANCH_AT)
    other_proto = fig2_two_pads(protocol="maca", seed=0)
    assert warm_key(base, BRANCH_AT) != warm_key(other_proto, BRANCH_AT)


def test_warm_key_separates_traced_from_untraced_builds():
    # A traced warm-up carries the t<T records a digest replay needs; an
    # untraced one does not.  Sharing a snapshot across that line once
    # produced empty sweep digests (the CLI primed untraced, the
    # --digest run restored it).
    builder = fig2_two_pads(protocol="macaw", seed=0)
    assert (warm_key(builder, BRANCH_AT, traced=True)
            != warm_key(builder, BRANCH_AT, traced=False))
    # Only the *effective* flag keys the store: tracing forced by the
    # profile knob and tracing forced ambiently (--digest, sanitizer)
    # must land on the same snapshot.
    knobbed = fig2_two_pads(protocol="macaw", seed=0)
    knobbed.profile = knobbed.profile.but(trace=True)
    assert (warm_key(knobbed, BRANCH_AT, traced=True)
            == warm_key(builder, BRANCH_AT, traced=True))


def test_warm_key_ignores_the_store_location():
    base = fig2_two_pads(protocol="macaw", seed=0)
    one = fig2_two_pads(protocol="macaw", seed=0)
    one.profile = one.profile.but(
        warm_start=WarmStart(at=BRANCH_AT, store="/tmp/a"))
    two = fig2_two_pads(protocol="macaw", seed=0)
    two.profile = two.profile.but(
        warm_start=WarmStart(at=BRANCH_AT, store="/tmp/b"))
    # The key strips the warm_start knob entirely: a warm build and a
    # cold build of the same physics share snapshots.
    assert warm_key(one, BRANCH_AT) == warm_key(base, BRANCH_AT)
    assert warm_key(two, BRANCH_AT) == warm_key(base, BRANCH_AT)


def test_store_digest_tracks_contents(tmp_path):
    store = tmp_path / "store"
    assert store_digest(store) is None
    run_cells(expand_cells(["table9"], [0], **BOUNDS), jobs=1,
              warm_start=warm(tmp_path))
    first = store_digest(store)
    assert first is not None
    assert store_digest(store) == first
    snap = next(store.glob("*.snap"))
    snap.write_bytes(snap.read_bytes() + b"x")
    assert store_digest(store) != first


# --------------------------------------------------- cache separation
def test_profile_digest_separates_warm_from_cold():
    cold = RunProfile()
    warmed = cold.but(warm_start=WarmStart(at=BRANCH_AT, store="/tmp/a",
                                           digest="abc"))
    assert warmed.digest() != cold.digest()
    # Store *contents* (the digest) key the profile; the path does not.
    moved = cold.but(warm_start=WarmStart(at=BRANCH_AT, store="/tmp/b",
                                          digest="abc"))
    assert moved.digest() == warmed.digest()
    other = cold.but(warm_start=WarmStart(at=BRANCH_AT, store="/tmp/a",
                                          digest="def"))
    assert other.digest() != warmed.digest()


def test_warm_results_never_collide_with_cold_cache_entries(tmp_path):
    cache = ResultCache(str(tmp_path / "cache"))
    cells = expand_cells(["table9"], [0], **BOUNDS)
    cold = run_cells(cells, jobs=1, cache=cache, collect_digests=True)
    assert cold[0].cached is False
    # Same cells, warm profile: a fresh run (and a fresh cache row), not
    # a hit on the cold entry.
    warm_first = run_cells(cells, jobs=1, cache=cache, collect_digests=True,
                           warm_start=warm(tmp_path, digest="primed"))
    assert warm_first[0].cached is False
    warm_again = run_cells(cells, jobs=1, cache=cache, collect_digests=True,
                           warm_start=warm(tmp_path, digest="primed"))
    assert warm_again[0].cached is True
    cold_again = run_cells(cells, jobs=1, cache=cache, collect_digests=True)
    assert cold_again[0].cached is True
    assert cold_again[0].digest == warm_again[0].digest == cold[0].digest


def test_warmstart_validates_at():
    with pytest.raises(ValueError):
        WarmStart(at=0.0, store="/tmp/x")
    with pytest.raises(ValueError):
        WarmStart(at=-1.0, store="/tmp/x")
