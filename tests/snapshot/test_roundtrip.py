"""The restore invariant: save at T, restore, run on == never stopped.

The non-negotiable contract of ``repro.snapshot``: a scenario captured
mid-run and restored into a fresh build from an equivalent builder must
finish with byte-identical ``events_fired`` and ``Trace.digest()`` to an
uninterrupted run — across protocols, event-queue backends and fault
schedules, for multiple seeds.
"""

import pytest

from repro.fault.presets import get_preset
from repro.snapshot import Snapshot, SnapshotError
from repro.topo.figures import fig2_two_pads

HORIZON = 30.0
CAPTURE_AT = 12.0
SEEDS = (0, 1, 2)


def build(protocol, queue, faulted, seed):
    builder = fig2_two_pads(protocol=protocol, seed=seed)
    builder.trace = True
    builder.queue = queue
    if faulted:
        builder.faults = get_preset("flaky-links")
    return builder


def finish(scenario):
    scenario.sim.run(until=HORIZON)
    return scenario.sim.events_fired, scenario.sim.trace.digest()


@pytest.mark.parametrize("faulted", [False, True], ids=["clean", "faults"])
@pytest.mark.parametrize("protocol", ["macaw", "maca", "csma"])
def test_restore_equals_straight_through(protocol, faulted):
    for seed in SEEDS:
        reference = finish(build(protocol, "heap", faulted, seed).build())
        for queue in ("heap", "wheel"):
            source = build(protocol, queue, faulted, seed)
            halfway = source.build()
            halfway.sim.run(until=CAPTURE_AT)
            snap = Snapshot.capture(halfway, source)

            target = build(protocol, queue, faulted, seed)
            fresh = target.build()
            snap.restore(fresh, target)
            assert fresh.sim._now == CAPTURE_AT
            assert finish(fresh) == reference, (
                f"{protocol} seed={seed} queue={queue} "
                f"faulted={faulted}: restored run diverged"
            )


@pytest.mark.parametrize("source_q,target_q",
                         [("heap", "wheel"), ("wheel", "heap")])
def test_cross_backend_restore(source_q, target_q):
    """A heap capture restores into a wheel build (and vice versa)."""
    reference = finish(build("macaw", "heap", True, 2).build())
    source = build("macaw", source_q, True, 2)
    halfway = source.build()
    halfway.sim.run(until=CAPTURE_AT)
    snap = Snapshot.capture(halfway, source)

    target = build("macaw", target_q, True, 2)
    fresh = target.build()
    snap.restore(fresh, target)
    assert fresh.sim.queue_name == target_q
    assert finish(fresh) == reference


def test_capture_is_a_noop_on_the_running_scenario():
    """Capture-then-continue fires the exact uninterrupted sequence."""
    reference = finish(build("macaw", "heap", False, 0).build())
    builder = build("macaw", "heap", False, 0)
    scenario = builder.build()
    scenario.sim.run(until=CAPTURE_AT)
    Snapshot.capture(scenario, builder)
    assert finish(scenario) == reference


def test_recapture_after_restore_hashes_identically():
    """Restore rewinds the global counters, so a recapture is bytewise
    the original snapshot — the fixed point the store digest keys on.
    (Two *cold* captures in one process differ: the event-seq and
    packet-uid watermarks are process-global and advance monotonically.)
    """
    builder = build("macaw", "heap", False, 1)
    scenario = builder.build()
    scenario.sim.run(until=CAPTURE_AT)
    first = Snapshot.capture(scenario, builder)

    target = build("macaw", "heap", False, 1)
    fresh = target.build()
    first.restore(fresh, target)
    second = Snapshot.capture(fresh, target)
    assert second.digest == first.digest


def test_capture_rejects_running_kernel():
    builder = build("macaw", "heap", False, 0)
    scenario = builder.build()
    boom = {}

    def mid_run():
        try:
            Snapshot.capture(scenario, builder)
        except SnapshotError as exc:
            boom["error"] = exc

    scenario.sim.schedule(1.0, mid_run)
    scenario.sim.run(until=2.0)
    assert "dispatching" in str(boom["error"])
