"""Branch-fork semantics: controlled divergence from one checkpoint."""

import pytest

from repro.snapshot import FORKABLE_KNOBS, Snapshot, SnapshotError, fork
from repro.topo.builder import ScenarioBuilder

BRANCH_AT = 10.0
HORIZON = 25.0


def poisson_builder(seed=4):
    """Two pads with Poisson arrivals: the traffic streams keep drawing
    after the branch point, so re-seeding them actually diverges (CBR
    draws its phase once at build time and never again).
    """
    builder = ScenarioBuilder(seed=seed, medium="graph", protocol="macaw")
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", 40.0, arrival="poisson")
    builder.udp("P2", "B", 40.0, arrival="poisson")
    builder.trace = True
    return builder


def make_snapshot(seed=4):
    builder = poisson_builder(seed)
    scenario = builder.build()
    scenario.sim.run(until=BRANCH_AT)
    return Snapshot.capture(scenario, builder), builder


def finish(scenario):
    scenario.sim.run(until=HORIZON)
    return scenario.sim.events_fired, scenario.sim.trace.digest()


def test_fork_without_mutations_continues_the_original():
    snap, builder = make_snapshot()
    reference = finish(poisson_builder(seed=4).build())
    assert finish(fork(snap, builder)) == reference


def test_same_salt_forks_are_identical():
    snap, builder = make_snapshot()
    streams = ("traffic:P1-B",)
    first = finish(fork(snap, builder, salt=1, streams=streams))
    second = finish(fork(snap, builder, salt=1, streams=streams))
    assert first == second


def test_different_salts_diverge():
    snap, builder = make_snapshot()
    streams = ("traffic:P1-B",)
    first = finish(fork(snap, builder, salt=1, streams=streams))
    second = finish(fork(snap, builder, salt=2, streams=streams))
    assert first != second


def test_unreseeded_fork_differs_from_reseeded():
    snap, builder = make_snapshot()
    plain = finish(fork(snap, builder))
    reseeded = finish(fork(snap, builder, salt=9,
                           streams=("traffic:P1-B",)))
    assert plain != reseeded


def test_fork_records_branch_metadata():
    snap, builder = make_snapshot()
    scenario = fork(snap, builder, salt=5, streams=("traffic:P1-B",))
    info = scenario.warm_start_info
    assert info["forked"] is True
    assert info["salt"] == 5
    assert info["reseeded"] == ("traffic:P1-B",)
    assert info["digest"] == snap.digest
    assert info["at"] == BRANCH_AT


def test_fork_rejects_physics_knobs():
    snap, builder = make_snapshot()
    with pytest.raises(SnapshotError, match="physics"):
        fork(snap, builder, profile_changes={"faults": None})
    with pytest.raises(SnapshotError, match="physics"):
        fork(snap, builder, profile_changes={"timing": object()})


def test_fork_swaps_forkable_queue_knob():
    assert "queue" in FORKABLE_KNOBS
    snap, builder = make_snapshot()
    reference = finish(fork(snap, builder))
    wheeled = fork(snap, builder, profile_changes={"queue": "wheel"})
    assert wheeled.sim.queue_name == "wheel"
    assert finish(wheeled) == reference


def test_fork_leaves_the_original_builder_untouched():
    snap, builder = make_snapshot()
    before = builder.profile
    fork(snap, builder, profile_changes={"queue": "wheel"})
    assert builder.profile is before
