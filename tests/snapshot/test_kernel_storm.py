"""Randomized kernel-storm round-trips on bare simulators.

A scripted storm of schedule/cancel/rearm churn (pooled handles, both
queue backends) is captured at a mid-run boundary via the bare-kernel
API (:meth:`Snapshot.capture_sim` with a hand-built registry), restored
into a fresh simulator, and the remaining firing log compared against an
uninterrupted run — exercising handle pooling, compaction counters and
seq preservation without any scenario scaffolding.
"""

from functools import partial

import numpy as np
import pytest

from repro.sim.kernel import Simulator
from repro.sim.timers import Timer
from repro.snapshot import Snapshot, SnapshotRegistry
from repro.snapshot.state import FULL

HORIZON = 60.0
TIMERS = 25
ROUNDS = 30


class StormRecorder:
    """Accumulates (time, tag) firing events — the comparison artifact."""

    def __init__(self):
        self.log = []


class StormDriver:
    """Deterministic churn: every step starts/stops/extends scripted
    timers and schedules scripted one-shot events, driven entirely by
    the pre-generated ``script`` so two drivers with equal scripts
    produce byte-equal behavior.
    """

    def __init__(self, sim, recorder, script):
        self.sim = sim
        self.recorder = recorder
        self.script = script
        self.step_index = 0
        # partial(bound method, int) pickles: the codec resolves the
        # inner bound method as a ("method", token, name) descriptor.
        self.timers = [Timer(sim, partial(self.expire, i), name=f"t{i}")
                       for i in range(TIMERS)]

    def expire(self, index):
        self.recorder.log.append((self.sim.now, f"timer:{index}"))

    def oneshot(self, tag):
        self.recorder.log.append((self.sim.now, f"event:{tag}"))

    def churn(self, remaining):
        ops = self.script[self.step_index % len(self.script)]
        self.step_index += 1
        for op, arg, value in ops:
            if op == "start":
                self.timers[arg].start(value)
            elif op == "stop":
                self.timers[arg].stop()
            elif op == "extend":
                self.timers[arg].extend_to(self.sim.now + value)
            elif op == "oneshot":
                self.sim.schedule(value, self.oneshot, arg)
        if remaining:
            self.sim.schedule(0.7, self.churn, remaining - 1)


def make_script(seed):
    rng = np.random.default_rng(seed)
    script = []
    for _ in range(ROUNDS):
        ops = []
        for _ in range(int(rng.integers(3, 9))):
            kind = ["start", "stop", "extend", "oneshot"][
                int(rng.integers(0, 4))]
            index = int(rng.integers(0, TIMERS))
            value = float(np.round(rng.uniform(0.1, 9.0), 6))
            ops.append((kind, index if kind != "oneshot"
                        else f"s{index}", value))
        script.append(ops)
    return script


def make_storm(seed, queue):
    sim = Simulator(seed=seed, queue=queue)
    recorder = StormRecorder()
    driver = StormDriver(sim, recorder, make_script(seed))
    sim.schedule(0.1, driver.churn, ROUNDS - 1)
    return sim, driver, recorder


def storm_registry(sim, driver, recorder):
    registry = SnapshotRegistry()
    registry.register("sim", sim)
    registry.register("driver", driver)
    registry.register("recorder", recorder)
    registry.bind_streams(sim.streams)
    return registry


POLICIES = {"driver": (FULL, ()), "recorder": (FULL, ())}


@pytest.mark.parametrize("queue", ["heap", "wheel"])
@pytest.mark.parametrize("seed", [3, 11, 42])
def test_storm_roundtrip(queue, seed):
    straight_sim, _, straight_rec = make_storm(seed, queue)
    straight_sim.run(until=HORIZON)
    reference = (straight_sim.events_fired, straight_rec.log)
    assert straight_rec.log, "storm produced no events; test is vacuous"

    # Capture at a script-derived mid-run boundary (different per seed).
    capture_at = 5.0 + (seed % 7) * 2.5
    halted_sim, halted_driver, halted_rec = make_storm(seed, queue)
    halted_sim.run(until=capture_at)
    snap = Snapshot.capture_sim(
        halted_sim,
        storm_registry(halted_sim, halted_driver, halted_rec),
        POLICIES,
    )

    fresh_sim, fresh_driver, fresh_rec = make_storm(seed, queue)
    snap.restore_sim(
        fresh_sim,
        storm_registry(fresh_sim, fresh_driver, fresh_rec),
        POLICIES,
    )
    assert fresh_sim.now == capture_at
    assert fresh_rec.log == halted_rec.log  # log up to the branch restored
    fresh_sim.run(until=HORIZON)
    assert (fresh_sim.events_fired, fresh_rec.log) == reference


def test_storm_pending_order_survives_restore():
    """The remaining (time, priority, seq) entry order is preserved."""
    sim, driver, rec = make_storm(7, "wheel")
    sim.run(until=10.0)
    pending = [entry[:3] for entry in sim._queue.live_entries()]
    assert pending, "no pending events at the capture point"
    snap = Snapshot.capture_sim(sim, storm_registry(sim, driver, rec),
                                POLICIES)

    sim2, driver2, rec2 = make_storm(7, "heap")
    snap.restore_sim(sim2, storm_registry(sim2, driver2, rec2), POLICIES)
    assert [entry[:3] for entry in sim2._queue.live_entries()] == pending
