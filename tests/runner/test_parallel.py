"""Serial-vs-parallel equivalence: the runner's determinism contract.

A parallel sweep must be indistinguishable from a serial one — identical
tables, identical check verdicts and byte-identical per-cell trace
digests.  These tests run real (short) experiment cells through both
paths and diff everything observable.
"""

import pytest

from repro.experiments.registry import get_experiment
from repro.runner import Cell, expand_cells, run_cells

#: Short bounds keep each cell ~1 s; equality, not accuracy, is under test.
BOUNDS = dict(duration=30.0, warmup=5.0)


def _snapshot(outcomes):
    return [
        (
            o.cell,
            o.digest,
            o.result.checks,
            o.result.table.render(),
            o.failed_checks,
        )
        for o in outcomes
    ]


def test_run_cells_parallel_matches_serial_exactly():
    cells = expand_cells(["table9"], [0, 1], **BOUNDS)
    serial = run_cells(cells, jobs=1, collect_digests=True)
    parallel = run_cells(cells, jobs=2, collect_digests=True)
    assert _snapshot(serial) == _snapshot(parallel)
    assert all(o.digest is not None for o in serial)


def test_run_cells_mixed_experiments_keep_input_order():
    cells = expand_cells(["table9", "table3"], [0], **BOUNDS)
    outcomes = run_cells(cells, jobs=2, collect_digests=True)
    assert [o.cell.exp_id for o in outcomes] == ["table9", "table3"]
    assert [o.cell for o in outcomes] == [c.resolved() for c in cells]


def test_run_seeds_jobs_matches_serial_sweep():
    exp = get_experiment("table9")
    serial = exp.run_seeds([0, 1], jobs=1, collect_digest=True, **BOUNDS)
    parallel = exp.run_seeds([0, 1], jobs=2, collect_digest=True, **BOUNDS)
    assert [r.seed for r in serial.results] == [r.seed for r in parallel.results]
    for ours, theirs in zip(serial.results, parallel.results):
        assert ours.digest == theirs.digest
        assert ours.checks == theirs.checks
        assert ours.table.render() == theirs.table.render()
    assert serial.mean_table().render() == parallel.mean_table().render()
    assert serial.check_pass_rates() == parallel.check_pass_rates()


def test_digests_are_seed_sensitive():
    cells = expand_cells(["table9"], [0, 1], **BOUNDS)
    outcomes = run_cells(cells, jobs=2, collect_digests=True)
    assert outcomes[0].digest != outcomes[1].digest


def test_digests_stable_across_repeat_runs():
    cells = [Cell("table9", seed=0, **BOUNDS)]
    first = run_cells(cells, jobs=1, collect_digests=True)[0]
    second = run_cells(cells, jobs=1, collect_digests=True)[0]
    assert first.digest == second.digest


def test_without_digest_collection_digest_is_none():
    outcomes = run_cells([Cell("table9", seed=0, **BOUNDS)], jobs=1)
    assert outcomes[0].digest is None


def test_rejects_nonpositive_jobs():
    with pytest.raises(ValueError):
        run_cells([Cell("table9", seed=0, **BOUNDS)], jobs=0)


# ------------------------------------------------------------------ metrics


def test_metrics_interval_ships_series_back_with_each_cell():
    cells = expand_cells(["table9"], [0], duration=10.0, warmup=2.0)
    outcomes = run_cells(cells, jobs=1, metrics_interval=1.0)
    assert len(outcomes[0].metrics) >= 1  # one dump per scenario run
    dump = outcomes[0].metrics[0]
    assert dump["interval"] == 1.0
    names = {s["name"] for s in dump["series"]}
    assert "chan.busy_frac" in names and "mac.queue" in names


def test_metrics_default_off():
    cells = expand_cells(["table9"], [0], duration=10.0, warmup=2.0)
    outcomes = run_cells(cells, jobs=1)
    assert outcomes[0].metrics == []


def test_metrics_parallel_matches_serial_dumps_exactly():
    cells = expand_cells(["table9"], [0, 1], duration=10.0, warmup=2.0)
    serial = run_cells(cells, jobs=1, metrics_interval=1.0,
                       collect_digests=True)
    parallel = run_cells(cells, jobs=2, metrics_interval=1.0,
                         collect_digests=True)
    assert [o.digest for o in serial] == [o.digest for o in parallel]
    assert [o.metrics for o in serial] == [o.metrics for o in parallel]


def test_metrics_do_not_change_digests():
    cells = expand_cells(["table9"], [0], duration=10.0, warmup=2.0)
    plain = run_cells(cells, jobs=1, collect_digests=True)
    metered = run_cells(cells, jobs=1, collect_digests=True,
                        metrics_interval=0.5)
    assert plain[0].digest == metered[0].digest


def test_metrics_runs_never_reuse_metricless_cache_entries(tmp_path):
    from repro.runner import ResultCache

    cells = expand_cells(["table9"], [0], duration=10.0, warmup=2.0)
    cache = ResultCache(str(tmp_path))
    run_cells(cells, jobs=1, cache=cache)  # warm the metric-less entry
    outcomes = run_cells(cells, jobs=1, cache=cache, metrics_interval=1.0)
    assert not outcomes[0].cached  # different config hash: forced re-run
    assert outcomes[0].metrics
    again = run_cells(cells, jobs=1, cache=cache, metrics_interval=1.0)
    assert again[0].cached
    assert again[0].metrics == outcomes[0].metrics  # series ride the cache
