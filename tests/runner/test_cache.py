"""On-disk result cache: round-trips, key sensitivity, corruption safety."""

from repro.core.config import RunProfile
from repro.runner import Cell, ResultCache, config_hash, profile_hash, run_cells


def _run_one(cache, collect=True):
    cells = [Cell("table9", seed=0, duration=30.0, warmup=5.0)]
    return run_cells(cells, jobs=1, cache=cache, collect_digests=collect)[0]


def _default_config(collect=True):
    """The config hash run_cells uses for a default (pinned) profile."""
    pinned = RunProfile(sanitize=False, metrics=False)
    return profile_hash(pinned, collect_digests=collect)


def test_round_trip_hits_and_preserves_result(tmp_path):
    cache = ResultCache(tmp_path)
    fresh = _run_one(cache)
    assert not fresh.cached and cache.misses == 1 and cache.hits == 0

    again = _run_one(cache)
    assert again.cached and cache.hits == 1
    assert again.wall_s == 0.0
    assert again.digest == fresh.digest
    assert again.result.table.render() == fresh.result.table.render()
    assert again.result.checks == fresh.result.checks


def test_key_changes_with_every_cell_and_config_field(tmp_path):
    cache = ResultCache(tmp_path)
    base = Cell("table9", seed=0, duration=30.0, warmup=5.0)
    config = config_hash(sanitize=False, collect_digests=True)
    reference = cache.key(base, config)

    variants = [
        Cell("table3", seed=0, duration=30.0, warmup=5.0),
        Cell("table9", seed=1, duration=30.0, warmup=5.0),
        Cell("table9", seed=0, duration=31.0, warmup=5.0),
        Cell("table9", seed=0, duration=30.0, warmup=6.0),
    ]
    keys = {cache.key(cell, config) for cell in variants}
    keys.add(cache.key(base, config_hash(sanitize=True, collect_digests=True)))
    keys.add(cache.key(base, config, version="other-code-version"))
    assert reference not in keys
    assert len(keys) == 6


def test_profile_hash_separates_fault_and_metrics_sweeps():
    base = profile_hash(RunProfile(sanitize=False, metrics=False), True)
    from repro.fault import FaultSchedule, LinkFlap

    faulted = RunProfile(
        sanitize=False, metrics=False,
        faults=FaultSchedule((LinkFlap("A", "B", 1.0, 2.0),)),
    )
    variants = {
        profile_hash(RunProfile(sanitize=True, metrics=False), True),
        profile_hash(RunProfile(sanitize=False, metrics=2.0), True),
        profile_hash(RunProfile(sanitize=False, metrics=False), False),
        profile_hash(faulted, True),
    }
    assert base not in variants
    assert len(variants) == 4
    # An empty schedule normalizes away: same key space as no faults.
    empty = RunProfile(sanitize=False, metrics=False, faults=FaultSchedule())
    assert profile_hash(empty, True) == base


def test_stale_code_version_misses(tmp_path):
    cache = ResultCache(tmp_path)
    config = _default_config()
    fresh = _run_one(cache)
    cell = fresh.cell
    # Same cell under a different source-tree hash must not hit.
    assert cache.get(cell, config, version="pretend-old-tree") is None


def test_corrupt_entry_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(tmp_path)
    config = _default_config()
    fresh = _run_one(cache)
    path = cache._path(cache.key(fresh.cell, config))
    assert path.exists()
    path.write_bytes(b"not a pickle")
    assert cache.get(fresh.cell, config) is None
    # And the cache repairs itself on the next run.
    again = _run_one(cache)
    assert not again.cached
    assert _run_one(cache).cached


def test_startup_sweeps_only_stale_tmp_files(tmp_path):
    import os
    import time

    from repro.runner.cache import TMP_SWEEP_AGE_S

    stale = tmp_path / "orphaned-worker-write.tmp"
    stale.write_bytes(b"partial pickle from a killed worker")
    old = time.time() - TMP_SWEEP_AGE_S - 60.0
    os.utime(stale, (old, old))
    fresh_tmp = tmp_path / "in-flight-write.tmp"
    fresh_tmp.write_bytes(b"a concurrent worker mid-put")
    bystander = tmp_path / "unrelated.txt"
    bystander.write_text("not cache state")

    cache = ResultCache(tmp_path)
    assert not stale.exists()          # orphan reclaimed at startup
    assert fresh_tmp.exists()          # recent write never raced
    assert bystander.exists()          # only *.tmp is touched

    # Sweeping is hygiene, not invalidation: entries still round-trip,
    # and a lingering tmp file is never served as a hit.
    first = _run_one(cache)
    assert not first.cached
    assert _run_one(cache).cached


def test_missing_cache_dir_sweep_is_harmless(tmp_path):
    cache = ResultCache(tmp_path / "never-created")
    assert cache.hits == 0 and cache.misses == 0


def test_sweep_spares_live_writer_tmp_regardless_of_age(tmp_path):
    import os
    import time

    from repro.runner.cache import TMP_SWEEP_AGE_S

    # A slow write by a *live* process (ours), older than the age cutoff:
    # under the old age-only sweep this would be yanked mid-write.
    live = tmp_path / f"slow-write.{os.getpid()}.tmp"
    live.write_bytes(b"in-flight write by a live worker")
    old = time.time() - TMP_SWEEP_AGE_S - 60.0
    os.utime(live, (old, old))

    ResultCache(tmp_path)
    assert live.exists()


def test_sweep_reclaims_dead_writer_tmp_even_when_fresh(tmp_path):
    import multiprocessing
    import os

    proc = multiprocessing.get_context("spawn").Process(target=int)
    proc.start()
    proc.join()
    dead_pid = proc.pid
    assert dead_pid is not None

    dead = tmp_path / f"orphan.{dead_pid}.tmp"
    dead.write_bytes(b"stranded by a killed worker")
    ResultCache(tmp_path)
    assert not dead.exists()


def test_put_rewrites_when_sweep_races_the_rename(tmp_path, monkeypatch):
    import os

    import repro.runner.cache as cache_mod

    cache = ResultCache(tmp_path)
    fresh = _run_one(cache)

    # Interleaving: another process's sweeper unlinks our tmp after the
    # write but before the rename.  First os.replace sees no source.
    real_replace = os.replace
    raced = {"count": 0}

    def racing_replace(src, dst, **kwargs):
        if raced["count"] == 0:
            raced["count"] += 1
            os.unlink(src)
        return real_replace(src, dst, **kwargs)

    monkeypatch.setattr(cache_mod.os, "replace", racing_replace)
    cache.put(fresh, _default_config())
    assert raced["count"] == 1

    served = _run_one(cache)
    assert served.cached and served.digest == fresh.digest
