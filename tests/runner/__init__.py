"""Tests for the parallel experiment runner."""
