"""Cell grid expansion and resolution."""

import pickle

from repro.experiments.registry import get_experiment
from repro.runner import Cell, expand_cells


def test_expand_cells_is_experiments_outermost():
    cells = expand_cells(["table3", "table9"], [0, 1])
    assert [(c.exp_id, c.seed) for c in cells] == [
        ("table3", 0), ("table3", 1), ("table9", 0), ("table9", 1),
    ]


def test_expand_cells_carries_bounds():
    (cell,) = expand_cells(["table9"], [5], duration=40.0, warmup=10.0)
    assert cell == Cell("table9", seed=5, duration=40.0, warmup=10.0)


def test_resolved_pins_experiment_defaults():
    exp = get_experiment("table9")
    cell = Cell("table9", seed=3).resolved()
    assert cell.duration == exp.default_duration
    assert cell.warmup == exp.default_warmup
    # Explicit values survive resolution untouched.
    pinned = Cell("table9", seed=3, duration=40.0, warmup=10.0)
    assert pinned.resolved() is pinned


def test_explicit_defaults_resolve_to_same_cell_as_implied():
    exp = get_experiment("table9")
    implied = Cell("table9", seed=0).resolved()
    explicit = Cell(
        "table9", seed=0,
        duration=exp.default_duration, warmup=exp.default_warmup,
    ).resolved()
    assert implied == explicit


def test_cells_are_picklable():
    cell = Cell("table9", seed=2, duration=40.0, warmup=10.0)
    assert pickle.loads(pickle.dumps(cell)) == cell
