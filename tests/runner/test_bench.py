"""Bench baseline logic (no timed benches — those live in benchmarks/)."""

import json

from repro.runner.bench import (
    DEFAULT_TOLERANCE,
    check_against,
    default_baseline_path,
    load_baseline,
    write_baseline,
)


def _results(events_per_sec):
    return {
        "six_pad_cell": {
            "events": 85757, "wall_s": 1.5, "events_per_sec": events_per_sec,
        }
    }


def _baseline(events_per_sec, tolerance=0.25):
    return {"tolerance": tolerance, "benchmarks": _results(events_per_sec)}


def test_within_tolerance_passes():
    assert check_against(_baseline(50_000.0), _results(40_000.0)) == []


def test_beyond_tolerance_fails():
    failures = check_against(_baseline(50_000.0), _results(37_000.0))
    assert len(failures) == 1 and "six_pad_cell" in failures[0]


def test_unknown_bench_is_ignored():
    baseline = {"tolerance": 0.25, "benchmarks": {}}
    assert check_against(baseline, _results(1.0)) == []


def test_write_preserves_frozen_pre_pr_block(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps({"pre_pr": {"six_pad_cell": {"wall_s": 2.0}}}))
    write_baseline(path, _results(55_000.0))
    data = load_baseline(path)
    assert data["pre_pr"] == {"six_pad_cell": {"wall_s": 2.0}}
    assert data["benchmarks"] == _results(55_000.0)
    assert data["tolerance"] == DEFAULT_TOLERANCE


def test_committed_baseline_exists_and_documents_the_speedup():
    data = load_baseline(default_baseline_path())
    assert set(data["benchmarks"]) >= {
        "kernel_chain", "single_stream_cell", "six_pad_cell",
    }
    # The acceptance claim of this PR: the contended six-pad cell runs
    # >= 20% faster than the frozen pre-optimization reference.
    before = data["pre_pr"]["six_pad_cell"]["wall_s"]
    after = data["benchmarks"]["six_pad_cell"]["wall_s"]
    assert after <= 0.8 * before
