"""Bench baseline logic (no timed benches — those live in benchmarks/)."""

import json

from repro.runner.bench import (
    DEFAULT_TOLERANCE,
    check_against,
    default_baseline_path,
    load_baseline,
    write_baseline,
)


def _results(events_per_sec):
    return {
        "six_pad_cell": {
            "events": 85757, "wall_s": 1.5, "events_per_sec": events_per_sec,
        }
    }


def _baseline(events_per_sec, tolerance=0.25):
    return {"tolerance": tolerance, "benchmarks": _results(events_per_sec)}


def test_within_tolerance_passes():
    assert check_against(_baseline(50_000.0), _results(40_000.0)) == []


def test_beyond_tolerance_fails():
    failures = check_against(_baseline(50_000.0), _results(37_000.0))
    assert len(failures) == 1 and "six_pad_cell" in failures[0]


def test_unknown_bench_is_ignored():
    baseline = {"tolerance": 0.25, "benchmarks": {}}
    assert check_against(baseline, _results(1.0)) == []


def test_write_preserves_frozen_pre_pr_block(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps({"pre_pr": {"six_pad_cell": {"wall_s": 2.0}}}))
    write_baseline(path, _results(55_000.0))
    data = load_baseline(path)
    assert data["pre_pr"] == {"six_pad_cell": {"wall_s": 2.0}}
    assert data["benchmarks"] == _results(55_000.0)
    assert data["tolerance"] == DEFAULT_TOLERANCE


def test_write_records_the_backend_matrix(tmp_path):
    path = tmp_path / "BENCH_engine.json"
    matrix = {"heap": _results(55_000.0), "wheel": _results(60_000.0)}
    write_baseline(path, matrix["heap"], backends=matrix)
    data = load_baseline(path)
    assert data["backends"] == matrix
    assert data["benchmarks"] == matrix["heap"]


def test_check_uses_the_backends_own_section():
    baseline = {
        "tolerance": 0.25,
        "benchmarks": _results(50_000.0),
        "backends": {
            "heap": _results(50_000.0),
            "wheel": _results(100_000.0),
        },
    }
    # 60k events/sec clears the heap section but regresses the wheel's.
    assert check_against(baseline, _results(60_000.0), backend="heap") == []
    failures = check_against(baseline, _results(60_000.0), backend="wheel")
    assert len(failures) == 1 and "[wheel]" in failures[0]
    # A backend with no committed section falls back to 'benchmarks'.
    assert check_against(baseline, _results(60_000.0), backend="novel") == []


def test_committed_baseline_exists_and_documents_the_speedup():
    data = load_baseline(default_baseline_path())
    assert set(data["benchmarks"]) >= {
        "kernel_chain", "timer_cancel", "single_stream_cell",
        "six_pad_cell", "office_cell",
    }
    # The acceptance claim of the first perf PR: the contended six-pad
    # cell runs >= 20% faster than the frozen pre-optimization reference.
    before = data["pre_pr"]["six_pad_cell"]["wall_s"]
    after = data["benchmarks"]["six_pad_cell"]["wall_s"]
    assert after <= 0.8 * before


def test_committed_baseline_documents_the_wheel_win():
    data = load_baseline(default_baseline_path())
    backends = data["backends"]
    assert set(backends) >= {"heap", "wheel"}
    # The acceptance claim of the queue-backend PR: on the cancel-heavy
    # timer bench the wheel clears the heap by >= 25% events/sec...
    heap = backends["heap"]["timer_cancel"]["events_per_sec"]
    wheel = backends["wheel"]["timer_cancel"]["events_per_sec"]
    assert wheel >= 1.25 * heap
    # ...without giving the small contended cell back: six-pad on the
    # wheel stays within the regression gate of the committed heap
    # baseline (the section --check holds every backend to).
    six_heap = backends["heap"]["six_pad_cell"]["events_per_sec"]
    six_wheel = backends["wheel"]["six_pad_cell"]["events_per_sec"]
    assert six_wheel >= (1.0 - data["tolerance"]) * six_heap
