"""Cross-module integration and failure-injection tests."""

import pytest

from repro import MACAW_CONFIG, ScenarioBuilder, macaw_config
from repro.phy.noise import TimeWindowErrorModel
from repro.topo.figures import fig2_two_pads, fig9_dead_pad, single_stream_cell


def test_end_to_end_determinism_same_seed():
    """The entire stack — traffic, MAC, medium — replays bit-identically
    under one seed."""
    results = []
    for _ in range(2):
        scenario = fig2_two_pads(protocol="macaw", seed=9).build().run(60.0)
        results.append(scenario.throughputs(warmup=10.0))
    assert results[0] == results[1]


def test_different_seeds_differ():
    a = fig2_two_pads(protocol="macaw", seed=1).build().run(60.0).throughputs()
    b = fig2_two_pads(protocol="macaw", seed=2).build().run(60.0).throughputs()
    assert a != b


def test_burst_noise_recovery_udp():
    """A 2-second blackout: throughput collapses and then fully recovers."""
    builder = single_stream_cell(protocol="macaw", seed=5)
    builder.noise(TimeWindowErrorModel(1.0, start=10.0, end=12.0))
    scenario = builder.build().run(40.0)
    before = scenario.recorder.throughput_pps("P-B", 5.0, 10.0)
    during = scenario.recorder.throughput_pps("P-B", 10.2, 11.8)
    after = scenario.recorder.throughput_pps("P-B", 15.0, 40.0)
    assert during < 0.2 * before
    assert after > 0.85 * before


def test_burst_noise_recovery_tcp():
    builder = single_stream_cell(protocol="macaw", seed=5, transport="tcp")
    builder.noise(TimeWindowErrorModel(1.0, start=10.0, end=12.0))
    scenario = builder.build().run(60.0)
    before = scenario.recorder.throughput_pps("P-B", 5.0, 10.0)
    # Tahoe repairs MAC-dropped holes one RTO at a time (no fast
    # retransmit), and the blackout's queue delay inflates the first
    # post-recovery RTT samples — full recovery takes tens of seconds.
    recovered = scenario.recorder.throughput_pps("P-B", 40.0, 60.0)
    assert recovered > 0.85 * before


def test_power_cycle_recovery():
    """A pad that dies and comes back resumes service (links restored)."""
    builder = single_stream_cell(protocol="macaw", seed=5)

    def off(scenario):
        scenario.station("B").power_off()

    def on(scenario):
        station = scenario.station("B")
        station.power_on()
        scenario.medium.set_link(station.mac, scenario.station("P").mac, True)

    builder.at(10.0, off)
    builder.at(15.0, on)
    scenario = builder.build().run(40.0)
    during = scenario.recorder.throughput_pps("P-B", 10.5, 14.5)
    after = scenario.recorder.throughput_pps("P-B", 20.0, 40.0)
    assert during == 0.0
    assert after > 30.0


def test_dead_pad_timeseries_shows_collapse_and_containment():
    """Figure 9 over time: per-destination backoff contains the damage
    within a few seconds of the power-off."""
    scenario = fig9_dead_pad(config=macaw_config(), seed=2, power_off_at=60.0)
    scenario = scenario.build().run(160.0)
    live = ["B1-P2", "P2-B1", "B1-P3", "P3-B1"]
    before = sum(scenario.recorder.throughput_pps(s, 20.0, 60.0) for s in live)
    after = sum(scenario.recorder.throughput_pps(s, 100.0, 160.0) for s in live)
    # The dead pad's share is redistributed: the live streams keep at
    # least what they had.
    assert after > 0.9 * before
    # And the dead streams are actually dead.
    assert scenario.recorder.throughput_pps("B1-P1", 100.0, 160.0) == 0.0


def test_grid_medium_end_to_end():
    """The cube-grid medium drives a full MACAW cell (paper's own model)."""
    scenario = fig2_two_pads(protocol="macaw", medium="grid", seed=3).build()
    scenario.run(60.0)
    throughput = scenario.throughputs(warmup=10.0)
    assert sum(throughput.values()) > 35.0
    assert min(throughput.values()) > 10.0


def test_grid_mobility_walkaway():
    """A pad walking out of range loses service; walking back restores it."""
    builder = ScenarioBuilder(seed=3, medium="grid", protocol="macaw")
    builder.add_base("B", (10.5, 10.5, 6.5))
    builder.add_pad("P", (10.5, 13.5, 0.5))
    builder.udp("P", "B", 32.0)
    builder.at(10.0, lambda s: setattr(s.station("P"), "position", (10.5, 60.5, 0.5)))
    builder.at(20.0, lambda s: setattr(s.station("P"), "position", (10.5, 13.5, 0.5)))
    scenario = builder.build().run(40.0)
    near = scenario.recorder.throughput_pps("P-B", 2.0, 10.0)
    away = scenario.recorder.throughput_pps("P-B", 12.0, 19.0)
    back = scenario.recorder.throughput_pps("P-B", 25.0, 40.0)
    assert near > 25.0
    assert away == 0.0
    assert back > 25.0


def test_mixed_protocols_coexist_without_crashing():
    """A CSMA station sharing a cell with a MACAW station: the simulation
    stays sane, the MACAW stream thrives — and the carrier-sensing station
    starves against the RTS/CTS station's near-continuous exchanges (the
    classic mixed-MAC coexistence asymmetry)."""
    builder = ScenarioBuilder(seed=4, protocol="macaw")
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2", protocol="csma")
    builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", 32.0)
    builder.udp("P2", "B", 32.0)
    scenario = builder.build().run(30.0)
    throughput = scenario.throughputs(warmup=5.0)
    assert throughput["P1-B"] > 20.0
    assert throughput["P2-B"] < throughput["P1-B"]


def test_saturated_cell_conserves_packets():
    """Nothing is created or destroyed: offered = delivered + dropped +
    still-queued + rejected at the queue."""
    builder = single_stream_cell(protocol="macaw", seed=6, rate_pps=128.0)
    scenario = builder.build().run(30.0)
    stream = scenario.stream("P-B")
    mac = scenario.station("P").mac
    delivered = scenario.recorder.flow("P-B").count_between(0.0, 1e9)
    accounted = (
        delivered + mac.stats.drops + mac.queue_len() + stream.rejected
    )
    # The packet in flight (if any) is the only slack.
    assert abs(stream.offered - accounted) <= 1
