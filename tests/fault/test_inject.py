"""Fault installation: effects apply, restore, and count correctly."""

import pytest

from repro.core.config import RunProfile
from repro.fault import (
    BurstNoise,
    ClockedMove,
    FaultInstallError,
    FaultSchedule,
    LinkFlap,
    QueueSqueeze,
    StationChurn,
)
from repro.topo.builder import ScenarioBuilder


def build_clique(schedule=None, seed=1, medium="graph", **profile_kwargs):
    """B <-> P1 <-> P2 clique with two UDP uplinks, faults from ``schedule``."""
    profile = RunProfile(faults=schedule, **profile_kwargs)
    builder = ScenarioBuilder(seed=seed, medium=medium, profile=profile)
    builder.add_base("B")
    builder.add_pad("P1", position=(1.0, 0.0, 0.0))
    builder.add_pad("P2", position=(0.0, 1.0, 0.0))
    if medium == "graph":
        builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", 16.0)
    builder.udp("P2", "B", 16.0)
    return builder.build()


def linked(scenario, a, b):
    port_a = scenario.station(a).mac
    port_b = scenario.station(b).mac
    return port_b in scenario.medium.neighbors(port_a)


# ----------------------------------------------------------------- wiring
def test_no_schedule_means_no_injector():
    assert build_clique().fault_injector is None


def test_empty_schedule_means_no_injector():
    assert build_clique(FaultSchedule.empty()).fault_injector is None


def test_unknown_station_is_an_install_error():
    schedule = FaultSchedule((StationChurn("GHOST", off_at=1.0),))
    with pytest.raises(FaultInstallError, match="unknown station 'GHOST'"):
        build_clique(schedule)


def test_link_flap_requires_graph_medium():
    schedule = FaultSchedule((LinkFlap("B", "P1", 1.0, 2.0),))
    with pytest.raises(FaultInstallError, match="graph medium"):
        build_clique(schedule, medium="grid")


# ---------------------------------------------------------------- effects
def test_link_flap_drops_then_restores_the_link():
    schedule = FaultSchedule((LinkFlap("B", "P1", 5.0, 10.0),))
    scenario = build_clique(schedule)
    scenario.run(7.0)
    assert not linked(scenario, "B", "P1")
    assert not linked(scenario, "P1", "B")
    assert linked(scenario, "B", "P2")
    assert scenario.fault_injector.active_count() == 1
    scenario.run(12.0)
    assert linked(scenario, "B", "P1")
    assert scenario.fault_injector.active_count() == 0
    assert scenario.fault_injector.injected == {"link_flap": 1}
    assert scenario.fault_injector.recoveries == [("link_flap", 5.0)]


def test_asymmetric_flap_only_drops_one_direction():
    schedule = FaultSchedule((LinkFlap("B", "P1", 5.0, 10.0, symmetric=False),))
    scenario = build_clique(schedule)
    scenario.run(7.0)
    assert not linked(scenario, "B", "P1")
    assert linked(scenario, "P1", "B")


def test_burst_noise_counts_and_recovers():
    schedule = FaultSchedule((BurstNoise(5.0, 9.0, 0.5),))
    scenario = build_clique(schedule)
    scenario.run(7.0)
    assert scenario.fault_injector.active_count() == 1
    scenario.run(20.0)
    assert scenario.fault_injector.injected == {"burst_noise": 1}
    assert scenario.fault_injector.recoveries == [("burst_noise", 4.0)]


def test_queue_squeeze_clamps_then_restores_capacity():
    schedule = FaultSchedule((QueueSqueeze("P1", capacity=1, start=5.0, end=10.0),))
    scenario = build_clique(schedule, queue_capacity=8)
    queue = scenario.station("P1").mac.queue
    assert queue.capacity == 8
    scenario.run(7.0)
    assert queue.capacity == 1
    scenario.run(12.0)
    assert queue.capacity == 8


def test_station_churn_powers_off_then_restores_links():
    schedule = FaultSchedule((StationChurn("P1", off_at=5.0, on_at=10.0),))
    scenario = build_clique(schedule)
    scenario.run(7.0)
    station = scenario.station("P1")
    assert not station.powered
    scenario.run(12.0)
    assert station.powered
    # Detaching forgot the graph edges; power-on must have restored them.
    assert linked(scenario, "P1", "B") and linked(scenario, "B", "P1")
    assert linked(scenario, "P1", "P2") and linked(scenario, "P2", "P1")
    assert scenario.fault_injector.recoveries == [("station_churn", 5.0)]


def test_permanent_churn_never_recovers():
    schedule = FaultSchedule((StationChurn("P1", off_at=5.0),))
    scenario = build_clique(schedule)
    scenario.run(20.0)
    assert not scenario.station("P1").powered
    assert scenario.fault_injector.active_count() == 1
    assert scenario.fault_injector.recoveries == []


def test_churn_with_connect_rehomes_instead_of_restoring():
    schedule = FaultSchedule((
        StationChurn("P1", off_at=5.0, on_at=10.0, connect=("B",)),
    ))
    scenario = build_clique(schedule)
    scenario.run(12.0)
    assert linked(scenario, "P1", "B")
    assert not linked(scenario, "P1", "P2")  # old peer not reconnected


def test_clocked_move_repositions_at_the_scheduled_time():
    schedule = FaultSchedule((ClockedMove("P1", at=5.0, position=(9.0, 9.0, 0.0)),))
    scenario = build_clique(schedule)
    scenario.run(4.0)
    assert scenario.station("P1").position == (1.0, 0.0, 0.0)
    scenario.run(6.0)
    assert scenario.station("P1").position == (9.0, 9.0, 0.0)
    assert scenario.fault_injector.injected == {"clocked_move": 1}
