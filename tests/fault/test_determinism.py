"""The fault determinism contract.

* An empty schedule is indistinguishable from no schedule: identical
  ``events_fired`` and byte-identical trace digests.
* A non-empty schedule is a pure function of ``(schedule, seed)``: repeat
  runs are byte-identical, and a pool worker produces the same digest as
  a serial run.
"""

import pytest

from repro.core.config import RunProfile
from repro.fault import FaultSchedule, GilbertElliott, LinkFlapProcess, PoissonChurn
from repro.runner import expand_cells, run_cells
from repro.topo.builder import ScenarioBuilder

#: Short horizon — determinism, not accuracy, is under test.
DURATION = 30.0

#: Aggressive generator mix so every process fires within DURATION.
CHAOS = FaultSchedule((
    GilbertElliott(mean_good_s=5.0, mean_bad_s=2.0, error_rate=0.4),
    LinkFlapProcess(mean_up_s=8.0, mean_down_s=2.0),
    PoissonChurn(rate_per_s=0.2, mean_outage_s=3.0),
))


def run_once(protocol, schedule, seed=3):
    profile = RunProfile(trace=True, faults=schedule)
    builder = ScenarioBuilder(seed=seed, protocol=protocol, profile=profile)
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", 16.0)
    builder.udp("P2", "B", 16.0)
    scenario = builder.build().run(DURATION)
    return scenario.sim.trace.digest(), scenario.sim.events_fired, scenario


@pytest.mark.parametrize("protocol", ["macaw", "maca", "csma"])
def test_empty_schedule_is_digest_identical_to_none(protocol):
    clean_digest, clean_fired, _ = run_once(protocol, None)
    empty_digest, empty_fired, scenario = run_once(protocol, FaultSchedule.empty())
    assert empty_digest == clean_digest
    assert empty_fired == clean_fired
    assert scenario.fault_injector is None


def test_same_seed_fault_runs_are_byte_identical():
    first_digest, first_fired, first = run_once("macaw", CHAOS)
    again_digest, again_fired, again = run_once("macaw", CHAOS)
    assert again_digest == first_digest
    assert again_fired == first_fired
    assert again.fault_injector.injected == first.fault_injector.injected
    assert again.fault_injector.recoveries == first.fault_injector.recoveries
    # The chaos mix actually did something, and something of every kind.
    assert all(count > 0 for count in first.fault_injector.injected.values())


def test_faulted_digest_differs_from_clean():
    clean_digest, _, _ = run_once("macaw", None)
    chaos_digest, _, _ = run_once("macaw", CHAOS)
    assert chaos_digest != clean_digest


def test_fault_digests_are_seed_sensitive():
    one, _, _ = run_once("macaw", CHAOS, seed=3)
    two, _, _ = run_once("macaw", CHAOS, seed=4)
    assert one != two


def test_run_cells_fault_profile_matches_across_worker_processes():
    profile = RunProfile(faults=CHAOS)
    cells = expand_cells(["table9"], [0, 1], duration=DURATION, warmup=5.0)
    serial = run_cells(cells, jobs=1, collect_digests=True, profile=profile)
    parallel = run_cells(cells, jobs=2, collect_digests=True, profile=profile)
    assert [o.digest for o in serial] == [o.digest for o in parallel]
    assert all(o.digest is not None for o in serial)
    plain = run_cells(cells, jobs=1, collect_digests=True)
    assert [o.digest for o in plain] != [o.digest for o in serial]
