"""Fault events and schedules: validation, serialization, digests."""

import pytest

from repro.fault import (
    EVENT_TYPES,
    BurstNoise,
    ClockedMove,
    FaultSchedule,
    GilbertElliott,
    LinkFlap,
    LinkFlapProcess,
    PoissonChurn,
    QueueSqueeze,
    StationChurn,
)


# ------------------------------------------------------------- validation
def test_link_flap_window_and_endpoints():
    LinkFlap("A", "B", 1.0, 2.0)  # fine
    with pytest.raises(ValueError):
        LinkFlap("A", "B", -1.0, 2.0)
    with pytest.raises(ValueError):
        LinkFlap("A", "B", 2.0, 2.0)
    with pytest.raises(ValueError):
        LinkFlap("A", "A", 1.0, 2.0)


def test_burst_noise_error_rate_bounds():
    BurstNoise(0.0, 5.0, 1.0)
    with pytest.raises(ValueError):
        BurstNoise(0.0, 5.0, 0.0)
    with pytest.raises(ValueError):
        BurstNoise(0.0, 5.0, 1.5)


def test_station_churn_times_must_order():
    StationChurn("P", off_at=5.0, on_at=10.0)
    StationChurn("P", off_at=5.0)  # permanent outage is legal
    with pytest.raises(ValueError):
        StationChurn("P", off_at=-1.0)
    with pytest.raises(ValueError):
        StationChurn("P", off_at=5.0, on_at=5.0)


def test_queue_squeeze_capacity_floor():
    QueueSqueeze("P", capacity=1, start=0.0, end=1.0)
    with pytest.raises(ValueError):
        QueueSqueeze("P", capacity=0, start=0.0, end=1.0)


def test_clocked_move_time():
    ClockedMove("P", at=0.0, position=(1.0, 2.0, 0.0))
    with pytest.raises(ValueError):
        ClockedMove("P", at=-0.1, position=(0.0, 0.0, 0.0))


def test_gilbert_elliott_validation():
    GilbertElliott()
    with pytest.raises(ValueError):
        GilbertElliott(mean_good_s=0.0)
    with pytest.raises(ValueError):
        GilbertElliott(error_rate=0.0)
    with pytest.raises(ValueError):
        GilbertElliott(start=10.0, end=10.0)


def test_link_flap_process_needs_both_or_neither_endpoint():
    LinkFlapProcess()  # wildcard
    LinkFlapProcess(a="A", b="B")
    with pytest.raises(ValueError):
        LinkFlapProcess(a="A")
    with pytest.raises(ValueError):
        LinkFlapProcess(a="A", b="A")
    with pytest.raises(ValueError):
        LinkFlapProcess(a="A", b="B", mean_up_s=0.0)


def test_poisson_churn_validation():
    PoissonChurn()
    with pytest.raises(ValueError):
        PoissonChurn(rate_per_s=0.0)
    with pytest.raises(ValueError):
        PoissonChurn(mean_outage_s=0.0)


# ------------------------------------------------------------ effect kinds
def test_generators_count_under_their_emitted_effect():
    assert GilbertElliott().effect_kind == BurstNoise.kind
    assert LinkFlapProcess().effect_kind == LinkFlap.kind
    assert PoissonChurn().effect_kind == StationChurn.kind


def test_process_stream_names_are_fault_prefixed():
    assert GilbertElliott(name="x").stream_name == "fault:gilbert_elliott:x"
    assert PoissonChurn().stream_name == "fault:poisson_churn:main"


def test_event_types_registry_is_complete():
    assert set(EVENT_TYPES) == {
        "link_flap",
        "burst_noise",
        "station_churn",
        "queue_squeeze",
        "clocked_move",
        "gilbert_elliott",
        "link_flap_process",
        "poisson_churn",
    }


# ---------------------------------------------------------- serialization
ROUNDTRIP_EVENTS = [
    LinkFlap("A", "B", 1.0, 2.0, symmetric=False),
    BurstNoise(0.0, 5.0, 0.3, receivers=("A", "B")),
    StationChurn("P", off_at=5.0, on_at=10.0, position=(1.0, 0.0, 0.0),
                 connect=("B",)),
    QueueSqueeze("P", capacity=2, start=1.0, end=3.0),
    ClockedMove("P", at=4.0, position=(0.0, 9.0, 0.0)),
    GilbertElliott(mean_good_s=8.0, mean_bad_s=2.0, error_rate=0.4,
                   receivers=("B",), end=50.0, name="g"),
    LinkFlapProcess(a="A", b="B", mean_up_s=9.0, mean_down_s=1.0,
                    symmetric=False, name="f"),
    PoissonChurn(stations=("P",), rate_per_s=0.1, mean_outage_s=4.0),
]


@pytest.mark.parametrize("event", ROUNDTRIP_EVENTS, ids=lambda e: e.kind)
def test_event_json_roundtrip(event):
    schedule = FaultSchedule((event,))
    again = FaultSchedule.from_json(schedule.to_json())
    assert again.events == (event,)


def test_schedule_from_dict_rejects_malformed_payloads():
    with pytest.raises(ValueError, match="'events' list"):
        FaultSchedule.from_dict({})
    with pytest.raises(ValueError, match="'kind'"):
        FaultSchedule.from_dict({"events": [{"a": "A"}]})
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSchedule.from_dict({"events": [{"kind": "meteor_strike"}]})
    with pytest.raises(ValueError, match="bad fields"):
        FaultSchedule.from_dict({"events": [{"kind": "link_flap", "x": 1}]})


def test_schedule_entries_must_be_events():
    with pytest.raises(TypeError):
        FaultSchedule(("not-an-event",))


# ------------------------------------------------------- schedule helpers
def test_schedule_container_protocol():
    flap = LinkFlap("A", "B", 1.0, 2.0)
    schedule = FaultSchedule.empty().with_events(flap)
    assert len(schedule) == 1 and bool(schedule) and list(schedule) == [flap]
    assert not FaultSchedule.empty()


def test_effect_kinds_deduplicate_in_order():
    schedule = FaultSchedule((
        GilbertElliott(),
        LinkFlap("A", "B", 1.0, 2.0),
        BurstNoise(0.0, 1.0, 0.5),
    ))
    assert schedule.effect_kinds() == ("burst_noise", "link_flap")


def test_station_names_aggregate_every_reference():
    schedule = FaultSchedule((
        LinkFlap("A", "B", 1.0, 2.0),
        StationChurn("P", off_at=5.0, connect=("B", "C")),
    ))
    assert schedule.station_names() == ("A", "B", "P", "C")


def test_digest_key_tracks_content():
    one = FaultSchedule((LinkFlap("A", "B", 1.0, 2.0),))
    same = FaultSchedule((LinkFlap("A", "B", 1.0, 2.0),))
    other = FaultSchedule((LinkFlap("A", "B", 1.0, 3.0),))
    assert one.digest_key() == same.digest_key()
    assert one.digest_key() != other.digest_key()
