"""Experiment registry and driver plumbing."""

import pytest

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import all_experiments, experiment_ids, get_experiment


def test_every_paper_table_is_registered():
    ids = experiment_ids()
    for n in range(1, 12):
        assert f"table{n}" in ids
    assert "fig1" in ids
    assert "fig8" in ids


def test_ablations_registered():
    ids = experiment_ids()
    assert "ablation-mild-factor" in ids
    assert "ablation-rts-defer" in ids
    assert "ablation-copying" in ids
    assert "ablation-multicast" in ids
    assert "ablation-failure-detection" in ids


def test_get_experiment_unknown():
    with pytest.raises(KeyError):
        get_experiment("table99")


def test_all_experiments_instantiates_everything():
    experiments = all_experiments()
    assert len(experiments) == len(experiment_ids())
    for exp in experiments:
        assert exp.spec.exp_id
        assert exp.spec.title
        assert exp.default_duration > exp.default_warmup


def test_specs_reference_figures():
    assert get_experiment("table5").spec.figure == "fig5"
    assert get_experiment("table10").spec.figure == "fig10"


def test_run_validates_warmup():
    exp = get_experiment("table9")
    with pytest.raises(ValueError):
        exp.run(duration=10.0, warmup=20.0)


def test_result_render_and_passed():
    result = ExperimentResult(
        spec=get_experiment("table9").spec,
        table=__import__("repro.analysis.tables", fromlist=["ComparisonTable"]).ComparisonTable("t"),
        checks={"a": True, "b": False},
    )
    assert not result.passed
    rendered = result.render()
    assert "[PASS] a" in rendered
    assert "[FAIL] b" in rendered
