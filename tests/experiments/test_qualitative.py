"""Fast qualitative reproductions: short-horizon versions of the benches.

These run each experiment at a reduced duration and assert the paper's
qualitative outcome (the same checks the full benches evaluate).  Durations
are chosen as the shortest at which the dynamics are stable; the benchmark
suite runs the full-length versions.
"""

import pytest

from repro.experiments.registry import get_experiment

# (experiment id, duration, seed) — durations trimmed for CI speed.
FAST = [
    ("table1", 300.0, 0),
    ("table3", 250.0, 0),
    ("table5", 200.0, 0),
    ("table6", 200.0, 0),
    ("table7", 200.0, 0),
    ("table9", 120.0, 0),
]


@pytest.mark.parametrize("exp_id,duration,seed", FAST, ids=[f[0] for f in FAST])
def test_fast_qualitative(exp_id, duration, seed):
    result = get_experiment(exp_id).run(seed=seed, duration=duration)
    failing = [name for name, ok in result.checks.items() if not ok]
    assert not failing, f"{exp_id} failed: {failing}\n{result.table.render()}"


@pytest.mark.slow
@pytest.mark.parametrize("exp_id", ["table2", "table4", "table8", "fig1", "fig8"])
def test_slow_qualitative(exp_id):
    result = get_experiment(exp_id).run(seed=0, duration=300.0)
    failing = [name for name, ok in result.checks.items() if not ok]
    assert not failing, f"{exp_id} failed: {failing}\n{result.table.render()}"
