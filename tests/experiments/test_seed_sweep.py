"""Multi-seed aggregation."""

import pytest

from repro.experiments.registry import get_experiment


def test_run_seeds_aggregates_means_and_rates():
    exp = get_experiment("table9")
    sweep = exp.run_seeds([0, 1], duration=60.0, warmup=10.0)
    assert len(sweep.results) == 2
    mean = sweep.mean_table()
    singles = [r.table.value("MACA (RTS-CTS-DATA)", "P-B") for r in sweep.results]
    assert mean.value("MACA (RTS-CTS-DATA)", "P-B") == pytest.approx(
        sum(singles) / 2
    )
    rates = sweep.check_pass_rates()
    assert set(rates) == set(sweep.results[0].checks)
    assert all(0.0 <= r <= 1.0 for r in rates.values())


def test_run_seeds_requires_seeds():
    with pytest.raises(ValueError):
        get_experiment("table9").run_seeds([])


def test_render_shows_percentages():
    sweep = get_experiment("table9").run_seeds([0], duration=60.0, warmup=10.0)
    out = sweep.render()
    assert "mean of 1 seeds" in out
    assert "%]" in out


def test_mean_table_preserves_paper_values():
    sweep = get_experiment("table9").run_seeds([0, 1], duration=60.0, warmup=10.0)
    mean = sweep.mean_table()
    assert mean.paper["MACA (RTS-CTS-DATA)"]["P-B"] == 53.04
