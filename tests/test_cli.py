"""CLI behaviour."""

import pytest

from repro.cli import main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("table1", "table11", "fig1", "ablation-multicast"):
        assert exp_id in out


def test_unknown_experiment_returns_2(capsys):
    assert main(["table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_runs_one_experiment_and_reports(capsys):
    code = main(["table9", "--duration", "60", "--warmup", "10"])
    out = capsys.readouterr().out
    assert "Table 9" in out
    assert "MACA" in out and "MACAW" in out
    assert "(paper)" in out
    assert "seed 0" in out
    assert code in (0, 1)  # checks may be noisy at 60 s; both are valid exits


def test_no_paper_flag_hides_reference(capsys):
    main(["table9", "--duration", "60", "--warmup", "10", "--no-paper"])
    assert "(paper)" not in capsys.readouterr().out


def test_seed_flag_respected(capsys):
    main(["table9", "--duration", "60", "--warmup", "10", "--seed", "7"])
    assert "seed 7" in capsys.readouterr().out


def test_verify_trace_reports_clean_run(capsys):
    assert main(["verify-trace", "table9", "--duration", "60", "--warmup", "10"]) == 0
    out = capsys.readouterr().out
    assert "table9" in out and "OK" in out
    assert "trace records" in out


def test_verify_trace_unknown_experiment_returns_2(capsys):
    assert main(["verify-trace", "table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_verify_trace_leaves_sanitize_mode_off(capsys):
    from repro.verify.runtime import sanitize_enabled

    main(["verify-trace", "table9", "--duration", "60", "--warmup", "10"])
    capsys.readouterr()
    assert not sanitize_enabled()
