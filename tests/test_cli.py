"""CLI behaviour."""

import pytest

from repro.cli import main


def test_list_prints_every_experiment(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in ("table1", "table11", "fig1", "ablation-multicast"):
        assert exp_id in out


def test_unknown_experiment_returns_2(capsys):
    assert main(["table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_runs_one_experiment_and_reports(capsys):
    code = main(["table9", "--duration", "60", "--warmup", "10"])
    out = capsys.readouterr().out
    assert "Table 9" in out
    assert "MACA" in out and "MACAW" in out
    assert "(paper)" in out
    assert "seed 0" in out
    assert code in (0, 1)  # checks may be noisy at 60 s; both are valid exits


def test_no_paper_flag_hides_reference(capsys):
    main(["table9", "--duration", "60", "--warmup", "10", "--no-paper"])
    assert "(paper)" not in capsys.readouterr().out


def test_seed_flag_respected(capsys):
    main(["table9", "--duration", "60", "--warmup", "10", "--seed", "7"])
    assert "seed 7" in capsys.readouterr().out


def test_verify_trace_reports_clean_run(capsys):
    assert main(["verify-trace", "table9", "--duration", "60", "--warmup", "10"]) == 0
    out = capsys.readouterr().out
    assert "table9" in out and "OK" in out
    assert "trace records" in out


def test_verify_trace_unknown_experiment_returns_2(capsys):
    assert main(["verify-trace", "table99"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_verify_trace_leaves_sanitize_mode_off(capsys):
    from repro.verify.runtime import sanitize_enabled

    main(["verify-trace", "table9", "--duration", "60", "--warmup", "10"])
    capsys.readouterr()
    assert not sanitize_enabled()


def test_seeds_accepts_explicit_comma_list(capsys):
    code = main([
        "table9", "--duration", "30", "--warmup", "5",
        "--seeds", "3,5", "--digest",
    ])
    out = capsys.readouterr().out
    assert "digest seed 3:" in out and "digest seed 5:" in out
    assert "mean of 2 seeds" in out
    assert code in (0, 1)


def test_seeds_count_still_expands_from_base_seed(capsys):
    main([
        "table9", "--duration", "30", "--warmup", "5",
        "--seed", "4", "--seeds", "2", "--digest",
    ])
    out = capsys.readouterr().out
    assert "digest seed 4:" in out and "digest seed 5:" in out


def test_seeds_duplicates_collapse_in_order_with_warning(capsys):
    code = main([
        "table9", "--duration", "30", "--warmup", "5",
        "--seeds", "5,3,5,3,5", "--digest",
    ])
    captured = capsys.readouterr()
    assert code in (0, 1)
    assert "contains duplicates" in captured.err
    assert "running each seed once (2 unique)" in captured.err
    # First occurrences win and keep their order: 5 before 3.
    assert captured.out.index("digest seed 5:") < captured.out.index(
        "digest seed 3:")
    assert "mean of 2 seeds" in captured.out


def test_seeds_without_duplicates_warns_nothing(capsys):
    main(["table9", "--duration", "30", "--warmup", "5", "--seeds", "3,5"])
    assert "duplicates" not in capsys.readouterr().err


def test_invalid_seeds_value_returns_2(capsys):
    assert main(["table9", "--seeds", "zero"]) == 2
    assert "invalid --seeds value" in capsys.readouterr().err
    assert main(["table9", "--seeds", "0"]) == 2


def test_jobs_flag_produces_identical_output_to_serial(capsys):
    argv = ["table9", "--duration", "30", "--warmup", "5",
            "--seeds", "0,1", "--digest"]
    main(argv + ["--jobs", "1"])
    serial = capsys.readouterr().out
    main(argv + ["--jobs", "2"])
    parallel = capsys.readouterr().out

    def stable(text):  # drop the wall-clock summary line
        return [line for line in text.splitlines() if "wall" not in line]

    assert stable(serial) == stable(parallel)
    assert "jobs=2" in parallel


def test_cache_dir_flag_reuses_results(tmp_path, capsys):
    argv = ["table9", "--duration", "30", "--warmup", "5",
            "--cache-dir", str(tmp_path)]
    main(argv)
    first = capsys.readouterr().out
    assert "cache: 0 hits / 1 misses" in first
    main(argv)
    second = capsys.readouterr().out
    assert "cache: 1 hits / 0 misses" in second
    assert "1 cached" in second


@pytest.mark.parametrize("bad", ["0", "-1", "abc", "nan", "inf"])
def test_malformed_metrics_interval_returns_2(bad, capsys):
    assert main(["table9", "--metrics", "--metrics-interval", bad]) == 2
    err = capsys.readouterr().err
    assert err.startswith("macaw-sim:")
    assert "--metrics-interval" in err


def test_metrics_flag_reports_series_summary(capsys):
    code = main(["table9", "--duration", "8", "--warmup", "1", "--metrics"])
    out = capsys.readouterr().out
    assert code in (0, 1)  # paper checks are noisy at 8 s; metrics are not
    assert "metrics:" in out
    assert "series collected" in out


def test_metrics_out_writes_jsonl_per_cell(tmp_path, capsys):
    out_dir = tmp_path / "runs"
    code = main(["table9", "--duration", "8", "--warmup", "1",
                 "--seeds", "2", "--metrics-out", str(out_dir)])
    assert code in (0, 1)
    files = sorted(p.name for p in out_dir.glob("*.jsonl"))
    assert files == ["table9_seed0.metrics.jsonl", "table9_seed1.metrics.jsonl"]

    from repro.obs.export import load_jsonl

    loaded = load_jsonl(out_dir / files[0])
    assert loaded["meta"]["exp"] == "table9"
    assert loaded["meta"]["seed"] == 0
    names = {s["name"] for s in loaded["series"]}
    assert "chan.busy_frac" in names
    assert "mac.backoff" in names
    assert "metrics:" in capsys.readouterr().out


def test_metrics_out_jsonl_feeds_aggregate(tmp_path, capsys):
    out_dir = tmp_path / "runs"
    main(["table9", "--duration", "8", "--warmup", "1",
          "--seeds", "2", "--metrics-out", str(out_dir)])
    capsys.readouterr()

    from repro.obs.aggregate import main as aggregate_main

    paths = [str(p) for p in sorted(out_dir.glob("*.jsonl"))]
    bands_path = tmp_path / "bands.json"
    assert aggregate_main(paths + ["-o", str(bands_path)]) == 0
    assert bands_path.exists()


def test_metrics_off_by_default(capsys):
    main(["table9", "--duration", "8", "--warmup", "1"])
    assert "metrics:" not in capsys.readouterr().out


# ----------------------------------------------------------------- chaos
def test_chaos_list_names_every_preset(capsys):
    assert main(["chaos", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("noise-burst", "churn", "churn-light", "flaky-links"):
        assert name in out


def test_chaos_unknown_preset_returns_2(capsys):
    assert main(["chaos", "meteor-strike"]) == 2
    err = capsys.readouterr().err
    assert "meteor-strike" in err and "noise-burst" in err


def test_chaos_without_schedule_returns_2(capsys):
    assert main(["chaos"]) == 2
    assert "needs a preset" in capsys.readouterr().err


def test_chaos_faults_and_preset_are_mutually_exclusive(capsys, tmp_path):
    spec = tmp_path / "spec.json"
    spec.write_text('{"events": []}')
    assert main(["chaos", "noise-burst", "--faults", str(spec)]) == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_chaos_runs_a_degradation_report(capsys):
    assert main(["chaos", "noise-burst", "--duration", "40",
                 "--warmup", "10"]) == 0
    out = capsys.readouterr().out
    for protocol in ("macaw", "maca", "csma"):
        assert protocol in out
    assert "faults injected:" in out and "burst_noise" in out


def test_experiment_accepts_faults_spec_file(tmp_path, capsys):
    spec = tmp_path / "spec.json"
    spec.write_text(
        '{"events": [{"kind": "burst_noise", "start": 2.0, "end": 4.0,'
        ' "error_rate": 0.3, "receivers": null}]}'
    )
    code = main(["table9", "--duration", "8", "--warmup", "1",
                 "--faults", str(spec)])
    capsys.readouterr()
    assert code in (0, 1)  # checks may be noisy under faults at 8 s


def test_experiment_rejects_unreadable_faults_spec(capsys, tmp_path):
    assert main(["table9", "--faults", str(tmp_path / "missing.json")]) == 2
    assert "cannot read --faults spec" in capsys.readouterr().err


def test_sweep_without_experiments_returns_2(capsys, tmp_path):
    assert main(["sweep", "--job-dir", str(tmp_path)]) == 2
    assert "needs experiment ids" in capsys.readouterr().err


def test_sweep_unknown_experiment_returns_2(capsys, tmp_path):
    assert main(["sweep", "table99", "--job-dir", str(tmp_path)]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_sweep_seeds_and_adaptive_conflict(capsys, tmp_path):
    code = main(["sweep", "table9", "--seeds", "2", "--adaptive",
                 "--epsilon", "1", "--job-dir", str(tmp_path)])
    assert code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_sweep_adaptive_requires_epsilon(capsys, tmp_path):
    assert main(["sweep", "table9", "--adaptive",
                 "--job-dir", str(tmp_path)]) == 2
    assert "requires --epsilon" in capsys.readouterr().err


def test_sweep_resume_rejects_spec_flags(capsys, tmp_path):
    code = main(["sweep", "table9", "--resume", "abc",
                 "--job-dir", str(tmp_path)])
    assert code == 2
    assert "takes no spec flags" in capsys.readouterr().err


def test_sweep_resume_unknown_job_returns_2(capsys, tmp_path):
    code = main(["sweep", "--resume", "ffffffffffff",
                 "--job-dir", str(tmp_path)])
    assert code == 2
    assert "no job matching" in capsys.readouterr().err
