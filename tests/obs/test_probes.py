"""Scenario instrumentation: probe catalogue wiring and dump format."""

import json

import pytest

from repro.obs.probes import instrument_scenario
from repro.obs.runtime import MetricsConfig
from repro.topo.builder import ScenarioBuilder


def contended_builder(seed=3, protocol="macaw"):
    builder = ScenarioBuilder(seed=seed, protocol=protocol)
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", 48.0)
    builder.udp("P2", "B", 48.0)
    return builder


def instrumented_run(duration=20.0, interval=1.0, **kwargs):
    scenario = contended_builder(**kwargs).build()
    metrics = instrument_scenario(scenario, MetricsConfig(interval=interval))
    scenario.run(duration)
    return scenario, metrics


def test_per_station_mac_series_present():
    _, metrics = instrumented_run()
    for station in ("B", "P1", "P2"):
        for name in ("mac.backoff", "mac.queue", "mac.retries"):
            times, values = metrics.series(name, station=station)
            assert len(times) == 21, (name, station)
            assert all(v >= 0 for v in values)


def test_backoff_series_moves_under_contention():
    _, metrics = instrumented_run(duration=40.0)
    seen = set()
    for station in ("B", "P1", "P2"):
        _, values = metrics.series("mac.backoff", station=station)
        seen.update(values)
    # A saturated cell must push someone off the MILD floor at least once
    # (the senders often ride the floor — successes decrement to bo_min —
    # but the receiver's RRTS contention shows real excursions).
    assert len(seen) > 1


def test_channel_busy_fraction_is_a_fraction():
    scenario, metrics = instrumented_run(duration=30.0)
    times, values = metrics.series("chan.busy_frac")
    assert all(0.0 <= v <= 1.0 for v in values)
    # A saturated cell keeps the medium visibly busy by the end.
    assert values[-1] > 0.1
    medium = scenario.medium
    assert medium.busy_seconds() <= scenario.sim.now


def test_dwell_counters_cover_observed_states():
    _, metrics = instrumented_run(duration=30.0)
    dwell = [
        inst for inst in metrics.registry.scalars()
        if inst.name == "mac.dwell_s"
    ]
    states = {inst.label_dict()["state"] for inst in dwell}
    assert "IDLE" in states
    assert len(states) >= 3  # contention visits more than idle/transmit
    total = sum(inst.read() for inst in dwell if
                inst.label_dict()["station"] == "P1")
    assert total <= 30.0 + 1e-6


def test_stream_delivery_counters_and_delay_histogram():
    scenario, metrics = instrumented_run(duration=30.0)
    streams = scenario.recorder.streams()
    assert streams
    stream = streams[0]
    _, delivered = metrics.series("net.delivered", stream=stream)
    assert delivered[-1] > 0
    _, offered = metrics.series("net.offered", stream=stream)
    assert offered[-1] >= delivered[-1]
    hists = [h for h in metrics.registry.histograms()
             if h.name == "net.delay_s" and h.label_dict()["stream"] == stream]
    assert len(hists) == 1
    assert hists[0].count == delivered[-1]


def test_dump_is_json_serializable_with_schema():
    _, metrics = instrumented_run(duration=10.0)
    dump = metrics.dump()
    blob = json.dumps(dump)  # must not raise
    parsed = json.loads(blob)
    assert parsed["schema"] == 1
    assert parsed["interval"] == 1.0
    assert parsed["t_end"] == 10.0
    assert parsed["stations"] == {"B": "macaw", "P1": "macaw", "P2": "macaw"}
    assert parsed["series"], "dump carries at least one series"
    record = parsed["series"][0]
    assert set(record) == {"name", "labels", "kind", "t", "v", "dropped"}
    assert len(record["t"]) == len(record["v"])
    assert parsed["histograms"]
    hist = parsed["histograms"][0]
    assert len(hist["counts"]) == len(hist["bounds"]) + 1  # +inf overflow


def test_instrumentation_is_determinism_neutral_for_maca_too():
    def digest(metrics_on):
        builder = contended_builder(seed=9, protocol="maca")
        builder.trace = True
        scenario = builder.build()
        if metrics_on:
            instrument_scenario(scenario, MetricsConfig(interval=0.5))
        scenario.run(12.0)
        return scenario.sim.trace.digest(), scenario.sim.events_fired

    assert digest(False) == digest(True)


def test_builder_metrics_opt_in_and_config_validation():
    builder = contended_builder()
    builder.metrics = 2.0
    scenario = builder.build()
    assert scenario.metrics is not None
    assert scenario.metrics.config.interval == 2.0
    with pytest.raises(ValueError):
        MetricsConfig(interval=-1.0)
    with pytest.raises(ValueError):
        MetricsConfig(capacity=0)
