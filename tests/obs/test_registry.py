"""Typed instrument registry: counters, gauges, histograms, identity."""

import math

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry


def test_counter_owned_accumulation():
    reg = MetricsRegistry()
    c = reg.counter("mac.drops", station="P1")
    c.inc()
    c.add(2.5)
    assert c.read() == pytest.approx(3.5)


def test_counter_rejects_negative_increment():
    c = MetricsRegistry().counter("x")
    with pytest.raises(ValueError):
        c.add(-1.0)


def test_counter_bound_to_model_callback():
    state = {"sent": 0}
    c = MetricsRegistry().counter("mac.sent").bind(lambda: state["sent"])
    assert c.read() == 0
    state["sent"] = 7
    assert c.read() == 7


def test_gauge_set_and_bind():
    reg = MetricsRegistry()
    g = reg.gauge("mac.queue", station="P1")
    assert g.read() == 0.0  # unset reads as 0.0, not None
    g.set(4.0)
    assert g.read() == 4.0
    bound = reg.gauge("mac.backoff", station="P1").bind(lambda: 20.0)
    assert bound.read() == 20.0


def test_instrument_identity_is_name_plus_sorted_labels():
    reg = MetricsRegistry()
    a = reg.counter("mac.drops", station="P1", proto="macaw")
    b = reg.counter("mac.drops", proto="macaw", station="P1")  # kwarg order
    assert a is b
    other = reg.counter("mac.drops", station="P2", proto="macaw")
    assert other is not a
    assert len(reg) == 2


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("mac.drops", station="P1")
    with pytest.raises(TypeError):
        reg.gauge("mac.drops", station="P1")


def test_scalars_iterate_in_insertion_order():
    reg = MetricsRegistry()
    names = ["z.last", "a.first", "m.middle"]
    for name in names:
        reg.gauge(name)
    assert [i.name for i in reg.scalars()] == names


def test_histogram_buckets_and_overflow():
    reg = MetricsRegistry()
    h = reg.histogram("net.delay_s", bounds=(0.1, 1.0), stream="s")
    for v in (0.05, 0.5, 0.5, 2.0):
        h.observe(v)
    assert h.counts == [1, 2, 1]  # <=0.1, <=1.0, +inf overflow
    assert h.count == 4
    assert h.sum == pytest.approx(3.05)


def test_histogram_skips_nan_and_validates_bounds():
    reg = MetricsRegistry()
    h = reg.histogram("h", bounds=(1.0, 2.0))
    h.observe(math.nan)
    assert h.count == 0
    with pytest.raises(ValueError):
        reg.histogram("bad", bounds=(2.0, 1.0))
    with pytest.raises(ValueError):
        reg.histogram("empty", bounds=())


def test_registry_separates_scalars_from_histograms():
    reg = MetricsRegistry()
    reg.counter("c")
    reg.gauge("g")
    reg.histogram("h", bounds=(1.0,))
    assert {i.name for i in reg.scalars()} == {"c", "g"}
    assert [h.name for h in reg.histograms()] == ["h"]
