"""JSONL/CSV exporters and cross-seed aggregation."""

import csv
import json

from repro.obs.aggregate import aggregate_files, bands, main as aggregate_main
from repro.obs.export import iter_series, load_jsonl, write_csv, write_jsonl


def fake_dump(offset=0.0):
    """A minimal ScenarioMetrics.dump()-shaped dict."""
    return {
        "schema": 1,
        "interval": 1.0,
        "t_end": 3.0,
        "samples": 4,
        "stations": {"P1": "macaw"},
        "series": [
            {"name": "mac.queue", "labels": {"station": "P1"},
             "kind": "gauge", "t": [0.0, 1.0, 2.0, 3.0],
             "v": [0.0 + offset, 1.0 + offset, 2.0 + offset, 1.0 + offset],
             "dropped": 0},
            {"name": "chan.busy_frac", "labels": {},
             "kind": "gauge", "t": [0.0, 1.0, 2.0, 3.0],
             "v": [0.0, 0.5, 0.6, 0.7], "dropped": 0},
        ],
        "histograms": [
            {"name": "net.delay_s", "labels": {"stream": "s"},
             "kind": "histogram", "bounds": [0.1, 1.0],
             "counts": [3, 2, 1], "sum": 2.5, "count": 6},
        ],
    }


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    lines = write_jsonl(path, [fake_dump()], meta={"exp": "table2", "seed": 0})
    assert lines == 3  # two series + one histogram
    loaded = load_jsonl(path)
    assert loaded["meta"]["exp"] == "table2"
    assert loaded["meta"]["runs"] == 1
    series = iter_series(loaded)
    assert [s["name"] for s in series] == ["mac.queue", "chan.busy_frac"]
    assert series[0]["itype"] == "gauge"
    assert series[0]["t"] == [0.0, 1.0, 2.0, 3.0]
    assert loaded["histograms"][0]["counts"] == [3, 2, 1]


def test_jsonl_is_byte_stable_for_identical_dumps(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    write_jsonl(a, [fake_dump()], meta={"seed": 1})
    write_jsonl(b, [fake_dump()], meta={"seed": 1})
    assert a.read_bytes() == b.read_bytes()


def test_csv_long_form(tmp_path):
    path = tmp_path / "run.csv"
    rows = write_csv(path, [fake_dump()])
    assert rows == 8  # 4 points x 2 series
    with open(path, newline="") as handle:
        parsed = list(csv.reader(handle))
    assert parsed[0] == ["run", "name", "labels", "itype", "t", "v"]
    assert parsed[1][:2] == ["0", "mac.queue"]
    assert json.loads(parsed[1][2]) == {"station": "P1"}


def test_bands_mean_min_max_over_three_seeds():
    sets = [fake_dump(offset=o)["series"] for o in (0.0, 1.0, 2.0)]
    merged = bands(sets)
    assert len(merged) == 2
    queue = merged[0]
    assert queue["name"] == "mac.queue"
    assert queue["labels"] == {"station": "P1"}
    assert queue["seeds"] == 3
    assert queue["t"] == [0.0, 1.0, 2.0, 3.0]
    assert queue["mean"] == [1.0, 2.0, 3.0, 2.0]
    assert queue["min"] == [0.0, 1.0, 2.0, 1.0]
    assert queue["max"] == [2.0, 3.0, 4.0, 3.0]
    assert queue["n"] == [3, 3, 3, 3]


def test_bands_align_on_time_not_index():
    # Lazily created instruments start sampling mid-run: seed B's series
    # begins at t=2. Alignment must match sample times, not positions.
    a = [{"name": "g", "labels": {}, "kind": "gauge",
          "t": [0.0, 1.0, 2.0], "v": [10.0, 10.0, 10.0]}]
    b = [{"name": "g", "labels": {}, "kind": "gauge",
          "t": [2.0, 3.0], "v": [20.0, 20.0]}]
    merged = bands([a, b])
    band = merged[0]
    assert band["t"] == [0.0, 1.0, 2.0, 3.0]
    assert band["n"] == [1, 1, 2, 1]
    assert band["mean"] == [10.0, 10.0, 15.0, 20.0]


def test_aggregate_files_and_cli(tmp_path, capsys):
    paths = []
    for seed, offset in enumerate((0.0, 1.0, 2.0)):
        path = tmp_path / f"seed{seed}.jsonl"
        write_jsonl(path, [fake_dump(offset)], meta={"seed": seed})
        paths.append(str(path))

    result = aggregate_files(paths)
    assert result["seeds"] == 3
    assert len(result["bands"]) == 2

    out = tmp_path / "bands.json"
    assert aggregate_main(paths + ["-o", str(out)]) == 0
    assert "3 seeds" in capsys.readouterr().out
    written = json.loads(out.read_text())
    assert written["bands"][0]["mean"] == [1.0, 2.0, 3.0, 2.0]


def test_aggregate_cli_missing_file_exits_2(tmp_path, capsys):
    assert aggregate_main([str(tmp_path / "nope.jsonl")]) == 2
    assert "no such file" in capsys.readouterr().err


def test_bands_reject_duplicate_times_within_one_series():
    import pytest

    dup = [{"name": "g", "labels": {}, "kind": "gauge",
            "t": [0.0, 1.0, 1.0], "v": [1.0, 2.0, 3.0]}]
    with pytest.raises(ValueError, match="duplicate sample time"):
        bands([dup])

    # Equal times *across* seeds are the alignment mechanism, not an error.
    a = [{"name": "g", "labels": {}, "kind": "gauge",
          "t": [0.0, 1.0], "v": [1.0, 2.0]}]
    b = [{"name": "g", "labels": {}, "kind": "gauge",
          "t": [0.0, 1.0], "v": [3.0, 4.0]}]
    assert bands([a, b])[0]["n"] == [2, 2]
