"""Kernel-driven sampler: deadlines, passivity, ring overflow."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import RingSeries, Sampler
from repro.sim.kernel import Simulator


def test_ring_series_plain_append_and_points():
    ring = RingSeries(capacity=4)
    for i in range(3):
        ring.append(float(i), float(i * 10))
    assert len(ring) == 3
    assert ring.dropped == 0
    assert ring.points() == ([0.0, 1.0, 2.0], [0.0, 10.0, 20.0])


def test_ring_series_overflow_drops_oldest_in_time_order():
    ring = RingSeries(capacity=3)
    for i in range(5):
        ring.append(float(i), float(i))
    assert len(ring) == 3
    assert ring.dropped == 2
    times, values = ring.points()
    assert times == [2.0, 3.0, 4.0]  # oldest two fell off, order kept
    assert values == times


def test_ring_series_rejects_zero_capacity():
    with pytest.raises(ValueError):
        RingSeries(capacity=0)


def test_sampler_takes_baseline_then_interval_samples():
    sim = Simulator()
    reg = MetricsRegistry()
    reg.gauge("clock").bind(lambda: sim.now)
    sampler = Sampler(sim, reg, interval=1.0)
    sim.schedule(5.0, lambda: None)
    sim.run(until=5.0)
    times, values = sampler.series("clock")
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
    # Deadline semantics: the sample at t reflects state before the clock
    # reaches t, so the bound read of sim.now lags one interval.
    assert values[0] == 0.0 and values[-1] <= 5.0


def test_sampler_deadlines_use_tick_counter_not_float_accumulation():
    sim = Simulator()
    reg = MetricsRegistry()
    reg.gauge("g").bind(lambda: 1.0)
    sampler = Sampler(sim, reg, interval=0.1)
    sim.run(until=100.0)
    times, _ = sampler.series("g")
    # 0.1 is inexact in binary; naive `t += 0.1` drifts. base + k*interval
    # keeps every deadline within one ulp-scale error of the true grid.
    assert len(times) == 1001
    for k, t in enumerate(times):
        assert t == pytest.approx(0.1 * k, abs=1e-9)


def test_sampler_runs_without_scheduling_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(sim.now))
    sim.schedule(3.0, lambda: fired.append(sim.now))
    reg = MetricsRegistry()
    reg.gauge("g").bind(lambda: float(len(fired)))
    sampler = Sampler(sim, reg, interval=1.0)
    sim.run(until=4.0)
    assert sim.events_fired == 2  # only the two scheduled events
    times, values = sampler.series("g")
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0]
    # state-before-deadline: the t=1.0 event had not fired when the
    # sampler flushed the 1.0 deadline.
    assert values == [0.0, 0.0, 1.0, 1.0, 2.0]


def test_sampler_ring_capacity_bounds_memory():
    sim = Simulator()
    reg = MetricsRegistry()
    reg.gauge("g").bind(lambda: sim.now)
    sampler = Sampler(sim, reg, interval=1.0, capacity=10)
    sim.run(until=50.0)
    key = ("g", ())
    ring = sampler.all_series()[key]
    assert len(ring) == 10
    assert ring.dropped == 41  # 51 samples total, 10 kept
    times, _ = sampler.series("g")
    assert times == [float(t) for t in range(41, 51)]


def test_instruments_created_mid_run_join_later_deadlines():
    sim = Simulator()
    reg = MetricsRegistry()
    reg.gauge("early").bind(lambda: 1.0)
    sampler = Sampler(sim, reg, interval=1.0)

    def create_late():
        reg.gauge("late").bind(lambda: 2.0)

    sim.schedule(2.5, create_late)
    sim.run(until=5.0)
    early_t, _ = sampler.series("early")
    late_t, late_v = sampler.series("late")
    assert early_t[0] == 0.0
    assert late_t[0] == 3.0  # first deadline after creation
    assert all(v == 2.0 for v in late_v)


def test_sampler_rejects_bad_interval_and_detaches():
    sim = Simulator()
    reg = MetricsRegistry()
    with pytest.raises(ValueError):
        Sampler(sim, reg, interval=0.0)
    sampler = Sampler(sim, reg, interval=1.0)
    sampler.detach()
    sim.run(until=3.0)
    assert sampler.samples_taken == 1  # baseline only; nothing after detach
