"""Property-based tests for the event kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kernel import Simulator

delays = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=60,
)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_events_fire_in_nondecreasing_time_order(values):
    sim = Simulator()
    seen = []
    for d in values:
        sim.schedule(d, lambda: seen.append(sim.now))
    sim.run()
    assert len(seen) == len(values)
    assert seen == sorted(seen)


@given(delays)
@settings(max_examples=100, deadline=None)
def test_clock_never_goes_backwards(values):
    sim = Simulator()
    clocks = []
    for d in values:
        sim.schedule(d, lambda: clocks.append(sim.now))
    last = sim.run()
    assert last == max(values)
    assert all(a <= b for a, b in zip(clocks, clocks[1:]))


@given(delays, st.sets(st.integers(min_value=0, max_value=59)))
@settings(max_examples=100, deadline=None)
def test_cancelled_subset_never_fires(values, cancel_indices):
    sim = Simulator()
    fired = []
    handles = [sim.schedule(d, fired.append, i) for i, d in enumerate(values)]
    cancelled = {i for i in cancel_indices if i < len(handles)}
    for i in cancelled:
        handles[i].cancel()
    sim.run()
    assert set(fired) == set(range(len(values))) - cancelled


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=10, allow_nan=False),
                          st.integers(min_value=-2, max_value=2)),
                min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_priority_order_within_instant(items):
    sim = Simulator()
    fired = []
    for time, priority in items:
        sim.at(time, fired.append, (time, priority), priority=priority)
    sim.run()
    # Per instant, priorities must be non-decreasing.
    for (t1, p1), (t2, p2) in zip(fired, fired[1:]):
        if t1 == t2:
            assert p1 <= p2


@given(delays)
@settings(max_examples=50, deadline=None)
def test_step_drains_exactly_all_events(values):
    sim = Simulator()
    for d in values:
        sim.schedule(d, lambda: None)
    steps = 0
    while sim.step():
        steps += 1
    assert steps == len(values)
