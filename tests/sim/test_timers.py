"""Timer semantics: restart, stop, extend."""

from repro.sim.kernel import Simulator
from repro.sim.timers import Timer


def make(sim):
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now), name="t")
    return timer, fired


def test_timer_fires_after_delay():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start(2.0)
    sim.run()
    assert fired == [2.0]


def test_timer_stop_prevents_firing():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start(2.0)
    assert timer.stop()
    sim.run()
    assert fired == []
    assert not timer.running


def test_stop_idle_timer_returns_false():
    sim = Simulator()
    timer, _ = make(sim)
    assert not timer.stop()


def test_restart_cancels_previous_arming():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start(1.0)
    timer.start(3.0)
    sim.run()
    assert fired == [3.0]


def test_restart_after_fire_works():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start(1.0)
    sim.run(until=1.5)
    timer.start(1.0)
    sim.run(until=5.0)
    assert fired == [1.0, 2.5]


def test_expires_at_reports_absolute_time():
    sim = Simulator()
    timer, _ = make(sim)
    timer.start(4.0)
    assert timer.expires_at == 4.0
    timer.stop()
    assert timer.expires_at is None


def test_start_at_absolute():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start_at(7.0)
    sim.run()
    assert fired == [7.0]


def test_extend_to_pushes_out_only_later():
    sim = Simulator()
    timer, fired = make(sim)
    timer.start_at(5.0)
    timer.extend_to(3.0)  # earlier: no effect
    assert timer.expires_at == 5.0
    timer.extend_to(9.0)  # later: extends
    assert timer.expires_at == 9.0
    sim.run()
    assert fired == [9.0]


def test_extend_to_arms_idle_timer():
    sim = Simulator()
    timer, fired = make(sim)
    timer.extend_to(2.0)
    assert timer.running
    sim.run()
    assert fired == [2.0]


def test_extend_to_in_past_fires_now():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    timer, fired = make(sim)
    timer.extend_to(1.0)  # past: clamps to now
    sim.run(until=6.0)
    assert fired == [5.0]


def test_running_flag_lifecycle():
    sim = Simulator()
    timer, _ = make(sim)
    assert not timer.running
    timer.start(1.0)
    assert timer.running
    sim.run()
    assert not timer.running
