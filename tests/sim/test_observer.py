"""Passive clock observer: ordering, exclusivity, determinism neutrality."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_observer_fires_before_the_event_at_that_time():
    sim = Simulator()
    log = []
    sim.attach_observer(lambda t: log.append(("observe", t, sim.now)))
    sim.schedule(2.0, lambda: log.append(("event", sim.now)))
    sim.run()
    # Observed with the clock still at the previous instant.
    assert log == [("observe", 2.0, 0.0), ("event", 2.0)]


def test_observer_called_once_per_clock_advance_not_per_event():
    sim = Simulator()
    advances = []
    sim.attach_observer(advances.append)
    for _ in range(3):
        sim.schedule(1.0, lambda: None)  # three events at the same instant
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert advances == [1.0, 2.0]


def test_observer_sees_horizon_pad():
    sim = Simulator()
    advances = []
    sim.attach_observer(advances.append)
    sim.schedule(1.0, lambda: None)
    sim.run(until=5.0)
    assert advances == [1.0, 5.0]
    assert sim.now == 5.0


def test_observer_not_called_for_events_beyond_until():
    sim = Simulator()
    advances = []
    sim.attach_observer(advances.append)
    sim.schedule(1.0, lambda: None)
    sim.schedule(9.0, lambda: None)
    sim.run(until=5.0)
    assert advances == [1.0, 5.0]  # never 9.0


def test_only_one_observer_at_a_time():
    sim = Simulator()
    first = lambda t: None  # noqa: E731
    sim.attach_observer(first)
    with pytest.raises(SimulationError):
        sim.attach_observer(lambda t: None)
    sim.detach_observer(first)
    sim.attach_observer(lambda t: None)  # slot freed


def test_detach_ignores_foreign_callback():
    sim = Simulator()
    mine = lambda t: None  # noqa: E731
    sim.attach_observer(mine)
    sim.detach_observer(lambda t: None)  # not the attached one: no-op
    with pytest.raises(SimulationError):
        sim.attach_observer(lambda t: None)


def test_observer_is_invisible_to_event_count():
    def workload(sim):
        def chain(n):
            if n:
                sim.schedule(0.5, chain, n - 1)
        chain(20)
        sim.run(until=30.0)
        return sim.events_fired

    plain = Simulator()
    observed = Simulator()
    observed.attach_observer(lambda t: None)
    assert workload(plain) == workload(observed)


def test_observer_attached_by_a_fired_event_takes_effect_same_run():
    # The run loop must re-read the observer slot every iteration: an
    # observer attached by an event mid-run sees every later advance.
    sim = Simulator()
    advances = []
    sim.schedule(1.0, lambda: sim.attach_observer(advances.append))
    sim.schedule(2.0, lambda: None)
    sim.schedule(3.0, lambda: None)
    sim.run(until=5.0)
    assert advances == [2.0, 3.0, 5.0]


def test_observer_detached_by_a_fired_event_takes_effect_same_run():
    sim = Simulator()
    advances = []
    sim.attach_observer(advances.append)
    sim.schedule(1.0, lambda: sim.detach_observer(advances.append))
    sim.schedule(2.0, lambda: None)
    sim.run(until=5.0)
    assert advances == [1.0]  # nothing after the detach, not even the pad


def test_step_drives_observer_too():
    sim = Simulator()
    advances = []
    sim.attach_observer(advances.append)
    sim.schedule(1.0, lambda: None)
    sim.schedule(1.0, lambda: None)
    sim.step()
    assert advances == [1.0]
    sim.step()  # same instant: clock does not advance again
    assert advances == [1.0]
