"""Event-queue backends: registry, ordering, compaction, pooling, rearm."""

import pytest

from repro.sim.kernel import SimulationError, Simulator
from repro.sim.queues import (
    COMPACT_MIN_SIZE,
    DEFAULT_BUCKET_WIDTH,
    QUEUE_ENV,
    WheelQueue,
    make_queue,
    queue_names,
    resolve_backend,
)
from repro.sim.timers import Timer

BACKENDS = queue_names()


# ----------------------------------------------------------------- registry

def test_both_backends_are_registered():
    assert set(BACKENDS) >= {"heap", "wheel"}


def test_resolve_backend_defaults_to_heap(monkeypatch):
    monkeypatch.delenv(QUEUE_ENV, raising=False)
    assert resolve_backend(None) == "heap"


def test_resolve_backend_reads_the_environment(monkeypatch):
    monkeypatch.setenv(QUEUE_ENV, "wheel")
    assert resolve_backend(None) == "wheel"
    monkeypatch.setenv(QUEUE_ENV, "  ")  # blank: same as unset
    assert resolve_backend(None) == "heap"


def test_explicit_spec_wins_over_environment(monkeypatch):
    monkeypatch.setenv(QUEUE_ENV, "wheel")
    assert resolve_backend("heap") == "heap"


def test_unknown_backend_rejected_eagerly():
    with pytest.raises(ValueError, match="unknown event-queue backend"):
        resolve_backend("skiplist")


@pytest.mark.parametrize("spec", ["wheel:abc", "wheel:0", "wheel:-1", "heap:2"])
def test_malformed_specs_rejected(spec):
    with pytest.raises(ValueError):
        resolve_backend(spec)


def test_wheel_width_argument_is_honoured():
    queue = make_queue("wheel:0.25")
    assert isinstance(queue, WheelQueue)
    assert queue.bucket_width == 0.25
    assert make_queue("wheel").bucket_width == DEFAULT_BUCKET_WIDTH


def test_simulator_reports_its_backend():
    assert Simulator(queue="wheel").queue_name == "wheel"
    assert Simulator(queue="heap").queue_name == "heap"


# ----------------------------------------------------------------- ordering

@pytest.mark.parametrize("queue", ["heap", "wheel", "wheel:0.001"])
def test_priority_and_fifo_ordering_at_one_instant(queue):
    sim = Simulator(queue=queue)
    fired = []
    sim.at(1.0, fired.append, "b")
    sim.at(1.0, fired.append, "late", priority=5)
    sim.at(1.0, fired.append, "early", priority=-1)
    sim.at(1.0, fired.append, "c")
    sim.run()
    assert fired == ["early", "b", "c", "late"]


@pytest.mark.parametrize("queue", ["heap", "wheel"])
def test_call_soon_runs_after_events_already_due_now(queue):
    sim = Simulator(queue=queue)
    fired = []
    sim.schedule(1.0, lambda: (fired.append("first"),
                               sim.call_soon(fired.append, "soon")))
    sim.at(1.0, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "soon"]


def test_wheel_orders_across_bucket_boundaries():
    # Events straddling many buckets, scheduled out of order.
    sim = Simulator(queue="wheel:0.01")
    fired = []
    for t in (0.095, 0.005, 0.350, 0.011, 0.0999, 0.010):
        sim.at(t, fired.append, t)
    sim.run()
    assert fired == sorted(fired)


# ------------------------------------------------- dead-entry accounting

@pytest.mark.parametrize("queue", ["heap", "wheel"])
def test_step_driven_runs_compact_too(queue):
    # Satellite: step()/peek() used to pop cancelled heads without
    # feeding the compaction pressure the run loop maintained.  The
    # accounting now lives in the backend, shared by every pop path.
    sim = Simulator(queue=queue)
    keep = sim.schedule(2000.0, lambda: None)
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(2000)]
    for handle in handles:
        handle.cancel()
    assert sim.pending_count() == 1
    assert len(sim._queue) <= COMPACT_MIN_SIZE + 1
    assert sim.peek() == 2000.0  # peeking past dead heads keeps counts sane
    assert sim.step()
    assert keep.fired
    assert not sim.step()
    assert len(sim._queue) == 0


@pytest.mark.parametrize("queue", ["heap", "wheel"])
def test_peek_purges_dead_heads_without_losing_live_entries(queue):
    sim = Simulator(queue=queue)
    dead = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    dead.cancel()
    assert sim.peek() == 2.0
    assert sim.pending_count() == 1
    sim.run()
    assert sim.events_fired == 1


# ------------------------------------------------------------------ pooling

@pytest.mark.parametrize("queue", ["heap", "wheel"])
def test_timer_handles_are_recycled_through_the_free_list(queue):
    sim = Simulator(queue=queue)
    timer = Timer(sim, lambda: None)
    timer.start(1.0)
    sim.run(until=1.0)
    assert len(sim._free) == 1
    recycled = sim._free[0]
    timer.start(1.0)
    # The heap backend cannot rearm in place, so the fresh arming must
    # have come from the free list; the wheel rearms a brand-new handle
    # the same way.
    assert timer._handle is recycled
    assert timer._handle.pending
    sim.run(until=5.0)
    assert sim.events_fired == 2


@pytest.mark.parametrize("queue", ["heap", "wheel"])
def test_cancelled_pooled_handles_return_to_the_pool_once(queue):
    sim = Simulator(queue=queue)
    timer = Timer(sim, lambda: None)
    for _ in range(5):
        timer.start(1.0)
        timer.stop()
        sim.run(until=sim.now + 2.0)  # purge the dead entry
    assert len(sim._free) <= 1  # the same object cycles; never duplicated
    assert len(set(map(id, sim._free))) == len(sim._free)


def test_plain_events_are_never_pooled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim._free == []


# ---------------------------------------------------------------- reschedule

def test_wheel_rearm_reuses_the_live_handle_in_place():
    sim = Simulator(queue="wheel")
    timer = Timer(sim, lambda: None)
    timer.start(1.0)
    first = timer._handle
    timer.start(4.0)  # rearm while pending: in-place reschedule
    assert timer._handle is first
    assert timer.expires_at == 4.0
    assert sim.pending_count() == 1
    fired_at = []
    timer._callback = lambda: fired_at.append(sim.now)
    sim.run()
    assert fired_at == [4.0]


def test_heap_rearm_falls_back_to_cancel_and_reschedule():
    sim = Simulator(queue="heap")
    timer = Timer(sim, lambda: None)
    timer.start(1.0)
    first = timer._handle
    timer.start(4.0)
    assert timer._handle is not first
    assert first.cancelled
    assert timer.expires_at == 4.0
    assert sim.pending_count() == 1


def test_reschedule_rejects_foreign_or_spent_handles():
    sim = Simulator(queue="wheel")
    other = Simulator(queue="wheel")
    handle = sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        other.reschedule(handle, 2.0)
    handle.cancel()
    with pytest.raises(SimulationError):
        sim.reschedule(handle, 2.0)


def test_reschedule_into_the_past_is_rejected():
    sim = Simulator(queue="wheel")
    sim.schedule(5.0, lambda: None)
    sim.run(until=3.0)
    handle = sim.schedule(4.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.reschedule(handle, 1.0)


def test_reschedule_survives_compaction_triggered_mid_call():
    # Regression: reschedule() used to push the new entry and then run
    # the compaction check while the handle still carried its OLD seq —
    # a sweep firing at that instant kept the stale entry and dropped
    # the fresh one, silently losing the event forever.
    sim = Simulator(queue="wheel")
    fired = []
    moved = sim.schedule(10.0, fired.append, "moved")
    chaff = [sim.schedule((i + 1) * 0.001, lambda: None) for i in range(1024)]
    for handle in chaff[:513]:
        handle.cancel()
    # size=1025, live=512: the push inside reschedule() tips the queue
    # past COMPACT_MIN_SIZE's half-live threshold, so the sweep runs
    # mid-reschedule — exactly the window the old code got wrong.
    assert len(sim._queue) == 1025
    assert sim.pending_count() == 512
    assert sim.reschedule(moved, 20.0)
    assert moved.pending
    sim.run()
    assert fired == ["moved"]
    assert sim.now == 20.0
    assert sim.pending_count() == 0
    assert sim.events_fired == 512  # 511 surviving chaff + the moved event


def test_timer_rearm_survives_compaction_triggered_mid_call():
    # Same window as above, but through the Timer rearm fast path that
    # every MAC timeout restart exercises.
    sim = Simulator(queue="wheel")
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    timer.start(10.0)
    chaff = [sim.schedule((i + 1) * 0.001, lambda: None) for i in range(1024)]
    for handle in chaff[:513]:
        handle.cancel()
    timer.start(20.0)  # in-place rearm; compaction fires mid-call
    assert timer.running
    sim.run()
    assert fired == [20.0]
    assert sim.pending_count() == 0


@pytest.mark.parametrize("queue", ["heap", "wheel", "wheel:0.001"])
def test_infinite_time_sentinel_works_on_every_backend(queue):
    # The heap happily queues a sentinel at float('inf'); the wheel's
    # bucket-key computation used to raise OverflowError on it, breaking
    # the backends-are-interchangeable contract.
    sim = Simulator(queue=queue)
    fired = []
    sentinel = sim.at(float("inf"), fired.append, "never")
    sim.at(1.0, fired.append, "real")
    sim.run(until=100.0)
    assert fired == ["real"]
    assert sim.pending_count() == 1
    assert sim.peek() == float("inf")
    sentinel.cancel()
    assert sim.pending_count() == 0


def test_wheel_huge_finite_time_with_tiny_width_is_parked_far_future():
    # A finite time whose key computation overflows float range lands in
    # the far bucket instead of crashing; ordering is still by time.
    sim = Simulator(queue="wheel:0.001")
    fired = []
    sim.at(1e307, fired.append, "huge")
    sim.at(float("inf"), fired.append, "inf")
    sim.at(2.0, fired.append, "near")
    sim.run(until=1e308)
    assert fired == ["near", "huge"]
    assert sim.pending_count() == 1


def test_step_inside_run_is_rejected():
    # run() batches events_fired in a local; a re-entrant step()'s direct
    # increment would be clobbered by the write-back, so it must raise.
    sim = Simulator()
    caught = []
    def probe():
        with pytest.raises(SimulationError):
            sim.step()
        caught.append(True)
    sim.schedule(1.0, probe)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert caught == [True]
    assert sim.events_fired == 2


def test_wheel_stale_entries_never_fire():
    sim = Simulator(queue="wheel")
    fired = []
    timer = Timer(sim, lambda: fired.append(sim.now))
    for t in (1.0, 2.0, 3.0, 0.5):
        timer.start(t)  # each rearm leaves a stale entry behind
    sim.run(until=10.0)
    assert fired == [0.5]  # only the last arming fires
    assert sim.pending_count() == 0
