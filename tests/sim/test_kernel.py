"""Kernel scheduling semantics."""

import pytest

from repro.sim.kernel import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_schedule_and_run_fires_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]


def test_clock_advances_to_event_times():
    sim = Simulator()
    seen = []
    sim.schedule(1.5, lambda: seen.append(sim.now))
    sim.schedule(4.25, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [1.5, 4.25]


def test_same_time_events_fire_in_scheduling_order():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_priority_overrides_scheduling_order_at_ties():
    sim = Simulator()
    fired = []
    sim.at(1.0, fired.append, "normal")
    sim.at(1.0, fired.append, "early", priority=-1)
    sim.run()
    assert fired == ["early", "normal"]


def test_run_until_is_inclusive():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, fired.append, "edge")
    sim.schedule(5.0001, fired.append, "past")
    sim.run(until=5.0)
    assert fired == ["edge"]
    assert sim.now == 5.0


def test_run_until_advances_clock_past_queue_exhaustion():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_consecutive_runs_continue():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(7.0, fired.append, 7)
    sim.run(until=5.0)
    assert fired == [1]
    sim.run(until=10.0)
    assert fired == [1, 7]


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "x")
    assert handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled


def test_cancel_twice_returns_false():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    assert handle.cancel()
    assert not handle.cancel()


def test_cancel_after_fire_returns_false():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert handle.fired
    assert not handle.cancel()


def test_events_scheduled_during_run_fire():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 3.0:
            sim.schedule(1.0, chain)

    sim.schedule(1.0, chain)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_call_soon_runs_at_current_instant_after_pending():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.call_soon(fired.append, "soon")

    sim.at(1.0, first)
    sim.at(1.0, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "soon"]


def test_scheduling_in_the_past_raises():
    sim = Simulator()
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1.0, lambda: None)


def test_negative_delay_raises():
    with pytest.raises(SimulationError):
        Simulator().schedule(-0.1, lambda: None)


def test_run_until_in_past_raises():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, lambda: (fired.append(2), sim.stop()))
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1, 2]
    assert sim.peek() == 3.0


def test_step_fires_exactly_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_peek_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek() == 2.0


def test_pending_count_excludes_cancelled():
    sim = Simulator()
    keep = sim.schedule(1.0, lambda: None)
    drop = sim.schedule(2.0, lambda: None)
    drop.cancel()
    assert sim.pending_count() == 1
    assert keep.pending


def test_events_fired_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_fired == 4


def test_run_is_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, nested)
    sim.run()
    assert len(errors) == 1


def test_pending_count_is_live_counter_not_heap_walk():
    sim = Simulator()
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(100)]
    assert sim.pending_count() == 100
    for handle in handles[::2]:
        handle.cancel()
    assert sim.pending_count() == 50
    sim.run(until=10.0)  # fires the 5 surviving events at t=2,4,6,8,10
    assert sim.pending_count() == 50 - 5
    assert len(sim._queue) >= sim.pending_count()


def test_mass_cancel_compacts_heap():
    sim = Simulator()
    keep = sim.schedule(2000.0, lambda: None)
    handles = [sim.schedule(float(i + 1), lambda: None) for i in range(2000)]
    for handle in handles:
        handle.cancel()
    # Cancelled entries dominate a large queue, so compaction must sweep
    # them out; the structure stays bounded near the compaction threshold
    # instead of dragging 2000 dead entries through every sift.
    from repro.sim.queues import COMPACT_MIN_SIZE

    assert sim.pending_count() == 1
    assert len(sim._queue) <= COMPACT_MIN_SIZE + 1
    sim.run()
    assert sim.now == 2000.0
    assert keep.fired


def test_compaction_preserves_firing_order():
    sim = Simulator()
    fired = []
    survivors = []
    for i in range(1500):
        handle = sim.schedule(float(i + 1), fired.append, i)
        if i % 3:
            handle.cancel()
        else:
            survivors.append(i)
    sim.run()
    assert fired == survivors


def test_cancel_inside_callback_keeps_counter_consistent():
    sim = Simulator()
    victim = sim.schedule(2.0, lambda: None)
    sim.schedule(1.0, victim.cancel)
    sim.run()
    assert sim.pending_count() == 0
    assert sim.events_fired == 1
