"""Random stream registry: determinism and independence."""

import numpy as np

from repro.sim.rng import RandomStreams


def test_same_seed_and_name_reproduces_sequence():
    a = RandomStreams(seed=42).get("mac:P1")
    b = RandomStreams(seed=42).get("mac:P1")
    assert list(a.integers(0, 1000, 20)) == list(b.integers(0, 1000, 20))


def test_different_names_give_different_sequences():
    streams = RandomStreams(seed=42)
    a = list(streams.get("mac:P1").integers(0, 10**9, 10))
    b = list(streams.get("mac:P2").integers(0, 10**9, 10))
    assert a != b


def test_different_seeds_differ():
    a = list(RandomStreams(seed=1).get("x").integers(0, 10**9, 10))
    b = list(RandomStreams(seed=2).get("x").integers(0, 10**9, 10))
    assert a != b


def test_creation_order_is_irrelevant():
    one = RandomStreams(seed=7)
    one.get("a")
    seq_b_after = list(one.get("b").integers(0, 10**9, 5))
    two = RandomStreams(seed=7)
    seq_b_first = list(two.get("b").integers(0, 10**9, 5))
    assert seq_b_after == seq_b_first


def test_get_returns_same_generator_instance():
    streams = RandomStreams()
    assert streams.get("x") is streams.get("x")


def test_contains():
    streams = RandomStreams()
    assert "x" not in streams
    streams.get("x")
    assert "x" in streams


def test_uniform_slots_bounds():
    streams = RandomStreams(seed=3)
    draws = [streams.uniform_slots("s", 1, 4) for _ in range(500)]
    assert min(draws) == 1
    assert max(draws) == 4


def test_uniform_slots_covers_range_roughly_uniformly():
    streams = RandomStreams(seed=3)
    draws = [streams.uniform_slots("s", 1, 4) for _ in range(4000)]
    counts = np.bincount(draws, minlength=5)[1:5]
    assert all(800 < c < 1200 for c in counts)


def test_uniform_slots_degenerate_range():
    streams = RandomStreams(seed=3)
    assert streams.uniform_slots("s", 2, 2) == 2
    # high < low clamps to low
    assert streams.uniform_slots("s", 3, 1) == 3


def _crc32_colliding_pair():
    """Brute-force two distinct names with equal crc32 (birthday bound)."""
    import zlib

    seen = {}
    i = 0
    while True:
        name = f"s{i}"
        key = zlib.crc32(name.encode("utf-8"))
        if key in seen:
            return seen[key], name
        seen[key] = name
        i += 1


def test_crc32_collision_raises_instead_of_sharing_a_seed():
    import pytest

    first, second = _crc32_colliding_pair()
    assert first != second

    streams = RandomStreams(seed=42)
    streams.get(first)
    with pytest.raises(ValueError, match="collides"):
        streams.get(second)

    # Creation order must not matter: the survivor is whichever came first.
    streams = RandomStreams(seed=42)
    streams.get(second)
    with pytest.raises(ValueError, match="collides"):
        streams.get(first)


def test_collision_guard_leaves_repeat_lookups_alone():
    streams = RandomStreams(seed=42)
    a = streams.get("mac:P1")
    assert streams.get("mac:P1") is a  # same name re-registers freely
