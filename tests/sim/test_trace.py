"""Trace recorder behaviour."""

from repro.sim.trace import Trace, TraceRecord


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.record(1.0, "send", "P1", frame="RTS")
    assert len(trace) == 0


def test_record_and_iterate():
    trace = Trace()
    trace.record(1.0, "send", "P1", frame="RTS")
    trace.record(2.0, "send", "P2", frame="CTS")
    assert [r.station for r in trace] == ["P1", "P2"]


def test_select_by_category_and_station():
    trace = Trace()
    trace.record(1.0, "send", "P1")
    trace.record(2.0, "state", "P1")
    trace.record(3.0, "send", "P2")
    assert len(trace.select(category="send")) == 2
    assert len(trace.select(station="P1")) == 2
    assert len(trace.select(category="send", station="P1")) == 1


def test_counts_histogram():
    trace = Trace()
    trace.record(1.0, "send", "P1")
    trace.record(2.0, "send", "P1")
    trace.record(3.0, "state", "P2")
    assert trace.counts() == {("send", "P1"): 2, ("state", "P2"): 1}


def test_capacity_drops_and_counts():
    trace = Trace(capacity=2)
    for t in range(5):
        trace.record(float(t), "send", "P1")
    assert len(trace) == 2
    assert trace.dropped == 3


def test_clear_resets():
    trace = Trace(capacity=1)
    trace.record(0.0, "a", "s")
    trace.record(1.0, "a", "s")
    trace.clear()
    assert len(trace) == 0
    assert trace.dropped == 0
    assert trace.enabled


def test_record_is_frozen():
    record = TraceRecord(1.0, "send", "P1", {"k": 1})
    assert record.matches(category="send")
    assert not record.matches(category="state")
    assert record.matches(station="P1")
    assert not record.matches(station="P2")
