"""ScenarioBuilder: construction, wiring, events."""

import pytest

from repro.core.config import maca_config, macaw_config
from repro.core.macaw import MacawMac
from repro.mac.csma import CsmaMac
from repro.mac.maca import MacaMac
from repro.mac.timing import MacTiming
from repro.phy.graph_medium import GraphMedium
from repro.phy.grid_medium import GridMedium
from repro.phy.noise import PacketErrorModel
from repro.topo.builder import ScenarioBuilder


def two_station_builder(**kwargs):
    builder = ScenarioBuilder(seed=1, **kwargs)
    builder.add_base("B")
    builder.add_pad("P")
    if kwargs.get("medium", "graph") == "graph":
        builder.clique("B", "P")
    builder.udp("P", "B", 32.0)
    return builder


def test_build_and_run_round_trip():
    scenario = two_station_builder().build().run(10.0)
    assert scenario.throughput("P-B", warmup=2.0) > 25.0


def test_throughput_requires_run():
    scenario = two_station_builder().build()
    with pytest.raises(RuntimeError):
        scenario.throughput("P-B")


def test_protocol_selection():
    for protocol, cls in (("macaw", MacawMac), ("maca", MacaMac), ("csma", CsmaMac)):
        builder = ScenarioBuilder(seed=1, protocol=protocol)
        builder.add_pad("P")
        scenario = builder.build()
        assert isinstance(scenario.station("P").mac, cls)


def test_per_station_protocol_override():
    builder = ScenarioBuilder(seed=1, protocol="macaw")
    builder.add_pad("P", protocol="csma")
    builder.add_pad("Q")
    scenario = builder.build()
    assert isinstance(scenario.station("P").mac, CsmaMac)
    assert isinstance(scenario.station("Q").mac, MacawMac)


def test_config_flows_to_macs():
    builder = ScenarioBuilder(seed=1, protocol="macaw", config=macaw_config(use_ds=False))
    builder.add_pad("P")
    scenario = builder.build()
    assert scenario.station("P").mac.config.use_ds is False


def test_duplicate_station_rejected():
    builder = ScenarioBuilder()
    builder.add_pad("P")
    with pytest.raises(ValueError):
        builder.add_pad("P")


def test_unknown_protocol_rejected():
    builder = ScenarioBuilder(protocol="tdma")
    builder.add_pad("P")
    with pytest.raises(ValueError):
        builder.build()


def test_medium_kinds():
    assert isinstance(two_station_builder().build().medium, GraphMedium)
    builder = ScenarioBuilder(seed=1, medium="grid")
    builder.add_pad("P", (0.5, 0.5, 0.5))
    assert isinstance(builder.build().medium, GridMedium)
    with pytest.raises(ValueError):
        ScenarioBuilder(medium="fluid")


def test_links_require_graph_medium():
    builder = ScenarioBuilder(seed=1, medium="grid")
    builder.add_pad("A", (0.5, 0.5, 0.5))
    builder.add_pad("B", (3.5, 0.5, 0.5))
    builder.link("A", "B")
    with pytest.raises(ValueError):
        builder.build()


def test_stream_ids_default_and_custom():
    builder = ScenarioBuilder(seed=1)
    builder.add_pad("A")
    builder.add_pad("B")
    builder.clique("A", "B")
    assert builder.udp("A", "B", 8.0) == "A-B"
    assert builder.udp("B", "A", 8.0, stream_id="down") == "down"
    scenario = builder.build()
    assert set(scenario.streams) == {"A-B", "down"}


def test_noise_attached():
    builder = two_station_builder()
    builder.noise(PacketErrorModel(1.0))
    scenario = builder.build().run(5.0)
    assert scenario.throughput("P-B", warmup=0.0) == 0.0


def test_scheduled_event_runs():
    builder = two_station_builder()
    seen = []
    builder.at(3.0, lambda scenario: seen.append(scenario.sim.now))
    builder.build().run(5.0)
    assert seen == [3.0]


def test_power_off_at_stops_stream():
    builder = two_station_builder()
    builder.power_off_at("P", 5.0)
    scenario = builder.build().run(10.0)
    before = scenario.recorder.throughput_pps("P-B", 1.0, 5.0)
    after = scenario.recorder.throughput_pps("P-B", 6.0, 10.0)
    assert before > 25.0
    assert after == 0.0


def test_custom_timing_flows_to_macs():
    timing = MacTiming(margin_slots=2.0)
    builder = two_station_builder(timing=timing)
    scenario = builder.build()
    assert scenario.station("P").mac.timing.margin_slots == 2.0


def test_build_is_repeatable():
    builder = two_station_builder()
    first = builder.build().run(5.0).throughput("P-B", warmup=1.0)
    second = builder.build().run(5.0).throughput("P-B", warmup=1.0)
    assert first == second  # same seed, fresh simulator each time


def test_tcp_stream_built():
    builder = ScenarioBuilder(seed=1)
    builder.add_base("B")
    builder.add_pad("P")
    builder.clique("B", "P")
    builder.tcp("P", "B", 16.0)
    scenario = builder.build().run(10.0)
    assert scenario.throughput("P-B", warmup=2.0) > 10.0


def test_link_rejects_undeclared_stations():
    builder = ScenarioBuilder(seed=1)
    builder.add_base("B")
    with pytest.raises(ValueError, match="unknown station 'P'.*add_pad"):
        builder.link("B", "P")


def test_clique_rejects_undeclared_stations():
    builder = ScenarioBuilder(seed=1)
    builder.add_base("B")
    builder.add_pad("P")
    with pytest.raises(ValueError, match="unknown station 'Q'"):
        builder.clique("B", "P", "Q")
