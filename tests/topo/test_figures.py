"""Figure topologies: connectivity must match the paper's text exactly."""

import pytest

from repro.topo import figures


def connectivity(scenario):
    """Set of frozenset({a, b}) links in the graph medium."""
    medium = scenario.medium
    links = set()
    for port in medium.ports:
        for peer in medium.neighbors(port):
            links.add(frozenset({port.name, peer.name}))
    return links


def has_link(scenario, a, b):
    return frozenset({a, b}) in connectivity(scenario)


def test_fig1_chain():
    scenario = figures.fig1_hidden_terminal().build()
    assert has_link(scenario, "A", "B")
    assert has_link(scenario, "B", "C")
    assert has_link(scenario, "C", "D")
    assert not has_link(scenario, "A", "C")  # hidden from each other
    assert not has_link(scenario, "B", "D")


def test_fig2_single_cell():
    scenario = figures.fig2_two_pads().build()
    for pair in (("B", "P1"), ("B", "P2"), ("P1", "P2")):
        assert has_link(scenario, *pair)
    assert set(scenario.streams) == {"P1-B", "P2-B"}


def test_fig2_grid_variant_is_geometric():
    scenario = figures.fig2_two_pads(medium="grid").build()
    medium = scenario.medium
    b = scenario.station("B").mac
    p1 = scenario.station("P1").mac
    p2 = scenario.station("P2").mac
    assert medium.in_range(b, p1) and medium.in_range(b, p2)
    assert medium.in_range(p1, p2)
    # Pads are 6 feet below the base (§3).
    assert b.position[2] - p1.position[2] == pytest.approx(6.0)


def test_fig3_six_pads():
    scenario = figures.fig3_six_pads().build()
    assert len(scenario.stations) == 7
    assert len(scenario.streams) == 6


def test_fig4_stream_directions():
    scenario = figures.fig4_mixed_directions().build()
    assert set(scenario.streams) == {"B-P1", "B-P2", "P3-B"}


def test_fig5_exposed_terminals():
    scenario = figures.fig5_exposed_pads().build()
    assert has_link(scenario, "P1", "B1")
    assert has_link(scenario, "P2", "B2")
    assert has_link(scenario, "P1", "P2")     # the exposure
    assert not has_link(scenario, "B1", "B2")
    assert not has_link(scenario, "P1", "B2")
    assert set(scenario.streams) == {"P1-B1", "P2-B2"}


def test_fig6_is_fig5_reversed():
    five = figures.fig5_exposed_pads().build()
    six = figures.fig6_reversed_flows().build()
    assert connectivity(five) == connectivity(six)
    assert set(six.streams) == {"B1-P1", "B2-P2"}


def test_fig7_mixed_direction():
    scenario = figures.fig7_unsolved().build()
    assert set(scenario.streams) == {"B1-P1", "P2-B2"}
    assert has_link(scenario, "P1", "P2")


def test_fig8_border_topology():
    scenario = figures.fig8_leakage().build()
    # Border pads P1-P5 mutually in range.
    for i in range(1, 5):
        assert has_link(scenario, f"P{i}", "P5")
    # Interior pad P6 hears only its base.
    assert not has_link(scenario, "P6", "P5")
    assert has_link(scenario, "P6", "B2")
    # No pad hears the other cell's base.
    assert not has_link(scenario, "P1", "B2")
    assert not has_link(scenario, "P5", "B1")


def test_fig9_power_off_scheduled():
    scenario = figures.fig9_dead_pad(power_off_at=3.0).build()
    assert scenario.station("P1").powered
    scenario.run(5.0)
    assert not scenario.station("P1").powered
    assert scenario.station("P2").powered


def test_fig10_connectivity():
    scenario = figures.fig10_three_cells().build()
    # P1-P5 mutual range; each hears only its own base.
    for i in range(1, 5):
        assert has_link(scenario, f"P{i}", "P5")
        assert has_link(scenario, f"P{i}", "B1")
        assert not has_link(scenario, f"P{i}", "B2")
    assert has_link(scenario, "P5", "B2")
    assert not has_link(scenario, "P5", "B1")
    # P6 straddles C2/C3.
    assert has_link(scenario, "P6", "B2")
    assert has_link(scenario, "P6", "B3")
    assert not has_link(scenario, "P6", "P5")
    assert len(scenario.streams) == 11


def test_fig11_p7_arrives_at_300():
    scenario = figures.fig11_office(p7_arrival_s=2.0).build()
    assert not has_link(scenario, "P7", "B4")
    scenario.run(3.0)
    assert has_link(scenario, "P7", "B4")
    assert has_link(scenario, "P7", "P1")
    assert has_link(scenario, "P7", "P3")
    assert not has_link(scenario, "P7", "P2")


def test_fig11_intra_cell_and_cross_cell_links():
    scenario = figures.fig11_office().build()
    # C1 pads hear each other and B1.
    for i in range(1, 5):
        assert has_link(scenario, f"P{i}", "B1")
    assert has_link(scenario, "P1", "P2")
    # P4, P5, P6 hear each other (§3.5).
    assert has_link(scenario, "P4", "P5")
    assert has_link(scenario, "P4", "P6")
    assert has_link(scenario, "P5", "P6")
    assert len(scenario.streams) == 7


def test_single_stream_cell_transports():
    udp = figures.single_stream_cell(transport="udp").build()
    assert "P-B" in udp.streams
    tcp = figures.single_stream_cell(transport="tcp").build()
    assert "P-B" in tcp.streams
    with pytest.raises(ValueError):
        figures.single_stream_cell(transport="sctp")
