"""Station wrapper."""

import pytest

from repro.core.config import macaw_config
from repro.core.macaw import MacawMac
from repro.net.sink import FlowRecorder
from repro.phy.graph_medium import GraphMedium
from repro.sim.kernel import Simulator
from repro.topo.station import Station


def make_station(kind="pad"):
    sim = Simulator()
    medium = GraphMedium(sim)
    mac = MacawMac(sim, medium, "S", config=macaw_config())
    return Station("S", kind, mac, FlowRecorder())


def test_kinds_validated():
    make_station("pad")
    make_station("base")
    with pytest.raises(ValueError):
        make_station("router")


def test_position_delegates_to_mac():
    station = make_station()
    station.position = (1.0, 2.0, 3.0)
    assert station.mac.position == (1.0, 2.0, 3.0)
    assert station.position == (1.0, 2.0, 3.0)


def test_power_cycle():
    station = make_station()
    assert station.powered
    station.power_off()
    assert not station.powered
    assert not station.mac.powered
    station.power_on()
    assert station.powered


def test_dispatcher_wired_to_mac():
    station = make_station()
    assert station.dispatcher.mac is station.mac
    assert station.mac.on_deliver is not None
