"""Property-based tests for path-loss models."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.pathloss import NearFieldPathLoss

gammas = st.floats(min_value=1.0, max_value=10.0, allow_nan=False)
distances = st.floats(min_value=1.0, max_value=1000.0, allow_nan=False)
powers = st.floats(min_value=1e-6, max_value=1e3, allow_nan=False)


@given(gammas, powers, distances, distances)
@settings(max_examples=200, deadline=None)
def test_power_monotone_in_distance(gamma, tx, d1, d2):
    model = NearFieldPathLoss(gamma=gamma)
    lo, hi = sorted((d1, d2))
    assert model.received_power_mw(tx, lo) >= model.received_power_mw(tx, hi)


@given(gammas, powers, distances)
@settings(max_examples=200, deadline=None)
def test_power_linear_in_tx_power(gamma, tx, d):
    model = NearFieldPathLoss(gamma=gamma)
    assert model.received_power_mw(2 * tx, d) == (
        2 * model.received_power_mw(tx, d)
    )


@given(gammas, powers, st.floats(min_value=2.0, max_value=500.0))
@settings(max_examples=100, deadline=None)
def test_range_inversion_round_trip(gamma, tx, d):
    model = NearFieldPathLoss(gamma=gamma)
    threshold = model.received_power_mw(tx, d)
    recovered = model.range_for_threshold_ft(tx, threshold)
    assert abs(recovered - d) / d < 1e-6


@given(gammas)
@settings(max_examples=100, deadline=None)
def test_capture_ratio_definition(gamma):
    import math

    model = NearFieldPathLoss(gamma=gamma)
    ratio = model.capture_distance_ratio(10.0)
    # A signal from distance d and an interferer at d*ratio differ by 10 dB.
    near = model.received_power_mw(1.0, 10.0)
    far = model.received_power_mw(1.0, 10.0 * ratio)
    assert abs(10.0 * math.log10(near / far) - 10.0) < 1e-6
