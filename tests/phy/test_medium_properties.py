"""Property-based tests on medium invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.graph_medium import GraphMedium
from repro.sim.kernel import Simulator
from tests.phy.conftest import RecordingPort, data


# Random transmission schedules: (sender index, start time) pairs.
schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.floats(min_value=0.0, max_value=0.5, allow_nan=False)),
    min_size=1,
    max_size=25,
)


def build_clique(n=4):
    sim = Simulator(seed=0)
    medium = GraphMedium(sim)
    ports = []
    for i in range(n):
        port = RecordingPort(f"S{i}")
        medium.attach(port)
        ports.append(port)
    medium.connect_clique(ports)
    return sim, medium, ports


@given(schedules)
@settings(max_examples=60, deadline=None)
def test_every_transmission_completes_exactly_once(plan):
    sim, medium, ports = build_clique()
    started = []

    def try_send(i):
        sender = ports[i]
        if not medium.is_transmitting(sender):
            tx = medium.transmit(sender, data(sender.name, "S9"))
            started.append(tx)

    for i, at in plan:
        sim.at(at, try_send, i)
    sim.run()
    completed = [tx for port in ports for tx in port.completed]
    assert sorted(map(id, completed)) == sorted(map(id, started))
    assert not medium.active_transmissions()


@given(schedules)
@settings(max_examples=60, deadline=None)
def test_clean_reception_implies_no_overlap_from_others(plan):
    """In a clique with no capture, a clean frame means no other
    transmission overlapped it in (strictly) positive measure."""
    sim, medium, ports = build_clique()
    log = []  # (sender, start, end)

    def try_send(i):
        sender = ports[i]
        if not medium.is_transmitting(sender):
            tx = medium.transmit(sender, data(sender.name, "S9"))
            log.append((sender.name, tx.start, tx.end, tx))

    for i, at in plan:
        sim.at(at, try_send, i)
    sim.run()

    for port in ports:
        for frame in port.clean_frames():
            start, end = next(
                (s, e) for name, s, e, tx in log if tx.frame is frame
            )
            for name, s, e, tx in log:
                if tx.frame is frame:
                    continue
                overlap = min(end, e) - max(start, s)
                assert overlap <= 1e-12, (
                    f"{port.name} cleanly received {frame.src}'s frame "
                    f"despite overlap with {name}"
                )


@given(schedules)
@settings(max_examples=60, deadline=None)
def test_carrier_events_balance(plan):
    """Every carrier-busy notification has a matching idle notification
    once the medium drains, and they strictly alternate."""
    sim, medium, ports = build_clique()

    def try_send(i):
        sender = ports[i]
        if not medium.is_transmitting(sender):
            medium.transmit(sender, data(sender.name, "S9"))

    for i, at in plan:
        sim.at(at, try_send, i)
    sim.run()
    for port in ports:
        events = port.carrier_events
        for a, b in zip(events, events[1:]):
            assert a != b, "carrier events must alternate"
        if events:
            assert events[0] is True
            assert events[-1] is False
        assert not medium.carrier_sensed(port)
