"""Regression: a powered-off radio must go (and stay) silent.

``Medium._finish`` used to invoke ``on_transmit_complete`` on the sender
even after the sender had detached (powered off) mid-airtime.  For the
MACAW/MACA machines that callback re-entered the contention logic, so a
dead station kept drawing backoff slots and scheduling events until the
simulation horizon.  These tests pin the fix at both layers.
"""

from repro.topo.builder import ScenarioBuilder
from tests.phy.conftest import RecordingPort, data, make_ports


def test_detached_sender_gets_no_transmit_complete(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    graph.transmit(a, data("A", "B"))
    # Power off mid-airtime: the frame keeps occupying the air (a real
    # radio's last frame does too) but the dead sender must not hear
    # about its completion.
    sim.at(graph.airtime(512) / 2, graph.detach, a)
    sim.run()
    assert a.completed == []
    assert b.clean_frames()  # the in-flight frame still arrived


def test_attached_sender_still_notified(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    tx = graph.transmit(a, data("A", "B"))
    sim.run()
    assert a.completed == [tx]


def test_powered_off_station_stops_contending():
    for protocol in ("macaw", "maca"):
        builder = ScenarioBuilder(seed=5, protocol=protocol, trace=True)
        builder.add_base("B")
        builder.add_pad("P")
        builder.clique("B", "P")
        builder.udp("P", "B", 64.0)  # always more work queued
        builder.power_off_at("P", 2.0)
        scenario = builder.build().run(10.0)
        after = [
            r for r in scenario.sim.trace.select(station="P")
            if r.time > 2.0 and r.category in ("send", "state")
        ]
        assert after == [], (
            f"{protocol}: dead station still active: "
            + "; ".join(f"t={r.time:.4f} {r.category} {r.detail}" for r in after[:5])
        )
