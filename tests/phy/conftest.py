"""Shared fixtures: a recording ReceiverPort and medium setup helpers."""

from typing import List, Optional, Tuple

import pytest

from repro.mac.frames import FrameType, control_frame, data_frame
from repro.phy.graph_medium import GraphMedium
from repro.phy.medium import ReceiverPort, Transmission
from repro.sim.kernel import Simulator


class RecordingPort(ReceiverPort):
    """A ReceiverPort that logs everything the medium tells it."""

    def __init__(self, name: str, position: Tuple[float, float, float] = (0.0, 0.0, 0.0)):
        self.name = name
        self.position = position
        self.frames: List[Tuple[object, bool]] = []
        self.carrier_events: List[bool] = []
        self.completed: List[Transmission] = []

    def on_frame(self, frame, clean):
        self.frames.append((frame, clean))

    def on_carrier(self, busy):
        self.carrier_events.append(busy)

    def on_transmit_complete(self, transmission):
        self.completed.append(transmission)

    def clean_frames(self):
        return [f for f, clean in self.frames if clean]

    def corrupt_frames(self):
        return [f for f, clean in self.frames if not clean]


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def graph(sim):
    return GraphMedium(sim)


def make_ports(medium, *names, positions=None):
    """Attach RecordingPorts with the given names; returns them."""
    ports = []
    for i, name in enumerate(names):
        position = positions[i] if positions else (0.0, 0.0, 0.0)
        port = RecordingPort(name, position)
        medium.attach(port)
        ports.append(port)
    return ports


def rts(src="A", dst="B", data_bytes=512):
    return control_frame(FrameType.RTS, src, dst, data_bytes=data_bytes)


def data(src="A", dst="B", size=512, payload=None):
    return data_frame(src, dst, size, payload=payload)
