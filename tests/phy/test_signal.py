"""Decibel/power arithmetic."""

import math

import pytest

from repro.phy.signal import (
    db_to_ratio,
    dbm_to_mw,
    mw_to_dbm,
    ratio_to_db,
    sinr_ok,
    sum_powers_mw,
)


def test_db_ratio_roundtrip():
    for db in (-30.0, -3.0, 0.0, 3.0, 10.0, 20.0):
        assert math.isclose(ratio_to_db(db_to_ratio(db)), db, abs_tol=1e-9)


def test_known_db_values():
    assert math.isclose(db_to_ratio(10.0), 10.0)
    assert math.isclose(db_to_ratio(0.0), 1.0)
    assert math.isclose(db_to_ratio(3.0), 10 ** 0.3)


def test_ratio_to_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        ratio_to_db(0.0)
    with pytest.raises(ValueError):
        ratio_to_db(-1.0)


def test_dbm_mw_roundtrip():
    for dbm in (-40.0, 0.0, 17.0):
        assert math.isclose(mw_to_dbm(dbm_to_mw(dbm)), dbm, abs_tol=1e-9)


def test_mw_to_dbm_rejects_nonpositive():
    with pytest.raises(ValueError):
        mw_to_dbm(0.0)


def test_sum_powers_is_linear():
    assert math.isclose(sum_powers_mw([1.0, 2.0, 3.0]), 6.0)
    assert sum_powers_mw([]) == 0.0


def test_sum_powers_rejects_negative():
    with pytest.raises(ValueError):
        sum_powers_mw([1.0, -0.5])


def test_sinr_ok_boundaries():
    # Exactly 10 dB above: passes.
    assert sinr_ok(10.0, 1.0, 10.0)
    # Just below 10 dB: fails.
    assert not sinr_ok(9.99, 1.0, 10.0)
    # No interference always passes; no signal never does.
    assert sinr_ok(1e-12, 0.0, 10.0)
    assert not sinr_ok(0.0, 0.0, 10.0)
