"""Noise models: uniform PER, located sources, per-link, time windows."""

import pytest

from repro.phy.noise import (
    LinkErrorModel,
    NoiseSource,
    PacketErrorModel,
    TimeWindowErrorModel,
)
from repro.sim.kernel import Simulator
from tests.phy.conftest import data, make_ports


def run_deliveries(sim, graph, n=400):
    """Transmit n frames A→B sequentially; return clean count."""
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    airtime = graph.airtime(512)
    for i in range(n):
        sim.at(i * (airtime + 1e-4), lambda: graph.transmit(a, data("A", "B")))
    sim.run()
    return len(b.clean_frames()), len(b.corrupt_frames())


def test_zero_error_rate_never_drops(sim, graph):
    graph.add_noise_model(PacketErrorModel(0.0))
    clean, corrupt = run_deliveries(sim, graph, n=100)
    assert clean == 100 and corrupt == 0


def test_error_rate_one_always_drops(sim, graph):
    graph.add_noise_model(PacketErrorModel(1.0))
    clean, corrupt = run_deliveries(sim, graph, n=50)
    assert clean == 0 and corrupt == 50


def test_error_rate_statistics(sim, graph):
    model = PacketErrorModel(0.1)
    graph.add_noise_model(model)
    clean, corrupt = run_deliveries(sim, graph, n=1000)
    assert 60 <= corrupt <= 150  # ~100 expected
    assert model.drops_count == corrupt


def test_invalid_error_rate_rejected():
    with pytest.raises(ValueError):
        PacketErrorModel(1.5)
    with pytest.raises(ValueError):
        PacketErrorModel(-0.1)


def test_receiver_restriction(sim, graph):
    a, b, c = make_ports(graph, "A", "B", "C")
    graph.connect_clique([a, b, c])
    graph.add_noise_model(PacketErrorModel(1.0, receivers=["C"]))
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert len(b.clean_frames()) == 1  # B unaffected
    assert len(c.corrupt_frames()) == 1  # C destroyed


def test_link_error_model_is_directional(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    graph.add_noise_model(LinkErrorModel([("A", "B")], 1.0))
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert b.clean_frames() == []
    graph.transmit(b, data("B", "A"))
    sim.run()
    assert len(a.clean_frames()) == 1  # reverse direction untouched


def test_noise_source_radius(sim, graph):
    a, b, c = make_ports(
        graph, "A", "B", "C",
        positions=[(0, 0, 0), (3, 0, 0), (50, 0, 0)],
    )
    graph.set_link(a, b)
    graph.set_link(a, c)
    graph.add_noise_model(NoiseSource(position=(3, 0, 0), radius_ft=5.0, error_rate=1.0))
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert b.clean_frames() == []       # inside the noise radius
    assert len(c.clean_frames()) == 1   # far away


def test_noise_source_requires_positive_radius():
    with pytest.raises(ValueError):
        NoiseSource((0, 0, 0), radius_ft=0.0, error_rate=0.5)


def test_time_window_model(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    airtime = graph.airtime(512)
    graph.add_noise_model(TimeWindowErrorModel(1.0, start=1.0, end=2.0))
    sim.at(0.0, lambda: graph.transmit(a, data("A", "B")))       # delivered ~0.016
    sim.at(1.5, lambda: graph.transmit(a, data("A", "B")))       # inside window
    sim.at(3.0, lambda: graph.transmit(a, data("A", "B")))       # after window
    sim.run()
    assert len(b.clean_frames()) == 2
    assert len(b.corrupt_frames()) == 1


def test_multiple_models_combine(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    graph.add_noise_model(PacketErrorModel(0.0))
    graph.add_noise_model(LinkErrorModel([("A", "B")], 1.0))
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert b.clean_frames() == []
