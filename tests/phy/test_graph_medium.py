"""GraphMedium: boolean connectivity, collisions, half-duplex, carrier."""

import pytest

from repro.phy.medium import MediumError
from tests.phy.conftest import RecordingPort, data, make_ports, rts


CONTROL_AIRTIME = 30 * 8 / 256_000
DATA_AIRTIME = 512 * 8 / 256_000


def test_airtime_computation(graph):
    assert graph.airtime(30) == pytest.approx(CONTROL_AIRTIME)
    assert graph.airtime(512) == pytest.approx(DATA_AIRTIME)
    with pytest.raises(ValueError):
        graph.airtime(0)


def test_delivery_to_linked_receiver(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    frame = data("A", "B")
    graph.transmit(a, frame)
    sim.run()
    assert b.clean_frames() == [frame]
    assert a.completed and a.completed[0].frame is frame


def test_no_delivery_without_link(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert b.frames == []


def test_asymmetric_link(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b, symmetric=False)  # only A→B audible
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert len(b.clean_frames()) == 1
    graph.transmit(b, data("B", "A"))
    sim.run()
    assert a.frames == []


def test_delivery_time_is_airtime(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    received_at = []
    b.on_frame = lambda frame, clean: received_at.append(sim.now)
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert received_at == [pytest.approx(DATA_AIRTIME)]


def test_overlapping_transmissions_collide_at_common_receiver(sim, graph):
    a, b, c = make_ports(graph, "A", "B", "C")
    graph.connect_clique([a, b, c])
    graph.transmit(a, data("A", "B"))
    graph.transmit(c, data("C", "B"))  # same instant: full overlap
    sim.run()
    assert b.clean_frames() == []
    assert len(b.corrupt_frames()) == 2


def test_partial_overlap_collides(sim, graph):
    a, b, c = make_ports(graph, "A", "B", "C")
    graph.connect_clique([a, b, c])
    graph.transmit(a, data("A", "B"))
    sim.run(until=DATA_AIRTIME / 2)
    graph.transmit(c, rts("C", "B"))
    sim.run()
    assert b.clean_frames() == []


def test_back_to_back_zero_overlap_is_clean(sim, graph):
    a, b, c = make_ports(graph, "A", "B", "C")
    graph.connect_clique([a, b, c])
    first = data("A", "B")
    graph.transmit(a, first)
    sim.at(DATA_AIRTIME, lambda: graph.transmit(c, data("C", "B")))
    sim.run()
    assert len(b.clean_frames()) == 2


def test_hidden_terminal_collision(sim, graph):
    # A—B—C chain: A and C are hidden from each other, collide at B.
    a, b, c = make_ports(graph, "A", "B", "C")
    graph.set_link(a, b)
    graph.set_link(b, c)
    graph.transmit(a, data("A", "B"))
    graph.transmit(c, data("C", "B"))
    sim.run()
    assert b.clean_frames() == []
    assert len(b.corrupt_frames()) == 2


def test_exposed_terminal_parallel_transfers_succeed(sim, graph):
    # B—A and C—D with B—C linked: both DATA arrive clean.
    a, b, c, d = make_ports(graph, "A", "B", "C", "D")
    graph.set_link(a, b)
    graph.set_link(b, c)
    graph.set_link(c, d)
    graph.transmit(b, data("B", "A"))
    graph.transmit(c, data("C", "D"))
    sim.run()
    assert len(a.clean_frames()) == 1
    assert len(d.clean_frames()) == 1


def test_half_duplex_receiver_transmitting_misses_frame(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    graph.transmit(b, data("B", "A"))  # B is busy transmitting
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert b.clean_frames() == []
    assert len(b.corrupt_frames()) == 1


def test_half_duplex_sender_corrupts_own_ongoing_reception(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    graph.transmit(a, data("A", "B"))
    # B starts transmitting halfway through the reception.
    sim.at(DATA_AIRTIME / 2, lambda: graph.transmit(b, rts("B", "A")))
    sim.run()
    assert b.clean_frames() == []


def test_cannot_transmit_twice_concurrently(sim, graph):
    (a,) = make_ports(graph, "A")
    graph.transmit(a, data("A", "B"))
    with pytest.raises(MediumError):
        graph.transmit(a, data("A", "B"))


def test_unattached_sender_rejected(sim, graph):
    stranger = RecordingPort("X")
    with pytest.raises(MediumError):
        graph.transmit(stranger, data("X", "B"))


def test_carrier_sense_tracks_foreign_signal(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    assert not graph.carrier_sensed(b)
    graph.transmit(a, data("A", "B"))
    assert graph.carrier_sensed(b)
    assert not graph.carrier_sensed(a)  # own transmission is not carrier
    sim.run()
    assert not graph.carrier_sensed(b)
    assert b.carrier_events == [True, False]


def test_detach_mid_flight_drops_reception(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    graph.transmit(a, data("A", "B"))
    sim.at(DATA_AIRTIME / 2, lambda: graph.detach(b))
    sim.run()
    assert b.frames == []


def test_detach_removes_links(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    graph.detach(b)
    graph.attach(b)
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert b.frames == []  # links were cleared by detach


def test_self_link_rejected(sim, graph):
    (a,) = make_ports(graph, "A")
    with pytest.raises(MediumError):
        graph.set_link(a, a)


def test_neighbors_and_in_range(sim, graph):
    a, b, c = make_ports(graph, "A", "B", "C")
    graph.connect_clique([a, b, c])
    assert graph.in_range(a, b)
    assert [p.name for p in graph.neighbors(a)] == ["B", "C"]


def test_delivery_statistics(sim, graph):
    a, b, c = make_ports(graph, "A", "B", "C")
    graph.connect_clique([a, b, c])
    graph.transmit(a, data("A", "B"))
    sim.run()
    assert graph.clean_deliveries == 2  # B and C both heard it
    graph.transmit(a, data("A", "B"))
    graph.transmit(c, data("C", "B"))
    sim.run()
    assert graph.corrupt_deliveries >= 2


def test_set_link_invalidates_audibility_cache(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    # Warm the per-pair cache through the public accessor...
    assert graph.audible(a, b)
    # ...then rewire: set_link must invalidate, not serve the stale edge.
    graph.set_link(a, b, connected=False)
    assert not graph.audible(a, b)
    frame = data("A", "B")
    graph.transmit(a, frame)
    sim.run()
    assert b.clean_frames() == []


def test_attach_invalidates_audibility_cache(sim, graph):
    a, b = make_ports(graph, "A", "B")
    graph.set_link(a, b)
    assert graph.audible(a, b)
    c, = make_ports(graph, "C")
    graph.set_link(a, c)
    assert graph.audible(a, c)
