"""GridMedium: the paper's cube model — thresholds, capture, interference."""

import pytest

from repro.phy.grid_medium import GridMedium, snap_to_cube_center
from repro.sim.kernel import Simulator
from tests.phy.conftest import RecordingPort, data


@pytest.fixture
def sim():
    return Simulator(seed=1)


@pytest.fixture
def grid(sim):
    return GridMedium(sim)


def port_at(grid, name, x, y=0.5, z=0.5):
    port = RecordingPort(name, (x, y, z))
    grid.attach(port)
    return port


def test_snap_to_cube_center():
    assert snap_to_cube_center((0.0, 0.0, 0.0)) == (0.5, 0.5, 0.5)
    assert snap_to_cube_center((1.9, 2.1, 3.5)) == (1.5, 2.5, 3.5)
    assert snap_to_cube_center((-0.2, 0.0, 0.0))[0] == -0.5


def test_reception_threshold_is_strength_at_10_feet(grid):
    # Paper: "greater than some threshold (the signal strength at 10 feet)".
    a = port_at(grid, "A", 0.0)
    near = port_at(grid, "N", 9.0)
    far = port_at(grid, "F", 12.0)
    assert grid.in_range(a, near)
    assert not grid.in_range(a, far)


def test_delivery_within_range_only(sim, grid):
    a = port_at(grid, "A", 0.0)
    b = port_at(grid, "B", 5.0)
    c = port_at(grid, "C", 20.0)
    grid.transmit(a, data("A", "B"))
    sim.run()
    assert len(b.clean_frames()) == 1
    assert c.frames == []


def test_capture_close_signal_survives_far_interferer(sim, grid):
    # Receiver at 2 ft from A, interferer at 9 ft: distance ratio 4.5 is
    # far beyond the ~1.5 needed for 10 dB capture (γ=6).
    a = port_at(grid, "A", 0.0)
    b = port_at(grid, "B", 2.0)
    x = port_at(grid, "X", 11.0)  # 9 ft from B, still in B's range
    grid.transmit(a, data("A", "B"))
    grid.transmit(x, data("X", "Y"))
    sim.run()
    assert len(b.clean_frames()) == 1


def test_no_capture_at_similar_distances(sim, grid):
    a = port_at(grid, "A", 0.0)
    b = port_at(grid, "B", 4.0)
    x = port_at(grid, "X", 9.0)  # 5 ft from B: ratio 1.25 < ~1.47 needed
    grid.transmit(a, data("A", "B"))
    grid.transmit(x, data("X", "Y"))
    sim.run()
    assert b.clean_frames() == []


def test_subthreshold_interferers_still_sum(sim, grid):
    # Paper: interference is "the sum of the other signals" — even those
    # below the reception threshold.  A is at the edge of B's range; two
    # out-of-range interferers together push SINR below 10 dB.
    a = port_at(grid, "A", 0.0)
    b = port_at(grid, "B", 9.0)
    x1 = port_at(grid, "X1", 9.0, y=11.5)   # ~11.5 ft from B
    x2 = port_at(grid, "X2", 9.0, y=-11.5)
    assert not grid.in_range(x1, b)
    grid.transmit(a, data("A", "B"))
    grid.transmit(x1, data("X1", "Y"))
    grid.transmit(x2, data("X2", "Y"))
    sim.run()
    assert b.clean_frames() == []


def test_capture_requires_10db(grid):
    a = port_at(grid, "A", 0.0)
    b = port_at(grid, "B", 2.0)
    # power_between is symmetric in distance
    assert grid.power_between(a, b) == grid.power_between(b, a)


def test_positions_snap_to_same_cube(grid):
    a = port_at(grid, "A", 0.2, y=0.3)
    b = port_at(grid, "B", 5.1)
    c = port_at(grid, "C", 5.4)  # same cube as B
    assert grid.power_between(a, b) == grid.power_between(a, c)


def test_mobile_station_moves_into_range_after_invalidation(sim, grid):
    a = port_at(grid, "A", 0.0)
    b = port_at(grid, "B", 30.0)
    grid.transmit(a, data("A", "B"))
    sim.run()
    assert b.frames == []
    b.position = (5.0, 0.5, 0.5)  # B moves into range
    grid.invalidate_links()  # Station.position does this automatically
    grid.transmit(a, data("A", "B"))
    sim.run()
    assert len(b.clean_frames()) == 1


def test_stale_link_cache_without_invalidation(sim, grid):
    # Documents the cache contract: raw position writes on a bare port do
    # NOT flush the link cache once a pair has been evaluated.
    a = port_at(grid, "A", 0.0)
    b = port_at(grid, "B", 30.0)
    assert not grid.in_range(a, b)
    b.position = (5.0, 0.5, 0.5)
    assert not grid.in_range(a, b)  # memoized
    grid.invalidate_links()
    assert grid.in_range(a, b)
