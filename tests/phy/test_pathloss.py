"""Path-loss models."""

import math

import pytest

from repro.phy.pathloss import (
    FarFieldPathLoss,
    MIN_DISTANCE_FT,
    NearFieldPathLoss,
    distance_ft,
)


def test_power_decays_monotonically():
    model = NearFieldPathLoss()
    powers = [model.received_power_mw(1.0, d) for d in (1, 2, 4, 8, 16)]
    assert all(a > b for a, b in zip(powers, powers[1:]))


def test_reference_distance_gives_tx_power():
    model = NearFieldPathLoss(gamma=6.0, reference_ft=1.0)
    assert math.isclose(model.received_power_mw(2.0, 1.0), 2.0)


def test_gamma_exponent():
    model = NearFieldPathLoss(gamma=6.0)
    # Doubling distance costs 2^6 = 64x in power.
    p1 = model.received_power_mw(1.0, 2.0)
    p2 = model.received_power_mw(1.0, 4.0)
    assert math.isclose(p1 / p2, 64.0)


def test_far_field_is_inverse_square():
    model = FarFieldPathLoss()
    p1 = model.received_power_mw(1.0, 10.0)
    p2 = model.received_power_mw(1.0, 20.0)
    assert math.isclose(p1 / p2, 4.0)


def test_min_distance_clamps_singularity():
    model = NearFieldPathLoss()
    assert model.received_power_mw(1.0, 0.0) == model.received_power_mw(
        1.0, MIN_DISTANCE_FT
    )


def test_capture_distance_ratio_matches_paper():
    # The paper: a 10 dB advantage needs a distance ratio of ~1.5 (§2.1).
    model = NearFieldPathLoss(gamma=6.0)
    ratio = model.capture_distance_ratio(10.0)
    assert 1.4 < ratio < 1.6


def test_range_for_threshold_inverts_the_model():
    model = NearFieldPathLoss(gamma=6.0)
    threshold = model.received_power_mw(1.0, 10.0)
    assert math.isclose(model.range_for_threshold_ft(1.0, threshold), 10.0, rel_tol=1e-6)


def test_range_for_threshold_zero_when_unreachable():
    model = NearFieldPathLoss()
    # Threshold above transmit power: no distance reaches it.
    assert model.range_for_threshold_ft(1.0, 2.0) == 0.0


def test_invalid_parameters_raise():
    with pytest.raises(ValueError):
        NearFieldPathLoss(gamma=0)
    with pytest.raises(ValueError):
        NearFieldPathLoss(reference_ft=0)
    with pytest.raises(ValueError):
        NearFieldPathLoss().range_for_threshold_ft(1.0, 0.0)


def test_distance_ft():
    assert distance_ft((0, 0, 0), (3, 4, 0)) == 5.0
    assert distance_ft((1, 1, 1), (1, 1, 1)) == 0.0
    assert math.isclose(distance_ft((0, 0, 0), (1, 1, 1)), math.sqrt(3))
