"""Protocol configuration invariants."""

import pytest

from repro.core.config import (
    MACA_CONFIG,
    MACAW_CONFIG,
    ProtocolConfig,
    maca_config,
    macaw_config,
)


def test_maca_defaults_match_appendix_a():
    assert not MACA_CONFIG.use_ack
    assert not MACA_CONFIG.use_ds
    assert not MACA_CONFIG.use_rrts
    assert MACA_CONFIG.backoff == "beb"
    assert not MACA_CONFIG.copy_backoff
    assert not MACA_CONFIG.per_destination
    assert not MACA_CONFIG.multi_queue


def test_macaw_defaults_match_appendix_b():
    assert MACAW_CONFIG.use_ack
    assert MACAW_CONFIG.use_ds
    assert MACAW_CONFIG.use_rrts
    assert MACAW_CONFIG.backoff == "mild"
    assert MACAW_CONFIG.copy_backoff
    assert MACAW_CONFIG.per_destination
    assert MACAW_CONFIG.multi_queue


def test_paper_backoff_bounds():
    assert MACAW_CONFIG.bo_min == 2.0
    assert MACAW_CONFIG.bo_max == 64.0


def test_but_returns_modified_copy():
    config = macaw_config()
    changed = config.but(use_ds=False)
    assert not changed.use_ds
    assert config.use_ds  # original untouched
    assert changed.use_ack


def test_factory_overrides():
    assert maca_config(copy_backoff=True).copy_backoff
    assert macaw_config(use_rrts=False).use_rrts is False
    assert macaw_config() is MACAW_CONFIG


def test_validation():
    with pytest.raises(ValueError):
        ProtocolConfig(backoff="exponential")
    with pytest.raises(ValueError):
        ProtocolConfig(bo_min=0)
    with pytest.raises(ValueError):
        ProtocolConfig(bo_min=10, bo_max=5)
    with pytest.raises(ValueError):
        ProtocolConfig(max_retries=0)
    with pytest.raises(ValueError):
        ProtocolConfig(alpha=-1)
    with pytest.raises(ValueError):
        ProtocolConfig(contention_jitter=1.5)


def test_frozen():
    with pytest.raises(Exception):
        MACAW_CONFIG.use_ack = False  # type: ignore[misc]
