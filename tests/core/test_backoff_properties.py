"""Property-based tests: backoff state stays sane under arbitrary drives."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.backoff import BackoffBook, BinaryExponentialBackoff, MildBackoff
from repro.core.config import maca_config, macaw_config
from repro.mac.frames import FrameType, control_frame, data_frame

# An arbitrary protocol-event drive: (event kind, station index, value).
events = st.lists(
    st.tuples(
        st.sampled_from(["attempt", "success", "timeout", "give_up",
                         "hear_data", "hear_cts", "hear_rts", "recv_cts",
                         "recv_rts_retry"]),
        st.integers(min_value=0, max_value=3),
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    ),
    max_size=80,
)

STATIONS = ["Q0", "Q1", "Q2", "Q3"]


def drive(book, plan):
    esn = 0
    for kind, idx, value in plan:
        station = STATIONS[idx]
        if kind == "attempt":
            book.begin_attempt(station)
        elif kind == "success":
            book.on_success(station)
        elif kind == "timeout":
            book.on_timeout(station, retry_count=1 + int(value) % 8)
        elif kind == "give_up":
            book.on_give_up(station)
        elif kind == "hear_data":
            frame = data_frame(station, "R", 512, local_backoff=value,
                               remote_backoff=value / 2)
            book.on_frame_heard(frame, addressed_to_me=False)
        elif kind == "hear_cts":
            frame = control_frame(FrameType.CTS, station, "R",
                                  local_backoff=value)
            book.on_frame_heard(frame, addressed_to_me=False)
        elif kind == "hear_rts":
            frame = control_frame(FrameType.RTS, station, "R",
                                  local_backoff=value)
            book.on_frame_heard(frame, addressed_to_me=False)
        elif kind == "recv_cts":
            frame = control_frame(FrameType.CTS, station, "me",
                                  local_backoff=value, remote_backoff=value / 3,
                                  esn=esn)
            book.on_frame_heard(frame, addressed_to_me=True)
            esn += 1
        elif kind == "recv_rts_retry":
            frame = control_frame(FrameType.RTS, station, "me",
                                  local_backoff=value, esn=esn, retry=True)
            book.on_frame_heard(frame, addressed_to_me=True)


@given(events)
@settings(max_examples=150, deadline=None)
def test_per_destination_book_invariants(plan):
    config = macaw_config()
    book = BackoffBook(config)
    drive(book, plan)
    assert config.bo_min <= book.my_backoff <= config.bo_max
    for entry in book.known_remotes().values():
        assert entry.local <= config.bo_max
        if entry.remote is not None:
            assert 0 <= entry.remote <= config.bo_max
    for station in STATIONS:
        bound = book.contention_backoff(station)
        assert config.bo_min <= bound <= 2 * config.bo_max
        widened = book.contention_backoff(station, retries=8)
        assert widened >= bound or widened == 2 * config.bo_max


@given(events)
@settings(max_examples=150, deadline=None)
def test_single_counter_book_invariants(plan):
    config = maca_config(copy_backoff=True)
    book = BackoffBook(config)
    drive(book, plan)
    assert config.bo_min <= book.my_backoff <= config.bo_max


@given(st.floats(min_value=1.0, max_value=64.0, allow_nan=False),
       st.integers(min_value=0, max_value=30))
@settings(max_examples=200, deadline=None)
def test_algorithms_converge_within_bounds(start, steps):
    for algo in (BinaryExponentialBackoff(2, 64), MildBackoff(2, 64)):
        value = algo.clamp(start)
        for i in range(steps):
            value = algo.increase(value) if i % 2 else algo.decrease(value)
            assert 2 <= value <= 64


@given(st.floats(min_value=2.0, max_value=64.0))
@settings(max_examples=100, deadline=None)
def test_mild_is_gentler_than_beb(value):
    beb = BinaryExponentialBackoff(2, 64)
    mild = MildBackoff(2, 64)
    assert mild.increase(value) <= beb.increase(value)
    assert mild.decrease(value) >= beb.decrease(value)
