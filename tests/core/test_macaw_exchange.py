"""MACAW state machine: exchanges, retries, dedup, deferral, RRTS."""

import pytest

from repro.core.config import maca_config, macaw_config
from repro.core.macaw import MacawMac
from repro.mac.base import MacState
from repro.mac.frames import FrameType, MULTICAST
from repro.net.packets import NetPacket
from repro.phy.graph_medium import GraphMedium
from repro.phy.noise import LinkErrorModel, TimeWindowErrorModel
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace


def build(names, config=macaw_config(), seed=3, links="clique"):
    sim = Simulator(seed=seed, trace=Trace(enabled=True))
    medium = GraphMedium(sim)
    macs = {name: MacawMac(sim, medium, name, config=config) for name in names}
    if links == "clique":
        medium.connect_clique(macs.values())
    return sim, medium, macs


def packet(stream="s", seq=0, size=512):
    return NetPacket(stream=stream, kind="udp", seq=seq, size_bytes=size, created=0.0)


def sent_kinds(sim):
    """Sequence of '<station>:<KIND>' for every frame put on the air."""
    return [
        f"{r.station}:{r.detail['frame'].split()[0]}"
        for r in sim.trace.select(category="send")
    ]


def deliveries(mac):
    out = []
    mac.on_deliver = lambda payload, src: out.append((payload, src))
    return out


# ----------------------------------------------------------- basic exchange
def test_full_macaw_exchange_sequence():
    sim, medium, macs = build(["A", "B"])
    got = deliveries(macs["B"])
    payload = packet()
    macs["A"].enqueue(payload, "B", 512)
    sim.run(until=1.0)
    assert sent_kinds(sim)[:5] == ["A:RTS", "B:CTS", "A:DS", "A:DATA", "B:ACK"]
    assert got == [(payload, "A")]
    assert macs["A"].stats.successes == 1
    assert macs["A"].state is MacState.IDLE
    assert macs["B"].state is MacState.IDLE


def test_maca_exchange_has_no_ds_or_ack():
    sim, medium, macs = build(["A", "B"], config=maca_config())
    got = deliveries(macs["B"])
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=1.0)
    assert sent_kinds(sim) == ["A:RTS", "B:CTS", "A:DATA"]
    assert len(got) == 1


def test_sender_notified_on_success():
    sim, medium, macs = build(["A", "B"])
    sent = []
    macs["A"].on_sent = lambda payload, dst: sent.append((payload, dst))
    payload = packet()
    macs["A"].enqueue(payload, "B", 512)
    sim.run(until=1.0)
    assert sent == [(payload, "B")]


def test_back_to_back_packets_all_delivered():
    sim, medium, macs = build(["A", "B"])
    got = deliveries(macs["B"])
    for i in range(10):
        macs["A"].enqueue(packet(seq=i), "B", 512)
    sim.run(until=2.0)
    assert [p.seq for p, _ in got] == list(range(10))


# ------------------------------------------------------------------ retries
def test_lost_cts_triggers_retry_and_recovery():
    sim, medium, macs = build(["A", "B"])
    got = deliveries(macs["B"])
    noise = TimeWindowErrorModel(1.0, start=0.0, end=0.05, receivers=["A"])
    medium.add_noise_model(noise)
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=2.0)
    assert len(got) == 1
    assert macs["A"].stats.cts_timeouts >= 1


def test_lost_ack_resends_ack_not_data():
    """Control rule 7: an RTS for already-ACKed data draws the ACK again."""

    class AckKiller(LinkErrorModel):
        def applies_to(self, sim, tx, receiver):
            return (
                tx.frame.kind is FrameType.ACK
                and super().applies_to(sim, tx, receiver)
            )

    sim, medium, macs = build(["A", "B"])
    got = deliveries(macs["B"])
    noise = AckKiller([("B", "A")], 1.0)
    medium.add_noise_model(noise)
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=0.1)   # first DATA got through; ACK destroyed
    assert len(got) == 1
    noise.error_rate = 0.0
    sim.run(until=2.0)
    kinds = sent_kinds(sim)
    # The retransmitted RTS is answered with an ACK, not a CTS+DATA rerun.
    assert kinds.count("A:DATA") == 1
    assert kinds.count("B:ACK") >= 2
    assert macs["B"].stats.duplicates == 0
    assert len(got) == 1
    assert macs["A"].stats.successes == 1


def test_unreachable_destination_drops_after_max_retries():
    config = macaw_config(max_retries=3)
    sim, medium, macs = build(["A", "B"], config=config, links=None)
    drops = []
    macs["A"].on_drop = lambda payload, dst: drops.append(payload)
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=5.0)
    assert len(drops) == 1
    assert macs["A"].queue_len() == 0
    assert macs["A"].backoff.remote("B").gave_up


# ----------------------------------------------------------------- deferral
def test_overhearing_cts_defers_for_data_duration():
    sim, medium, macs = build(["A", "B", "C"])
    macs["A"].enqueue(packet(), "B", 512)
    # Give C a packet mid-exchange; it must not transmit into A's DATA.
    sim.at(0.004, lambda: macs["C"].enqueue(packet("c"), "B", 512))
    sim.run(until=1.0)
    records = sim.trace.select(category="send")
    a_data = next(r for r in records if r.station == "A" and "DATA" in r.detail["frame"])
    data_end = a_data.time + 512 * 8 / 256_000
    c_sends = [r for r in records if r.station == "C"]
    assert c_sends, "C should eventually transmit"
    assert all(r.time >= data_end for r in c_sends)
    assert macs["C"].stats.successes == 1


def test_quiet_station_state_label():
    sim, medium, macs = build(["A", "B", "C"])
    macs["A"].enqueue(packet(), "B", 512)
    # Run until A's DATA is in flight: C overheard the CTS and is deferring.
    records = []
    sim.run(until=0.012)
    assert macs["C"].state is MacState.QUIET
    sim.run(until=1.0)
    assert macs["C"].state is MacState.IDLE


# --------------------------------------------------------------------- RRTS
def test_rrts_flow_for_deferred_receiver():
    """B1→P1 while P1 defers to a neighbouring *downlink* exchange (the
    Figure 6 configuration): P1 hears P2's CTS and defers, receives B1's
    RTS cleanly mid-defer (B2's data is inaudible at P1), sends RRTS at
    the next contention period, and B1 answers with an immediate RTS
    (§3.3.3, rules 9/13)."""
    sim, medium, macs = build(["B1", "P1", "P2", "B2"], links=None)
    medium.set_link(macs["P1"], macs["B1"])
    medium.set_link(macs["P2"], macs["B2"])
    medium.set_link(macs["P1"], macs["P2"])
    got = deliveries(macs["P1"])
    # Saturating downlink B2→P2; P1 overhears P2's CTS/ACK and defers.
    for i in range(4):
        macs["B2"].enqueue(packet("x", i), "P2", 512)
    sim.run(until=0.006)
    macs["B1"].enqueue(packet("b"), "P1", 512)
    sim.run(until=3.0)
    kinds = sent_kinds(sim)
    assert "P1:RRTS" in kinds
    assert len(got) == 1
    # The RRTS drew an RTS from B1.
    rrts_index = kinds.index("P1:RRTS")
    assert "B1:RTS" in kinds[rrts_index + 1:]


def test_rrts_disabled_ignores_deferred_rts():
    config = macaw_config(use_rrts=False)
    sim, medium, macs = build(["B1", "P1", "P2", "B2"], config=config, links=None)
    medium.set_link(macs["P1"], macs["B1"])
    medium.set_link(macs["P2"], macs["B2"])
    medium.set_link(macs["P1"], macs["P2"])
    for i in range(3):
        macs["P2"].enqueue(packet("x", i), "B2", 512)
    sim.run(until=0.004)
    macs["B1"].enqueue(packet("b"), "P1", 512)
    sim.run(until=3.0)
    assert "P1:RRTS" not in sent_kinds(sim)


# ---------------------------------------------------------------- multicast
def test_multicast_rts_data_reaches_all_receivers():
    sim, medium, macs = build(["S", "R1", "R2"])
    got1 = deliveries(macs["R1"])
    got2 = deliveries(macs["R2"])
    payload = packet("m")
    macs["S"].enqueue(payload, MULTICAST, 512)
    sim.run(until=1.0)
    assert sent_kinds(sim) == ["S:RTS", "S:DATA"]  # no CTS, DS, or ACK
    assert got1 == [(payload, "S")]
    assert got2 == [(payload, "S")]
    assert macs["S"].stats.successes == 1


def test_multicast_rts_defers_receivers_for_data_length():
    sim, medium, macs = build(["S", "R1", "R2"])
    macs["S"].enqueue(packet("m"), MULTICAST, 512)
    sim.at(0.002, lambda: macs["R1"].enqueue(packet("r"), "R2", 512))
    sim.run(until=1.0)
    records = sim.trace.select(category="send")
    s_data = next(r for r in records if r.station == "S" and "DATA" in r.detail["frame"])
    data_end = s_data.time + 512 * 8 / 256_000
    r1_sends = [r for r in records if r.station == "R1"]
    assert r1_sends and all(r.time >= data_end for r in r1_sends)


# ------------------------------------------------------------------- power
def test_power_off_station_stops_participating():
    sim, medium, macs = build(["A", "B"])
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=1.0)
    macs["B"].power_off()
    macs["A"].enqueue(packet(seq=1), "B", 512)
    sim.run(until=5.0)
    assert macs["A"].stats.drops == 1


def test_power_cycle_restores_service():
    sim, medium, macs = build(["A", "B"])
    got = deliveries(macs["B"])
    macs["B"].power_off()
    macs["B"].power_on()
    medium.set_link(macs["A"], macs["B"])  # detach cleared links
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=1.0)
    assert len(got) == 1


# ----------------------------------------------------------- esn / headers
def test_esn_increments_per_stream():
    sim, medium, macs = build(["A", "B", "C"])
    for i in range(2):
        macs["A"].enqueue(packet("b", i), "B", 512)
        macs["A"].enqueue(packet("c", i), "C", 512)
    sim.run(until=2.0)
    assert macs["A"]._next_esn == {"B": 2, "C": 2}


def test_frames_carry_backoff_headers():
    sim, medium, macs = build(["A", "B"])
    macs["A"].enqueue(packet(), "B", 512)
    captured = []
    original = macs["B"].on_frame
    macs["B"].on_frame = lambda frame, clean: (captured.append(frame), original(frame, clean))
    sim.run(until=1.0)
    rts = next(f for f in captured if f.kind is FrameType.RTS)
    assert rts.local_backoff is not None
    assert rts.esn == 0
