"""State-machine edge cases the appendix rules pin down."""

import pytest

from repro.core.config import maca_config, macaw_config
from repro.mac.base import MacState
from repro.mac.frames import FrameType
from repro.phy.noise import LinkErrorModel
from tests.core.test_macaw_exchange import build, deliveries, packet, sent_kinds


def test_rule8_contending_station_answers_rts():
    """Control rule 8: a station whose own counter is pending answers an
    incoming RTS with a CTS and resumes its own business afterwards."""
    sim, medium, macs = build(["A", "B"])
    got_a = deliveries(macs["A"])
    got_b = deliveries(macs["B"])
    # Both queue at once: one will catch the other in CONTEND.
    macs["A"].enqueue(packet("a"), "B", 512)
    macs["B"].enqueue(packet("b"), "A", 512)
    sim.run(until=2.0)
    assert len(got_a) == 1
    assert len(got_b) == 1


def test_wfcts_timeout_increments_stats_and_retries():
    sim, medium, macs = build(["A", "B"])
    medium.set_link(macs["A"], macs["B"], False)  # sever the link
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=2.0)
    assert macs["A"].stats.cts_timeouts >= 1
    assert macs["A"].stats.drops == 1
    assert macs["A"].state is MacState.IDLE


def test_receiver_timeout_recovers_to_idle():
    """CTS sent but the DS/DATA never arrives: the receiver must not hang."""

    class DsKiller(LinkErrorModel):
        def applies_to(self, sim, tx, receiver):
            return tx.frame.kind in (FrameType.DS, FrameType.DATA) and (
                super().applies_to(sim, tx, receiver)
            )

    sim, medium, macs = build(["A", "B"])
    noise = DsKiller([("A", "B")], 1.0)
    medium.add_noise_model(noise)
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=0.06)
    assert macs["B"].state in (MacState.IDLE, MacState.WFDS, MacState.WFDATA,
                               MacState.QUIET)
    noise.error_rate = 0.0
    sim.run(until=3.0)
    assert macs["B"].state is MacState.IDLE
    assert macs["A"].stats.successes == 1


def test_overheard_rrts_defers_two_slots():
    """§3.3.3: stations overhearing an RRTS defer two slot times."""
    sim, medium, macs = build(["B1", "P1", "P2", "B2"], links=None)
    medium.set_link(macs["P1"], macs["B1"])
    medium.set_link(macs["P2"], macs["B2"])
    medium.set_link(macs["P1"], macs["P2"])
    # Downlink saturates cell 2, P1 pends an RRTS for B1.
    for i in range(3):
        macs["B2"].enqueue(packet("x", i), "P2", 512)
    sim.run(until=0.006)
    macs["B1"].enqueue(packet("b"), "P1", 512)
    sim.run(until=3.0)
    kinds = sent_kinds(sim)
    assert "P1:RRTS" in kinds  # precondition for the defer to matter
    # P2 heard the RRTS cleanly at least once and kept functioning.
    assert macs["B2"].stats.successes > 0
    assert macs["B1"].stats.successes > 0


def test_cts_from_wrong_station_is_ignored():
    sim, medium, macs = build(["A", "B", "C"])
    macs["A"].enqueue(packet("a"), "B", 512)
    macs["C"].enqueue(packet("c"), "B", 512)
    sim.run(until=3.0)
    # Both exchanges complete despite both CTSs being audible to both
    # senders (addressing/esn checks filter them).
    assert macs["A"].stats.successes == 1
    assert macs["C"].stats.successes == 1


def test_maca_station_ignores_rrts_and_nack():
    """Feature-off configurations must not react to extension frames."""
    sim, medium, macs = build(["A", "B"], config=maca_config())
    from repro.mac.frames import control_frame

    macs["B"].enqueue(packet("b"), "A", 512)
    # Inject an RRTS at A addressed to B — B (MACA) must ignore it.
    sim.run(until=1.0)
    before = macs["B"].stats.sent.copy()
    rrts = control_frame(FrameType.RRTS, "A", "B", data_bytes=512)
    medium.transmit(macs["A"], rrts)
    sim.run(until=2.0)
    assert macs["B"].stats.sent_of(FrameType.RTS) == before.get(FrameType.RTS, 0)


def test_corrupted_frames_never_change_state():
    sim, medium, macs = build(["A", "B", "C"])
    # A and C transmit together: B hears garbage only.
    medium.transmit(macs["A"], __import__("repro.mac.frames", fromlist=["x"]).control_frame(
        FrameType.RTS, "A", "B", data_bytes=512))
    medium.transmit(macs["C"], __import__("repro.mac.frames", fromlist=["x"]).control_frame(
        FrameType.RTS, "C", "B", data_bytes=512))
    sim.run(until=0.01)
    assert macs["B"].state is MacState.IDLE
    assert macs["B"].stats.corrupted == 2


def test_quiet_horizon_extends_not_shrinks():
    sim, medium, macs = build(["A", "B", "C", "D"])
    macs["A"].enqueue(packet("a"), "B", 512)
    sim.run(until=0.012)  # C defers to A's exchange (CTS heard)
    first_horizon = macs["C"].quiet_until
    assert first_horizon > sim.now
    # A second overheard exchange-start cannot shorten the horizon.
    macs["C"]._defer_for(0.0001)
    assert macs["C"].quiet_until == first_horizon


def test_multicast_does_not_wait_for_ack():
    sim, medium, macs = build(["S", "R"])
    from repro.mac.frames import MULTICAST

    macs["S"].enqueue(packet("m"), MULTICAST, 512)
    sim.run(until=1.0)
    assert macs["S"].stats.ack_timeouts == 0
    assert macs["S"].stats.successes == 1


def test_backoff_counter_stays_in_bounds_under_stress():
    config = macaw_config()
    sim, medium, macs = build(["A", "B", "C", "D"], config=config)
    for name in ("A", "B", "C"):
        for i in range(50):
            macs[name].enqueue(packet(name, i), "D", 512)
    sim.run(until=10.0)
    for mac in macs.values():
        assert config.bo_min <= mac.backoff.my_backoff <= config.bo_max
        for entry in mac.backoff.known_remotes().values():
            assert entry.local <= config.bo_max
            if entry.remote is not None:
                assert entry.remote <= config.bo_max
