"""RunProfile: normalization, digests, ambient scope, deprecation shims."""

import warnings

import pytest

from repro.core.config import (
    RunProfile,
    active_profile,
    ambient_profile,
    reset_deprecation_warnings,
)
from repro.fault import FaultSchedule, LinkFlap
from repro.obs.runtime import MetricsConfig
from repro.topo.builder import ScenarioBuilder


# ---------------------------------------------------------- normalization
def test_defaults_match_the_paper():
    profile = RunProfile()
    assert profile.bitrate_bps == 256_000.0
    assert profile.queue_capacity == 64
    assert profile.timing is None and profile.trace is False
    assert profile.sanitize is None and profile.metrics is None
    assert profile.faults is None


def test_validation_rejects_bad_knobs():
    with pytest.raises(ValueError):
        RunProfile(bitrate_bps=0.0)
    with pytest.raises(ValueError):
        RunProfile(queue_capacity=0)
    with pytest.raises(TypeError):
        RunProfile(metrics="often")
    with pytest.raises(TypeError):
        RunProfile(faults="chaos")


def test_metrics_sugar_normalizes_to_config():
    assert RunProfile(metrics=True).metrics == MetricsConfig()
    assert RunProfile(metrics=2).metrics == MetricsConfig(interval=2.0)
    assert RunProfile(metrics=False).metrics is False
    assert RunProfile(metrics=None).metrics is None


def test_grid_kwargs_normalize_to_sorted_items():
    one = RunProfile(grid_kwargs={"range_m": 10.0, "alpha": 2.0})
    two = RunProfile(grid_kwargs={"alpha": 2.0, "range_m": 10.0})
    assert one == two
    assert one.grid_dict() == {"alpha": 2.0, "range_m": 10.0}


def test_empty_fault_schedule_normalizes_to_none():
    assert RunProfile(faults=FaultSchedule.empty()).faults is None


def test_but_returns_modified_copy():
    base = RunProfile()
    traced = base.but(trace=True)
    assert traced.trace and not base.trace


# ----------------------------------------------------------------- digest
def test_digest_is_stable_and_knob_sensitive():
    assert RunProfile().digest() == RunProfile().digest()
    assert RunProfile().digest() != RunProfile(trace=True).digest()
    assert RunProfile().digest() != RunProfile(queue_capacity=8).digest()


def test_empty_schedule_digest_equals_no_schedule():
    assert RunProfile(faults=FaultSchedule.empty()).digest() == RunProfile().digest()
    flap = FaultSchedule((LinkFlap("A", "B", 1.0, 2.0),))
    assert RunProfile(faults=flap).digest() != RunProfile().digest()


# ------------------------------------------------------------ queue backend
def test_queue_normalizes_and_distinguishes_digests(monkeypatch):
    monkeypatch.delenv("REPRO_QUEUE", raising=False)
    assert RunProfile().queue == "heap"
    assert RunProfile(queue="wheel").queue == "wheel"
    # Results are backend-independent, but perf runs must not share
    # cache entries: the digest names the backend.
    assert RunProfile(queue="wheel").digest() != RunProfile().digest()
    assert RunProfile(queue="wheel:0.002").digest() != RunProfile(queue="wheel").digest()
    assert RunProfile(queue="heap").digest() == RunProfile().digest()


def test_queue_env_var_sets_the_ambient_backend(monkeypatch):
    monkeypatch.setenv("REPRO_QUEUE", "wheel")
    assert RunProfile().queue == "wheel"
    assert RunProfile(queue="heap").queue == "heap"  # explicit wins


def test_queue_validation_is_eager(monkeypatch):
    monkeypatch.delenv("REPRO_QUEUE", raising=False)
    with pytest.raises(ValueError):
        RunProfile(queue="skiplist")


# ---------------------------------------------------------- ambient scope
def test_active_profile_scopes_the_ambient_profile():
    assert ambient_profile() is None
    profile = RunProfile(trace=True)
    with active_profile(profile) as current:
        assert current is profile
        assert ambient_profile() is profile
        assert RunProfile.current() is profile
    assert ambient_profile() is None
    assert RunProfile.current() == RunProfile()


def test_active_profile_rejects_non_profiles():
    with pytest.raises(TypeError):
        with active_profile({"trace": True}):
            pass  # pragma: no cover - never reached


def test_builder_adopts_the_ambient_profile():
    profile = RunProfile(queue_capacity=4)
    with active_profile(profile):
        builder = ScenarioBuilder(seed=1)
    assert builder.profile is profile
    # An explicit profile beats the ambient one.
    with active_profile(profile):
        explicit = ScenarioBuilder(seed=1, profile=RunProfile())
    assert explicit.profile == RunProfile()


# ------------------------------------------------------ deprecation shims
def test_legacy_kwargs_warn_once_and_still_work():
    reset_deprecation_warnings()
    try:
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            first = ScenarioBuilder(seed=1, trace=True)
            ScenarioBuilder(seed=1, trace=True)
        assert first.profile.trace is True
        deprecations = [w for w in caught if w.category is DeprecationWarning]
        assert len(deprecations) == 1
        assert "profile=RunProfile(trace=...)" in str(deprecations[0].message)
    finally:
        reset_deprecation_warnings()


def test_legacy_kwargs_and_profile_build_identical_scenarios():
    reset_deprecation_warnings()
    try:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = ScenarioBuilder(seed=1, queue_capacity=8, trace=True)
        modern = ScenarioBuilder(
            seed=1, profile=RunProfile(queue_capacity=8, trace=True)
        )
        assert legacy.profile == modern.profile
    finally:
        reset_deprecation_warnings()


def test_unknown_builder_kwarg_is_a_type_error():
    with pytest.raises(TypeError):
        ScenarioBuilder(seed=1, chaos_level=11)
