"""§4 extensions: piggybacked ACKs, NACKs, and carrier sense."""

import pytest

from repro.core.config import ProtocolConfig, macaw_config
from repro.mac.frames import FrameType
from repro.phy.noise import LinkErrorModel, TimeWindowErrorModel
from tests.core.test_macaw_exchange import build, deliveries, packet, sent_kinds


def test_config_rejects_nack_with_ack():
    with pytest.raises(ValueError):
        ProtocolConfig(use_ack=True, use_nack=True)
    with pytest.raises(ValueError):
        ProtocolConfig(ack_variant="cumulative")


# ----------------------------------------------------------- piggyback ACK
PIGGY = macaw_config(use_ds=False, use_rrts=False, ack_variant="piggyback")


def test_piggyback_skips_acks_within_burst():
    sim, medium, macs = build(["A", "B"], config=PIGGY)
    got = deliveries(macs["B"])
    for i in range(6):
        macs["A"].enqueue(packet(seq=i), "B", 512)
    sim.run(until=2.0)
    kinds = sent_kinds(sim)
    assert len(got) == 6
    # Only the last packet of the burst draws an immediate ACK.
    assert kinds.count("B:ACK") < 6
    assert kinds[-1] == "B:ACK"


def test_piggyback_delivers_everything_under_noise():
    class DataKiller(TimeWindowErrorModel):
        def applies_to(self, sim, tx, receiver):
            return tx.frame.kind is FrameType.DATA and super().applies_to(
                sim, tx, receiver
            )

    sim, medium, macs = build(["A", "B"], config=PIGGY)
    got = deliveries(macs["B"])
    medium.add_noise_model(DataKiller(0.35, start=0.0, end=3.0))
    for i in range(40):
        macs["A"].enqueue(packet(seq=i), "B", 512)
    sim.run(until=20.0)
    # Lost DATA is resurrected by the piggyback mismatch on the next CTS;
    # packets arrive (possibly reordered by one) or are dropped after the
    # retry budget — never lost silently without a drop notification.
    delivered = {p.seq for p, _ in got}
    assert len(delivered) == len(got)  # no duplicates
    assert len(got) + macs["A"].stats.drops == 40
    assert len(got) >= 34


def test_piggyback_single_packet_requests_immediate_ack():
    sim, medium, macs = build(["A", "B"], config=PIGGY)
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=1.0)
    assert sent_kinds(sim) == ["A:RTS", "B:CTS", "A:DATA", "B:ACK"]


# -------------------------------------------------------------------- NACK
NACK = macaw_config(use_ack=False, use_ds=False, use_rrts=False, use_nack=True)


def test_nack_sent_when_cts_draws_no_data():
    class DataKiller(LinkErrorModel):
        def applies_to(self, sim, tx, receiver):
            return tx.frame.kind is FrameType.DATA and super().applies_to(
                sim, tx, receiver
            )

    sim, medium, macs = build(["A", "B"], config=NACK)
    got = deliveries(macs["B"])
    noise = DataKiller([("A", "B")], 1.0)
    medium.add_noise_model(noise)
    macs["A"].enqueue(packet(), "B", 512)
    sim.run(until=0.08)  # two-ish failed rounds, within the retry budget
    assert "B:NACK" in sent_kinds(sim)
    noise.error_rate = 0.0
    sim.run(until=3.0)
    assert len(got) == 1  # the NACK resurrected the packet


def test_nack_recovers_burst_losses():
    class DataKiller(TimeWindowErrorModel):
        def applies_to(self, sim, tx, receiver):
            return tx.frame.kind is FrameType.DATA and super().applies_to(
                sim, tx, receiver
            )

    sim, medium, macs = build(["A", "B"], config=NACK)
    got = deliveries(macs["B"])
    medium.add_noise_model(DataKiller(0.3, start=0.0, end=3.0))
    for i in range(40):
        macs["A"].enqueue(packet(seq=i), "B", 512)
    sim.run(until=20.0)
    delivered = {p.seq for p, _ in got}
    assert len(delivered) == len(got)  # no duplicates
    # NACK recovery is best-effort: a NACK that is itself lost leaves a
    # silent loss, which the MAC counts.  Every packet is otherwise
    # accounted for.
    stats = macs["A"].stats
    assert len(got) + stats.drops + stats.silent_losses >= 40
    assert len(got) >= 30


def test_nack_mode_has_no_acks_when_clean():
    sim, medium, macs = build(["A", "B"], config=NACK)
    for i in range(5):
        macs["A"].enqueue(packet(seq=i), "B", 512)
    sim.run(until=2.0)
    kinds = sent_kinds(sim)
    assert "B:ACK" not in kinds
    assert "B:NACK" not in kinds  # silence is success


# ---------------------------------------------------------- carrier sense
def test_carrier_sense_defers_exposed_rts():
    """With carrier_sense on (and DS off), an exposed pad holds its RTS
    while the neighbouring pad's data is on the air (§3.3.2's CSMA/CA)."""
    config = macaw_config(use_ds=False, use_rrts=False, per_destination=False,
                          carrier_sense=True)
    sim, medium, macs = build(["P1", "B1", "P2", "B2"], config=config, links=None)
    medium.set_link(macs["P1"], macs["B1"])
    medium.set_link(macs["P2"], macs["B2"])
    medium.set_link(macs["P1"], macs["P2"])
    got1 = deliveries(macs["B1"])
    got2 = deliveries(macs["B2"])
    for i in range(200):
        sim.at(i * 0.018, lambda i=i: macs["P1"].enqueue(packet("a", i), "B1", 512))
        sim.at(i * 0.018, lambda i=i: macs["P2"].enqueue(packet("b", i), "B2", 512))
    sim.run(until=10.0)
    # Both exposed pads make progress (carrier sense supplies the
    # synchronization DS otherwise would).
    assert len(got1) > 60
    assert len(got2) > 60
