"""StreamQueue: single-FIFO vs multiple-stream disciplines (§3.2)."""

import pytest

from repro.core.streams import StreamQueue


def test_single_fifo_exposes_one_candidate():
    queue = StreamQueue(multi=False)
    queue.push("p1", "B", 512, 0.0)
    queue.push("p2", "C", 512, 0.1)
    candidates = queue.candidates()
    assert len(candidates) == 1
    assert candidates[0].dst == "B"  # strict FIFO order


def test_multi_exposes_one_candidate_per_stream():
    queue = StreamQueue(multi=True)
    queue.push("p1", "B", 512, 0.0)
    queue.push("p2", "C", 512, 0.1)
    queue.push("p3", "B", 512, 0.2)
    candidates = queue.candidates()
    assert [c.dst for c in candidates] == ["B", "C"]
    assert candidates[0].payload == "p1"  # head of the B stream


def test_pop_removes_by_identity():
    queue = StreamQueue(multi=True)
    first = queue.push("p1", "B", 512, 0.0)
    second = queue.push("p2", "B", 512, 0.1)
    # Deep removal is allowed (needed by the §4 resurrection paths) ...
    queue.pop(second)
    assert queue.candidates()[0] is first
    queue.pop(first)
    # ... but double-pop and foreign entries are errors.
    with pytest.raises(ValueError):
        queue.pop(first)


def test_push_front_reinserts_at_head():
    queue = StreamQueue(multi=True)
    first = queue.push("p1", "B", 512, 0.0)
    second = queue.push("p2", "B", 512, 0.1)
    queue.pop(first)
    queue.push_front(first)
    assert queue.candidates()[0] is first
    assert len(queue) == 2


def test_pop_removes_empty_stream():
    queue = StreamQueue(multi=True)
    entry = queue.push("p", "B", 512, 0.0)
    queue.pop(entry)
    assert queue.is_empty()
    assert queue.candidates() == []


def test_capacity_rejects_and_counts():
    queue = StreamQueue(multi=True, capacity=2)
    assert queue.push("a", "B", 512, 0.0) is not None
    assert queue.push("b", "B", 512, 0.0) is not None
    assert queue.push("c", "B", 512, 0.0) is None
    assert queue.rejected == 1
    assert queue.accepted == 2
    # Capacity is per stream: another destination still has room.
    assert queue.push("d", "C", 512, 0.0) is not None


def test_single_fifo_capacity_is_global():
    queue = StreamQueue(multi=False, capacity=2)
    queue.push("a", "B", 512, 0.0)
    queue.push("b", "C", 512, 0.0)
    assert queue.push("c", "D", 512, 0.0) is None


def test_head_for_multi_mode():
    queue = StreamQueue(multi=True)
    queue.push("a", "B", 512, 0.0)
    queue.push("b", "C", 512, 0.0)
    assert queue.head_for("C").payload == "b"
    assert queue.head_for("X") is None


def test_head_for_single_mode_requires_head_match():
    # In single-FIFO mode a later packet cannot jump the line (this is
    # what makes RRTS answerable only when the head targets the requester).
    queue = StreamQueue(multi=False)
    queue.push("a", "B", 512, 0.0)
    queue.push("b", "C", 512, 0.0)
    assert queue.head_for("B").payload == "a"
    assert queue.head_for("C") is None


def test_len_and_depths():
    queue = StreamQueue(multi=True)
    queue.push("a", "B", 512, 0.0)
    queue.push("b", "B", 512, 0.0)
    queue.push("c", "C", 512, 0.0)
    assert len(queue) == 3
    assert queue.depth_by_stream() == {"B": 2, "C": 1}


def test_entry_bookkeeping_fields():
    queue = StreamQueue(multi=True)
    entry = queue.push("a", "B", 512, 3.5)
    assert entry.enqueued_at == 3.5
    assert entry.retries == 0
    assert entry.esn is None
    assert not entry.attempted


def test_invalid_capacity():
    with pytest.raises(ValueError):
        StreamQueue(multi=True, capacity=0)
