"""Backoff adjustment, copying, and per-destination estimation (§3.1, B.2)."""

import pytest

from repro.core.backoff import (
    BackoffBook,
    BinaryExponentialBackoff,
    MildBackoff,
    make_backoff,
)
from repro.core.config import maca_config, macaw_config
from repro.mac.frames import FrameType, control_frame, data_frame


# ------------------------------------------------------------- algorithms
def test_beb_doubles_and_resets():
    beb = BinaryExponentialBackoff(2, 64)
    assert beb.increase(2) == 4
    assert beb.increase(40) == 64  # clamped
    assert beb.decrease(64) == 2   # reset to floor


def test_mild_multiplies_and_decrements():
    mild = MildBackoff(2, 64)
    assert mild.increase(2) == 3.0
    assert mild.increase(60) == 64  # clamped
    assert mild.decrease(10) == 9
    assert mild.decrease(2) == 2    # floor


def test_mild_factor_parameter():
    mild = MildBackoff(2, 64, factor=2.0)
    assert mild.increase(4) == 8
    with pytest.raises(ValueError):
        MildBackoff(2, 64, factor=1.0)


def test_factory():
    assert isinstance(make_backoff("beb", 2, 64), BinaryExponentialBackoff)
    assert isinstance(make_backoff("mild", 2, 64), MildBackoff)
    with pytest.raises(ValueError):
        make_backoff("aimd", 2, 64)


def test_bounds_validation():
    with pytest.raises(ValueError):
        BinaryExponentialBackoff(0, 64)
    with pytest.raises(ValueError):
        MildBackoff(10, 5)


# ------------------------------------------------------- single counter
def single_book(**overrides):
    return BackoffBook(maca_config(copy_backoff=True, **overrides))


def test_single_counter_timeout_and_success():
    book = BackoffBook(maca_config())
    assert book.my_backoff == 2
    book.on_timeout("B", 1)
    assert book.my_backoff == 4
    book.on_timeout("B", 2)
    assert book.my_backoff == 8
    book.on_success("B")
    assert book.my_backoff == 2  # BEB reset


def test_single_counter_contention_bound_ignores_dst():
    book = BackoffBook(maca_config())
    book.on_timeout("B", 1)
    assert book.contention_backoff("B") == book.contention_backoff("C") == 4


def test_simple_copy_includes_rts():
    # §3.1's scheme copies from EVERY heard packet, RTS included.
    book = single_book()
    rts = control_frame(FrameType.RTS, "Q", "R", local_backoff=16.0)
    book.on_frame_heard(rts, addressed_to_me=False)
    assert book.my_backoff == 16.0


def test_copy_disabled_ignores_headers():
    book = BackoffBook(maca_config())  # copy off
    frame = data_frame("Q", "R", 512, local_backoff=32.0)
    book.on_frame_heard(frame, addressed_to_me=False)
    assert book.my_backoff == 2


def test_copy_clamps_to_bounds():
    book = single_book()
    frame = data_frame("Q", "R", 512, local_backoff=500.0)
    book.on_frame_heard(frame, addressed_to_me=False)
    assert book.my_backoff == 64


# ------------------------------------------------------ per-destination
def macaw_book():
    return BackoffBook(macaw_config())


def test_per_destination_copy_ignores_rts():
    # B.2: "RTS packets are ignored because they may not carry the correct
    # backoff values".
    book = macaw_book()
    rts = control_frame(FrameType.RTS, "Q", "R", local_backoff=30.0)
    book.on_frame_heard(rts, addressed_to_me=False)
    assert book.my_backoff == 2


def test_overheard_non_rts_updates_ambient_and_estimates():
    book = macaw_book()
    frame = data_frame("Q", "R", 512, local_backoff=10.0, remote_backoff=20.0)
    book.on_frame_heard(frame, addressed_to_me=False)
    assert book.my_backoff == 10.0
    assert book.remote("Q").remote == 10.0
    assert book.remote("R").remote == 20.0


def test_contention_backoff_sums_both_ends():
    # Footnote 9: the two ends' values are combined by summing.
    book = macaw_book()
    frame = data_frame("Q", "R", 512, local_backoff=10.0, remote_backoff=20.0)
    book.on_frame_heard(frame, addressed_to_me=False)
    book.begin_attempt("Q")  # binds local = my_backoff (10)
    assert book.contention_backoff("Q") == 10.0 + 10.0


def test_transient_retry_pacing_does_not_mutate_estimates():
    book = macaw_book()
    before = book.contention_backoff("Q")
    book.on_timeout("Q", 1)
    book.on_timeout("Q", 2)
    assert book.contention_backoff("Q") == before  # estimates unchanged
    # ... but pending retries widen the draw transiently.
    assert book.contention_backoff("Q", retries=3) == before + 3 * book.config.alpha


def test_received_fresh_exchange_copies_authoritative_values():
    book = macaw_book()
    cts = control_frame(
        FrameType.CTS, "Q", "me", local_backoff=12.0, remote_backoff=5.0, esn=0
    )
    book.on_frame_heard(cts, addressed_to_me=True)
    entry = book.remote("Q")
    assert entry.remote == 12.0
    assert entry.local == 5.0
    assert entry.seen_esn == 0


def test_received_retransmission_infers_sender_side_congestion():
    # A retransmitted RTS with an ESN we already saw means our CTS died:
    # congestion at the *sender's* end, and the sum is conserved.
    book = macaw_book()
    first = control_frame(
        FrameType.RTS, "Q", "me", local_backoff=10.0, remote_backoff=6.0, esn=3
    )
    book.on_frame_heard(first, addressed_to_me=True)
    retry = control_frame(
        FrameType.RTS, "Q", "me", local_backoff=10.0, remote_backoff=6.0,
        esn=3, retry=True,
    )
    book.on_frame_heard(retry, addressed_to_me=True)
    entry = book.remote("Q")
    assert entry.remote == 10.0 + book.config.alpha
    assert entry.local + entry.remote == pytest.approx(16.0)


def test_first_sighting_already_retried_raises_own_estimate():
    # §3.4: an RTS lost en route means congestion at the receiver (us).
    book = macaw_book()
    ambient = book.my_backoff
    retry = control_frame(
        FrameType.RTS, "Q", "me", local_backoff=4.0, esn=9, retry=True
    )
    book.on_frame_heard(retry, addressed_to_me=True)
    assert book.my_backoff == ambient + book.config.alpha


def test_success_relaxes_both_ends():
    book = macaw_book()
    frame = data_frame("Q", "R", 512, local_backoff=10.0, remote_backoff=10.0)
    book.on_frame_heard(frame, addressed_to_me=False)  # remote(Q) = 10, my = 10
    book.on_success("Q")
    assert book.my_backoff == 9.0       # MILD decrement
    assert book.remote("Q").remote == 9.0


def test_give_up_pins_until_station_heard_again():
    book = macaw_book()
    book.on_give_up("Q")
    entry = book.remote("Q")
    assert entry.gave_up
    assert entry.local == book.config.bo_max
    assert entry.remote is None
    # The pin survives new attempts...
    book.begin_attempt("Q")
    assert book.remote("Q").local == book.config.bo_max
    # ...and is not broadcast as our congestion.
    local_field, _ = book.fields_for("Q")
    assert local_field == book.my_backoff
    # Hearing the station again clears it.
    cts = control_frame(FrameType.CTS, "Q", "me", local_backoff=3.0, esn=0)
    book.on_frame_heard(cts, addressed_to_me=True)
    assert not book.remote("Q").gave_up


def test_give_up_single_mode_raises_counter():
    book = BackoffBook(maca_config())
    book.on_give_up("Q")
    assert book.my_backoff == 4


def test_multicast_frames_do_not_create_multicast_remote():
    book = macaw_book()
    frame = data_frame("Q", "*", 512, local_backoff=10.0, remote_backoff=20.0)
    book.on_frame_heard(frame, addressed_to_me=False)
    assert "*" not in book.known_remotes()
    assert book.my_backoff == 10.0


def test_fields_for_single_mode():
    book = BackoffBook(maca_config(copy_backoff=True))
    local, remote = book.fields_for("Q")
    assert local == book.my_backoff
    assert remote is None


def test_contention_backoff_multicast_uses_plain_counter():
    book = macaw_book()
    assert book.contention_backoff(None) == book.my_backoff
