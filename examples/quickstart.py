#!/usr/bin/env python3
"""Quickstart: build a cell, run MACAW, read throughput.

Builds the paper's Figure 2 configuration by hand — one base station, two
saturated pads — runs it under full MACAW, and prints per-stream
throughput, fairness, and channel utilization.

Run:  python examples/quickstart.py
"""

from repro.api import ScenarioBuilder, channel_utilization, jain_fairness

DURATION_S = 120.0
WARMUP_S = 20.0


def main() -> None:
    builder = ScenarioBuilder(seed=42, protocol="macaw")
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.clique("B", "P1", "P2")          # everyone in range of everyone
    builder.udp("P1", "B", rate_pps=64.0)    # both pads offer a full channel
    builder.udp("P2", "B", rate_pps=64.0)

    print(f"Simulating {DURATION_S:.0f} s of a two-pad MACAW cell ...")
    scenario = builder.build().run(DURATION_S)

    throughputs = scenario.throughputs(warmup=WARMUP_S)
    total = sum(throughputs.values())
    print()
    for stream, pps in throughputs.items():
        print(f"  {stream}: {pps:6.2f} packets/s")
    print(f"  total : {total:6.2f} packets/s")
    print(f"  Jain fairness      : {jain_fairness(list(throughputs.values())):.3f}")
    print(f"  channel utilization: {channel_utilization(total):.0%}")
    print()
    print("Both pads get an even share of the 256 kbps channel — the")
    print("backoff copying and MILD adjustment of MACAW at work (Table 1).")


if __name__ == "__main__":
    main()
