#!/usr/bin/env python3
"""The two pathologies that motivate the paper (§2.2, Figure 1).

Carrier sense asks "is the medium busy *here*?" — but collisions happen at
the receiver.  This example runs the classic A—B—C—D chain under CSMA and
under MACA and prints what each protocol delivers:

* hidden terminals — A→B and C→B, where A and C cannot hear each other:
  CSMA's senders both see silence and collide at B;
* exposed terminals — B→A and C→D, where C hears B but cannot interfere
  at A: CSMA's C defers needlessly.

Run:  python examples/hidden_exposed_terminals.py
"""

from repro.api import CsmaConfig, figures, maca_config

DURATION_S = 150.0
WARMUP_S = 25.0


def run(scenario_factory, protocol, config):
    scenario = scenario_factory(protocol=protocol, config=config, seed=7).build()
    scenario.run(DURATION_S)
    return scenario.throughputs(warmup=WARMUP_S)


def show(title, results):
    print(f"\n{title}")
    print(f"  {'stream':<10} {'CSMA':>8} {'MACA':>8}")
    csma, maca = results
    for stream in csma:
        print(f"  {stream:<10} {csma[stream]:8.2f} {maca[stream]:8.2f}")
    print(f"  {'TOTAL':<10} {sum(csma.values()):8.2f} {sum(maca.values()):8.2f}")


def main() -> None:
    csma_cfg = CsmaConfig()
    maca_cfg = maca_config(copy_backoff=True)

    hidden = (
        run(figures.fig1_hidden_terminal, "csma", csma_cfg),
        run(figures.fig1_hidden_terminal, "maca", maca_cfg),
    )
    show("Hidden terminals: A→B and C→B (A, C mutually inaudible)", hidden)
    print("  CSMA senders sense silence and collide at B; MACA's CTS from B")
    print("  silences whichever sender lost the RTS exchange.")

    exposed = (
        run(figures.fig1_exposed_terminal, "csma", csma_cfg),
        run(figures.fig1_exposed_terminal, "maca", maca_cfg),
    )
    show("Exposed terminals: B→A and C→D (C hears B, cannot harm A)", exposed)
    print("  CSMA's C defers to a transmission it could never corrupt;")
    print("  MACA lets C transmit after hearing B's RTS but no CTS.")


if __name__ == "__main__":
    main()
