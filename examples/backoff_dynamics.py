#!/usr/bin/env python3
"""Watching backoff algorithms misbehave (§3.1, Tables 1 and 2).

Three runs of a contended cell, printing a per-10-seconds timeline of each
pad's throughput so the dynamics are visible, not just the averages:

1. plain BEB        — one pad captures the channel, the other starves;
2. BEB + copying    — fair, but the cell re-fights its contention war
                      after every reset;
3. MILD + copying   — fair and stable.

Run:  python examples/backoff_dynamics.py
"""

from repro.api import figures, maca_config, throughput_timeseries

DURATION_S = 400.0
BIN_S = 40.0


def timeline(config, label):
    scenario = figures.fig2_two_pads(config=config, seed=0).build().run(DURATION_S)
    print(f"\n{label}")
    print(f"  {'window':<12} {'P1-B':>7} {'P2-B':>7}")
    p1 = throughput_timeseries(scenario.recorder, "P1-B", 0, DURATION_S, BIN_S)
    p2 = throughput_timeseries(scenario.recorder, "P2-B", 0, DURATION_S, BIN_S)
    for (t, a), (_, b) in zip(p1, p2):
        print(f"  {t:5.0f}-{t + BIN_S:<5.0f} {a:7.1f} {b:7.1f}")
    timeouts = sum(
        scenario.station(p).mac.stats.cts_timeouts for p in ("P1", "P2")
    )
    print(f"  failed RTS attempts over the run: {timeouts}")


def main() -> None:
    timeline(maca_config(), "1. BEB, no copying — watch one pad take over:")
    timeline(
        maca_config(copy_backoff=True),
        "2. BEB + copying — fair, at the cost of contention wars:",
    )
    timeline(
        maca_config(copy_backoff=True, backoff="mild"),
        "3. MILD + copying — fair and calm (MACAW's choice):",
    )


if __name__ == "__main__":
    main()
