#!/usr/bin/env python3
"""The PARC office floor (§3.5, Figure 11): MACA vs MACAW end-to-end.

Four cells — an open area with four pads and whiteboard noise, two
offices, and a coffee room that pad P7 walks into mid-run — all carrying
TCP.  This is the paper's most complete scenario: congestion, noise, and
mobility at once.  The script prints per-stream throughput for both
protocols and a timeline of P7's stream as it appears.

Run:  python examples/office_floor.py
"""

from repro.api import figures, jain_fairness, throughput_timeseries

DURATION_S = 600.0
WARMUP_S = 50.0
P7_ARRIVAL_S = 180.0


def run(protocol: str):
    scenario = (
        figures.fig11_office(protocol=protocol, seed=11, p7_arrival_s=P7_ARRIVAL_S)
        .build()
        .run(DURATION_S)
    )
    return scenario


def main() -> None:
    print(f"Simulating {DURATION_S:.0f} s of the office floor under both protocols ...")
    maca = run("maca")
    macaw = run("macaw")

    maca_tp = maca.throughputs(warmup=WARMUP_S)
    macaw_tp = macaw.throughputs(warmup=WARMUP_S)
    print(f"\n  {'stream':<8} {'MACA':>8} {'MACAW':>8}")
    for stream in maca_tp:
        print(f"  {stream:<8} {maca_tp[stream]:8.2f} {macaw_tp[stream]:8.2f}")
    print(f"  {'TOTAL':<8} {sum(maca_tp.values()):8.2f} {sum(macaw_tp.values()):8.2f}")
    print(f"  Jain fairness: MACA {jain_fairness(list(maca_tp.values())):.3f}"
          f" vs MACAW {jain_fairness(list(macaw_tp.values())):.3f}")

    print(f"\nP7 enters the coffee room at t = {P7_ARRIVAL_S:.0f} s (MACAW run):")
    series = throughput_timeseries(
        macaw.recorder, "P7-B4", 0.0, DURATION_S, bin_s=60.0
    )
    for start, pps in series:
        bar = "#" * int(pps)
        print(f"  t={start:5.0f}s  {pps:5.1f} pps  {bar}")


if __name__ == "__main__":
    main()
