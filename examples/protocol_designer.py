#!/usr/bin/env python3
"""Design-space exploration: from MACA to MACAW one feature at a time.

The library builds every protocol the paper discusses from one
configurable machine, so the whole incremental path is a loop over
configurations.  This script walks it on the exposed-terminal cell pair
(Figure 5 topology, both directions of flow) and shows what each feature
buys — the paper's §3 narrative as a single table.

Run:  python examples/protocol_designer.py
"""

from repro.api import ProtocolConfig, ScenarioBuilder, jain_fairness

DURATION_S = 250.0
WARMUP_S = 40.0

#: The §3 path from MACA to MACAW, one amendment per step.
STEPS = [
    ("MACA (BEB)", ProtocolConfig()),
    ("+ copying", ProtocolConfig(copy_backoff=True)),
    ("+ MILD", ProtocolConfig(copy_backoff=True, backoff="mild")),
    ("+ per-stream queues", ProtocolConfig(
        copy_backoff=True, backoff="mild", multi_queue=True)),
    ("+ ACK", ProtocolConfig(
        copy_backoff=True, backoff="mild", multi_queue=True, use_ack=True)),
    ("+ DS", ProtocolConfig(
        copy_backoff=True, backoff="mild", multi_queue=True, use_ack=True,
        use_ds=True)),
    ("+ RRTS", ProtocolConfig(
        copy_backoff=True, backoff="mild", multi_queue=True, use_ack=True,
        use_ds=True, use_rrts=True)),
    ("+ per-destination (MACAW)", ProtocolConfig(
        copy_backoff=True, backoff="mild", multi_queue=True, use_ack=True,
        use_ds=True, use_rrts=True, per_destination=True)),
]


def build_scenario(config: ProtocolConfig):
    """Figure 5's two cells with traffic in both directions."""
    builder = ScenarioBuilder(seed=5, protocol="macaw", config=config)
    builder.add_base("B1")
    builder.add_base("B2")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.link("P1", "B1")
    builder.link("P2", "B2")
    builder.link("P1", "P2")
    builder.udp("P1", "B1", 32.0)
    builder.udp("B1", "P1", 32.0)
    builder.udp("P2", "B2", 32.0)
    builder.udp("B2", "P2", 32.0)
    return builder.build()


def main() -> None:
    print(f"{'configuration':<28} {'total pps':>9} {'Jain':>6} {'min stream':>10}")
    for label, config in STEPS:
        scenario = build_scenario(config).run(DURATION_S)
        tp = scenario.throughputs(warmup=WARMUP_S)
        values = list(tp.values())
        print(f"{label:<28} {sum(values):9.1f} {jain_fairness(values):6.3f}"
              f" {min(values):10.2f}")
    print()
    print("Each row adds one of the paper's amendments; fairness (Jain, min")
    print("stream) climbs as synchronization and congestion sharing improve.")


if __name__ == "__main__":
    main()
