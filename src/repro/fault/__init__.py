"""Fault injection & churn: declarative, seed-deterministic adversity.

The package splits cleanly into data and machinery:

* :mod:`repro.fault.events` / :mod:`repro.fault.generators` — typed,
  frozen event and process descriptions (pure data, JSON-able);
* :mod:`repro.fault.schedule` — the ordered :class:`FaultSchedule`
  container with serialization and a stable digest;
* :mod:`repro.fault.inject` — compiles a schedule onto a built scenario
  as kernel events (called from ``ScenarioBuilder.build``);
* :mod:`repro.fault.presets` — named chaos presets for ``--chaos``;
* :mod:`repro.fault.report` — fault-free vs faulted degradation runs.

All randomness in this package flows through named ``fault:*`` substreams
of :class:`repro.sim.rng.RandomStreams`; lint rule REPRO108 enforces it.
"""

from repro.fault.events import (
    BurstNoise,
    ClockedMove,
    FaultEvent,
    LinkFlap,
    QueueSqueeze,
    StationChurn,
)
from repro.fault.generators import (
    FaultProcess,
    GilbertElliott,
    LinkFlapProcess,
    PoissonChurn,
)
from repro.fault.inject import FaultInjector, FaultInstallError, install_faults
from repro.fault.schedule import EVENT_TYPES, FaultSchedule

__all__ = [
    "BurstNoise",
    "ClockedMove",
    "EVENT_TYPES",
    "FaultEvent",
    "FaultInjector",
    "FaultInstallError",
    "FaultProcess",
    "FaultSchedule",
    "GilbertElliott",
    "LinkFlap",
    "LinkFlapProcess",
    "PoissonChurn",
    "QueueSqueeze",
    "StationChurn",
    "install_faults",
]
