"""Named chaos presets for the CLI's ``--chaos`` flag.

Each preset is a zero-argument factory returning a fresh
:class:`~repro.fault.schedule.FaultSchedule`, so presets stay immutable
across invocations.  They are deliberately topology-agnostic — only
generators with wildcard / every-pad targets — so any scenario accepts
them without naming stations.

``churn-light`` is tuned mild enough that the sanitized paper tables
still pass their checks under it; CI runs it as the chaos smoke job.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.fault.generators import GilbertElliott, LinkFlapProcess, PoissonChurn
from repro.fault.schedule import FaultSchedule

__all__ = ["PRESETS", "get_preset", "preset_names"]


def _noise_burst() -> FaultSchedule:
    """§3.3.1-style intermittent noise: bursty packet loss floor-wide."""
    return FaultSchedule((
        GilbertElliott(mean_good_s=15.0, mean_bad_s=5.0, error_rate=0.35),
    ))


def _churn() -> FaultSchedule:
    """Pads power-cycling at a noticeable rate (stress preset)."""
    return FaultSchedule((
        PoissonChurn(rate_per_s=0.02, mean_outage_s=20.0),
    ))


def _churn_light() -> FaultSchedule:
    """Occasional short pad outages; paper-table checks should survive."""
    return FaultSchedule((
        PoissonChurn(rate_per_s=0.004, mean_outage_s=6.0),
    ))


def _flaky_links() -> FaultSchedule:
    """Every declared graph link flaps with long up / short down times."""
    return FaultSchedule((
        LinkFlapProcess(mean_up_s=25.0, mean_down_s=4.0),
    ))


#: Preset registry: name -> schedule factory.
PRESETS: Dict[str, Callable[[], FaultSchedule]] = {
    "noise-burst": _noise_burst,
    "churn": _churn,
    "churn-light": _churn_light,
    "flaky-links": _flaky_links,
}


def preset_names() -> Tuple[str, ...]:
    return tuple(sorted(PRESETS))


def get_preset(name: str) -> FaultSchedule:
    """The named preset's schedule; raises with the known names listed."""
    factory = PRESETS.get(name)
    if factory is None:
        known = ", ".join(preset_names())
        raise ValueError(f"unknown chaos preset {name!r}; known presets: {known}")
    return factory()
