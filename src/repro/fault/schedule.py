"""The declarative fault schedule.

A :class:`FaultSchedule` is an immutable, ordered collection of fault
events and fault processes (:mod:`repro.fault.events`,
:mod:`repro.fault.generators`).  It is pure data: picklable across worker
processes, serializable to JSON (``--faults spec.json``), and hashable
into the runner's cache key via :meth:`digest_key`.

The determinism contract, enforced by ``tests/fault/``:

* an **empty** schedule is indistinguishable from no schedule at all —
  same ``events_fired``, byte-identical ``Trace.digest()``, same cache
  key;
* a **non-empty** schedule is a pure function of ``(schedule, seed)``:
  same-seed runs are byte-identical whether executed serially, in a
  worker pool, or in another process.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple, Type, Union

from repro.fault.events import (
    BurstNoise,
    ClockedMove,
    FaultEvent,
    LinkFlap,
    QueueSqueeze,
    StationChurn,
)
from repro.fault.generators import GilbertElliott, LinkFlapProcess, PoissonChurn

__all__ = ["EVENT_TYPES", "FaultSchedule"]

#: Every schedulable event/process type, keyed by its wire ``kind``.
EVENT_TYPES: Dict[str, Type[FaultEvent]] = {
    cls.kind: cls
    for cls in (
        LinkFlap,
        BurstNoise,
        StationChurn,
        QueueSqueeze,
        ClockedMove,
        GilbertElliott,
        LinkFlapProcess,
        PoissonChurn,
    )
}


def _event_from_dict(payload: Mapping[str, Any]) -> FaultEvent:
    data = dict(payload)
    kind = data.pop("kind", None)
    if kind is None:
        raise ValueError(f"fault event needs a 'kind' field, got {payload!r}")
    cls = EVENT_TYPES.get(kind)
    if cls is None:
        known = ", ".join(sorted(EVENT_TYPES))
        raise ValueError(f"unknown fault kind {kind!r}; known kinds: {known}")
    try:
        return cls(**data)
    except TypeError as exc:
        raise ValueError(f"bad fields for fault kind {kind!r}: {exc}") from None


@dataclass(frozen=True)
class FaultSchedule:
    """Ordered, immutable set of fault events and processes."""

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        for event in self.events:
            if not isinstance(event, FaultEvent):
                raise TypeError(
                    f"schedule entries must be fault events, got {event!r}"
                )

    # ----------------------------------------------------------- container
    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def with_events(self, *events: FaultEvent) -> "FaultSchedule":
        """A new schedule with ``events`` appended."""
        return FaultSchedule(self.events + tuple(events))

    def effect_kinds(self) -> Tuple[str, ...]:
        """Distinct activation kinds, in first-appearance order (telemetry)."""
        seen: Dict[str, None] = {}
        for event in self.events:
            seen.setdefault(event.effect_kind)
        return tuple(seen)

    def station_names(self) -> Tuple[str, ...]:
        """Every station any event references (for eager validation)."""
        seen: Dict[str, None] = {}
        for event in self.events:
            for name in event.station_names():
                seen.setdefault(name)
        return tuple(seen)

    # ------------------------------------------------------- serialization
    @classmethod
    def empty(cls) -> "FaultSchedule":
        return cls()

    def to_dict(self) -> Dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSchedule":
        events = payload.get("events")
        if not isinstance(events, Sequence) or isinstance(events, (str, bytes)):
            raise ValueError("fault spec needs an 'events' list")
        return cls(tuple(_event_from_dict(item) for item in events))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultSchedule":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultSchedule":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # -------------------------------------------------------------- digest
    def digest_key(self) -> str:
        """Stable content hash, for cache keys and profile digests.

        An empty schedule intentionally has no distinct key — callers
        (``RunProfile.digest``) normalize it to "no schedule" so chaos
        sweeps and plain sweeps share baseline cache entries.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()
