"""Stochastic fault generators.

Where :mod:`repro.fault.events` describes *when* a fault happens,
generators describe a *process* that emits faults: the NS-2/NS-3 style
error-prone-channel and mobility studies the related work runs against
802.11.  Three processes cover the paper's adverse conditions:

* :class:`GilbertElliott` — two-state burst-noise channel: exponential
  good/bad holding times, a packet error rate while bad;
* :class:`LinkFlapProcess` — exponential on/off link flapping;
* :class:`PoissonChurn` — Poisson station power-cycling with exponential
  outage durations.

Generators run *online*: :mod:`repro.fault.inject` schedules each one's
next transition as a kernel event, so no run horizon needs to be known
up front.  Every draw comes from a dedicated ``repro.sim.rng`` substream
named ``fault:<kind>:<name>`` (lint rule REPRO108 bans any other source
of randomness in this package), which makes same-seed runs byte-identical
regardless of process count or worker scheduling — and keeps fault draws
from perturbing protocol, traffic or noise randomness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional, Tuple

from repro.fault.events import BurstNoise, FaultEvent, LinkFlap, StationChurn

__all__ = ["FaultProcess", "GilbertElliott", "LinkFlapProcess", "PoissonChurn"]


@dataclass(frozen=True)
class FaultProcess(FaultEvent):
    """Base class for stochastic generators.

    ``name`` disambiguates the random substream when a schedule holds
    several processes of the same kind; give each one a unique name or
    their event chains will share (deterministically interleaved) draws.
    """

    kind: ClassVar[str] = "?"

    start: float = 0.0
    #: Process stops emitting at this time; None runs to the horizon.
    end: Optional[float] = None
    name: str = "main"

    @property
    def stream_name(self) -> str:
        """The ``repro.sim.rng`` substream this process draws from."""
        return f"fault:{self.kind}:{self.name}"

    def _require_bounds(self) -> None:
        if self.start < 0:
            raise ValueError(f"process start must be >= 0, got {self.start!r}")
        if self.end is not None and self.end <= self.start:
            raise ValueError(
                f"process window needs end > start, got [{self.start!r}, {self.end!r})"
            )


@dataclass(frozen=True)
class GilbertElliott(FaultProcess):
    """Gilbert–Elliott burst-noise channel at ``receivers``.

    The channel alternates between a clean *good* state and a *bad* state
    with packet error rate ``error_rate``; holding times are exponential
    with means ``mean_good_s`` / ``mean_bad_s``.  Each bad period becomes
    one :class:`~repro.fault.events.BurstNoise` activation.
    """

    kind: ClassVar[str] = "gilbert_elliott"

    mean_good_s: float = 20.0
    mean_bad_s: float = 5.0
    error_rate: float = 0.5
    receivers: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        self._require_bounds()
        if self.mean_good_s <= 0 or self.mean_bad_s <= 0:
            raise ValueError("Gilbert-Elliott holding-time means must be positive")
        if not 0.0 < self.error_rate <= 1.0:
            raise ValueError(f"error rate must be in (0, 1], got {self.error_rate!r}")
        if self.receivers is not None:
            object.__setattr__(self, "receivers", tuple(self.receivers))

    @property
    def effect_kind(self) -> str:
        return BurstNoise.kind

    def station_names(self) -> Tuple[str, ...]:
        return self.receivers or ()


@dataclass(frozen=True)
class LinkFlapProcess(FaultProcess):
    """Exponential on/off flapping of one link (or, with wildcards, all links).

    The ``a``–``b`` link holds up for Exp(``mean_up_s``), drops for
    Exp(``mean_down_s``), and repeats.  ``a=None``/``b=None`` targets
    every declared graph link, each with its own ``fault:...:<a>-<b>``
    substream so adding a link never perturbs the others' sequences.
    """

    kind: ClassVar[str] = "link_flap_process"

    a: Optional[str] = None
    b: Optional[str] = None
    mean_up_s: float = 30.0
    mean_down_s: float = 5.0
    symmetric: bool = True

    def __post_init__(self) -> None:
        self._require_bounds()
        if (self.a is None) != (self.b is None):
            raise ValueError("link flap process needs both endpoints or neither")
        if self.a is not None and self.a == self.b:
            raise ValueError(f"link flap needs two distinct stations, got {self.a!r}")
        if self.mean_up_s <= 0 or self.mean_down_s <= 0:
            raise ValueError("link flap holding-time means must be positive")

    @property
    def effect_kind(self) -> str:
        return LinkFlap.kind

    def station_names(self) -> Tuple[str, ...]:
        return () if self.a is None or self.b is None else (self.a, self.b)


@dataclass(frozen=True)
class PoissonChurn(FaultProcess):
    """Poisson power-cycling over a station pool.

    Outages arrive at ``rate_per_s``; each picks a uniform station from
    ``stations`` (empty = every pad, resolved at install time) and powers
    it off for Exp(``mean_outage_s``).  Arrivals targeting a station that
    is already down are skipped — the draw is still consumed, so the
    sequence stays deterministic under any overlap pattern.
    """

    kind: ClassVar[str] = "poisson_churn"

    stations: Tuple[str, ...] = ()
    rate_per_s: float = 0.02
    mean_outage_s: float = 20.0

    def __post_init__(self) -> None:
        self._require_bounds()
        if self.rate_per_s <= 0:
            raise ValueError(f"churn rate must be positive, got {self.rate_per_s!r}")
        if self.mean_outage_s <= 0:
            raise ValueError(
                f"mean outage must be positive, got {self.mean_outage_s!r}"
            )
        object.__setattr__(self, "stations", tuple(self.stations))

    @property
    def effect_kind(self) -> str:
        return StationChurn.kind

    def station_names(self) -> Tuple[str, ...]:
        return self.stations
