"""Degradation reports: faulted vs fault-free runs, side by side.

:func:`run_degradation` runs the paper's six-pad single cell (Figure 3 /
Table 2's topology) twice per protocol — once clean, once with the given
:class:`~repro.fault.schedule.FaultSchedule` — under identical seeds, and
reports how much throughput and delay each MAC retains under adversity.
This is the engine behind ``python -m repro chaos <preset>``.

Both runs share one seed, so the *traffic* randomness is identical; only
the fault substreams differ (they exist solely in the faulted run), which
isolates the protocol's robustness from workload luck.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.config import RunProfile, active_profile
from repro.fault.schedule import FaultSchedule

__all__ = ["DegradationReport", "ProtocolDegradation", "run_degradation"]

#: Protocols the chaos CLI compares by default.
DEFAULT_PROTOCOLS: Tuple[str, ...] = ("macaw", "maca", "csma")


def _mean(values: Sequence[float]) -> float:
    return math.fsum(values) / len(values) if values else float("nan")


@dataclass(frozen=True)
class ProtocolDegradation:
    """One protocol's clean-vs-faulted comparison."""

    protocol: str
    baseline_pps: float
    faulted_pps: float
    baseline_delay_s: float
    faulted_delay_s: float
    #: Fault activations by effect kind in the faulted run.
    injected: Dict[str, int]

    @property
    def throughput_retained(self) -> float:
        """Faulted throughput as a fraction of baseline (NaN if no baseline)."""
        if self.baseline_pps <= 0.0:
            return float("nan")
        return self.faulted_pps / self.baseline_pps

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "baseline_pps": self.baseline_pps,
            "faulted_pps": self.faulted_pps,
            "throughput_retained": self.throughput_retained,
            "baseline_delay_s": self.baseline_delay_s,
            "faulted_delay_s": self.faulted_delay_s,
            "injected": dict(self.injected),
        }


@dataclass(frozen=True)
class DegradationReport:
    """A full chaos comparison across protocols."""

    seed: int
    duration: float
    warmup: float
    rows: Tuple[ProtocolDegradation, ...]
    #: Per-protocol metrics dumps of the faulted runs (when enabled).
    metrics: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "warmup": self.warmup,
            "rows": [row.to_dict() for row in self.rows],
        }

    def render(self) -> str:
        """Human-readable comparison table (the CLI prints this)."""
        header = (
            f"{'protocol':<10} {'clean pps':>10} {'faulted pps':>12} "
            f"{'retained':>9} {'clean delay':>12} {'faulted delay':>14}"
        )
        lines = [
            f"degradation report  seed={self.seed}  "
            f"duration={self.duration:g}s  warmup={self.warmup:g}s",
            header,
            "-" * len(header),
        ]
        for row in self.rows:
            retained = row.throughput_retained
            retained_s = "n/a" if math.isnan(retained) else f"{retained:7.1%}"
            clean_d = (
                "n/a" if math.isnan(row.baseline_delay_s)
                else f"{row.baseline_delay_s * 1e3:9.1f} ms"
            )
            fault_d = (
                "n/a" if math.isnan(row.faulted_delay_s)
                else f"{row.faulted_delay_s * 1e3:11.1f} ms"
            )
            lines.append(
                f"{row.protocol:<10} {row.baseline_pps:>10.1f} "
                f"{row.faulted_pps:>12.1f} {retained_s:>9} "
                f"{clean_d:>12} {fault_d:>14}"
            )
        if self.rows:
            injected = self.rows[0].injected
            summary = ", ".join(f"{kind}={n}" for kind, n in injected.items())
            lines.append(f"faults injected: {summary or '(none fired)'}")
        return "\n".join(lines)


def _measure(
    scenario: Any, warmup: float, duration: float
) -> Tuple[float, float]:
    """(aggregate pps, mean delivery delay) over the post-warmup window."""
    recorder = scenario.recorder
    pps = 0.0
    delays: List[float] = []
    for stream in recorder.streams():
        pps += recorder.throughput_pps(stream, warmup, duration)
        delays.extend(recorder.flow(stream).delays_between(warmup, duration))
    return pps, _mean(delays)


def run_degradation(
    schedule: FaultSchedule,
    seed: int = 0,
    duration: float = 300.0,
    warmup: float = 50.0,
    protocols: Sequence[str] = DEFAULT_PROTOCOLS,
    metrics: Any = None,
) -> DegradationReport:
    """Run clean and faulted six-pad cells per protocol and compare.

    ``metrics`` follows the usual metrics spec (True / interval /
    ``MetricsConfig``); when set, the *faulted* runs are instrumented and
    their dumps land in :attr:`DegradationReport.metrics` so the CLI can
    export the ``fault.*`` series.
    """
    if not schedule:
        raise ValueError("degradation report needs a non-empty fault schedule")
    from repro.topo.figures import fig3_six_pads

    rows: List[ProtocolDegradation] = []
    dumps: Dict[str, Any] = {}
    for protocol in protocols:
        with active_profile(RunProfile(metrics=False)):
            clean = fig3_six_pads(protocol=protocol, seed=seed).build()
        clean.run(duration)
        base_pps, base_delay = _measure(clean, warmup, duration)

        with active_profile(RunProfile(faults=schedule,
                                       metrics=metrics or False)):
            faulted = fig3_six_pads(protocol=protocol, seed=seed).build()
        faulted.run(duration)
        fault_pps, fault_delay = _measure(faulted, warmup, duration)

        injector = faulted.fault_injector
        rows.append(ProtocolDegradation(
            protocol=protocol,
            baseline_pps=base_pps,
            faulted_pps=fault_pps,
            baseline_delay_s=base_delay,
            faulted_delay_s=fault_delay,
            injected=dict(injector.injected) if injector is not None else {},
        ))
        if faulted.metrics is not None:
            dumps[protocol] = faulted.metrics.dump()
    return DegradationReport(
        seed=seed, duration=duration, warmup=warmup,
        rows=tuple(rows), metrics=dumps,
    )
