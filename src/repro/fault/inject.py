"""Bind a fault schedule onto a built scenario.

:func:`install_faults` is called by ``ScenarioBuilder.build`` when the
run profile carries a non-empty :class:`~repro.fault.schedule
.FaultSchedule`.  It validates every referenced station against the
scenario, then compiles each event onto the kernel as ordinary scheduled
events:

* :class:`~repro.fault.events.LinkFlap` — ``GraphMedium.set_link`` down
  at ``start``, back up at ``end``;
* :class:`~repro.fault.events.BurstNoise` — a dedicated
  :class:`~repro.phy.noise.PacketErrorModel` (drawing from a
  ``fault:burst_noise:*`` substream) added at ``start`` and removed at
  ``end``;
* :class:`~repro.fault.events.StationChurn` — power-off, then power-on
  with repositioning / re-homing; on a graph medium the pre-outage links
  are snapshotted and restored when no explicit ``connect`` is given;
* :class:`~repro.fault.events.QueueSqueeze` — clamp and later restore the
  MAC queue's ``capacity``;
* :class:`~repro.fault.events.ClockedMove` — instantaneous reposition.

Generators (:mod:`repro.fault.generators`) run online: each transition
draws its holding time from the process's own ``fault:...`` substream and
schedules the next one, so no run horizon needs to be known up front and
same-seed runs are byte-identical regardless of how many processes are
active.

The injector also keeps the telemetry the ``fault.*`` probes read:
per-kind activation counts, the number of currently-active faults, and a
recovery-duration log with an ``on_recovery`` callback hook (mirroring
``FlowRecorder.on_record``) that :mod:`repro.obs.probes` taps for the
recovery-time histogram.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.fault.events import (
    BurstNoise,
    ClockedMove,
    FaultEvent,
    LinkFlap,
    QueueSqueeze,
    StationChurn,
)
from repro.fault.generators import GilbertElliott, LinkFlapProcess, PoissonChurn
from repro.fault.schedule import FaultSchedule
from repro.phy.graph_medium import GraphMedium
from repro.phy.noise import PacketErrorModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.topo.builder import Scenario

__all__ = ["FaultInstallError", "FaultInjector", "install_faults"]

#: A link snapshot: (outgoing peer names, incoming peer names) of a port.
_LinkSnapshot = Tuple[Tuple[str, ...], Tuple[str, ...]]


class FaultInstallError(ValueError):
    """A schedule references stations/media the scenario does not have."""


class FaultInjector:
    """Installed faults of one scenario: kernel events plus telemetry.

    Built by :func:`install_faults`; every schedule entry is validated and
    compiled in declaration order, so installation order — and therefore
    the kernel event sequence and every substream's draw sequence — is a
    pure function of ``(schedule, seed)``.
    """

    def __init__(
        self,
        scenario: "Scenario",
        schedule: FaultSchedule,
        declared_links: Sequence[Tuple[str, str, bool]] = (),
    ) -> None:
        self.scenario = scenario
        self.schedule = schedule
        self.sim = scenario.sim
        self.medium = scenario.medium
        self._declared_links = tuple(declared_links)
        #: Activations per effect kind (pre-seeded so probes can bind).
        self.injected: Dict[str, int] = {
            kind: 0 for kind in schedule.effect_kinds()
        }
        #: Activation time of each currently-active fault, by token.
        self._active: Dict[int, float] = {}
        self._next_token = 0
        #: (effect kind, outage duration seconds) per recovered fault.
        self.recoveries: List[Tuple[str, float]] = []
        #: Passive observability tap: called as ``on_recovery(kind,
        #: duration_s)`` when a fault clears.  Must not mutate simulation
        #: state (the obs layer feeds a histogram from it).
        self.on_recovery: Optional[Callable[[str, float], None]] = None
        self._validate()
        for index, event in enumerate(schedule):
            self._install(event, index)

    # ------------------------------------------------------------ telemetry
    def active_count(self) -> int:
        """Number of faults currently in effect."""
        return len(self._active)

    def _begin(self, kind: str) -> int:
        """Record one activation; returns a token for :meth:`_end`."""
        self.injected[kind] += 1
        token = self._next_token
        self._next_token += 1
        self._active[token] = self.sim.now
        return token

    def _end(self, kind: str, token: int) -> None:
        started = self._active.pop(token, None)
        if started is None:  # pragma: no cover - defensive double-end guard
            return
        duration = self.sim.now - started
        self.recoveries.append((kind, duration))
        if self.on_recovery is not None:
            self.on_recovery(kind, duration)

    # ----------------------------------------------------------- validation
    def _validate(self) -> None:
        known = self.scenario.stations
        for name in self.schedule.station_names():
            if name not in known:
                raise FaultInstallError(
                    f"fault schedule references unknown station {name!r}; "
                    f"declared stations: {', '.join(sorted(known)) or '(none)'}"
                )
        for event in self.schedule:
            if isinstance(event, (LinkFlap, LinkFlapProcess)) and not isinstance(
                self.medium, GraphMedium
            ):
                raise FaultInstallError(
                    f"{event.kind} faults need the graph medium "
                    f"(got {type(self.medium).__name__})"
                )
            if isinstance(event, QueueSqueeze):
                mac = known[event.station].mac
                queue = getattr(mac, "queue", None)
                if queue is None or not hasattr(queue, "capacity"):
                    raise FaultInstallError(
                        f"queue_squeeze needs a MAC with a bounded queue; "
                        f"{event.station!r} runs {type(mac).__name__}"
                    )

    # --------------------------------------------------------------- install
    def _install(self, event: FaultEvent, index: int) -> None:
        if isinstance(event, LinkFlap):
            self._install_link_flap(event)
        elif isinstance(event, BurstNoise):
            self._install_burst_noise(event, index)
        elif isinstance(event, StationChurn):
            self._install_station_churn(event)
        elif isinstance(event, QueueSqueeze):
            self._install_queue_squeeze(event)
        elif isinstance(event, ClockedMove):
            self._install_clocked_move(event)
        elif isinstance(event, GilbertElliott):
            self._install_gilbert_elliott(event)
        elif isinstance(event, LinkFlapProcess):
            self._install_link_flap_process(event)
        elif isinstance(event, PoissonChurn):
            self._install_poisson_churn(event)
        else:  # pragma: no cover - schedule construction rejects these
            raise FaultInstallError(f"uninstallable fault event {event!r}")

    # ---------------------------------------------------------- link helpers
    def _graph(self) -> GraphMedium:
        assert isinstance(self.medium, GraphMedium)  # _validate guarantees it
        return self.medium

    def _set_link_safe(
        self, a: str, b: str, connected: bool, symmetric: bool
    ) -> None:
        """``set_link`` that skips silently when either port is detached.

        A flap firing while one endpoint is powered off (churn overlap)
        must not crash the run; the link state of a detached port is
        whatever its power-on restoration says it is.
        """
        medium = self._graph()
        port_a = self.scenario.stations[a].mac
        port_b = self.scenario.stations[b].mac
        if medium.attached(port_a) and medium.attached(port_b):
            medium.set_link(port_a, port_b, connected, symmetric)

    def _snapshot_links(self, name: str) -> Optional[_LinkSnapshot]:
        """The station's directed graph links, by peer name (or None)."""
        if not isinstance(self.medium, GraphMedium):
            return None
        port = self.scenario.stations[name].mac
        outgoing, incoming = self.medium.links_snapshot(port)
        return (
            tuple(p.name for p in outgoing),
            tuple(p.name for p in incoming),
        )

    def _restore_links(self, name: str, snapshot: Optional[_LinkSnapshot]) -> None:
        if snapshot is None:
            return
        outgoing, incoming = snapshot
        for peer in outgoing:
            self._set_link_safe(name, peer, True, symmetric=False)
        for peer in incoming:
            self._set_link_safe(peer, name, True, symmetric=False)

    def _power_on_station(
        self,
        name: str,
        position: Optional[Tuple[float, float, float]],
        connect: Optional[Tuple[str, ...]],
        snapshot: Optional[_LinkSnapshot],
    ) -> None:
        station = self.scenario.stations[name]
        if station.powered:
            return
        if position is not None:
            station.position = position
        station.power_on()
        if not isinstance(self.medium, GraphMedium):
            return
        if connect is not None:
            for peer in connect:
                self._set_link_safe(name, peer, True, symmetric=True)
        else:
            self._restore_links(name, snapshot)

    # --------------------------------------------------------- event installs
    #
    # Every scheduled callback is a *bound method* with explicit,
    # picklable arguments (the frozen event/process dataclasses, tokens,
    # link snapshots) rather than a nested closure: the snapshot
    # subsystem serializes pending events as ``(owner token, method
    # name, args)`` descriptors, which closures cannot round-trip.
    # Continuation state that the old closures captured lexically is
    # threaded through the argument lists; RNG substreams are re-resolved
    # from ``sim.streams`` on every call (same cached generator object,
    # same draw sequence) so no generator is ever captured by value.

    def _install_link_flap(self, event: LinkFlap) -> None:
        self._graph()
        self.sim.at(event.start, self._link_flap_down, event)

    def _link_flap_down(self, event: LinkFlap) -> None:
        token = self._begin(LinkFlap.kind)
        self._set_link_safe(event.a, event.b, False, event.symmetric)
        self.sim.at(event.end, self._link_flap_up, event, token)

    def _link_flap_up(self, event: LinkFlap, token: int) -> None:
        self._set_link_safe(event.a, event.b, True, event.symmetric)
        self._end(LinkFlap.kind, token)

    def _install_burst_noise(self, event: BurstNoise, index: int) -> None:
        model = PacketErrorModel(
            event.error_rate,
            receivers=event.receivers,
            stream=f"fault:{BurstNoise.kind}:{index}",
        )
        self.sim.at(event.start, self._burst_noise_start, event, model)

    def _burst_noise_start(
        self, event: BurstNoise, model: PacketErrorModel
    ) -> None:
        token = self._begin(BurstNoise.kind)
        self.medium.add_noise_model(model)
        self.sim.at(event.end, self._burst_noise_stop, model, token)

    def _burst_noise_stop(self, model: PacketErrorModel, token: int) -> None:
        self.medium.remove_noise_model(model)
        self._end(BurstNoise.kind, token)

    def _install_station_churn(self, event: StationChurn) -> None:
        self.sim.at(event.off_at, self._churn_off, event)

    def _churn_off(self, event: StationChurn) -> None:
        station = self.scenario.stations[event.station]
        if not station.powered:
            return
        snapshot = None
        if event.on_at is not None and event.connect is None:
            snapshot = self._snapshot_links(event.station)
        token = self._begin(StationChurn.kind)
        station.power_off()
        if event.on_at is None:
            return  # permanent outage: stays in the active gauge
        self.sim.at(event.on_at, self._churn_on, event, token, snapshot)

    def _churn_on(
        self,
        event: StationChurn,
        token: int,
        snapshot: Optional[_LinkSnapshot],
    ) -> None:
        self._power_on_station(
            event.station, event.position, event.connect, snapshot
        )
        self._end(StationChurn.kind, token)

    def _install_queue_squeeze(self, event: QueueSqueeze) -> None:
        self.sim.at(event.start, self._squeeze_start, event)

    def _squeeze_start(self, event: QueueSqueeze) -> None:
        queue = self.scenario.stations[event.station].mac.queue
        previous = queue.capacity
        squeezed = (
            event.capacity if previous is None
            else min(previous, event.capacity)
        )
        token = self._begin(QueueSqueeze.kind)
        queue.capacity = squeezed
        self.sim.at(event.end, self._squeeze_stop, event, token, previous)

    def _squeeze_stop(
        self, event: QueueSqueeze, token: int, previous: Optional[int]
    ) -> None:
        self.scenario.stations[event.station].mac.queue.capacity = previous
        self._end(QueueSqueeze.kind, token)

    def _install_clocked_move(self, event: ClockedMove) -> None:
        self.sim.at(event.at, self._clocked_move, event)

    def _clocked_move(self, event: ClockedMove) -> None:
        self.injected[ClockedMove.kind] += 1
        self.scenario.stations[event.station].position = event.position

    # ------------------------------------------------------ process installs
    def _install_gilbert_elliott(self, proc: GilbertElliott) -> None:
        self._ge_schedule_bad(proc, proc.start)

    def _ge_schedule_bad(self, proc: GilbertElliott, from_time: float) -> None:
        rng = self.sim.streams.get(proc.stream_name)
        at = from_time + float(rng.exponential(proc.mean_good_s))
        if proc.end is not None and at >= proc.end:
            return
        self.sim.at(at, self._ge_go_bad, proc)

    def _ge_go_bad(self, proc: GilbertElliott) -> None:
        rng = self.sim.streams.get(proc.stream_name)
        duration = float(rng.exponential(proc.mean_bad_s))
        clear_at = self.sim.now + duration
        if proc.end is not None:
            clear_at = min(clear_at, proc.end)
        token = self._begin(BurstNoise.kind)
        model = PacketErrorModel(
            proc.error_rate,
            receivers=proc.receivers,
            stream=f"{proc.stream_name}:noise",
        )
        self.medium.add_noise_model(model)
        self.sim.at(clear_at, self._ge_go_good, proc, token, model)

    def _ge_go_good(
        self, proc: GilbertElliott, token: int, model: PacketErrorModel
    ) -> None:
        self.medium.remove_noise_model(model)
        self._end(BurstNoise.kind, token)
        self._ge_schedule_bad(proc, self.sim.now)

    def _flap_targets(
        self, proc: LinkFlapProcess
    ) -> List[Tuple[str, str, bool, str]]:
        """(a, b, symmetric, substream) per flapped link, declaration order."""
        if proc.a is not None and proc.b is not None:
            return [(proc.a, proc.b, proc.symmetric, proc.stream_name)]
        if not self._declared_links:
            raise FaultInstallError(
                "wildcard link_flap_process needs declared graph links"
            )
        targets: List[Tuple[str, str, bool, str]] = []
        seen: Dict[Tuple[str, str], None] = {}
        for a, b, symmetric in self._declared_links:
            if (a, b) in seen:
                continue
            seen[(a, b)] = None
            targets.append((a, b, symmetric, f"{proc.stream_name}:{a}-{b}"))
        return targets

    def _install_link_flap_process(self, proc: LinkFlapProcess) -> None:
        self._graph()
        for a, b, symmetric, stream in self._flap_targets(proc):
            self._flap_schedule_down(proc, a, b, symmetric, stream, proc.start)

    def _flap_schedule_down(
        self, proc: LinkFlapProcess, a: str, b: str, symmetric: bool,
        stream: str, from_time: float
    ) -> None:
        rng = self.sim.streams.get(stream)
        at = from_time + float(rng.exponential(proc.mean_up_s))
        if proc.end is not None and at >= proc.end:
            return
        self.sim.at(at, self._flap_proc_down, proc, a, b, symmetric, stream)

    def _flap_proc_down(
        self, proc: LinkFlapProcess, a: str, b: str, symmetric: bool,
        stream: str
    ) -> None:
        rng = self.sim.streams.get(stream)
        duration = float(rng.exponential(proc.mean_down_s))
        up_at = self.sim.now + duration
        if proc.end is not None:
            up_at = min(up_at, proc.end)
        token = self._begin(LinkFlap.kind)
        self._set_link_safe(a, b, False, symmetric)
        self.sim.at(
            up_at, self._flap_proc_up, proc, a, b, symmetric, stream, token
        )

    def _flap_proc_up(
        self, proc: LinkFlapProcess, a: str, b: str, symmetric: bool,
        stream: str, token: int
    ) -> None:
        self._set_link_safe(a, b, True, symmetric)
        self._end(LinkFlap.kind, token)
        self._flap_schedule_down(proc, a, b, symmetric, stream, self.sim.now)

    def _install_poisson_churn(self, proc: PoissonChurn) -> None:
        if proc.stations:
            pool: Tuple[str, ...] = proc.stations
        else:
            pool = tuple(
                name for name, station in self.scenario.stations.items()
                if station.kind == "pad"
            )
        if not pool:
            raise FaultInstallError("poisson_churn has no pads to power-cycle")
        self._poisson_schedule_arrival(proc, pool, proc.start)

    def _poisson_schedule_arrival(
        self, proc: PoissonChurn, pool: Tuple[str, ...], from_time: float
    ) -> None:
        rng = self.sim.streams.get(proc.stream_name)
        at = from_time + float(rng.exponential(1.0 / proc.rate_per_s))
        if proc.end is not None and at >= proc.end:
            return
        self.sim.at(at, self._poisson_arrive, proc, pool)

    def _poisson_arrive(
        self, proc: PoissonChurn, pool: Tuple[str, ...]
    ) -> None:
        # Draws are consumed unconditionally (station pick + outage
        # length) so the sequence is deterministic under any overlap.
        rng = self.sim.streams.get(proc.stream_name)
        name = pool[int(rng.integers(len(pool)))]
        outage = float(rng.exponential(proc.mean_outage_s))
        self._poisson_schedule_arrival(proc, pool, self.sim.now)
        station = self.scenario.stations[name]
        if not station.powered:
            return
        snapshot = self._snapshot_links(name)
        token = self._begin(StationChurn.kind)
        station.power_off()
        self.sim.at(
            self.sim.now + outage, self._poisson_on, proc, name, token,
            snapshot
        )

    def _poisson_on(
        self,
        proc: PoissonChurn,
        name: str,
        token: int,
        snapshot: Optional[_LinkSnapshot],
    ) -> None:
        self._power_on_station(name, None, None, snapshot)
        self._end(StationChurn.kind, token)


def install_faults(
    scenario: "Scenario",
    schedule: FaultSchedule,
    declared_links: Sequence[Tuple[str, str, bool]] = (),
) -> FaultInjector:
    """Validate ``schedule`` against ``scenario`` and compile it onto the
    kernel; returns the injector carrying the ``fault.*`` telemetry.

    ``declared_links`` is the builder's link declarations — what wildcard
    :class:`~repro.fault.generators.LinkFlapProcess` instances expand to.
    """
    return FaultInjector(scenario, schedule, declared_links)
