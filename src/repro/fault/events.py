"""Typed, declarative fault events.

Each event is a small frozen dataclass describing *one* adverse condition
from the paper's evaluation, generalized so schedules can compose them:

* :class:`LinkFlap` — a graph-medium link goes down for a window (the
  asymmetric/one-way-link studies of Figures 4–6 become schedulable);
* :class:`BurstNoise` — a packet-error burst at selected receivers
  (§3.3.1's intermittent noise, §3.5's whiteboard);
* :class:`StationChurn` — a station powers off and (optionally) back on,
  possibly repositioned (Figure 9's dead pad, §3.5's P7 entering C4);
* :class:`QueueSqueeze` — a transient MAC queue-capacity clamp (memory
  pressure / buffer bloat studies);
* :class:`ClockedMove` — an instantaneous reposition at a fixed time
  (deterministic mobility waypoints).

Events carry only plain data — station *names*, times, rates — so a
:class:`~repro.fault.schedule.FaultSchedule` pickles across worker
processes and serializes to JSON.  Binding names to live objects happens
at install time (:mod:`repro.fault.inject`), which also validates that
every named station exists.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, ClassVar, Dict, Optional, Tuple

__all__ = [
    "FaultEvent",
    "LinkFlap",
    "BurstNoise",
    "StationChurn",
    "QueueSqueeze",
    "ClockedMove",
]


@dataclass(frozen=True)
class FaultEvent:
    """Base class: shared serialization and validation hooks.

    ``kind`` is the stable wire/telemetry identifier; ``effect_kind`` is
    the label under which activations are counted (generators override it
    with the kind of the concrete faults they emit).
    """

    kind: ClassVar[str] = "?"

    @property
    def effect_kind(self) -> str:
        return self.kind

    def station_names(self) -> Tuple[str, ...]:
        """Stations this event references (for eager validation)."""
        return ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able dict with a ``kind`` discriminator."""
        out: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, tuple):
                value = list(value)
            out[f.name] = value
        return out

    # ------------------------------------------------------------ helpers
    @staticmethod
    def _require_window(start: float, end: float) -> None:
        if start < 0:
            raise ValueError(f"fault start must be >= 0, got {start!r}")
        if end <= start:
            raise ValueError(f"fault window needs end > start, got [{start!r}, {end!r})")


@dataclass(frozen=True)
class LinkFlap(FaultEvent):
    """The ``a``–``b`` link is down during ``[start, end)`` (graph medium).

    With ``symmetric=False`` only the a→b direction drops — the one-way
    link of the paper's noise-near-the-receiver scenarios.
    """

    kind: ClassVar[str] = "link_flap"

    a: str
    b: str
    start: float
    end: float
    symmetric: bool = True

    def __post_init__(self) -> None:
        self._require_window(self.start, self.end)
        if self.a == self.b:
            raise ValueError(f"link flap needs two distinct stations, got {self.a!r}")

    def station_names(self) -> Tuple[str, ...]:
        return (self.a, self.b)


@dataclass(frozen=True)
class BurstNoise(FaultEvent):
    """Packet error rate ``error_rate`` at ``receivers`` during ``[start, end)``.

    ``receivers=None`` hits every station (a floor-wide noise burst);
    naming receivers localizes the noise like §3.5's whiteboard.
    """

    kind: ClassVar[str] = "burst_noise"

    start: float
    end: float
    error_rate: float
    receivers: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        self._require_window(self.start, self.end)
        if not 0.0 < self.error_rate <= 1.0:
            raise ValueError(f"error rate must be in (0, 1], got {self.error_rate!r}")
        if self.receivers is not None:
            object.__setattr__(self, "receivers", tuple(self.receivers))

    def station_names(self) -> Tuple[str, ...]:
        return self.receivers or ()


@dataclass(frozen=True)
class StationChurn(FaultEvent):
    """``station`` powers off at ``off_at``; back on at ``on_at`` (if given).

    On power-on the station may be repositioned (``position``, grid
    medium) or re-homed onto new links (``connect``, graph medium — the
    §3.5 migration of P7 into cell C4).  On a graph medium a re-powered
    station's previous links are restored when ``connect`` is None, since
    detaching forgot them.
    """

    kind: ClassVar[str] = "station_churn"

    station: str
    off_at: float
    on_at: Optional[float] = None
    position: Optional[Tuple[float, float, float]] = None
    connect: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.off_at < 0:
            raise ValueError(f"off_at must be >= 0, got {self.off_at!r}")
        if self.on_at is not None and self.on_at <= self.off_at:
            raise ValueError(
                f"on_at must follow off_at, got {self.off_at!r} -> {self.on_at!r}"
            )
        if self.position is not None:
            object.__setattr__(self, "position", tuple(self.position))
        if self.connect is not None:
            object.__setattr__(self, "connect", tuple(self.connect))

    def station_names(self) -> Tuple[str, ...]:
        return (self.station,) + (self.connect or ())


@dataclass(frozen=True)
class QueueSqueeze(FaultEvent):
    """Clamp ``station``'s MAC queue capacity to ``capacity`` in ``[start, end)``.

    Already-queued packets are kept; the clamp only rejects new pushes,
    exactly like a real buffer filling up.  The previous capacity is
    restored at ``end``.
    """

    kind: ClassVar[str] = "queue_squeeze"

    station: str
    capacity: int
    start: float
    end: float

    def __post_init__(self) -> None:
        self._require_window(self.start, self.end)
        if self.capacity < 1:
            raise ValueError(f"squeezed capacity must be >= 1, got {self.capacity!r}")

    def station_names(self) -> Tuple[str, ...]:
        return (self.station,)


@dataclass(frozen=True)
class ClockedMove(FaultEvent):
    """Move ``station`` to ``position`` at time ``at`` (instantaneous).

    The station's position setter invalidates the medium's link cache, so
    grid-medium connectivity follows the move immediately.
    """

    kind: ClassVar[str] = "clocked_move"

    station: str
    at: float
    position: Tuple[float, float, float]

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"move time must be >= 0, got {self.at!r}")
        object.__setattr__(self, "position", tuple(self.position))

    def station_names(self) -> Tuple[str, ...]:
        return (self.station,)
