"""Table 2 — BEB vs MILD backoff adjustment at higher contention (Figure 3).

Six pads each offer 32 pps of UDP to one base station, all with backoff
copying.  BEB's reset-to-minimum after every success forces the cell to
re-fight the contention war for every packet; MILD's gentle adjustment
keeps a stable estimate.  The paper reports roughly 2× the per-stream
throughput for MILD.

Reproduction note (see EXPERIMENTS.md): in our simulator BEB's wars
resolve more cheaply than in the paper's (slot-synchronized stations
resolve ties quickly), so the throughput gap is smaller; the war itself is
clearly visible as an order-of-magnitude difference in failed RTS attempts,
which we check alongside MILD's fairness.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.metrics import max_spread
from repro.analysis.tables import ComparisonTable
from repro.core.config import maca_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig3_six_pads

STREAMS = [f"P{i}-B" for i in range(1, 7)]

PAPER = {
    "BEB copy": dict(zip(STREAMS, [2.96, 3.01, 2.84, 2.93, 3.00, 3.05])),
    "MILD copy": dict(zip(STREAMS, [6.10, 6.18, 6.05, 6.12, 6.14, 6.09])),
}


class Table2(Experiment):
    spec = ExperimentSpec(
        exp_id="table2",
        title="Table 2: BEB vs MILD with copying, six pads (Figure 3)",
        figure="fig3",
        description=(
            "Six saturated pads to one base. Copying synchronizes counters; "
            "BEB then re-escalates from BO_min after every success while "
            "MILD holds a stable contention estimate."
        ),
    )
    default_duration = 400.0

    def __init__(self) -> None:
        #: Failed-attempt counts per variant, filled during _run (the war
        #: signature the checks use).
        self.cts_timeouts: Dict[str, int] = {}

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "BEB copy": maca_config(copy_backoff=True),
            "MILD copy": maca_config(copy_backoff=True, backoff="mild"),
        }
        for name, config in variants.items():
            scenario = fig3_six_pads(config=config, seed=seed).build().run(duration)
            for stream, pps in scenario.throughputs(warmup=warmup).items():
                table.add(name, stream, pps, PAPER[name].get(stream))
            self.cts_timeouts[name] = sum(
                scenario.station(f"P{i}").mac.stats.cts_timeouts for i in range(1, 7)
            )
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        mild = [table.value("MILD copy", s) for s in STREAMS]
        checks = {
            "MILD allocation fair (spread < 1.5 pps)": max_spread(mild) < 1.5,
            "MILD per-stream throughput near paper (4.5-8 pps)": all(
                4.5 < v < 8.0 for v in mild
            ),
        }
        if self.cts_timeouts:
            checks["BEB fights >5x more contention wars than MILD"] = (
                self.cts_timeouts["BEB copy"] > 5 * max(self.cts_timeouts["MILD copy"], 1)
            )
        return checks
