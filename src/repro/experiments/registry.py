"""Experiment registry: every reproduced table, figure and ablation."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments.base import Experiment
from repro.experiments.table01 import Table1
from repro.experiments.table02 import Table2
from repro.experiments.table03 import Table3
from repro.experiments.table04 import Table4
from repro.experiments.table05 import Table5
from repro.experiments.table06 import Table6
from repro.experiments.table07 import Table7
from repro.experiments.table08 import Table8
from repro.experiments.table09 import Table9
from repro.experiments.table10 import Table10
from repro.experiments.table11 import Table11
from repro.experiments.fig01 import Fig1HiddenExposed
from repro.experiments.fig08 import Fig8Leakage
from repro.experiments.ablations import (
    AckVariantsAblation,
    CarrierSenseAblation,
    CopyingAblation,
    FailureDetectionAblation,
    MildFactorAblation,
    MulticastAblation,
    PollingAblation,
    RtsDeferAblation,
)

_FACTORIES: Dict[str, Callable[[], Experiment]] = {
    "table1": Table1,
    "table2": Table2,
    "table3": Table3,
    "table4": Table4,
    "table5": Table5,
    "table6": Table6,
    "table7": Table7,
    "table8": Table8,
    "table9": Table9,
    "table10": Table10,
    "table11": Table11,
    "fig1": Fig1HiddenExposed,
    "fig8": Fig8Leakage,
    "ablation-mild-factor": MildFactorAblation,
    "ablation-rts-defer": RtsDeferAblation,
    "ablation-copying": CopyingAblation,
    "ablation-multicast": MulticastAblation,
    "ablation-failure-detection": FailureDetectionAblation,
    "ablation-ack-variants": AckVariantsAblation,
    "ablation-carrier-sense": CarrierSenseAblation,
    "ablation-polling": PollingAblation,
}


def experiment_ids() -> List[str]:
    """All registered experiment ids, paper order first."""
    return list(_FACTORIES)


def get_experiment(exp_id: str) -> Experiment:
    """Instantiate the experiment with the given id."""
    factory = _FACTORIES.get(exp_id)
    if factory is None:
        known = ", ".join(_FACTORIES)
        raise KeyError(f"unknown experiment {exp_id!r}; known: {known}")
    return factory()


def all_experiments() -> List[Experiment]:
    """Instantiate every registered experiment, paper order."""
    return [factory() for factory in _FACTORIES.values()]
