"""Table 10 — the three-cell scenario (Figure 10, §3.5).

Eleven UDP streams at 32 pps each: bidirectional streams between P1–P4 and
B1 (a congested cell whose pads also hear P5 across the border),
bidirectional streams between P5 and B2, and P6→B3 from a pad straddling
the C2/C3 border.  The paper's headline results:

* MACAW's total throughput beats MACA's by over 37% — its congestion
  handling more than pays for its overhead;
* MACAW's intra-cell allocation is far fairer (max spread 0.59 pps in C1
  versus 9.60 for MACA);
* congestion in C1 propagates only weakly into the neighbouring cells.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import max_spread
from repro.analysis.tables import ComparisonTable
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig10_three_cells

C1_STREAMS: List[str] = [
    "P1-B1", "P2-B1", "P3-B1", "P4-B1",
    "B1-P1", "B1-P2", "B1-P3", "B1-P4",
]
ALL_STREAMS: List[str] = C1_STREAMS + ["P5-B2", "B2-P5", "P6-B3"]

PAPER = {
    "MACA": dict(zip(ALL_STREAMS,
                     [9.61, 2.45, 3.70, 0.46, 0.12, 0.01, 0.20, 0.66,
                      2.24, 3.21, 28.40])),
    "MACAW": dict(zip(ALL_STREAMS,
                      [3.45, 3.84, 3.27, 3.80, 3.83, 3.72, 3.72, 3.59,
                       7.82, 7.80, 25.16])),
}


class Table10(Experiment):
    spec = ExperimentSpec(
        exp_id="table10",
        title="Table 10: three-cell scenario, MACA vs MACAW (Figure 10)",
        figure="fig10",
        description=(
            "Congested C1 (8 streams) beside lightly loaded C2 and C3. "
            "MACAW wins on total throughput and intra-cell fairness, and "
            "shields the uncongested neighbours."
        ),
    )
    default_duration = 500.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        for name, protocol in (("MACA", "maca"), ("MACAW", "macaw")):
            scenario = (
                fig10_three_cells(protocol=protocol, seed=seed).build().run(duration)
            )
            throughput = scenario.throughputs(warmup=warmup)
            for stream in ALL_STREAMS:
                table.add(name, stream, throughput[stream], PAPER[name].get(stream))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        maca = {s: table.value("MACA", s) for s in ALL_STREAMS}
        macaw = {s: table.value("MACAW", s) for s in ALL_STREAMS}
        # Note (EXPERIMENTS.md): the paper's MACA loses so much airtime to
        # BEB contention wars that MACAW beats it on *total* throughput; in
        # our simulator MACA's capture keeps its total high, so the total
        # comparison does not reproduce.  The fairness and shielding
        # claims — which are what §3.5 emphasizes — do.
        return {
            "MACA starves at least one C1 stream (< 1 pps)": (
                min(maca[s] for s in C1_STREAMS) < 1.0
            ),
            "MACAW keeps every C1 stream alive (> 2 pps)": all(
                macaw[s] > 2.0 for s in C1_STREAMS
            ),
            "MACAW C1 spread < MACA C1 spread": (
                max_spread([macaw[s] for s in C1_STREAMS])
                < max_spread([maca[s] for s in C1_STREAMS])
            ),
            "MACAW C1 allocation fair (spread < 2 pps)": (
                max_spread([macaw[s] for s in C1_STREAMS]) < 2.0
            ),
            "MACAW keeps uncongested P6-B3 healthy (> 20 pps)": macaw["P6-B3"] > 20.0,
            "MACAW serves the border cell better than MACA": (
                macaw["P5-B2"] + macaw["B2-P5"] >= maca["P5-B2"] + maca["B2-P5"]
            ),
        }
