"""Experiment drivers: one module per reproduced table (and extra figures).

Each driver builds the figure's topology, runs the protocol variants the
paper compares, and returns an :class:`~repro.experiments.base.ExperimentResult`
holding a :class:`~repro.analysis.tables.ComparisonTable` (measured values
side by side with the paper's) plus the qualitative checks that define a
successful reproduction (who wins, by roughly what factor).

Use :func:`~repro.experiments.registry.get_experiment` /
:func:`~repro.experiments.registry.all_experiments`, or the CLI::

    python -m repro table1
    python -m repro all --duration 200
"""

from repro.experiments.base import Experiment, ExperimentResult, ExperimentSpec
from repro.experiments.registry import all_experiments, get_experiment, experiment_ids

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentSpec",
    "all_experiments",
    "get_experiment",
    "experiment_ids",
]
