"""Table 3 — the multiple stream model (Figure 4).

One cell: the base station sends to P1 and P2 while P3 sends to the base,
each stream offering 32 pps.  With a single FIFO and a single backoff per
*station*, bandwidth is split per station: the base's two streams share one
half while P3's single stream gets the other half (≈ 2:1:1 by stream).
Running a queue and backoff per *stream* restores per-stream fairness.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import ComparisonTable
from repro.core.config import maca_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig4_mixed_directions

STREAMS = ["B-P1", "B-P2", "P3-B"]

PAPER = {
    "single stream": dict(zip(STREAMS, [11.42, 12.34, 22.74])),
    "multiple stream": dict(zip(STREAMS, [15.07, 15.82, 15.64])),
}


class Table3(Experiment):
    spec = ExperimentSpec(
        exp_id="table3",
        title="Table 3: single queue vs multiple stream model (Figure 4)",
        figure="fig4",
        description=(
            "Base→P1, Base→P2 and P3→Base at 32 pps each. One FIFO per "
            "station allocates per station (the pad stream gets ~2x each "
            "base stream); per-stream queues allocate per stream."
        ),
    )
    default_duration = 400.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "single stream": maca_config(copy_backoff=True, backoff="mild"),
            "multiple stream": maca_config(
                copy_backoff=True, backoff="mild", multi_queue=True
            ),
        }
        for name, config in variants.items():
            scenario = fig4_mixed_directions(config=config, seed=seed).build().run(duration)
            for stream, pps in scenario.throughputs(warmup=warmup).items():
                table.add(name, stream, pps, PAPER[name].get(stream))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        single = {s: table.value("single stream", s) for s in STREAMS}
        multi = {s: table.value("multiple stream", s) for s in STREAMS}
        base_share = single["B-P1"] + single["B-P2"]
        return {
            "single queue: pad stream ~= base station total (within 35%)": (
                abs(single["P3-B"] - base_share) < 0.35 * max(single["P3-B"], base_share)
            ),
            "single queue: pad stream >= 1.5x each base stream": (
                single["P3-B"] >= 1.5 * max(single["B-P1"], single["B-P2"])
            ),
            "multiple stream: all within 25% of each other": (
                min(multi.values()) > 0
                and max(multi.values()) / min(multi.values()) < 1.25
            ),
        }
