"""Table 6 — RRTS: the receiver contends on the sender's behalf (Figure 6).

Figure 5's topology with both flows reversed: each base station sends a
saturating stream to its pad, and the two pads hear each other.  The
losing base station's RTSs arrive while its pad is deferring to the other
cell's exchange, so the pad can never answer — and the base has no way to
learn when contention periods begin.  The RRTS packet lets the deferring
pad remember the first unanswerable RTS and contend for its sender once
the medium frees.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import ComparisonTable
from repro.core.config import macaw_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig6_reversed_flows

STREAMS = ["B1-P1", "B2-P2"]

PAPER = {
    "no RRTS": dict(zip(STREAMS, [0.0, 42.87])),
    "RRTS": dict(zip(STREAMS, [20.39, 20.53])),
}


class Table6(Experiment):
    spec = ExperimentSpec(
        exp_id="table6",
        title="Table 6: RRTS, receiver-initiated contention (Figure 6)",
        figure="fig6",
        description=(
            "B1→P1 and B2→P2 with the pads in mutual range. Without RRTS "
            "one base-to-pad stream starves; with it the deferring pad "
            "contends on its base's behalf and the split is fair."
        ),
    )
    default_duration = 400.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "no RRTS": macaw_config(use_rrts=False, per_destination=False),
            "RRTS": macaw_config(per_destination=False),
        }
        for name, config in variants.items():
            scenario = fig6_reversed_flows(config=config, seed=seed).build().run(duration)
            for stream, pps in scenario.throughputs(warmup=warmup).items():
                table.add(name, stream, pps, PAPER[name].get(stream))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        without = {s: table.value("no RRTS", s) for s in STREAMS}
        with_rrts = [table.value("RRTS", s) for s in STREAMS]
        loser = min(without.values())
        winner = max(without.values())
        return {
            "no RRTS: one stream starves (< 10% of the other)": loser < 0.1 * winner,
            "no RRTS: winner near capacity (> 35 pps)": winner > 35.0,
            "RRTS: fair split (within 30%)": (
                min(with_rrts) > 0 and max(with_rrts) / min(with_rrts) < 1.3
            ),
            "RRTS: loser recovers (> 10 pps)": min(with_rrts) > 10.0,
        }
