"""Common experiment machinery."""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import ComparisonTable
from repro.core.config import RunProfile, active_profile
from repro.verify.runtime import capturing_digests


@dataclass(frozen=True)
class ExperimentSpec:
    """Identity of one reproduced experiment."""

    exp_id: str          # e.g. "table5"
    title: str           # e.g. "Table 5: the DS packet (Figure 5)"
    figure: str          # paper figure providing the topology, "" if none
    description: str     # one paragraph: workload, variants, expectation


@dataclass
class ExperimentResult:
    """Everything a bench or test needs from one experiment run."""

    spec: ExperimentSpec
    table: ComparisonTable
    #: Qualitative reproduction checks: name → passed.
    checks: Dict[str, bool] = field(default_factory=dict)
    seed: int = 0
    duration: float = 0.0
    warmup: float = 0.0
    #: Combined SHA-256 over the trace digests of every scenario the
    #: experiment ran, when the run collected digests (None otherwise).
    #: Byte-identical digests are the serial-vs-parallel equivalence
    #: contract the runner's tests enforce.
    digest: Optional[str] = None

    @property
    def passed(self) -> bool:
        """True when every qualitative check holds."""
        return all(self.checks.values())

    def render(self) -> str:
        lines = [self.table.render()]
        if self.checks:
            lines.append("")
            for name, ok in self.checks.items():
                lines.append(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        return "\n".join(lines)


class Experiment(ABC):
    """One reproduced table: build, run variants, check the shape.

    Subclasses set :attr:`spec`, :attr:`default_duration` and
    :attr:`default_warmup` (the paper runs 500–2000 s with a 50 s warm-up;
    drivers default to a duration that keeps the qualitative result stable
    while staying laptop-friendly) and implement :meth:`_run` and
    :meth:`_check`.
    """

    spec: ExperimentSpec
    default_duration: float = 500.0
    default_warmup: float = 50.0

    def run(
        self,
        seed: int = 0,
        duration: Optional[float] = None,
        warmup: Optional[float] = None,
        collect_digest: bool = False,
        profile: Optional[RunProfile] = None,
    ) -> ExperimentResult:
        """Run all variants and evaluate the qualitative checks.

        ``profile`` is the :class:`~repro.core.config.RunProfile` every
        scenario the driver builds runs under; None adopts the ambient
        profile or defaults.  The profile is made ambient for the whole
        run, so drivers' plain ``ScenarioBuilder(...)`` calls pick it up
        without any per-experiment plumbing.

        With ``collect_digest`` the run force-enables tracing, captures the
        trace digest of every scenario the driver builds, and stores one
        combined SHA-256 on the result — the determinism fingerprint that
        must not depend on whether the run happened serially, in a worker
        process, or on a different machine.
        """
        duration = duration if duration is not None else self.default_duration
        warmup = warmup if warmup is not None else self.default_warmup
        if warmup >= duration:
            raise ValueError(f"warmup {warmup} must precede duration {duration}")
        if profile is None:
            profile = RunProfile.current()
        digest: Optional[str] = None
        with active_profile(profile):
            if collect_digest:
                with capturing_digests() as digests:
                    table = self._run(seed=seed, duration=duration, warmup=warmup)
                hasher = hashlib.sha256()
                for item in digests:
                    hasher.update(item.encode("ascii"))
                    hasher.update(b"\n")
                digest = hasher.hexdigest()
            else:
                table = self._run(seed=seed, duration=duration, warmup=warmup)
        checks = self._check(table)
        return ExperimentResult(
            spec=self.spec, table=table, checks=checks,
            seed=seed, duration=duration, warmup=warmup, digest=digest,
        )

    @abstractmethod
    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        """Build the scenario(s), run them, and fill the comparison table."""

    @abstractmethod
    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        """Qualitative reproduction checks on the measured values."""

    def run_seeds(
        self,
        seeds: Sequence[int],
        duration: Optional[float] = None,
        warmup: Optional[float] = None,
        jobs: int = 1,
        collect_digest: bool = False,
        profile: Optional[RunProfile] = None,
    ) -> "SeedSweepResult":
        """Run the experiment once per seed and aggregate.

        Single runs inherit the paper's methodology (the paper reports one
        run per table); a sweep shows which outcomes are stable and which —
        like who wins a capture battle — are seed lotteries.

        ``jobs > 1`` fans the seeds out over worker processes via
        :func:`repro.runner.run_cells`; per-seed results (tables, checks
        and — with ``collect_digest`` — trace digests) are byte-identical
        to a serial sweep.  Parallel dispatch requires the experiment to be
        registered under its ``spec.exp_id`` (workers re-instantiate it
        from the registry); unregistered subclasses fall back to serial.
        """
        if not seeds:
            raise ValueError("need at least one seed")
        if jobs > 1 and self._registered():
            from repro.runner import Cell, run_cells

            cells = [
                Cell(exp_id=self.spec.exp_id, seed=s, duration=duration, warmup=warmup)
                for s in seeds
            ]
            outcomes = run_cells(cells, jobs=jobs, collect_digests=collect_digest,
                                 profile=profile)
            results = [outcome.result for outcome in outcomes]
        else:
            results = [
                self.run(seed=s, duration=duration, warmup=warmup,
                         collect_digest=collect_digest, profile=profile)
                for s in seeds
            ]
        return SeedSweepResult(spec=self.spec, results=results)

    def _registered(self) -> bool:
        """True when workers can recreate this experiment from the registry."""
        from repro.experiments.registry import get_experiment

        try:
            return type(get_experiment(self.spec.exp_id)) is type(self)
        except KeyError:
            return False


@dataclass
class SeedSweepResult:
    """Aggregate of one experiment across seeds."""

    spec: ExperimentSpec
    results: List[ExperimentResult]

    def mean_table(self) -> ComparisonTable:
        """Per-cell mean across seeds (paper reference values preserved)."""
        first = self.results[0].table
        table = ComparisonTable(f"{first.title} — mean of {len(self.results)} seeds")
        for variant in first.variants():
            for stream in first.stream_order:
                values = [r.table.value(variant, stream) for r in self.results]
                table.add(variant, stream, sum(values) / len(values),
                          first.paper.get(variant, {}).get(stream))
        return table

    def check_pass_rates(self) -> Dict[str, float]:
        """Fraction of seeds passing each qualitative check."""
        rates: Dict[str, float] = {}
        for name in self.results[0].checks:
            passed = sum(1 for r in self.results if r.checks.get(name))
            rates[name] = passed / len(self.results)
        return rates

    def render(self) -> str:
        lines = [self.mean_table().render()]
        lines.append("")
        for name, rate in self.check_pass_rates().items():
            lines.append(f"  [{rate:4.0%}] {name}")
        return "\n".join(lines)
