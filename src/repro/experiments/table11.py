"""Table 11 — the office-floor scenario (Figure 11, §3.5).

A slice of PARC's Computer Science Lab: an open area (C1, four pads plus
electronic-whiteboard noise at packet error rate 0.01), two offices (P6 in
C2, P5 in C3), and a coffee room (C4) that pad P7 walks into 300 s after
the run starts.  Every pad runs a 32 pps TCP stream to its cell's base
station.  The paper reports ~13% more total throughput for MACAW and —
more importantly — a much fairer distribution: under MACA the two luckiest
streams capture 46% and 35% of all throughput.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import ComparisonTable
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig11_office

ALL_STREAMS: List[str] = [
    "P1-B1", "P2-B1", "P3-B1", "P4-B1", "P5-B3", "P6-B2", "P7-B4",
]
C1_STREAMS = ["P1-B1", "P2-B1", "P3-B1", "P4-B1"]

PAPER = {
    "MACA": dict(zip(ALL_STREAMS, [0.78, 1.30, 0.22, 0.06, 18.17, 6.94, 23.82])),
    "MACAW": dict(zip(ALL_STREAMS, [2.39, 2.72, 2.54, 2.87, 14.45, 14.00, 19.18])),
}


class Table11(Experiment):
    spec = ExperimentSpec(
        exp_id="table11",
        title="Table 11: office floor with noise and mobility (Figure 11)",
        figure="fig11",
        description=(
            "Seven 32 pps TCP streams across four cells, whiteboard noise "
            "in the open area, P7 arriving mid-run. MACAW lifts total "
            "throughput and stops two streams from hogging the floor."
        ),
    )
    default_duration = 1000.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        # P7 enters the coffee room at t=300 s in the paper's 2000 s run;
        # scale the arrival for shorter runs so the mobile pad always gets
        # the final ~2/3 of the simulation.
        arrival = min(300.0, duration * 0.3)
        for name, protocol in (("MACA", "maca"), ("MACAW", "macaw")):
            scenario = (
                fig11_office(protocol=protocol, seed=seed, p7_arrival_s=arrival)
                .build()
                .run(duration)
            )
            throughput = scenario.throughputs(warmup=warmup)
            for stream in ALL_STREAMS:
                table.add(name, stream, throughput[stream], PAPER[name].get(stream))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        from repro.analysis.metrics import jain_fairness

        maca = {s: table.value("MACA", s) for s in ALL_STREAMS}
        macaw = {s: table.value("MACAW", s) for s in ALL_STREAMS}

        def office_imbalance(values: Dict[str, float]) -> float:
            p5, p6 = values["P5-B3"], values["P6-B2"]
            return abs(p5 - p6) / max(p5 + p6, 1e-9)

        return {
            "MACAW total >= 90% of MACA total (paper: +13%)": (
                sum(macaw.values()) >= 0.90 * sum(maca.values())
            ),
            "MACAW is fairer overall (Jain index)": (
                jain_fairness(list(macaw.values()))
                >= jain_fairness(list(maca.values()))
            ),
            # The paper's sharpest fairness contrast: the office streams go
            # from 18.17/6.94 under MACA to 14.45/14.00 under MACAW.
            "MACAW balances the office streams P5/P6": (
                office_imbalance(macaw) <= office_imbalance(maca)
            ),
        }
