"""Table 1 — backoff copying fixes BEB's channel capture (Figure 2).

Two pads each offer 64 pps of UDP to the base station of a single cell.
Under plain BEB one pad captures the channel and the other is completely
backed off; copying the backoff counter from overheard packet headers
equalizes the two pads' views of congestion and splits the channel evenly.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import ComparisonTable
from repro.core.config import maca_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig2_two_pads

PAPER = {
    "BEB": {"P1-B": 48.5, "P2-B": 0.0},
    "BEB copy": {"P1-B": 23.82, "P2-B": 23.32},
}


class Table1(Experiment):
    spec = ExperimentSpec(
        exp_id="table1",
        title="Table 1: BEB capture vs backoff copying (Figure 2)",
        figure="fig2",
        description=(
            "Two saturated pads in one cell under MACA. Plain BEB starves "
            "one pad; copying the backoff field from overheard headers "
            "restores an even split."
        ),
    )
    default_duration = 600.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "BEB": maca_config(),
            "BEB copy": maca_config(copy_backoff=True),
        }
        # The paper: "EVENTUALLY a single pad transmits at channel capacity"
        # — capture is an absorbing drift whose onset varies by seed, so we
        # report the converged allocation (the final third of the run).
        measure_from = max(warmup, duration * 2.0 / 3.0)
        for name, config in variants.items():
            scenario = fig2_two_pads(config=config, seed=seed).build().run(duration)
            for stream, pps in scenario.throughputs(warmup=measure_from).items():
                table.add(name, stream, pps, PAPER[name].get(stream))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        beb = [table.value("BEB", s) for s in ("P1-B", "P2-B")]
        copy = [table.value("BEB copy", s) for s in ("P1-B", "P2-B")]
        return {
            "BEB captures: loser below 25% of winner": min(beb) < 0.25 * max(beb),
            "BEB winner near channel capacity (> 40 pps)": max(beb) > 40.0,
            "copying splits within 25%": (
                min(copy) > 0 and max(copy) / min(copy) < 1.25
            ),
            # The paper's copy column totals 47.1; ours runs a few pps lower
            # because BEB-with-copying re-fights ties after every reset
            # (see EXPERIMENTS.md).  Fairness, the table's point, holds.
            "copying total healthy (> 35 pps)": sum(copy) > 35.0,
        }
