"""Table 5 — the DS (data-sending) packet for exposed terminals (Figure 5).

Two adjoining cells; each pad sends a saturating UDP stream to its own
base station, and the pads hear each other (classic exposed terminals).
Without the DS announcement an exposed pad cannot tell when the other's
RTS-CTS succeeded, so it contends blindly against 16 ms data transmissions
and loses; the DS packet tells overhearers exactly when the exchange will
end, synchronizing contention.

Reproduction note (EXPERIMENTS.md): the paper reports complete starvation
of one pad without DS; our no-DS runs reach a noisier shared equilibrium
in which *both* pads lose roughly half their throughput to failed
contention.  Either way the with-DS column's fair, near-capacity split is
the paper's headline result and reproduces closely (≈23/23 pps).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import ComparisonTable
from repro.core.config import macaw_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig5_exposed_pads

STREAMS = ["P1-B1", "P2-B2"]

PAPER = {
    "RTS-CTS-DATA-ACK": dict(zip(STREAMS, [46.72, 0.0])),
    "RTS-CTS-DS-DATA-ACK": dict(zip(STREAMS, [23.35, 22.63])),
}


class Table5(Experiment):
    spec = ExperimentSpec(
        exp_id="table5",
        title="Table 5: the DS packet, exposed terminals (Figure 5)",
        figure="fig5",
        description=(
            "P1→B1 and P2→B2 with the pads in mutual range. DS announces a "
            "won RTS-CTS exchange so exposed terminals defer and contend "
            "only in real contention periods."
        ),
    )
    default_duration = 400.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "RTS-CTS-DATA-ACK": macaw_config(
                use_ds=False, use_rrts=False, per_destination=False
            ),
            "RTS-CTS-DS-DATA-ACK": macaw_config(use_rrts=False, per_destination=False),
        }
        for name, config in variants.items():
            scenario = fig5_exposed_pads(config=config, seed=seed).build().run(duration)
            for stream, pps in scenario.throughputs(warmup=warmup).items():
                table.add(name, stream, pps, PAPER[name].get(stream))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        without = [table.value("RTS-CTS-DATA-ACK", s) for s in STREAMS]
        with_ds = [table.value("RTS-CTS-DS-DATA-ACK", s) for s in STREAMS]
        return {
            "with DS: fair split (within 25%)": (
                min(with_ds) > 0 and max(with_ds) / min(with_ds) < 1.25
            ),
            "with DS: total near capacity (> 40 pps)": sum(with_ds) > 40.0,
            "without DS: substantial degradation (total < 80% of DS total)": (
                sum(without) < 0.8 * sum(with_ds)
            ),
        }
