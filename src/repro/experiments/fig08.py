"""Figure 8 — backoff leakage across a cell border (§3.4).

Two adjoining cells with very different congestion: C1 has four saturated
pads near the border, C2 has one border pad (P5) and one interior pad
(P6).  The border pads overhear each other, so with plain (non-per-
destination) copying, C1's high backoff values leak into C2 — slowing P6
down even though its own cell is idle — and C2's low values leak back into
C1, causing extra collisions.  The paper presents this configuration as an
argument (no table); we quantify it by comparing the interior pad's
throughput under plain copying versus per-destination copying.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import ComparisonTable
from repro.core.config import macaw_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig8_leakage

STREAMS = ["P1-B1", "P2-B1", "P3-B1", "P4-B1", "P5-B2", "P6-B2"]


class Fig8Leakage(Experiment):
    spec = ExperimentSpec(
        exp_id="fig8",
        title="Figure 8: backoff leakage between cells of unequal congestion",
        figure="fig8",
        description=(
            "Four saturated border pads in C1 next to a nearly idle C2. "
            "Shared-counter copying lets C1's congestion estimate leak into "
            "C2; per-destination estimates keep them apart."
        ),
    )
    default_duration = 400.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "shared copy": macaw_config(per_destination=False),
            "per-destination": macaw_config(),
        }
        for name, config in variants.items():
            scenario = fig8_leakage(config=config, seed=seed).build().run(duration)
            for stream, pps in scenario.throughputs(warmup=warmup).items():
                table.add(name, stream, pps)
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        shared_p6 = table.value("shared copy", "P6-B2")
        per_dest_p6 = table.value("per-destination", "P6-B2")
        per_dest_c1 = [table.value("per-destination", s) for s in STREAMS[:4]]
        return {
            "per-destination protects the interior pad (P6 >= shared P6)": (
                per_dest_p6 >= 0.95 * shared_p6
            ),
            "interior pad stays healthy under per-destination (> 15 pps)": (
                per_dest_p6 > 15.0
            ),
            "congested cell still shares its channel (every C1 stream > 1 pps)": all(
                v > 1.0 for v in per_dest_c1
            ),
        }
