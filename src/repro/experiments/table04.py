"""Table 4 — the link-layer ACK under intermittent noise (§3.3.1).

A single TCP stream from a pad to its base station, with a per-packet
error probability ∈ {0, 0.001, 0.01, 0.1}.  Without a link ACK, every
noise-destroyed DATA packet must be recovered by TCP, whose minimum
timeout is 0.5 s; with the ACK, the MAC retransmits within milliseconds.
The two variants differ only in ``use_ack``.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import ComparisonTable
from repro.core.config import macaw_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import single_stream_cell

ERROR_RATES: List[float] = [0.0, 0.001, 0.01, 0.1]

PAPER = {
    "RTS-CTS-DATA": dict(zip(["PER=0", "PER=0.001", "PER=0.01", "PER=0.1"],
                             [40.41, 36.58, 16.65, 2.48])),
    "RTS-CTS-DATA-ACK": dict(zip(["PER=0", "PER=0.001", "PER=0.01", "PER=0.1"],
                                 [36.76, 36.67, 35.52, 9.93])),
}


class Table4(Experiment):
    spec = ExperimentSpec(
        exp_id="table4",
        title="Table 4: link-layer ACK vs TCP-only recovery under noise",
        figure="",
        description=(
            "One saturated TCP stream, pad to base, at four packet error "
            "rates. Link-layer retransmission recovers losses at media "
            "timescales; without it, recovery waits for TCP's >= 0.5 s RTO."
        ),
    )
    default_duration = 300.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "RTS-CTS-DATA": macaw_config(use_ack=False, use_ds=False, use_rrts=False),
            "RTS-CTS-DATA-ACK": macaw_config(use_ds=False, use_rrts=False),
        }
        for name, config in variants.items():
            for rate in ERROR_RATES:
                scenario = (
                    single_stream_cell(
                        config=config, seed=seed, transport="tcp", error_rate=rate
                    )
                    .build()
                    .run(duration)
                )
                row = f"PER={rate:g}"
                table.add(name, row, scenario.throughput("P-B", warmup=warmup),
                          PAPER[name].get(row))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        no_ack = {r: table.value("RTS-CTS-DATA", r) for r in table.stream_order}
        ack = {r: table.value("RTS-CTS-DATA-ACK", r) for r in table.stream_order}
        return {
            "no noise: both near full TCP rate (> 28 pps)": (
                no_ack["PER=0"] > 28 and ack["PER=0"] > 28
            ),
            "PER=0.001: essentially identical (within 15%)": (
                abs(no_ack["PER=0.001"] - ack["PER=0.001"])
                < 0.15 * max(ack["PER=0.001"], 1.0)
            ),
            "PER=0.01: ACK clearly ahead": ack["PER=0.01"] > 1.15 * no_ack["PER=0.01"],
            "PER=0.1: no-ACK collapses (< 25% of ACK)": (
                no_ack["PER=0.1"] < 0.25 * max(ack["PER=0.1"], 1.0)
            ),
            "ACK overhead at zero noise < 20%": (
                ack["PER=0"] > 0.8 * no_ack["PER=0"]
            ),
        }
