"""Ablation experiments beyond the paper's tables.

DESIGN.md calls out design choices the paper leaves open; each ablation
quantifies one of them:

* :class:`MildFactorAblation` — §3.1 picks 1.5 as MILD's multiplicative
  increase without justification; sweep it.
* :class:`RtsDeferAblation` — §3.3.2's overheard-RTS defer (until the CTS
  slot passes) versus Appendix B's literal rule (defer the whole exchange).
* :class:`CopyingAblation` — how much of MACAW's fairness comes from the
  copying scheme alone.
* :class:`MulticastAblation` — §3.3.4's RTS-DATA multicast and its admitted
  CSMA-like flaw: stations in range of a receiver but not the sender get
  no signal to defer.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.metrics import jain_fairness
from repro.analysis.tables import ComparisonTable
from repro.core.config import maca_config, macaw_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.mac.frames import MULTICAST
from repro.net.packets import DATA_PACKET_BYTES, NetPacket
from repro.topo.builder import ScenarioBuilder
from repro.topo.figures import fig3_six_pads, fig5_exposed_pads

MILD_FACTORS: List[float] = [1.25, 1.5, 2.0, 3.0]


class MildFactorAblation(Experiment):
    """Sweep MILD's multiplicative-increase factor on the six-pad cell."""

    spec = ExperimentSpec(
        exp_id="ablation-mild-factor",
        title="Ablation: MILD increase factor (paper uses 1.5)",
        figure="fig3",
        description=(
            "Six saturated pads; sweep F_inc's factor. Small factors react "
            "too slowly to contention, large ones overshoot; 1.5 should sit "
            "in the efficient region."
        ),
    )
    default_duration = 300.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        # The factor lives on the algorithm object, so configure through a
        # custom BackoffBook after building each scenario.
        from repro.core.backoff import MildBackoff

        table = ComparisonTable(self.spec.title)
        for factor in MILD_FACTORS:
            config = maca_config(copy_backoff=True, backoff="mild")
            scenario = fig3_six_pads(config=config, seed=seed).build()
            for i in range(1, 7):
                mac = scenario.station(f"P{i}").mac
                mac.backoff.algorithm = MildBackoff(
                    config.bo_min, config.bo_max, factor=factor
                )
            scenario.run(duration)
            variant = f"factor={factor:g}"
            throughput = scenario.throughputs(warmup=warmup)
            table.add(variant, "total", sum(throughput.values()))
            table.add(variant, "jain", jain_fairness(list(throughput.values())))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        totals = {v: table.value(v, "total") for v in table.variants()}
        fairness = {v: table.value(v, "jain") for v in table.variants()}
        return {
            "every factor stays fair (Jain > 0.95)": all(
                f > 0.95 for f in fairness.values()
            ),
            "paper's 1.5 within 15% of the best factor": (
                totals["factor=1.5"] > 0.85 * max(totals.values())
            ),
        }


class RtsDeferAblation(Experiment):
    """§3.3.2 semantics vs the Appendix-B-literal overheard-RTS defer."""

    spec = ExperimentSpec(
        exp_id="ablation-rts-defer",
        title="Ablation: overheard-RTS defer span (CTS-slot vs full exchange)",
        figure="fig5",
        description=(
            "Exposed-terminal cell pair under full MACAW with the two "
            "readings of defer rule 1. The full-exchange defer wastes the "
            "whole data period whenever an overheard RTS loses its own "
            "contention."
        ),
    )
    default_duration = 300.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "CTS-slot defer": macaw_config(use_rrts=False, per_destination=False),
            "full-exchange defer": macaw_config(
                use_rrts=False, per_destination=False, rts_defer_full_exchange=True
            ),
        }
        for name, config in variants.items():
            scenario = fig5_exposed_pads(config=config, seed=seed).build().run(duration)
            for stream, pps in scenario.throughputs(warmup=warmup).items():
                table.add(name, stream, pps)
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        short = [table.value("CTS-slot defer", s) for s in ("P1-B1", "P2-B2")]
        longd = [table.value("full-exchange defer", s) for s in ("P1-B1", "P2-B2")]
        return {
            "both defer policies share fairly (within 35%)": (
                min(short) > 0 and max(short) / min(short) < 1.35
                and min(longd) > 0 and max(longd) / min(longd) < 1.35
            ),
            "CTS-slot defer at least as efficient": sum(short) >= 0.95 * sum(longd),
        }


class CopyingAblation(Experiment):
    """Copying on/off under MILD — fairness contribution of copying alone."""

    spec = ExperimentSpec(
        exp_id="ablation-copying",
        title="Ablation: backoff copying under MILD, six pads",
        figure="fig3",
        description=(
            "Copying is the collective-learning half of §3.1. Without it, "
            "MILD still converges slowly and unevenly; with it, all six "
            "pads share one congestion estimate."
        ),
    )
    default_duration = 300.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "no copy": maca_config(backoff="mild"),
            "copy": maca_config(backoff="mild", copy_backoff=True),
        }
        for name, config in variants.items():
            scenario = fig3_six_pads(config=config, seed=seed).build().run(duration)
            throughput = scenario.throughputs(warmup=warmup)
            for stream, pps in throughput.items():
                table.add(name, stream, pps)
            table.add(name, "jain", jain_fairness(list(throughput.values())))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        return {
            "copying is at least as fair as not copying": (
                table.value("copy", "jain") >= table.value("no copy", "jain") - 0.02
            ),
            "copying is highly fair (Jain > 0.97)": table.value("copy", "jain") > 0.97,
        }


class PollingAblation(Experiment):
    """§4's deferred alternative: a polling MAC versus MACAW.

    "Various token-based schemes, or those involving polling or
    reservations, are possibilities we hope to explore in future work."
    We explore the simplest: the base polls its pads round-robin, no
    contention at all.  Three measurements:

    * the six-pad cell (Figure 3) — polling's best case: no contention
      losses, perfect fairness;
    * the two-cell exposed pair (Figure 5) — uncoordinated cells' polls
      and answers collide at border pads;
    * a pad that arrives mid-run — polling serves nobody it has not
      registered, while multiple access serves newcomers immediately
      (§2.1's argument for multiple access).
    """

    spec = ExperimentSpec(
        exp_id="ablation-polling",
        title="Ablation: polling MAC vs MACAW (the §4 road not taken)",
        figure="fig3",
        description=(
            "Round-robin polling wins a single isolated cell on both "
            "efficiency and fairness, but offers newcomers nothing until "
            "re-registration — the robustness/mobility trade §2.1 cites."
        ),
    )
    default_duration = 300.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        from repro.topo.builder import ScenarioBuilder

        table = ComparisonTable(self.spec.title)
        for name, protocol in (("polling", "polling"), ("MACAW", "macaw")):
            cell = fig3_six_pads(protocol=protocol, seed=seed, rate_pps=64.0)
            scenario = cell.build().run(duration)
            throughput = scenario.throughputs(warmup=warmup)
            table.add(name, "six-pad cell total", sum(throughput.values()))
            table.add(name, "six-pad cell jain", jain_fairness(list(throughput.values())))

            pair = fig5_exposed_pads(protocol=protocol, seed=seed)
            scenario = pair.build().run(duration)
            table.add(name, "two-cell border total",
                      sum(scenario.throughputs(warmup=warmup).values()))

            builder = ScenarioBuilder(seed=seed, protocol=protocol)
            builder.add_base("B")
            builder.add_pad("P1")
            builder.clique("B", "P1")
            builder.add_pad("P2")  # arrives later, never pre-registered
            builder.udp("P1", "B", 32.0)
            builder.udp("P2", "B", 32.0, start=duration / 3)

            def arrive(scenario: Any) -> None:
                medium = scenario.medium
                medium.set_link(scenario.stations["P2"].mac,
                                scenario.stations["B"].mac, True)
                medium.set_link(scenario.stations["P2"].mac,
                                scenario.stations["P1"].mac, True)

            builder.at(duration / 3, arrive)
            scenario = builder.build().run(duration)
            newcomer = scenario.recorder.throughput_pps(
                "P2-B", duration / 3 + 5.0, duration
            )
            table.add(name, "newcomer pad", newcomer)
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        return {
            "polling beats MACAW in the isolated cell": (
                table.value("polling", "six-pad cell total")
                > table.value("MACAW", "six-pad cell total")
            ),
            "polling is perfectly fair in the cell (Jain > 0.999)": (
                table.value("polling", "six-pad cell jain") > 0.999
            ),
            "polling strands the unregistered newcomer (0 pps)": (
                table.value("polling", "newcomer pad") == 0.0
            ),
            "MACAW serves the newcomer immediately (> 20 pps)": (
                table.value("MACAW", "newcomer pad") > 20.0
            ),
        }


class AckVariantsAblation(Experiment):
    """§4's acknowledgement alternatives: immediate ACK, piggyback, NACK.

    The paper proposes but does not test two cheaper acknowledgment
    schemes: piggybacking ACKs on subsequent CTS frames (skip the ACK while
    more packets are queued) and NACKs (silence is success; a receiver
    whose CTS drew no data complains).  We run the paper's own Table 4
    methodology — a saturated TCP stream at several packet error rates —
    over all four schemes.
    """

    spec = ExperimentSpec(
        exp_id="ablation-ack-variants",
        title="Ablation: ACK vs piggyback vs NACK vs none (TCP under noise)",
        figure="",
        description=(
            "Table 4's workload over §4's acknowledgement design space. "
            "Piggybacking keeps ACK-grade robustness at near-zero overhead "
            "for saturated streams; NACK is cheap but best-effort."
        ),
    )
    default_duration = 300.0

    VARIANTS = {
        "no ACK": dict(use_ack=False),
        "immediate ACK": dict(use_ack=True),
        "piggyback ACK": dict(use_ack=True, ack_variant="piggyback"),
        "NACK": dict(use_ack=False, use_nack=True),
    }
    ERROR_RATES = [0.0, 0.01, 0.1]

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        for name, flags in self.VARIANTS.items():
            config = macaw_config(use_ds=False, use_rrts=False, **flags)
            for rate in self.ERROR_RATES:
                scenario = (
                    fig_single_tcp(config, seed, rate).build().run(duration)
                )
                table.add(name, f"PER={rate:g}",
                          scenario.throughput("P-B", warmup=warmup))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        def v(variant, row):
            return table.value(variant, row)

        return {
            "no noise: piggyback is cheaper than immediate ACK": (
                v("piggyback ACK", "PER=0") >= v("immediate ACK", "PER=0")
            ),
            "PER=0.1: every acknowledging scheme beats none": all(
                v(name, "PER=0.1") > 2 * max(v("no ACK", "PER=0.1"), 0.05)
                for name in ("immediate ACK", "piggyback ACK", "NACK")
            ),
            "PER=0.1: piggyback within 40% of immediate ACK": (
                v("piggyback ACK", "PER=0.1") > 0.6 * v("immediate ACK", "PER=0.1")
            ),
        }


def fig_single_tcp(config, seed, error_rate):
    """Table 4's cell: one saturated TCP stream plus optional noise."""
    from repro.topo.figures import single_stream_cell

    return single_stream_cell(
        config=config, seed=seed, transport="tcp", error_rate=error_rate
    )


class CarrierSenseAblation(Experiment):
    """§3.3.2's carrier-sense alternative to the DS packet.

    "One can use carrier-sense to avoid sending useless RTS's ... This is
    essentially the CSMA/CA protocol.  We chose a slightly different
    approach, which does not require carrier sensing hardware."  We run
    Figure 5's exposed-terminal pair three ways: neither mechanism, the DS
    packet, and carrier sense.
    """

    spec = ExperimentSpec(
        exp_id="ablation-carrier-sense",
        title="Ablation: DS packet vs carrier sense for exposed terminals",
        figure="fig5",
        description=(
            "Figure 5's cell pair under (a) neither synchronization "
            "mechanism, (b) the DS packet, (c) CSMA/CA-style carrier "
            "sensing. Both mechanisms should rescue the exposed terminals."
        ),
    )
    default_duration = 300.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "neither": macaw_config(use_ds=False, use_rrts=False,
                                    per_destination=False),
            "DS packet": macaw_config(use_rrts=False, per_destination=False),
            "carrier sense": macaw_config(use_ds=False, use_rrts=False,
                                          per_destination=False,
                                          carrier_sense=True),
        }
        for name, config in variants.items():
            scenario = fig5_exposed_pads(config=config, seed=seed).build().run(duration)
            for stream, pps in scenario.throughputs(warmup=warmup).items():
                table.add(name, stream, pps)
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        def total(variant):
            return sum(table.value(variant, s) for s in ("P1-B1", "P2-B2"))

        return {
            "DS rescues the pair (> 1.3x neither)": total("DS packet") > 1.3 * total("neither"),
            "carrier sense rescues the pair (> 1.3x neither)": (
                total("carrier sense") > 1.3 * total("neither")
            ),
            "the two mechanisms land within 25% of each other": (
                0.75 < total("carrier sense") / total("DS packet") < 1.33
            ),
        }


class FailureDetectionAblation(Experiment):
    """How fast a sender declares its RTS failed decides who wins §3.1.

    With the physical-minimum timeout (~3 slots) failed attempts are cheap
    and heavily overlapped, so BEB's reset-to-minimum contention wars cost
    little and BEB outperforms MILD — inverting Table 2.  Slower detection
    (the 8-slot default, and 16 slots) makes each war round expensive,
    which is the regime the paper's numbers imply.
    """

    spec = ExperimentSpec(
        exp_id="ablation-failure-detection",
        title="Ablation: failure-detection latency vs backoff algorithm",
        figure="fig3",
        description=(
            "Sweep the WFCTS timeout (3/8/16 slots) for BEB+copy and "
            "MILD+copy on the six-pad cell. MILD's advantage grows with "
            "detection latency; BEB's war cost is the product of rounds "
            "fought and the price of each."
        ),
    )
    default_duration = 250.0

    TIMEOUTS = [None, 8.0, 16.0]

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        for timeout in self.TIMEOUTS:
            label = "3 (min)" if timeout is None else f"{timeout:g}"
            for name, backoff in (("BEB", "beb"), ("MILD", "mild")):
                config = maca_config(
                    copy_backoff=True, backoff=backoff, cts_timeout_slots=timeout
                )
                scenario = fig3_six_pads(config=config, seed=seed).build().run(duration)
                total = sum(scenario.throughputs(warmup=warmup).values())
                table.add(name, f"timeout={label} slots", total)
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        beb = {row: table.value("BEB", row) for row in table.stream_order}
        mild = {row: table.value("MILD", row) for row in table.stream_order}
        slow = "timeout=16 slots"
        fast = "timeout=3 (min) slots"
        return {
            "MILD beats BEB at slow failure detection": mild[slow] > beb[slow],
            "BEB's loss from slow detection exceeds MILD's": (
                (beb[fast] - beb[slow]) > (mild[fast] - mild[slow])
            ),
        }


class MulticastAblation(Experiment):
    """§3.3.4's RTS-DATA multicast, including its admitted flaw.

    Sender S multicasts in cell 1.  Receiver R is also in range of pad X
    (cell 2), which cannot hear S.  X's uplink transmissions collide with
    the multicast DATA at R — the CSMA-like flaw the paper concedes: only
    stations within range of the *sender* defer.
    """

    spec = ExperimentSpec(
        exp_id="ablation-multicast",
        title="Ablation: multicast RTS-DATA and its hidden-interferer flaw",
        figure="",
        description=(
            "Multicast delivery is reliable among stations that hear the "
            "sender, but a hidden interferer near one receiver destroys its "
            "copies — no CTS means no receiver-side protection."
        ),
    )
    default_duration = 200.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        for name, with_interferer in (("quiet", False), ("hidden interferer", True)):
            builder = ScenarioBuilder(seed=seed, protocol="macaw", config=macaw_config())
            builder.add_base("S")
            builder.add_pad("R1")
            builder.add_pad("R2")
            builder.link("S", "R1")
            builder.link("S", "R2")
            if with_interferer:
                builder.add_pad("X")
                builder.add_base("B2")
                builder.link("X", "B2")
                builder.link("X", "R2")  # X can clobber R2 but not R1
                builder.udp("X", "B2", 64.0)
            scenario = builder.build()

            sent = {"count": 0}

            def emit(index: int, scenario=scenario, sent=sent) -> None:
                packet = NetPacket(
                    stream="S-mcast", kind="udp", seq=index,
                    size_bytes=DATA_PACKET_BYTES, created=scenario.sim.now,
                )
                sent["count"] += 1
                scenario.station("S").mac.enqueue(packet, MULTICAST, DATA_PACKET_BYTES)

            from repro.net.traffic import CbrSource

            CbrSource(scenario.sim, emit, rate_pps=32.0, name=f"mcast-{name}")
            scenario.run(duration)
            window = duration - warmup
            for receiver in ("R1", "R2"):
                delivered = scenario.station(receiver).mac.stats.delivered
                # stats count all deliveries including warm-up; good enough
                # for the qualitative contrast.
                table.add(name, f"delivered at {receiver}", delivered / duration)
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        quiet_r2 = table.value("quiet", "delivered at R2")
        noisy_r2 = table.value("hidden interferer", "delivered at R2")
        noisy_r1 = table.value("hidden interferer", "delivered at R1")
        return {
            "quiet cell: multicast delivers (> 25 pps at R2)": quiet_r2 > 25.0,
            "hidden interferer destroys R2's copies (< 60% of R1's)": (
                noisy_r2 < 0.6 * max(noisy_r1, 0.001)
            ),
            "R1 (away from interferer) still receives (> 20 pps)": noisy_r1 > 20.0,
        }
