"""Table 8 — per-destination backoff isolates an unreachable pad (Figure 9).

One cell, three pads, bidirectional 32 pps UDP streams with the base.
Pad P1 is switched off mid-run; the base keeps trying to reach it.  With a
single backoff counter per station, every timed-out attempt toward the
dead pad inflates the counter used for *all* streams — and copying spreads
the inflated value to the whole cell, collapsing total throughput.  With
per-destination backoff (Appendix B.2) the failure is charged to the
B1→P1 stream alone.

Throughput is measured only after the power-off, which is when the two
designs diverge.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import ComparisonTable
from repro.core.config import macaw_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig9_dead_pad

#: Streams the paper's table reports (the dead pad's own rows are omitted).
STREAMS = ["B1-P2", "P2-B1", "B1-P3", "P3-B1"]

PAPER = {
    "single backoff": dict(zip(STREAMS, [3.79, 3.78, 3.62, 3.43])),
    # The OCR lost the per-destination column; §3.4 states "the overall
    # throughput is no longer affected by the unresponsive pad", i.e. each
    # live stream keeps roughly its fair share (~7.5 pps).
    "per-destination": dict(zip(STREAMS, [7.5, 7.5, 7.5, 7.5])),
}

POWER_OFF_AT = 100.0


class Table8(Experiment):
    spec = ExperimentSpec(
        exp_id="table8",
        title="Table 8: single vs per-destination backoff with a dead pad (Figure 9)",
        figure="fig9",
        description=(
            "Bidirectional streams with three pads; P1 dies at t=100 s. "
            "A single shared counter lets the dead destination poison every "
            "stream; per-destination estimates contain the damage."
        ),
    )
    default_duration = 500.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "single backoff": macaw_config(per_destination=False),
            "per-destination": macaw_config(),
        }
        measure_from = max(warmup, POWER_OFF_AT + 20.0)
        for name, config in variants.items():
            scenario = (
                fig9_dead_pad(config=config, seed=seed, power_off_at=POWER_OFF_AT)
                .build()
                .run(duration)
            )
            for stream in STREAMS:
                pps = scenario.throughput(stream, warmup=measure_from)
                table.add(name, stream, pps, PAPER[name].get(stream))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        single = [table.value("single backoff", s) for s in STREAMS]
        per_dest = [table.value("per-destination", s) for s in STREAMS]
        return {
            "per-destination total exceeds single-backoff total by > 20%": (
                sum(per_dest) > 1.2 * sum(single)
            ),
            "per-destination keeps live streams healthy (each > 5 pps)": all(
                v > 5.0 for v in per_dest
            ),
            "single backoff loses > 15% of per-destination's total": (
                sum(single) < 0.85 * sum(per_dest)
            ),
        }
