"""Table 9 — protocol overhead on a single uncontended stream (§3.5).

One saturated UDP stream from a pad to its base station.  MACA's
RTS-CTS-DATA exchange against MACAW's RTS-CTS-DS-DATA-ACK: the two extra
30-byte control packets cost roughly 8% of throughput — the price MACAW
pays everywhere for the robustness it buys under congestion and noise.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.metrics import channel_utilization
from repro.analysis.tables import ComparisonTable
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import single_stream_cell

PAPER = {
    "MACA (RTS-CTS-DATA)": {"P-B": 53.04},
    "MACAW (RTS-CTS-DS-DATA-ACK)": {"P-B": 49.07},
}


class Table9(Experiment):
    spec = ExperimentSpec(
        exp_id="table9",
        title="Table 9: single-stream overhead, MACA vs MACAW",
        figure="",
        description=(
            "One saturated pad-to-base UDP stream. The DS and ACK packets "
            "cost MACAW ~8% against MACA; the paper quotes 84% vs 78% "
            "channel utilization."
        ),
    )
    default_duration = 300.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        for name, protocol in (
            ("MACA (RTS-CTS-DATA)", "maca"),
            ("MACAW (RTS-CTS-DS-DATA-ACK)", "macaw"),
        ):
            scenario = (
                single_stream_cell(protocol=protocol, seed=seed).build().run(duration)
            )
            table.add(name, "P-B", scenario.throughput("P-B", warmup=warmup),
                      PAPER[name]["P-B"])
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        maca = table.value("MACA (RTS-CTS-DATA)", "P-B")
        macaw = table.value("MACAW (RTS-CTS-DS-DATA-ACK)", "P-B")
        return {
            "MACA utilization in 78-90% of channel": (
                0.78 < channel_utilization(maca) < 0.90
            ),
            "MACAW utilization in 68-84% of channel": (
                0.68 < channel_utilization(macaw) < 0.84
            ),
            "MACAW overhead between 4% and 20%": 0.80 < macaw / maca < 0.96,
        }
