"""Figure 1 — hidden and exposed terminals: CSMA versus MACA (§2.2).

The paper's motivating figure has no table of its own; this experiment
quantifies its two pathologies.

* **Hidden terminals**: A→B and C→B, where A and C cannot hear each other.
  CSMA's carrier sense sees a free channel at both senders, so their
  packets collide at B; MACA's CTS from B silences whichever sender did
  not win the exchange.
* **Exposed terminals**: B→A and C→D, where C hears B but is out of range
  of A.  CSMA's carrier sense makes C defer needlessly, serializing two
  transfers that could proceed in parallel; MACA lets C transmit (C hears
  B's RTS but not A's CTS).
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import ComparisonTable
from repro.core.config import maca_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.mac.csma import CsmaConfig
from repro.topo.figures import fig1_exposed_terminal, fig1_hidden_terminal


class Fig1HiddenExposed(Experiment):
    spec = ExperimentSpec(
        exp_id="fig1",
        title="Figure 1: hidden/exposed terminals, CSMA vs MACA",
        figure="fig1",
        description=(
            "Hidden: two senders out of mutual range collide at a common "
            "receiver under CSMA. Exposed: CSMA serializes two transfers "
            "that MACA runs in parallel."
        ),
    )
    default_duration = 300.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        variants = {
            "CSMA": ("csma", CsmaConfig()),
            "MACA": ("maca", maca_config(copy_backoff=True)),
        }
        for name, (protocol, config) in variants.items():
            hidden = (
                fig1_hidden_terminal(protocol=protocol, config=config, seed=seed)
                .build()
                .run(duration)
            )
            for stream, pps in hidden.throughputs(warmup=warmup).items():
                table.add(name, f"hidden {stream}", pps)
            exposed = (
                fig1_exposed_terminal(protocol=protocol, config=config, seed=seed)
                .build()
                .run(duration)
            )
            for stream, pps in exposed.throughputs(warmup=warmup).items():
                table.add(name, f"exposed {stream}", pps)
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        csma_hidden = (
            table.value("CSMA", "hidden A-B") + table.value("CSMA", "hidden C-B")
        )
        maca_hidden = (
            table.value("MACA", "hidden A-B") + table.value("MACA", "hidden C-B")
        )
        csma_exposed = (
            table.value("CSMA", "exposed B-A") + table.value("CSMA", "exposed C-D")
        )
        maca_exposed = (
            table.value("MACA", "exposed B-A") + table.value("MACA", "exposed C-D")
        )
        return {
            "hidden terminals: MACA total > 1.5x CSMA total": (
                maca_hidden > 1.5 * csma_hidden
            ),
            "hidden terminals: CSMA collapses (total < 25 pps)": csma_hidden < 25.0,
            "exposed terminals: MACA total exceeds CSMA total": (
                maca_exposed > 1.05 * csma_exposed
            ),
        }
