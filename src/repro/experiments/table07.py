"""Table 7 — the configuration MACAW cannot solve (Figure 7).

B1 sends to P1 while P2 saturates its own uplink to B2; P1 hears P2, B1
hears nothing of the second cell.  The paper reports that B1→P1 is
completely denied access: B1's RTSs are corrupted at P1 by P2's data
transmissions, P1 never receives them cleanly, so even RRTS cannot help —
"none of the stations in the congested area are aware that B1 is
attempting to transmit" (§4).

This reproduces cleanly: B1's RTSs can only reach P1 inside the short
quiet windows of P2's saturated uplink, and the RRTS machinery never
triggers because P1 rarely hears those RTSs cleanly.  The B1→P1 stream is
squeezed to a few packets per second while P2→B2 takes nearly the whole
channel.
"""

from __future__ import annotations

from typing import Dict

from repro.analysis.tables import ComparisonTable
from repro.core.config import macaw_config
from repro.experiments.base import Experiment, ExperimentSpec
from repro.topo.figures import fig7_unsolved

STREAMS = ["B1-P1", "P2-B2"]

#: The OCR of the paper's Table 7 lost the numbers; §3.3.3's text gives the
#: qualitative content: B1-P1 ≈ 0, P2-B2 ≈ full channel (≈ Table 6's 42.87).
PAPER = {"MACAW": {"B1-P1": 0.0, "P2-B2": 42.87}}


class Table7(Experiment):
    spec = ExperimentSpec(
        exp_id="table7",
        title="Table 7: the unsolved configuration (Figure 7)",
        figure="fig7",
        description=(
            "B1→P1 against P2→B2 where P1 hears P2's data. The paper's open "
            "problem: no synchronization information can reach B1."
        ),
    )
    default_duration = 400.0

    def _run(self, seed: int, duration: float, warmup: float) -> ComparisonTable:
        table = ComparisonTable(self.spec.title)
        scenario = fig7_unsolved(config=macaw_config(), seed=seed).build().run(duration)
        for stream, pps in scenario.throughputs(warmup=warmup).items():
            table.add("MACAW", stream, pps, PAPER["MACAW"].get(stream))
        return table

    def _check(self, table: ComparisonTable) -> Dict[str, bool]:
        starved = table.value("MACAW", "B1-P1")
        winner = table.value("MACAW", "P2-B2")
        return {
            "B1-P1 is starved (< 15% of P2-B2)": starved < 0.15 * winner,
            "P2-B2 gets near-complete utilization (> 35 pps)": winner > 35.0,
        }
