"""Path-loss models for the nano-cellular radio.

The paper (§2.1): "the near-field signal strength decays very rapidly
(≈ r^-γ, as opposed to ≈ r^-2 in the far-field region)" and "Capture ...
requires a distance ratio of ≈ 1.5" for the 10 dB capture condition.  A
decay exponent γ with ``1.5^γ = 10 dB`` gives γ ≈ 5.68; we default to 6.0,
which yields a 10 dB capture at distance ratio ≈ 1.47 and the sharply
bounded ~10 ft cells the paper describes.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

#: Distance below which the field is treated as constant, to avoid the
#: r → 0 singularity.  One foot — the cube edge of the paper's grid.
MIN_DISTANCE_FT = 1.0


class PathLoss(ABC):
    """Maps (transmit power, distance) to received power, in milliwatts."""

    @abstractmethod
    def received_power_mw(self, tx_power_mw: float, distance_ft: float) -> float:
        """Received power at ``distance_ft`` from a ``tx_power_mw`` source."""

    def range_for_threshold_ft(self, tx_power_mw: float, threshold_mw: float) -> float:
        """Distance at which received power falls to ``threshold_mw``.

        Solved numerically by bisection so subclasses only implement the
        forward model.  Assumes monotonic decay beyond MIN_DISTANCE_FT.
        """
        if threshold_mw <= 0.0:
            raise ValueError("threshold must be positive")
        if self.received_power_mw(tx_power_mw, MIN_DISTANCE_FT) < threshold_mw:
            return 0.0
        lo, hi = MIN_DISTANCE_FT, MIN_DISTANCE_FT
        while self.received_power_mw(tx_power_mw, hi) >= threshold_mw:
            hi *= 2.0
            if hi > 1e6:  # pragma: no cover - defensive
                raise ValueError("threshold unreachable within 1e6 ft")
        for _ in range(80):
            mid = 0.5 * (lo + hi)
            if self.received_power_mw(tx_power_mw, mid) >= threshold_mw:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


class NearFieldPathLoss(PathLoss):
    """Near-field decay: P(r) = P_tx · (r_ref / r)^γ with a sharp exponent.

    Parameters
    ----------
    gamma:
        Decay exponent.  Default 6.0 (see module docstring).
    reference_ft:
        Distance at which received power equals transmit power.
    """

    def __init__(self, gamma: float = 6.0, reference_ft: float = 1.0) -> None:
        if gamma <= 0:
            raise ValueError(f"gamma must be positive, got {gamma!r}")
        if reference_ft <= 0:
            raise ValueError(f"reference distance must be positive, got {reference_ft!r}")
        self.gamma = gamma
        self.reference_ft = reference_ft

    def received_power_mw(self, tx_power_mw: float, distance_ft: float) -> float:
        r = max(distance_ft, MIN_DISTANCE_FT)
        return tx_power_mw * (self.reference_ft / r) ** self.gamma

    def capture_distance_ratio(self, capture_db: float) -> float:
        """Distance ratio needed for a ``capture_db`` power advantage."""
        return 10.0 ** (capture_db / (10.0 * self.gamma))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NearFieldPathLoss(gamma={self.gamma}, reference_ft={self.reference_ft})"


class FarFieldPathLoss(NearFieldPathLoss):
    """Conventional far-field inverse-square decay (γ = 2).

    Included as the contrast the paper draws in §2.1; useful in tests and
    for what-if experiments outside the nanocell regime.
    """

    def __init__(self, reference_ft: float = 1.0) -> None:
        super().__init__(gamma=2.0, reference_ft=reference_ft)


def distance_ft(a: "tuple[float, float, float]", b: "tuple[float, float, float]") -> float:
    """Euclidean distance between two (x, y, z) positions in feet."""
    return math.sqrt(
        (a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2 + (a[2] - b[2]) ** 2
    )
