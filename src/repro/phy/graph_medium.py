"""Boolean-connectivity medium (the paper's §2.1 "naive model").

"...a very simple model in which any two stations are either in-range or
out-of-range of one another, and a station successfully receives a packet if
and only if there is exactly one active transmitter within range of it."

Links are symmetric by default (the paper's no-noise radios are symmetric);
asymmetric links can be forced for noise/what-if studies.  Collisions: any
two overlapping audible signals destroy each other at that receiver — there
is no capture in this model.

The hot-path hooks count audible concurrent transmitters per receiver once
per transmission (memoized across the new-reception check and every
reception re-check) instead of rebuilding filtered transmission lists.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Set, Tuple

from repro.phy.medium import Medium, MediumError, ReceiverPort, Transmission
from repro.sim.kernel import Simulator


class GraphMedium(Medium):
    """Medium where audibility is an explicit edge set."""

    def __init__(self, sim: Simulator, bitrate_bps: float = 256_000.0) -> None:
        super().__init__(sim, bitrate_bps)
        self._edges: Dict[ReceiverPort, Set[ReceiverPort]] = {}

    # ------------------------------------------------------------- topology
    def attach(self, port: ReceiverPort) -> None:
        super().attach(port)
        self._edges.setdefault(port, set())

    def detach(self, port: ReceiverPort) -> None:
        super().detach(port)
        for peers in self._edges.values():
            peers.discard(port)
        self._edges.pop(port, None)

    def set_link(self, a: ReceiverPort, b: ReceiverPort, connected: bool = True,
                 symmetric: bool = True) -> None:
        """Create or remove the a→b (and by default b→a) audibility edge."""
        if a is b:
            raise MediumError("a station is trivially in range of itself")
        for port in (a, b):
            if port not in self._edges:
                raise MediumError(f"port {port.name!r} is not attached")
        if connected:
            self._edges[a].add(b)
            if symmetric:
                self._edges[b].add(a)
        else:
            self._edges[a].discard(b)
            if symmetric:
                self._edges[b].discard(a)
        self.invalidate_links()

    def connect_clique(self, ports: Iterable[ReceiverPort]) -> None:
        """Make every pair in ``ports`` mutually audible (a single cell)."""
        members = list(ports)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                self.set_link(a, b, True)

    def in_range(self, a: ReceiverPort, b: ReceiverPort) -> bool:
        """True when ``b`` can hear ``a``."""
        return b in self._edges.get(a, ())

    def neighbors(self, port: ReceiverPort) -> List[ReceiverPort]:
        """Ports that can hear ``port``."""
        return sorted(self._edges.get(port, ()), key=lambda p: p.name)

    def links_snapshot(
        self, port: ReceiverPort
    ) -> Tuple[List[ReceiverPort], List[ReceiverPort]]:
        """``(outgoing, incoming)`` links of ``port``, sorted by peer name.

        Outgoing peers can hear ``port``; incoming peers are heard *by*
        it.  Fault injection snapshots both before a power-off (detaching
        forgets the edges) so a later power-on can restore asymmetric
        topologies exactly.
        """
        outgoing = self.neighbors(port)
        incoming = sorted(
            (peer for peer, heard in self._edges.items()
             if port in heard and peer is not port),
            key=lambda p: p.name,
        )
        return outgoing, incoming

    # ------------------------------------------------------------- semantics
    def _audible(self, sender: ReceiverPort, receiver: ReceiverPort) -> bool:
        return receiver in self._edges.get(sender, ())

    def _interference_ok(
        self, tx: Transmission, receiver: ReceiverPort, others: List[Transmission]
    ) -> bool:
        # Exactly-one-audible-transmitter rule: any concurrent audible signal
        # destroys the reception, with no capture.
        audible = self.audible
        for other in others:
            if audible(other.sender, receiver):
                return False
        return True

    # ------------------------------------------------- incremental hot path
    def _audible_count(
        self,
        port: ReceiverPort,
        concurrent: List[Transmission],
        memo: Dict[ReceiverPort, Any],
    ) -> int:
        """Audible concurrent transmitters at ``port``, once per transmit."""
        count = memo.get(port)
        if count is None:
            edges = self._edges
            count = 0
            for t in concurrent:
                if port in edges.get(t.sender, ()):
                    count += 1
            memo[port] = count
        return count

    def _new_tx_clean(
        self,
        tx: Transmission,
        port: ReceiverPort,
        concurrent: List[Transmission],
        memo: Dict[ReceiverPort, Any],
    ) -> bool:
        return self._audible_count(port, concurrent, memo) == 0

    def _reception_survives(
        self,
        other: Transmission,
        port: ReceiverPort,
        tx: Transmission,
        concurrent: List[Transmission],
        memo: Dict[ReceiverPort, Any],
    ) -> bool:
        # ``other`` survives iff no *competing* signal is audible at
        # ``port``: the new transmission must be out of range, and of the
        # audible concurrent transmitters only ``other`` itself (normally
        # audible — it is being copied — but links can be rewired mid-run)
        # may remain.
        audible = self.audible
        if audible(tx.sender, port):
            return False
        own = 1 if audible(other.sender, port) else 0
        return self._audible_count(port, concurrent, memo) == own
