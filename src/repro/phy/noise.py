"""Intermittent-noise models.

§3.3.1: "Intermittent noise is modeled as a given probability that each
packet (regardless of size) is not received cleanly at its intended
destination."  §3.5 models an electronic whiteboard as a packet error rate
of 0.01 affecting one cell.

Each model answers one question per (transmission, receiver) delivery:
does the packet get destroyed at that receiver?  Draws come from the
simulator's dedicated ``"noise"`` random stream so noise outcomes don't
perturb protocol or traffic randomness.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set, Tuple, TYPE_CHECKING

from repro.phy.pathloss import distance_ft
from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.phy.medium import ReceiverPort, Transmission


class PacketErrorModel:
    """Uniform per-delivery packet error rate.

    Parameters
    ----------
    error_rate:
        Probability in [0, 1] that a delivery is destroyed.
    receivers:
        Restrict the model to these receiver names (None = all receivers).
    stream:
        Name of the random stream to draw from.
    """

    def __init__(
        self,
        error_rate: float,
        receivers: Optional[Iterable[str]] = None,
        stream: str = "noise",
    ) -> None:
        if not 0.0 <= error_rate <= 1.0:
            raise ValueError(f"error rate must be in [0,1], got {error_rate!r}")
        self.error_rate = error_rate
        self.receivers: Optional[Set[str]] = set(receivers) if receivers is not None else None
        self.stream = stream
        #: Number of deliveries this model destroyed (for tests/diagnostics).
        self.drops_count = 0

    def applies_to(self, sim: Simulator, tx: "Transmission", receiver: "ReceiverPort") -> bool:
        """Whether this model covers the given delivery."""
        return self.receivers is None or receiver.name in self.receivers

    def drops(self, sim: Simulator, tx: "Transmission", receiver: "ReceiverPort") -> bool:
        """Decide (with a fresh random draw) whether the delivery is lost."""
        if self.error_rate == 0.0 or not self.applies_to(sim, tx, receiver):
            return False
        if sim.streams.get(self.stream).random() < self.error_rate:
            self.drops_count += 1
            return True
        return False


class NoiseSource(PacketErrorModel):
    """A located noise emitter (e.g. the whiteboard in Figure 11).

    Destroys deliveries at receivers within ``radius_ft`` of ``position``
    with probability ``error_rate``.  Receiver positions are read at
    delivery time, so mobile stations move in and out of its influence.
    """

    def __init__(
        self,
        position: Tuple[float, float, float],
        radius_ft: float,
        error_rate: float,
        stream: str = "noise",
    ) -> None:
        super().__init__(error_rate, receivers=None, stream=stream)
        if radius_ft <= 0:
            raise ValueError(f"radius must be positive, got {radius_ft!r}")
        self.position = position
        self.radius_ft = radius_ft

    def applies_to(self, sim: Simulator, tx: "Transmission", receiver: "ReceiverPort") -> bool:
        return distance_ft(tuple(receiver.position), self.position) <= self.radius_ft


class LinkErrorModel(PacketErrorModel):
    """Per-directed-link packet error rate.

    Useful for constructing the asymmetric-loss scenarios of §3.4 ("noise
    close to either the sender ... or the receiver"): corrupt only RTS
    arrivals at B, or only CTS arrivals at A.
    """

    def __init__(self, links: Iterable[Tuple[str, str]], error_rate: float,
                 stream: str = "noise") -> None:
        super().__init__(error_rate, receivers=None, stream=stream)
        self.links: Set[Tuple[str, str]] = set(links)

    def applies_to(self, sim: Simulator, tx: "Transmission", receiver: "ReceiverPort") -> bool:
        return (tx.sender.name, receiver.name) in self.links


class TimeWindowErrorModel(PacketErrorModel):
    """A packet error rate active only inside [start, end) simulated seconds.

    Supports burst-noise failure injection in tests.
    """

    def __init__(self, error_rate: float, start: float, end: float,
                 receivers: Optional[Iterable[str]] = None, stream: str = "noise") -> None:
        super().__init__(error_rate, receivers=receivers, stream=stream)
        if end < start:
            raise ValueError("noise window must have end >= start")
        self.start = start
        self.end = end

    def applies_to(self, sim: Simulator, tx: "Transmission", receiver: "ReceiverPort") -> bool:
        if not self.start <= sim.now < self.end:
            return False
        return super().applies_to(sim, tx, receiver)
