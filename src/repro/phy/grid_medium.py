"""Cube-grid signal medium — the simulator model the paper actually uses.

§3: "The simulator approximates the media by dividing the space into small
cubes and then computing the strength of a signal at each cube according to
the distance from the signal source to the center of the cube. ... the cubes
are 1 cubic foot in size.  ...  A station resides at the center of a cube.
...  the designated receiving station can correctly receive the packet if
the signal strength is greater than some threshold (the signal strength at
10 feet) and is greater than the sum of the other signals by at least 10 dB
during the entire packet transmission time."

We evaluate the field lazily, only at cubes occupied by stations — which is
mathematically identical to maintaining the full grid, since reception is
only ever tested at station cubes.

Pairwise receive powers are memoized in a link cache (:meth:`link_power`):
they depend only on the two stations' cube positions, so they are computed
once per pair and invalidated with the audibility cache on attach/detach
or station movement.  Interference sums are accumulated over the
concurrent-transmission list in its deterministic start order, so a seed
reproduces byte-identical results across processes.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from repro.phy.medium import Medium, ReceiverPort, Transmission
from repro.phy.pathloss import NearFieldPathLoss, PathLoss, distance_ft
from repro.phy.signal import db_to_ratio
from repro.sim.kernel import Simulator

#: Edge length of the paper's cubes, in feet.
CUBE_FT = 1.0


def snap_to_cube_center(position: Tuple[float, float, float],
                        cube_ft: float = CUBE_FT) -> Tuple[float, float, float]:
    """Snap a position to the center of its containing cube.

    The cube with corner (0,0,0) has center (0.5, 0.5, 0.5)·cube_ft.
    """
    floor = math.floor
    return (
        (floor(position[0] / cube_ft) + 0.5) * cube_ft,
        (floor(position[1] / cube_ft) + 0.5) * cube_ft,
        (floor(position[2] / cube_ft) + 0.5) * cube_ft,
    )


class GridMedium(Medium):
    """Signal-strength medium with threshold reception and dB capture.

    Parameters
    ----------
    tx_power_mw:
        Common transmit power ("All base stations and pads transmit at the
        same signal strength", §2.1).
    pathloss:
        Decay model; defaults to the sharp near-field exponent.
    rx_threshold_distance_ft:
        Reception threshold expressed as "the signal strength at N feet";
        the paper uses 10 ft.
    capture_db:
        Required advantage of the wanted signal over the sum of all other
        signals; the paper uses 10 dB.
    """

    def __init__(
        self,
        sim: Simulator,
        bitrate_bps: float = 256_000.0,
        tx_power_mw: float = 1.0,
        pathloss: PathLoss = None,
        rx_threshold_distance_ft: float = 10.0,
        capture_db: float = 10.0,
        cube_ft: float = CUBE_FT,
    ) -> None:
        super().__init__(sim, bitrate_bps)
        self.tx_power_mw = tx_power_mw
        self.pathloss = pathloss if pathloss is not None else NearFieldPathLoss()
        self.rx_threshold_mw = self.pathloss.received_power_mw(
            tx_power_mw, rx_threshold_distance_ft
        )
        self.rx_threshold_distance_ft = rx_threshold_distance_ft
        self.capture_ratio = db_to_ratio(capture_db)
        self.cube_ft = cube_ft
        #: Pairwise receive-power memo, keyed like the audibility cache.
        self._power_cache: Dict[Tuple[int, int], float] = {}

    # --------------------------------------------------------------- signal
    def power_between(self, sender: ReceiverPort, receiver: ReceiverPort) -> float:
        """Received power (mW) of ``sender``'s signal at ``receiver``'s cube.

        Uncached; prefer :meth:`link_power` on hot paths.
        """
        a = snap_to_cube_center(tuple(sender.position), self.cube_ft)
        b = snap_to_cube_center(tuple(receiver.position), self.cube_ft)
        return self.pathloss.received_power_mw(self.tx_power_mw, distance_ft(a, b))

    def link_power(self, sender: ReceiverPort, receiver: ReceiverPort) -> float:
        """Cached :meth:`power_between`, invalidated with the link cache."""
        key = (id(sender), id(receiver))
        cache = self._power_cache
        hit = cache.get(key)
        if hit is None:
            hit = cache[key] = self.power_between(sender, receiver)
        return hit

    def invalidate_links(self) -> None:
        super().invalidate_links()
        self._power_cache.clear()

    def in_range(self, sender: ReceiverPort, receiver: ReceiverPort) -> bool:
        """True when ``receiver`` is above the reception threshold."""
        return self.link_power(sender, receiver) >= self.rx_threshold_mw

    # ------------------------------------------------------------- semantics
    def _audible(self, sender: ReceiverPort, receiver: ReceiverPort) -> bool:
        return self.in_range(sender, receiver)

    def _interference_ok(
        self, tx: Transmission, receiver: ReceiverPort, others: List[Transmission]
    ) -> bool:
        signal = self.link_power(tx.sender, receiver)
        if signal < self.rx_threshold_mw:
            return False
        # Interference sums every concurrent signal, including sub-threshold
        # ones — the paper's "sum of the other signals".
        interference = 0.0
        for other in others:
            interference += self.link_power(other.sender, receiver)
        if interference <= 0.0:
            return True
        return signal >= interference * self.capture_ratio

    # ------------------------------------------------- incremental hot path
    def _interference_sum(
        self,
        port: ReceiverPort,
        concurrent: List[Transmission],
        memo: Dict[ReceiverPort, Any],
    ) -> float:
        """Total concurrent power at ``port``, computed once per transmit."""
        total = memo.get(port)
        if total is None:
            link_power = self.link_power
            total = 0.0
            for t in concurrent:
                total += link_power(t.sender, port)
            memo[port] = total
        return total

    def _new_tx_clean(
        self,
        tx: Transmission,
        port: ReceiverPort,
        concurrent: List[Transmission],
        memo: Dict[ReceiverPort, Any],
    ) -> bool:
        # ``port`` is not transmitting, so every concurrent transmission is
        # a competitor ("the sum of the other signals").
        signal = self.link_power(tx.sender, port)
        if signal < self.rx_threshold_mw:
            return False
        interference = self._interference_sum(port, concurrent, memo)
        if interference <= 0.0:
            return True
        return signal >= interference * self.capture_ratio

    def _reception_survives(
        self,
        other: Transmission,
        port: ReceiverPort,
        tx: Transmission,
        concurrent: List[Transmission],
        memo: Dict[ReceiverPort, Any],
    ) -> bool:
        link_power = self.link_power
        signal = link_power(other.sender, port)
        if signal < self.rx_threshold_mw:
            return False
        # Competitors = (concurrent minus other) plus the new tx; reuse the
        # per-port total instead of rebuilding the list.
        interference = (
            self._interference_sum(port, concurrent, memo)
            - signal
            + link_power(tx.sender, port)
        )
        if interference <= 0.0:
            return True
        return signal >= interference * self.capture_ratio
