"""Decibel and power arithmetic helpers.

All medium-level computation works in linear milliwatts; decibels appear
only at configuration boundaries (the paper quotes its capture condition as
"greater than the sum of the other signals by at least 10 dB").
"""

from __future__ import annotations

import math
from typing import Iterable


def db_to_ratio(db: float) -> float:
    """Convert a decibel value to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def ratio_to_db(ratio: float) -> float:
    """Convert a linear power ratio to decibels.

    Raises ValueError for non-positive ratios, which have no dB image.
    """
    if ratio <= 0.0:
        raise ValueError(f"power ratio must be positive, got {ratio!r}")
    return 10.0 * math.log10(ratio)


def dbm_to_mw(dbm: float) -> float:
    """Convert dBm to milliwatts."""
    return 10.0 ** (dbm / 10.0)


def mw_to_dbm(mw: float) -> float:
    """Convert milliwatts to dBm."""
    if mw <= 0.0:
        raise ValueError(f"power must be positive, got {mw!r}")
    return 10.0 * math.log10(mw)


def sum_powers_mw(powers: Iterable[float]) -> float:
    """Sum linear powers (interference adds linearly, not in dB)."""
    total = 0.0
    for p in powers:
        if p < 0.0:
            raise ValueError(f"negative power {p!r}")
        total += p
    return total


def sinr_ok(signal_mw: float, interference_mw: float, capture_db: float) -> bool:
    """True when ``signal`` exceeds ``interference`` by ``capture_db``.

    Zero interference always passes; zero signal never does.  This is the
    paper's capture condition evaluated at one instant.
    """
    if signal_mw <= 0.0:
        return False
    if interference_mw <= 0.0:
        return True
    return signal_mw >= interference_mw * db_to_ratio(capture_db)
