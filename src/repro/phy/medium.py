"""The shared radio medium.

A :class:`Medium` owns the set of in-flight :class:`Transmission` objects
and decides, per receiver, whether each frame arrives *cleanly*.  The
semantics come straight from the paper (§3):

* a station successfully receives a packet iff the packet's signal is above
  the reception threshold **and** exceeds the sum of all other signals by the
  capture ratio (10 dB) **for the entire packet transmission time**;
* stations are half-duplex: transmitting at any point during a reception
  corrupts that reception;
* intermittent noise independently destroys a packet at a receiver with a
  configured probability, regardless of packet size (§3.3.1).

Concrete subclasses answer two questions — who can hear whom, and at what
power — via :meth:`Medium._audible` and :meth:`Medium._interference_ok`:

* :class:`~repro.phy.graph_medium.GraphMedium`: boolean connectivity, any
  overlap of two audible signals is a collision (the §2.1 "naive model").
* :class:`~repro.phy.grid_medium.GridMedium`: the cube-grid signal model
  with real powers, thresholds and capture.

Corruption is evaluated incrementally: whenever a transmission starts, every
in-flight reception it can disturb is re-checked; interference can only mark
receptions corrupted, never un-corrupt them, so transmission *ends* need no
re-check.

Performance notes
-----------------
Audibility between a fixed pair of stations never changes while the
topology holds still, so the base class memoizes :meth:`_audible` behind
the public :meth:`audible` accessor (and :class:`GridMedium` likewise
memoizes pairwise receive power).  The cache is invalidated on
:meth:`attach`, :meth:`detach` and — via :meth:`invalidate_links` — on
station movement; :class:`~repro.topo.station.Station`'s position setter
calls it automatically.  MAC-layer code must go through :meth:`audible`
(the determinism lint's REPRO106 enforces this) so the cache stays the
single source of truth.

:meth:`transmit` evaluates interference through two hooks —
:meth:`_new_tx_clean` and :meth:`_reception_survives` — that concrete media
implement with per-port aggregates over the concurrent-transmission list,
computed at most once per port per transmission, instead of rebuilding a
filtered transmission list for every (port, reception) pair.  Both hooks
rely on the invariant that the evaluated port is not itself transmitting
(a transmitting port's receptions are corrupted up front by half-duplex),
so no concurrent transmission originates at that port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple, TYPE_CHECKING

from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mac.frames import Frame
    from repro.phy.noise import PacketErrorModel


class ReceiverPort:
    """What the medium needs from an attached radio (a MAC entity).

    Subclasses must provide :attr:`name` and :attr:`position` and override
    the ``on_*`` callbacks they care about.  ``position`` is (x, y, z) in
    feet; the graph medium ignores it.
    """

    name: str = "?"
    position: Any = (0.0, 0.0, 0.0)

    def on_frame(self, frame: "Frame", clean: bool) -> None:
        """A frame finished arriving.  ``clean`` is False for collisions,
        capture failures, half-duplex overlap, or noise corruption."""

    def on_carrier(self, busy: bool) -> None:
        """The sensed-carrier state changed (used by CSMA variants)."""

    def on_transmit_complete(self, transmission: "Transmission") -> None:
        """Our own transmission left the air."""


@dataclass
class Transmission:
    """One frame in flight."""

    frame: "Frame"
    sender: ReceiverPort
    start: float
    end: float
    #: Receivers currently copying this transmission, with corruption flags.
    receptions: Dict[ReceiverPort, bool] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other


class MediumError(RuntimeError):
    """Raised on misuse: transmitting while already transmitting, etc."""


class Medium:
    """Base class implementing transmission lifecycle and corruption logic."""

    def __init__(self, sim: Simulator, bitrate_bps: float = 256_000.0) -> None:
        if bitrate_bps <= 0:
            raise ValueError(f"bitrate must be positive, got {bitrate_bps!r}")
        self.sim = sim
        self.bitrate_bps = bitrate_bps
        self._ports: List[ReceiverPort] = []
        #: O(1) membership/index for :attr:`_ports` (which keeps the
        #: deterministic attach-order iteration the digests depend on).
        self._port_index: Dict[ReceiverPort, int] = {}
        #: In-flight transmissions in start order.  A dict (not a set) so
        #: iteration order — and therefore floating-point interference
        #: summation order — is deterministic across runs and processes.
        self._active: Dict[Transmission, None] = {}
        self._transmitting: Dict[ReceiverPort, Transmission] = {}
        self._carrier_count: Dict[ReceiverPort, int] = {}
        self._noise_models: List["PacketErrorModel"] = []
        #: Pairwise audibility memo, keyed by (id(sender), id(receiver)).
        #: Cleared wholesale on any topology change; ids are safe as keys
        #: because every cached port is kept alive by the ports list or an
        #: in-flight transmission, and both attach and detach invalidate.
        self._audible_cache: Dict[Tuple[int, int], bool] = {}
        #: Per-sender hearer list (ports audible from the sender, in attach
        #: order), derived from the pairwise memo above and invalidated with
        #: it.  :meth:`transmit` iterates this instead of probing the
        #: pairwise cache once per attached port per frame.
        self._audible_from: Dict[int, List[ReceiverPort]] = {}
        #: Statistics: frames delivered cleanly / corrupted, per medium.
        self.clean_deliveries = 0
        self.corrupt_deliveries = 0
        #: Busy-time accounting for the channel-utilisation probe: total
        #: seconds with >= 1 transmission in flight, plus the start of the
        #: current busy interval while one is open.  Maintained on the 0->1
        #: and ->0 transitions of :attr:`_active`, so the per-frame cost is
        #: two branch tests.
        self._busy_time = 0.0
        self._busy_since = 0.0

    # ------------------------------------------------------------- topology
    def attach(self, port: ReceiverPort) -> None:
        """Register a radio with the medium."""
        if port in self._port_index:
            raise MediumError(f"port {port.name!r} attached twice")
        self._port_index[port] = len(self._ports)
        self._ports.append(port)
        self._carrier_count[port] = 0
        self.invalidate_links()

    def detach(self, port: ReceiverPort) -> None:
        """Remove a radio (power-off, leaving the floor).

        In-flight receptions at the port are silently discarded; an
        in-flight transmission from the port keeps occupying the air until
        its scheduled end (a real radio's last frame does too).
        """
        index = self._port_index.pop(port)
        self._ports.pop(index)
        for later in self._ports[index:]:
            self._port_index[later] -= 1
        self._carrier_count.pop(port, None)
        for tx in self._active:
            tx.receptions.pop(port, None)
        self.invalidate_links()

    @property
    def ports(self) -> List[ReceiverPort]:
        return list(self._ports)

    def add_noise_model(self, model: "PacketErrorModel") -> None:
        """Attach a packet-error model applied to every delivery."""
        self._noise_models.append(model)

    def remove_noise_model(self, model: "PacketErrorModel") -> None:
        """Detach a previously-added packet-error model.

        Transient models (fault injection's noise bursts) add themselves
        for a window and remove themselves at its end; removing a model
        that was never added is an error.
        """
        try:
            self._noise_models.remove(model)
        except ValueError:
            raise MediumError("noise model was never added") from None

    def attached(self, port: ReceiverPort) -> bool:
        """Whether ``port`` is currently registered with the medium.

        Powered-off stations are detached; callers that poke link state at
        arbitrary times (fault injection) use this to skip them.
        """
        return port in self._port_index

    # ------------------------------------------------------------ link cache
    def audible(self, sender: ReceiverPort, receiver: ReceiverPort) -> bool:
        """Cached :meth:`_audible`: can ``receiver`` hear ``sender`` at all?

        This is the supported accessor for MAC-layer and experiment code;
        calling ``_audible`` directly bypasses the link cache (and trips
        lint rule REPRO106).
        """
        key = (id(sender), id(receiver))
        cache = self._audible_cache
        hit = cache.get(key)
        if hit is None:
            hit = cache[key] = self._audible(sender, receiver)
        return hit

    def invalidate_links(self) -> None:
        """Drop every cached link property (audibility, receive power).

        Must be called whenever a station moves; attach/detach call it
        automatically.  Subclasses with extra caches extend this.
        """
        self._audible_cache.clear()
        self._audible_from.clear()

    # ------------------------------------------------------------ subclasses
    def _audible(self, sender: ReceiverPort, receiver: ReceiverPort) -> bool:
        """Can ``receiver`` detect/copy a signal from ``sender`` at all?"""
        raise NotImplementedError

    def _interference_ok(
        self, tx: Transmission, receiver: ReceiverPort, others: List[Transmission]
    ) -> bool:
        """Does ``tx`` survive the given concurrent ``others`` at
        ``receiver`` (capture condition)?  ``others`` excludes ``tx`` and
        contains only transmissions from senders other than ``receiver``."""
        raise NotImplementedError

    # --------------------------------------------------- interference hooks
    def _new_tx_clean(
        self,
        tx: Transmission,
        port: ReceiverPort,
        concurrent: List[Transmission],
        memo: Dict[ReceiverPort, Any],
    ) -> bool:
        """Does the just-started ``tx`` begin cleanly at ``port``?

        ``concurrent`` is the list of other in-flight transmissions that
        overlap ``tx`` (start order); ``memo`` is a scratch dict scoped to
        this :meth:`transmit` call for per-port aggregates.  ``port`` is
        guaranteed not to be transmitting.  The default delegates to
        :meth:`_interference_ok` for third-party subclasses.
        """
        return self._interference_ok(tx, port, concurrent)

    def _reception_survives(
        self,
        other: Transmission,
        port: ReceiverPort,
        tx: Transmission,
        concurrent: List[Transmission],
        memo: Dict[ReceiverPort, Any],
    ) -> bool:
        """Does the in-progress reception of ``other`` at ``port`` survive
        the arrival of ``tx``?

        ``concurrent`` excludes ``tx`` and includes ``other``; ``port`` is
        guaranteed not to be transmitting (its receptions would already be
        corrupted).  The default rebuilds the competitor list and delegates
        to :meth:`_interference_ok`.
        """
        remaining = [t for t in concurrent if t is not other]
        remaining.append(tx)
        return self._interference_ok(other, port, remaining)

    # ---------------------------------------------------------- transmitting
    def airtime(self, size_bytes: int) -> float:
        """Seconds needed to put ``size_bytes`` on the air."""
        if size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {size_bytes!r}")
        return (size_bytes * 8) / self.bitrate_bps

    def is_transmitting(self, port: ReceiverPort) -> bool:
        return port in self._transmitting

    def carrier_sensed(self, port: ReceiverPort) -> bool:
        """True when the port senses any foreign signal right now."""
        return self._carrier_count.get(port, 0) > 0

    def transmit(self, sender: ReceiverPort, frame: "Frame") -> Transmission:
        """Put ``frame`` on the air from ``sender``; returns the transmission.

        Delivery callbacks fire at the end of the airtime.  Propagation delay
        is negligible at nanocell scale (≤ 4 m ≈ 13 ns) and is modelled as
        zero, as in the paper.
        """
        if sender not in self._port_index:
            raise MediumError(f"sender {sender.name!r} is not attached")
        if sender in self._transmitting:
            raise MediumError(f"{sender.name!r} is already transmitting")
        now = self.sim.now
        tx = Transmission(frame=frame, sender=sender, start=now, end=now + self.airtime(frame.size_bytes))
        active = self._active
        # Transmissions whose scheduled end is exactly now have zero overlap
        # with this one (their end event just hasn't processed yet) and
        # cannot interfere; half-duplex corruption below still applies.
        concurrent = [t for t in active if t.end > now]
        if not active:
            self._busy_since = now  # channel transitions idle -> busy
        active[tx] = None
        self._transmitting[sender] = tx

        # Half-duplex: anything the sender was copying is now lost.
        for other in active:
            if other is not tx and sender in other.receptions:
                other.receptions[sender] = True  # corrupted

        # Start receptions at every audible port.  The hearer list is cached
        # per sender in attach order (so callback order matches the port
        # list) and rebuilt from the pairwise memo after any topology change.
        sender_id = id(sender)
        hearers = self._audible_from.get(sender_id)
        if hearers is None:
            audible_cache = self._audible_cache
            hearers = []
            for port in self._ports:
                if port is sender:
                    continue
                key = (sender_id, id(port))
                hearable = audible_cache.get(key)
                if hearable is None:
                    hearable = audible_cache[key] = self._audible(sender, port)
                if hearable:
                    hearers.append(port)
            self._audible_from[sender_id] = hearers
        memo: Dict[ReceiverPort, Any] = {}
        transmitting = self._transmitting
        carrier_count = self._carrier_count
        receptions = tx.receptions
        for port in hearers:
            corrupted = port in transmitting
            if not corrupted and concurrent and not self._new_tx_clean(
                tx, port, concurrent, memo
            ):
                corrupted = True
            receptions[port] = corrupted
            count = carrier_count.get(port)
            if count is not None:
                carrier_count[port] = count + 1
                if count == 0:
                    port.on_carrier(True)
        if concurrent:
            # The new signal may destroy receptions already in progress —
            # including at ports where it is itself below the reception
            # threshold ("the sum of the other signals" counts sub-threshold
            # interferers too), so this pass visits every attached port.
            # The interference hooks are pure functions of topology and the
            # per-transmit memo, so running this after (rather than
            # interleaved with) the reception starts changes nothing.
            for port in self._ports:
                if port is sender:
                    continue
                for other in concurrent:
                    if other.receptions.get(port) is False and not self._reception_survives(
                        other, port, tx, concurrent, memo
                    ):
                        other.receptions[port] = True

        # Priority -1: at a time tie, receivers learn of the frame's end
        # before any of their own timers fire (see EventHandle docs).
        self.sim.at(tx.end, self._finish, tx, priority=-1)
        return tx

    def _finish(self, tx: Transmission) -> None:
        self._active.pop(tx, None)
        if not self._active:
            self._busy_time += self.sim.now - self._busy_since  # busy -> idle
        if self._transmitting.get(tx.sender) is tx:
            del self._transmitting[tx.sender]
        trace = self.sim.trace
        record = trace.enabled
        carrier_count = self._carrier_count
        now = self.sim.now
        noise = bool(self._noise_models)
        for port, corrupted in tx.receptions.items():
            count = carrier_count.get(port)
            if count is None:
                continue  # detached mid-flight
            # _carrier_down inlined: one dict probe instead of two.
            carrier_count[port] = count - 1
            if count == 1:
                port.on_carrier(False)
            clean = not corrupted and not (noise and self._noise_drops(tx, port))
            if clean:
                self.clean_deliveries += 1
            else:
                self.corrupt_deliveries += 1
            if record:
                trace.record(
                    now, "recv", port.name,
                    frame=tx.frame.describe(),
                    kind=tx.frame.kind.value,
                    src=tx.frame.src,
                    dst=tx.frame.dst,
                    esn=tx.frame.esn,
                    size=tx.frame.size_bytes,
                    clean=clean,
                )
            port.on_frame(tx.frame, clean)
        # A powered-off radio does not observe its own transmit completion
        # (its last frame still occupied the air; see detach()).  Without
        # this check a dead station's completion callback could restart
        # its contention machinery and spin until the simulation horizon.
        if tx.sender in carrier_count:
            tx.sender.on_transmit_complete(tx)

    def _noise_drops(self, tx: Transmission, receiver: ReceiverPort) -> bool:
        for model in self._noise_models:
            if model.drops(self.sim, tx, receiver):
                return True
        return False

    # ----------------------------------------------------------- carrier CB
    def _carrier_up(self, port: ReceiverPort) -> None:
        count = self._carrier_count.get(port)
        if count is None:
            return
        self._carrier_count[port] = count + 1
        if count == 0:
            port.on_carrier(True)

    def _carrier_down(self, port: ReceiverPort) -> None:
        count = self._carrier_count.get(port)
        if count is None:
            return
        self._carrier_count[port] = count - 1
        if count == 1:
            port.on_carrier(False)

    # ------------------------------------------------------------- inspection
    def active_transmissions(self) -> List[Transmission]:
        return list(self._active)

    def active_count(self) -> int:
        """Number of transmissions in flight right now (O(1))."""
        return len(self._active)

    def busy_seconds(self) -> float:
        """Cumulative seconds the channel has carried >= 1 transmission,
        including the currently open busy interval.  Divided by ``sim.now``
        this is the busy fraction the channel probe exports."""
        busy = self._busy_time
        if self._active:
            busy += self.sim.now - self._busy_since
        return busy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(ports={len(self._ports)},"
            f" active={len(self._active)}, bitrate={self.bitrate_bps:g}bps)"
        )
