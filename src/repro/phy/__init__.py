"""Physical layer: signal propagation, the shared radio medium, and noise.

The paper's radio (§2.1) is PARC's 5 MHz near-field technology: a single
256 kbps channel, ~3–4 m range, very sharp signal decay, 10 dB capture
ratio.  Its simulator (§3) divides space into 1 ft³ cubes and computes the
field at cube centers.  This package reproduces both that cube model
(:class:`~repro.phy.grid_medium.GridMedium`) and the paper's simplified
in-range/out-of-range model from §2.1
(:class:`~repro.phy.graph_medium.GraphMedium`).
"""

from repro.phy.signal import (
    db_to_ratio,
    ratio_to_db,
    dbm_to_mw,
    mw_to_dbm,
    sum_powers_mw,
)
from repro.phy.pathloss import NearFieldPathLoss, FarFieldPathLoss, PathLoss
from repro.phy.medium import Medium, Transmission, ReceiverPort
from repro.phy.graph_medium import GraphMedium
from repro.phy.grid_medium import GridMedium, snap_to_cube_center
from repro.phy.noise import (
    LinkErrorModel,
    NoiseSource,
    PacketErrorModel,
    TimeWindowErrorModel,
)

__all__ = [
    "db_to_ratio",
    "ratio_to_db",
    "dbm_to_mw",
    "mw_to_dbm",
    "sum_powers_mw",
    "PathLoss",
    "NearFieldPathLoss",
    "FarFieldPathLoss",
    "Medium",
    "Transmission",
    "ReceiverPort",
    "GraphMedium",
    "GridMedium",
    "snap_to_cube_center",
    "PacketErrorModel",
    "NoiseSource",
    "LinkErrorModel",
    "TimeWindowErrorModel",
]
