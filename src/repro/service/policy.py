"""Seed allocation policies: fixed lists and CI-driven sequential stopping.

The paper's tables average several runs per configuration; how many is a
judgement call the fixed ``--seeds N`` flag forces up front.  A
:class:`SeedPolicy` moves that decision into the sweep itself: the
orchestrator keeps asking the policy for more seeds per experiment until
the policy says stop.

* :class:`FixedSeeds` reproduces ``--seeds``: one predetermined list.
* :class:`AdaptiveSeeds` is the sequential stopping rule: run a minimum
  batch, then keep adding seeds while the 95% (configurable) confidence
  interval of the target metric is wider than ``epsilon`` — up to a hard
  cap.  The decision is a pure function of the completed metric values
  *in seed order*, so a sweep stops at the same point whether cells ran
  serially or across a worker pool.

Both policies are frozen dataclasses that serialize into the job spec
(and hence into the job digest): resuming a job replays the exact same
allocation decisions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

__all__ = [
    "AdaptiveSeeds",
    "FixedSeeds",
    "SeedPolicy",
    "cell_metric",
    "ci_half_width",
    "policy_from_dict",
    "t_critical",
]

#: Two-sided Student-t critical values at 95% confidence, indexed by
#: degrees of freedom 1..30; beyond 30 the normal approximation is used.
_T_95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)

#: Same table at 99% confidence.
_T_99 = (
    63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
    3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
    2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750,
)

_Z = {0.95: 1.960, 0.99: 2.576}
_TABLES = {0.95: _T_95, 0.99: _T_99}


def t_critical(df: int, confidence: float = 0.95) -> float:
    """Two-sided Student-t critical value (normal beyond 30 df).

    Only the 0.95 and 0.99 levels are tabulated — enough for stopping
    rules, without a scipy dependency.
    """
    table = _TABLES.get(confidence)
    if table is None:
        raise ValueError(
            f"confidence must be one of {sorted(_TABLES)}, got {confidence!r}"
        )
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df!r}")
    if df <= len(table):
        return table[df - 1]
    return _Z[confidence]


def ci_half_width(values: Sequence[float], confidence: float = 0.95) -> float:
    """Half-width of the two-sided CI of the mean of ``values``.

    Returns ``inf`` for fewer than two values (no variance estimate yet).
    """
    n = len(values)
    if n < 2:
        return float("inf")
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / (n - 1)
    return t_critical(n - 1, confidence) * math.sqrt(variance / n)


def cell_metric(table: Any, metric: str) -> float:
    """Extract the stopping metric from a run's ComparisonTable.

    ``"total"`` sums every measured (variant, stream) cell;
    ``"variant:NAME"`` sums one variant's streams — the per-config scalar
    the CI is computed over.
    """
    if metric == "total":
        return float(sum(table.totals().values()))
    if metric.startswith("variant:"):
        name = metric[len("variant:"):]
        totals = table.totals()
        if name not in totals:
            raise KeyError(
                f"metric variant {name!r} not in table "
                f"(has: {', '.join(totals)})"
            )
        return float(totals[name])
    raise ValueError(f"unknown metric spec {metric!r}")


class SeedPolicy:
    """How many seeds one experiment configuration gets.

    ``initial_seeds()`` is the opening allocation; every time the whole
    allocation so far has completed, the orchestrator calls
    ``next_seeds(metrics)`` with the metric values in seed order and
    either extends the allocation or — on an empty return — closes the
    configuration.
    """

    kind = "abstract"

    def initial_seeds(self) -> List[int]:
        raise NotImplementedError

    def next_seeds(self, metrics: Sequence[float]) -> List[int]:
        raise NotImplementedError

    def stop_reason(self, metrics: Sequence[float]) -> str:
        """Why the policy stopped, for the journal (called after stop)."""
        return "fixed"

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class FixedSeeds(SeedPolicy):
    """The classic ``--seeds`` behaviour: one predetermined seed list."""

    seeds: Tuple[int, ...]

    kind = "fixed"

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        if not self.seeds:
            raise ValueError("need at least one seed")
        if len(set(self.seeds)) != len(self.seeds):
            raise ValueError(f"duplicate seeds in {self.seeds!r}")

    def initial_seeds(self) -> List[int]:
        return list(self.seeds)

    def next_seeds(self, metrics: Sequence[float]) -> List[int]:
        return []

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "fixed", "seeds": list(self.seeds)}


@dataclass(frozen=True)
class AdaptiveSeeds(SeedPolicy):
    """Sequential stopping: add seeds until the CI is tight enough.

    Starting from ``min_seeds`` consecutive seeds at ``base_seed``, the
    policy adds ``step`` more whenever the metric's confidence-interval
    half-width still exceeds ``epsilon``, and stops at ``max_seeds``
    regardless — the hard cap that bounds a noisy configuration.
    """

    #: Target half-width of the metric's CI, in metric units (pps).
    epsilon: float
    metric: str = "total"
    min_seeds: int = 3
    max_seeds: int = 32
    step: int = 1
    base_seed: int = 0
    confidence: float = 0.95

    kind = "adaptive"

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon!r}")
        if not 2 <= self.min_seeds <= self.max_seeds:
            raise ValueError(
                f"need 2 <= min_seeds <= max_seeds, got "
                f"{self.min_seeds!r}, {self.max_seeds!r}"
            )
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step!r}")
        t_critical(1, self.confidence)  # validates the confidence level
        cell_metric_ok = self.metric == "total" or self.metric.startswith("variant:")
        if not cell_metric_ok:
            raise ValueError(f"unknown metric spec {self.metric!r}")

    def initial_seeds(self) -> List[int]:
        return list(range(self.base_seed, self.base_seed + self.min_seeds))

    def half_width(self, metrics: Sequence[float]) -> float:
        return ci_half_width(metrics, self.confidence)

    def next_seeds(self, metrics: Sequence[float]) -> List[int]:
        n = len(metrics)
        if n >= self.max_seeds:
            return []
        if self.half_width(metrics) <= self.epsilon:
            return []
        upper = min(n + self.step, self.max_seeds)
        return list(range(self.base_seed + n, self.base_seed + upper))

    def stop_reason(self, metrics: Sequence[float]) -> str:
        if self.half_width(metrics) <= self.epsilon:
            return "ci"
        return "cap"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "adaptive",
            "epsilon": self.epsilon,
            "metric": self.metric,
            "min_seeds": self.min_seeds,
            "max_seeds": self.max_seeds,
            "step": self.step,
            "base_seed": self.base_seed,
            "confidence": self.confidence,
        }


def policy_from_dict(payload: Mapping[str, Any]) -> SeedPolicy:
    """Inverse of ``SeedPolicy.to_dict`` (job-spec deserialization)."""
    kind = payload.get("kind")
    if kind == "fixed":
        return FixedSeeds(seeds=tuple(payload["seeds"]))
    if kind == "adaptive":
        return AdaptiveSeeds(
            epsilon=float(payload["epsilon"]),
            metric=str(payload.get("metric", "total")),
            min_seeds=int(payload.get("min_seeds", 3)),
            max_seeds=int(payload.get("max_seeds", 32)),
            step=int(payload.get("step", 1)),
            base_seed=int(payload.get("base_seed", 0)),
            confidence=float(payload.get("confidence", 0.95)),
        )
    raise ValueError(f"unknown seed policy kind {kind!r}")
