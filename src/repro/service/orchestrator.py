"""The sweep orchestrator: turn a JobSpec into a durable, resumable run.

One call to :func:`run_job` drives a whole campaign:

1. **Normalize & pin.**  The spec's profile is pinned exactly the way
   ``run_cells`` pins it (ambient sanitize/metrics resolved in the
   parent), so a job produces byte-identical results at any ``jobs``.
2. **Replay.**  An existing journal for the job is loaded and chain-
   verified; completed cells are *replayed* — their digests and metric
   values come from the journal, their full results from the
   :class:`~repro.runner.cache.ResultCache` (a cache miss silently
   re-executes, which by the determinism contract reproduces the
   journaled digest byte-for-byte).
3. **Schedule.**  Remaining cells fan out through the
   :class:`~repro.service.scheduler.CellScheduler` (per-cell worker
   processes, retry-with-backoff on worker death).  Every completion is
   journaled *immediately* — the journal line is the durability point.
4. **Allocate.**  When an experiment's allocated seeds are all complete,
   the :class:`~repro.service.policy.SeedPolicy` decides (on metric
   values in seed order — arrival order is irrelevant) whether to add
   seeds or close the configuration with a journaled ``stop`` record.
5. **Drain on SIGINT.**  The first ^C stops new dispatches, lets
   in-flight workers finish, journals them, appends an ``interrupted``
   record and returns a job in ``interrupted`` state; the CLI maps that
   to exit 130.  A second ^C terminates in-flight cells immediately.

Progress streams to ``<job>/progress.jsonl`` (one JSON line per event:
cell completions with wall-clock timing, retries, stops), mirroring the
:mod:`repro.obs` JSONL conventions for offline analysis.
"""

from __future__ import annotations

import json
import signal
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.obs.runtime import resolve_metrics
from repro.runner.cache import ResultCache, code_version, profile_hash
from repro.runner.cells import Cell, CellResult
from repro.service.job import DEFAULT_JOB_DIR, Job, JobSpec
from repro.service.journal import JournalError
from repro.service.policy import cell_metric
from repro.service.scheduler import (
    DEFAULT_BACKOFF_S,
    DEFAULT_RETRIES,
    CellScheduler,
)
from repro.verify.runtime import sanitize_enabled

__all__ = ["run_job", "resume_job"]

PathLike = Union[str, Path]

#: ``on_event`` callback: (kind, payload) — the CLI renders these.
EventFn = Callable[[str, Dict[str, Any]], None]

CellKey = Tuple[str, int]


class _Progress:
    """Append-only progress/timing stream beside the journal."""

    def __init__(self, path: Path, on_event: Optional[EventFn]) -> None:
        self._path = path
        self._on_event = on_event
        path.parent.mkdir(parents=True, exist_ok=True)

    def emit(self, kind: str, **payload: Any) -> None:
        record = {"kind": kind, "t_wall": round(time.time(), 3), **payload}  # repro-lint: allow=REPRO102 (progress timestamps)
        with open(self._path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        if self._on_event is not None:
            self._on_event(kind, record)


class _ConfigState:
    """Per-experiment allocation bookkeeping."""

    def __init__(self, exp_id: str, seeds: List[int]) -> None:
        self.exp_id = exp_id
        self.allocated: List[int] = list(seeds)
        self.done: Dict[int, CellResult] = {}
        self.metrics: Dict[int, float] = {}
        self.closed = False

    @property
    def complete(self) -> bool:
        return all(seed in self.done for seed in self.allocated)

    def metric_series(self) -> List[float]:
        """Metric values in seed-allocation order (the policy's input)."""
        return [self.metrics[seed] for seed in self.allocated]


def _pin(spec: JobSpec) -> Tuple[Any, str]:
    """Pin ambient knobs into the profile; return (profile, cache config)."""
    pinned = spec.profile.but(
        sanitize=sanitize_enabled(spec.profile.sanitize),
        metrics=resolve_metrics(spec.profile.metrics) or False,
    )
    return pinned, profile_hash(pinned, spec.collect_digests)


def _cell(spec: JobSpec, exp_id: str, seed: int) -> Cell:
    return Cell(exp_id=exp_id, seed=seed, duration=spec.duration,
                warmup=spec.warmup).resolved()


def run_job(
    spec: JobSpec,
    jobs: int = 1,
    job_dir: PathLike = DEFAULT_JOB_DIR,
    cache: Optional[ResultCache] = None,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    on_event: Optional[EventFn] = None,
    stop_after: Optional[int] = None,
) -> Job:
    """Run (or transparently resume) the sweep job ``spec`` describes.

    Parameters
    ----------
    spec:
        The job identity; its digest names the job directory, so calling
        ``run_job`` twice with an equal spec resumes rather than restarts.
    jobs:
        Worker processes (1 = inline).  Not part of the job identity.
    job_dir:
        Root under which ``<job_id>/journal.jsonl`` lives.
    cache:
        Result cache for replay and storage; defaults to the standard
        :class:`ResultCache` location.  The orchestrator *requires* a
        cache — it is how resumed jobs rematerialize full results.
    retries, backoff_s:
        Worker-death retry budget and backoff base (see
        :class:`~repro.service.scheduler.CellScheduler`).
    on_event:
        Optional live-progress callback ``(kind, payload)``.
    stop_after:
        Stop scheduling after this many *fresh* cell executions and
        return an interrupted job — deterministic interruption for tests
        and the CI resume smoke (equivalent to a perfectly timed ^C).

    Returns the completed (or interrupted) :class:`Job` with outcomes in
    deterministic order: spec experiment order, allocation order within.
    """
    job = Job(spec=spec, directory=Path(job_dir) / spec.job_id)
    job.write_spec()
    if cache is None:
        cache = ResultCache()
    pinned, config = _pin(spec)
    journal = job.journal()
    progress = _Progress(job.progress_path, on_event)

    # ------------------------------------------------------------- replay
    records = journal.load()
    journaled: Dict[CellKey, Dict[str, Any]] = {}
    if records:
        head = records[0]
        if head.get("kind") != "job" or head.get("job_id") != spec.job_id:
            raise JournalError(
                f"{job.journal_path} belongs to job "
                f"{head.get('job_id')!r}, not {spec.job_id!r}"
            )
        if head.get("code") != code_version():
            raise JournalError(
                f"{job.journal_path} was written by a different source "
                "tree (code version mismatch); results would not be "
                "byte-comparable.  Start a fresh job or check out the "
                "original tree."
            )
        for record in records[1:]:
            if record.get("kind") == "cell":
                journaled[(record["exp"], int(record["seed"]))] = record
    else:
        journal.append({
            "kind": "job", "schema": 1, "job_id": spec.job_id,
            "spec": spec.to_dict(), "code": code_version(),
        })

    # ------------------------------------------------------------ schedule
    configs = {
        exp_id: _ConfigState(exp_id, spec.policy.initial_seeds())
        for exp_id in spec.experiments
    }
    scheduler = CellScheduler(
        profile=pinned, collect_digests=spec.collect_digests, jobs=jobs,
        retries=retries, backoff_s=backoff_s,
    )

    interrupted = {"flag": False}

    def on_sigint(signum: int, frame: Any) -> None:
        if interrupted["flag"]:
            # Second ^C: stop waiting for in-flight cells.
            scheduler.close(terminate=True)
            raise KeyboardInterrupt
        interrupted["flag"] = True
        progress.emit("interrupt", drain=scheduler.in_flight)

    def record_done(state: _ConfigState, seed: int, outcome: CellResult,
                    attempts: int, from_cache: bool) -> None:
        metric = cell_metric(outcome.result.table, _metric_spec(spec))
        state.done[seed] = outcome
        state.metrics[seed] = metric
        if not from_cache:
            cache.put(outcome, config)
        if (state.exp_id, seed) in journaled:
            # The durable record already exists: replay, don't re-journal.
            # (A cache-evicted journaled cell re-executes above but lands
            # here too — byte-identical by the determinism contract.)
            job.replayed += 1
            return
        job.executed += 1
        journal.append({
            "kind": "cell", "exp": state.exp_id, "seed": seed,
            "duration": outcome.cell.duration, "warmup": outcome.cell.warmup,
            "digest": outcome.digest, "metric": metric,
            "wall_s": round(outcome.wall_s, 4), "attempts": attempts,
            "cached": outcome.cached,
            "failed_checks": list(outcome.failed_checks),
        })
        progress.emit(
            "cell", exp=state.exp_id, seed=seed,
            wall_s=round(outcome.wall_s, 4), attempts=attempts,
            done=job.executed + job.replayed,
        )

    def feed(state: _ConfigState) -> None:
        """Submit every allocated-but-unstarted cell of one experiment."""
        for seed in state.allocated:
            key = (state.exp_id, seed)
            if seed in state.done or key in submitted:
                continue
            submitted.add(key)
            cell = _cell(spec, state.exp_id, seed)
            hit = cache.get(cell, config)
            if hit is not None:
                entry = journaled.get(key)
                attempts = int(entry["attempts"]) if entry else 1
                record_done(state, seed, hit, attempts, from_cache=True)
                continue
            scheduler.submit(key, cell)

    def advance(state: _ConfigState) -> None:
        """Run the policy whenever an allocation round completes."""
        while state.complete and not state.closed:
            more = spec.policy.next_seeds(state.metric_series())
            if not more:
                state.closed = True
                series = state.metric_series()
                reason = spec.policy.stop_reason(series)
                half = getattr(spec.policy, "half_width", lambda _: None)(series)
                journal.append({
                    "kind": "stop", "exp": state.exp_id,
                    "n": len(state.allocated), "reason": reason,
                    "half_width": half if half != float("inf") else None,
                })
                progress.emit("stop", exp=state.exp_id,
                              n=len(state.allocated), reason=reason)
                return
            state.allocated.extend(more)
            feed(state)

    submitted: set = set()
    previous_handler = signal.signal(signal.SIGINT, on_sigint)
    try:
        for state in configs.values():
            feed(state)
        for state in configs.values():
            advance(state)

        budget_hit = False
        while any(not s.closed for s in configs.values()):
            if stop_after is not None and job.executed >= stop_after:
                budget_hit = True
            halting = interrupted["flag"] or budget_hit
            if halting and scheduler.in_flight == 0:
                break  # queued cells are abandoned; the journal has the rest
            reaped = scheduler.reap(accept_new=not halting)
            for item in reaped:
                exp_id, seed = item.key
                record_done(configs[exp_id], seed, item.result,
                            item.attempts, from_cache=False)
                advance(configs[exp_id])
    except BaseException:
        scheduler.close(terminate=True)
        raise
    finally:
        signal.signal(signal.SIGINT, previous_handler)
        job.retries = scheduler.worker_retries
        scheduler.close()

    # ------------------------------------------------------------- finish
    open_configs = [s for s in configs.values() if not s.closed]
    if open_configs:
        job.status = "interrupted"
        journal.append({
            "kind": "interrupted",
            "done": job.executed + job.replayed,
            "open": sorted(s.exp_id for s in open_configs),
        })
    else:
        job.status = "complete"
    for exp_id in spec.experiments:
        state = configs[exp_id]
        for seed in state.allocated:
            if seed in state.done:
                job.outcomes.append(state.done[seed])
        if state.closed:
            series = state.metric_series()
            half = getattr(spec.policy, "half_width", lambda _: None)(series)
            job.stops[exp_id] = {
                "n": len(state.allocated),
                "half_width": half if half != float("inf") else None,
                "reason": spec.policy.stop_reason(series),
            }
    if job.status == "complete":
        journal.append({
            "kind": "complete", "cells": len(job.outcomes),
            "digest_set": job.digest_set(),
        })
        progress.emit("complete", cells=len(job.outcomes),
                      digest_set=job.digest_set())
    return job


def _metric_spec(spec: JobSpec) -> str:
    """The stopping metric the spec's policy targets ("total" for fixed)."""
    return getattr(spec.policy, "metric", "total")


def resume_job(
    job: Job,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
    on_event: Optional[EventFn] = None,
    stop_after: Optional[int] = None,
) -> Job:
    """Continue a previously created job from its journal.

    Thin wrapper: :func:`run_job` with the job's own spec and directory
    root — replay is automatic.
    """
    return run_job(
        job.spec, jobs=jobs, job_dir=job.directory.parent, cache=cache,
        retries=retries, backoff_s=backoff_s, on_event=on_event,
        stop_after=stop_after,
    )
