"""Durable sweep jobs: normalized spec, digest identity, on-disk layout.

A :class:`JobSpec` is the *identity* of a sweep: which experiments, under
which :class:`~repro.core.config.RunProfile`, with which
:class:`~repro.service.policy.SeedPolicy` and run bounds.  The spec is
normalized on construction and JSON round-trips losslessly, so its
canonical serialization can be hashed into a stable ``job_id`` — the key
``macaw-sim sweep --resume`` looks jobs up by.  Execution knobs (worker
count, cache directory) are deliberately *not* part of the spec: a job
resumed with a different ``--jobs`` is still the same job and must
produce the same digest set.

A :class:`Job` is the materialized handle: spec + directory + the
results accumulated so far.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.config import RunProfile, WarmStart
from repro.experiments.registry import get_experiment
from repro.obs.runtime import MetricsConfig
from repro.runner.cells import CellResult
from repro.service.journal import Journal, digest_set_hash
from repro.service.policy import SeedPolicy, policy_from_dict

__all__ = [
    "DEFAULT_JOB_DIR",
    "Job",
    "JobSpec",
    "find_job",
    "profile_from_dict",
    "profile_to_dict",
]

PathLike = Union[str, Path]

#: Default directory sweep jobs live under (sibling of .macaw_cache).
DEFAULT_JOB_DIR = ".macaw_jobs"


# ------------------------------------------------------------------ profile
def profile_to_dict(profile: RunProfile) -> Dict[str, Any]:
    """A JSON-safe dict capturing every field of ``profile``.

    Unlike :meth:`RunProfile.digest` (a one-way hash), this round-trips:
    :func:`profile_from_dict` reconstructs an equal profile, which is
    what lets a job spec live on disk across processes.
    """
    if profile.timing is None:
        timing: Optional[Dict[str, Any]] = None
    else:
        timing = {
            f.name: getattr(profile.timing, f.name)
            for f in fields(profile.timing) if f.init
        }
    if profile.metrics is None or profile.metrics is False:
        metrics: Any = profile.metrics
    else:
        metrics = {
            "interval": profile.metrics.interval,
            "capacity": profile.metrics.capacity,
        }
    return {
        "bitrate_bps": profile.bitrate_bps,
        "queue_capacity": profile.queue_capacity,
        "timing": timing,
        "grid_kwargs": [list(item) for item in profile.grid_kwargs],
        "trace": profile.trace,
        "sanitize": profile.sanitize,
        "metrics": metrics,
        "faults": None if profile.faults is None else profile.faults.to_dict(),
        "queue": profile.queue,
        "warm_start": None if profile.warm_start is None else {
            "at": profile.warm_start.at,
            "store": profile.warm_start.store,
            "digest": profile.warm_start.digest,
        },
    }


def profile_from_dict(payload: Mapping[str, Any]) -> RunProfile:
    """Inverse of :func:`profile_to_dict`."""
    timing = payload.get("timing")
    if timing is not None:
        from repro.mac.timing import MacTiming

        timing = MacTiming(**timing)
    metrics = payload.get("metrics")
    if isinstance(metrics, Mapping):
        metrics = MetricsConfig(**metrics)
    faults = payload.get("faults")
    if faults is not None:
        from repro.fault.schedule import FaultSchedule

        faults = FaultSchedule.from_dict(faults)
    warm = payload.get("warm_start")
    if warm is not None:
        warm = WarmStart(
            at=float(warm["at"]), store=str(warm["store"]),
            digest=warm.get("digest"),
        )
    return RunProfile(
        bitrate_bps=float(payload.get("bitrate_bps", 256_000.0)),
        queue_capacity=payload.get("queue_capacity"),
        timing=timing,
        grid_kwargs=[tuple(item) for item in payload.get("grid_kwargs", [])],
        trace=bool(payload.get("trace", False)),
        sanitize=payload.get("sanitize"),
        metrics=metrics,
        faults=faults,
        queue=payload.get("queue"),
        warm_start=warm,
    )


# -------------------------------------------------------------------- spec
@dataclass(frozen=True)
class JobSpec:
    """One sweep job's identity: experiments × policy × profile × bounds."""

    experiments: Tuple[str, ...]
    policy: SeedPolicy
    profile: RunProfile = field(default_factory=RunProfile)
    duration: Optional[float] = None
    warmup: Optional[float] = None
    #: Capture per-cell trace digests (the resume-equality contract);
    #: folded into the cell cache key exactly as ``run_cells`` does.
    collect_digests: bool = True

    def __post_init__(self) -> None:
        experiments = tuple(str(e) for e in self.experiments)
        if not experiments:
            raise ValueError("a job needs at least one experiment")
        if len(set(experiments)) != len(experiments):
            raise ValueError(f"duplicate experiments in {experiments!r}")
        for exp_id in experiments:
            get_experiment(exp_id)  # raises KeyError on unknown ids
        object.__setattr__(self, "experiments", experiments)
        if not isinstance(self.policy, SeedPolicy):
            raise TypeError(f"policy expects a SeedPolicy, got {self.policy!r}")
        if not isinstance(self.profile, RunProfile):
            raise TypeError(f"profile expects a RunProfile, got {self.profile!r}")
        if (self.duration is not None and self.warmup is not None
                and self.warmup >= self.duration):
            raise ValueError(
                f"warmup {self.warmup} must precede duration {self.duration}"
            )

    def but(self, **changes: Any) -> "JobSpec":
        return replace(self, **changes)

    # ------------------------------------------------------------ identity
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": 1,
            "experiments": list(self.experiments),
            "policy": self.policy.to_dict(),
            "profile": profile_to_dict(self.profile),
            "duration": self.duration,
            "warmup": self.warmup,
            "collect_digests": self.collect_digests,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        return cls(
            experiments=tuple(payload["experiments"]),
            policy=policy_from_dict(payload["policy"]),
            profile=profile_from_dict(payload["profile"]),
            duration=payload.get("duration"),
            warmup=payload.get("warmup"),
            collect_digests=bool(payload.get("collect_digests", True)),
        )

    def digest(self) -> str:
        """Stable content hash over the canonical spec serialization."""
        blob = json.dumps(self.to_dict(), sort_keys=True, default=repr)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @property
    def job_id(self) -> str:
        """The short digest prefix jobs are filed (and resumed) under."""
        return self.digest()[:12]


# --------------------------------------------------------------------- job
@dataclass
class Job:
    """A materialized sweep job: spec, directory, accumulated outcomes."""

    spec: JobSpec
    directory: Path
    #: "complete", "interrupted", or "running".
    status: str = "running"
    #: Per-cell outcomes in deterministic report order (spec experiment
    #: order outermost, allocation order within each experiment).
    outcomes: List[CellResult] = field(default_factory=list)
    #: Cells executed fresh this invocation (not journal/cache replays).
    executed: int = 0
    #: Cells served from the journal + cache/journal replay.
    replayed: int = 0
    #: Worker-death retries performed this invocation.
    retries: int = 0
    #: Per-experiment stop decisions: exp_id -> {"n", "half_width", "reason"}.
    stops: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    @property
    def interrupted(self) -> bool:
        return self.status == "interrupted"

    @property
    def journal_path(self) -> Path:
        return self.directory / "journal.jsonl"

    @property
    def spec_path(self) -> Path:
        return self.directory / "spec.json"

    @property
    def progress_path(self) -> Path:
        return self.directory / "progress.jsonl"

    def journal(self) -> Journal:
        return Journal(self.journal_path)

    def digest_set(self) -> str:
        """Order-independent fingerprint over the outcomes' trace digests."""
        return digest_set_hash([o.digest for o in self.outcomes])

    def write_spec(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(self.spec.to_dict(), sort_keys=True, indent=2)
        self.spec_path.write_text(blob + "\n", encoding="utf-8")

    @classmethod
    def load(cls, directory: PathLike) -> "Job":
        """Rehydrate a job handle from ``<dir>/spec.json`` (no results)."""
        directory = Path(directory)
        try:
            payload = json.loads(
                (directory / "spec.json").read_text(encoding="utf-8")
            )
        except FileNotFoundError:
            raise FileNotFoundError(
                f"no job spec at {directory / 'spec.json'}"
            ) from None
        return cls(spec=JobSpec.from_dict(payload), directory=directory)


def find_job(job_ref: str, job_dir: PathLike = DEFAULT_JOB_DIR) -> Job:
    """Resolve ``--resume JOB``: an id (or unambiguous prefix) under
    ``job_dir``, or a direct path to a job directory."""
    as_path = Path(job_ref)
    if as_path.is_dir() and (as_path / "spec.json").exists():
        return Job.load(as_path)
    root = Path(job_dir)
    matches = sorted(
        entry for entry in (root.iterdir() if root.is_dir() else [])
        if entry.is_dir() and entry.name.startswith(job_ref)
        and (entry / "spec.json").exists()
    )
    if not matches:
        raise FileNotFoundError(f"no job matching {job_ref!r} under {root}/")
    if len(matches) > 1:
        names = ", ".join(entry.name for entry in matches)
        raise ValueError(f"ambiguous job {job_ref!r}: matches {names}")
    return Job.load(matches[0])
