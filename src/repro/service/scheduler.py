"""Retrying cell scheduler: fan cells to workers, survive worker death.

The plain :func:`repro.runner.run_cells` pool assumes every worker lives
to return its result — fine for a one-shot sweep, wrong for a
long-running job where an OOM kill or a node reaper must not sink the
whole campaign.  This scheduler runs **one process per cell** (reusing
:func:`repro.runner.parallel.execute_cell`, so results are byte-identical
to ``run_cells``), watches child exit codes, and re-dispatches a cell
whose worker died without reporting — with exponential backoff, up to a
retry cap.  An exception *inside* the cell (deterministic: it would fail
every retry) is not retried; it surfaces immediately.

Cells are submitted incrementally (the adaptive seed policy extends a
job mid-flight) and reaped in completion order; determinism is the
caller's concern — every cell is an independent seeded universe, so
arrival order never affects results, and the orchestrator journals and
re-orders them by identity.

``jobs=1`` executes inline in the calling process: no subprocesses, no
retry machinery (there is no worker to die), identical results.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.config import RunProfile
from repro.runner.cells import Cell, CellResult
from repro.runner.parallel import _preferred_context, execute_cell

__all__ = [
    "ATTEMPT_ENV",
    "DEFAULT_BACKOFF_S",
    "DEFAULT_RETRIES",
    "CellFailure",
    "CellScheduler",
    "Reaped",
    "WorkerDeath",
]

#: Environment variable naming the dispatch attempt (1-based) inside a
#: worker process — observable by fault-injection tests that crash a
#: cell's first attempt only.
ATTEMPT_ENV = "REPRO_SERVICE_ATTEMPT"

#: Default worker-death retries per cell before the job fails.
DEFAULT_RETRIES = 2

#: Default backoff base: retry N waits backoff * 2**(N-1) wall seconds.
DEFAULT_BACKOFF_S = 0.5


class WorkerDeath(RuntimeError):
    """A cell's worker died on every allowed attempt."""


class CellFailure(RuntimeError):
    """A cell raised inside the experiment (deterministic; not retried)."""


def _child_main(
    conn: Any, cell: Cell, collect_digest: bool, profile: RunProfile,
    attempt: int,
) -> None:
    """Worker body: run one cell, ship the result, exit.

    SIGINT is ignored so a terminal ^C (delivered to the whole process
    group) interrupts only the *scheduler*, which then drains in-flight
    cells instead of losing them.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    os.environ[ATTEMPT_ENV] = str(attempt)
    try:
        result = execute_cell(cell, collect_digest, profile)
    except BaseException as exc:  # deterministic failure: report, don't die
        import traceback

        conn.send(("error", f"{type(exc).__name__}: {exc}\n"
                   f"{traceback.format_exc()}"))
        conn.close()
        return
    conn.send(("ok", result))
    conn.close()


@dataclass
class _InFlight:
    key: Any
    cell: Cell
    attempt: int
    process: Any
    conn: Any
    payload: Optional[Tuple[str, Any]] = None


@dataclass
class _Queued:
    key: Any
    cell: Cell
    attempt: int
    #: Earliest wall time this dispatch may happen (retry backoff).
    not_before: float = 0.0


@dataclass
class Reaped:
    """One completed cell handed back to the orchestrator."""

    key: Any
    result: CellResult
    attempts: int


@dataclass
class CellScheduler:
    """Dispatch cells to (at most ``jobs``) workers; reap as they finish."""

    profile: RunProfile
    collect_digests: bool = True
    jobs: int = 1
    retries: int = DEFAULT_RETRIES
    backoff_s: float = DEFAULT_BACKOFF_S

    _queue: List[_Queued] = field(default_factory=list)
    _running: List[_InFlight] = field(default_factory=list)
    _retried: int = 0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries!r}")
        self._ctx = _preferred_context() if self.jobs > 1 else None

    # ------------------------------------------------------------- submit
    def submit(self, key: Any, cell: Cell) -> None:
        """Enqueue one cell; dispatch happens inside :meth:`reap`."""
        self._queue.append(_Queued(key=key, cell=cell, attempt=1))

    @property
    def outstanding(self) -> int:
        """Cells submitted but not yet reaped."""
        return len(self._queue) + len(self._running)

    @property
    def in_flight(self) -> int:
        """Cells currently running in a worker (the drain set: queued
        cells are never dispatched once draining starts)."""
        return len(self._running)

    @property
    def worker_retries(self) -> int:
        """Worker-death retries performed so far."""
        return self._retried

    # --------------------------------------------------------------- reap
    def reap(self, accept_new: bool = True,
             timeout: float = 0.2) -> List[Reaped]:
        """Dispatch what fits, wait briefly, return finished cells.

        ``accept_new=False`` stops dispatching queued cells (the SIGINT
        drain: in-flight workers finish, the queue stays put).  Returns
        completed cells in completion order; empty when nothing finished
        within ``timeout``.
        """
        if self.jobs == 1:
            return self._reap_inline(accept_new)
        self._dispatch(accept_new)
        if not self._running:
            if self._queue and accept_new:
                # Everything queued is backing off: wait the shorter of
                # the poll timeout and the earliest retry slot.
                now = time.monotonic()  # repro-lint: allow=REPRO102 (retry backoff is wall time)
                earliest = min(task.not_before for task in self._queue)
                time.sleep(min(timeout, max(0.0, earliest - now)))
            return []
        conns = [flight.conn for flight in self._running]
        multiprocessing.connection.wait(conns, timeout)
        done: List[Reaped] = []
        still: List[_InFlight] = []
        for flight in self._running:
            outcome = self._collect(flight)
            if outcome is None:
                still.append(flight)
            elif outcome:
                done.extend(outcome)
        self._running = still
        return done

    def _reap_inline(self, accept_new: bool) -> List[Reaped]:
        """jobs=1: run the next queued cell in this process."""
        if not accept_new or not self._queue:
            return []
        task = self._queue.pop(0)
        os.environ[ATTEMPT_ENV] = str(task.attempt)
        try:
            result = execute_cell(task.cell, self.collect_digests, self.profile)
        finally:
            os.environ.pop(ATTEMPT_ENV, None)
        return [Reaped(key=task.key, result=result, attempts=task.attempt)]

    def _dispatch(self, accept_new: bool) -> None:
        if not accept_new:
            return
        now = time.monotonic()  # repro-lint: allow=REPRO102 (retry backoff is wall time)
        ready = [t for t in self._queue if t.not_before <= now]
        while ready and len(self._running) < self.jobs:
            task = ready.pop(0)
            self._queue.remove(task)
            parent_conn, child_conn = self._ctx.Pipe(duplex=False)
            process = self._ctx.Process(
                target=_child_main,
                args=(child_conn, task.cell, self.collect_digests,
                      self.profile, task.attempt),
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._running.append(_InFlight(
                key=task.key, cell=task.cell, attempt=task.attempt,
                process=process, conn=parent_conn,
            ))

    def _collect(self, flight: _InFlight) -> Optional[List[Reaped]]:
        """Outcome of one in-flight worker: None = still running,
        [] = retried after death, [Reaped] = done."""
        if flight.payload is None and flight.conn.poll():
            try:
                flight.payload = flight.conn.recv()
            except (EOFError, OSError):
                flight.payload = None  # died mid-send: treat as death below
        if flight.payload is not None:
            kind, value = flight.payload
            flight.process.join()
            flight.conn.close()
            if kind == "error":
                raise CellFailure(
                    f"cell ({flight.cell.exp_id}, seed {flight.cell.seed}) "
                    f"failed deterministically:\n{value}"
                )
            return [Reaped(key=flight.key, result=value,
                           attempts=flight.attempt)]
        if flight.process.is_alive():
            return None
        # Dead without a result: worker death.  Retry with backoff.
        flight.process.join()
        flight.conn.close()
        if flight.attempt > self.retries:
            raise WorkerDeath(
                f"worker for cell ({flight.cell.exp_id}, seed "
                f"{flight.cell.seed}) died (exit code "
                f"{flight.process.exitcode}) on attempt {flight.attempt}; "
                f"retry budget ({self.retries}) exhausted"
            )
        delay = self.backoff_s * (2 ** (flight.attempt - 1))
        self._retried += 1
        self._queue.append(_Queued(
            key=flight.key, cell=flight.cell, attempt=flight.attempt + 1,
            not_before=time.monotonic() + delay,  # repro-lint: allow=REPRO102 (retry backoff is wall time)
        ))
        return []

    # -------------------------------------------------------------- close
    def drain(self) -> List[Reaped]:
        """Finish every in-flight worker (no new dispatches); reap all."""
        done: List[Reaped] = []
        while self._running:
            done.extend(self.reap(accept_new=False, timeout=0.2))
        return done

    def close(self, terminate: bool = False) -> None:
        """Release workers.  ``terminate=True`` kills in-flight cells."""
        for flight in self._running:
            if terminate:
                flight.process.terminate()
            flight.process.join()
            flight.conn.close()
        self._running = []
        self._queue = []
