"""Resumable sweep orchestration: jobs, journals, seed policies, retry.

The service layer turns one-shot :func:`repro.runner.run_cells` sweeps
into durable *jobs*:

* :class:`JobSpec` — the normalized, digest-keyed identity of a sweep
  (experiments × :class:`~repro.service.policy.SeedPolicy` ×
  :class:`~repro.core.config.RunProfile` × bounds);
* :class:`Journal` — the append-only, digest-chained JSONL record of
  completed cells that makes ``macaw-sim sweep --resume`` replay
  instantly and continue byte-identically;
* :class:`CellScheduler` — per-cell worker processes with
  retry-with-backoff on worker death;
* :func:`run_job` / :func:`resume_job` — the orchestrator tying them
  together, with graceful SIGINT drain.

Most callers want the :mod:`repro.api` facade (``sweep()``); this
package is the engine underneath.
"""

from repro.service.job import (
    DEFAULT_JOB_DIR,
    Job,
    JobSpec,
    find_job,
    profile_from_dict,
    profile_to_dict,
)
from repro.service.journal import (
    Journal,
    JournalError,
    chain_hash,
    digest_set_hash,
)
from repro.service.orchestrator import resume_job, run_job
from repro.service.policy import (
    AdaptiveSeeds,
    FixedSeeds,
    SeedPolicy,
    cell_metric,
    ci_half_width,
    policy_from_dict,
    t_critical,
)
from repro.service.scheduler import (
    ATTEMPT_ENV,
    DEFAULT_BACKOFF_S,
    DEFAULT_RETRIES,
    CellFailure,
    CellScheduler,
    WorkerDeath,
)

__all__ = [
    "ATTEMPT_ENV",
    "DEFAULT_BACKOFF_S",
    "DEFAULT_RETRIES",
    "AdaptiveSeeds",
    "CellFailure",
    "CellScheduler",
    "DEFAULT_JOB_DIR",
    "FixedSeeds",
    "Job",
    "JobSpec",
    "Journal",
    "JournalError",
    "SeedPolicy",
    "WorkerDeath",
    "cell_metric",
    "chain_hash",
    "ci_half_width",
    "digest_set_hash",
    "find_job",
    "policy_from_dict",
    "profile_from_dict",
    "profile_to_dict",
    "resume_job",
    "run_job",
    "t_critical",
]
