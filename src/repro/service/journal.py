"""Append-only, digest-chained JSONL job journal.

One journal records one sweep job's durable state: a header naming the
job spec, then one record per completed cell (identity, trace digest,
metric value, timing), policy stop decisions, and a terminal
``complete`` or ``interrupted`` record.  Records are JSON objects, one
per line, each carrying ``prev`` — the SHA-256 of the previous line's
exact bytes — so any tampering, truncation-in-the-middle or interleaved
write breaks the chain and is detected at load time.

Crash tolerance is by construction: every append is a single
``write + flush + fsync`` of one canonical line, so a killed sweep
leaves at most one torn *final* line, which :meth:`Journal.load`
discards (a torn line cannot be chain-consistent *and* complete).  A
resumed sweep replays the surviving records and continues appending to
the same file.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

__all__ = ["GENESIS", "Journal", "JournalError", "chain_hash",
           "digest_set_hash"]

PathLike = Union[str, Path]

#: ``prev`` value of the first record (nothing before it).
GENESIS = ""


class JournalError(RuntimeError):
    """A journal failed chain verification or carries a foreign job."""


def _canonical(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def chain_hash(line: str) -> str:
    """The chain link value of one serialized journal line."""
    return hashlib.sha256(line.encode("utf-8")).hexdigest()


class Journal:
    """One job's append-only record stream at ``path``."""

    def __init__(self, path: PathLike) -> None:
        self.path = Path(path)
        #: Chain hash of the last durable line (GENESIS when empty).
        self._tip = GENESIS
        self._count = 0

    # ----------------------------------------------------------------- read
    def load(self) -> List[Dict[str, Any]]:
        """Parse and verify every durable record; resets the append tip.

        A torn final line (crash mid-append) is dropped silently; any
        other chain break raises :class:`JournalError`.
        """
        records: List[Dict[str, Any]] = []
        self._tip = GENESIS
        self._count = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return records
        lines = text.split("\n")
        # A well-formed file ends with "\n": the final split element is "".
        for number, line in enumerate(lines, start=1):
            if not line:
                continue
            torn_tail = number == len(lines)  # no trailing newline
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
            except ValueError as exc:
                if torn_tail:
                    break  # crash mid-append: drop the torn line
                raise JournalError(
                    f"{self.path}:{number}: unparseable record: {exc}"
                ) from None
            if record.get("prev") != self._tip:
                if torn_tail:
                    break
                raise JournalError(
                    f"{self.path}:{number}: chain break (expected prev="
                    f"{self._tip[:12] or 'GENESIS'!r})"
                )
            records.append(record)
            self._tip = chain_hash(line)
            self._count += 1
        return records

    def records(self) -> Iterator[Dict[str, Any]]:
        """Iterate the verified records (convenience over :meth:`load`)."""
        return iter(self.load())

    # ---------------------------------------------------------------- write
    def append(self, record: Dict[str, Any]) -> Dict[str, Any]:
        """Durably append one record, linking it into the chain.

        The ``prev`` field is filled in here; callers pass plain data.
        Returns the record as written.
        """
        if "prev" in record:
            raise ValueError("'prev' is journal-managed; do not set it")
        linked = dict(record)
        linked["prev"] = self._tip
        line = _canonical(linked)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        self._tip = chain_hash(line)
        self._count += 1
        return linked

    def __len__(self) -> int:
        return self._count

    @property
    def tip(self) -> str:
        return self._tip


def digest_set_hash(digests: List[Optional[str]]) -> str:
    """Order-independent fingerprint of a sweep's per-cell digest set.

    Sorted before hashing, so an interrupted-then-resumed sweep (whose
    completion order differs) fingerprints identically to an
    uninterrupted one.  ``None`` digests (digest collection off)
    contribute a fixed marker.
    """
    hasher = hashlib.sha256()
    for digest in sorted(d if d is not None else "-" for d in digests):
        hasher.update(digest.encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()
