"""Command-line interface: run reproduced experiments.

Usage::

    macaw-sim list
    macaw-sim table5
    macaw-sim table5 --seed 3 --duration 200
    macaw-sim all --duration 200
    macaw-sim all --seeds 0,1,2,3 --jobs 4
    macaw-sim table9 --seeds 8 --jobs 4 --cache --digest
    macaw-sim table2 --metrics --seeds 3 --metrics-out runs/
    macaw-sim table2 --chaos churn-light
    macaw-sim verify-trace table5
    macaw-sim verify-trace all
    macaw-sim chaos --list
    macaw-sim chaos noise-burst --duration 300 --metrics
    macaw-sim analyze src/repro
    macaw-sim analyze src/repro --format sarif --output analysis.sarif
    macaw-sim snapshot table2 --at 50 --store snaps/
    macaw-sim table2 --seeds 0,1,2,3 --warm-start snaps/@50
    macaw-sim sweep table2 table9 --seeds 0,1,2,3 --jobs 4
    macaw-sim sweep table2 --adaptive --epsilon 2.0 --max-seeds 16
    macaw-sim sweep --resume 3f9c2a1b04de
    macaw-sim sweep --list
    macaw-sim diff table2 fig1 --duration 60 --warmup 10
    macaw-sim diff table2 --full --seeds 0,1
    macaw-sim fuzz --budget 25 --seed from-run-id

``--seeds`` accepts either a count (``--seeds 4`` runs seed..seed+3) or an
explicit comma-separated list (``--seeds 0,1,2,3``).  ``--jobs N`` fans the
experiment × seed grid out over N worker processes via
:mod:`repro.runner`; results are byte-identical to a serial run.
``--cache`` memoizes finished cells on disk (keyed by experiment, seed,
bounds, runtime config and a source-tree content hash), and ``--digest``
prints each cell's combined trace digest — the determinism fingerprint.

``--metrics`` instruments every run with the :mod:`repro.obs` probe
catalogue (sampled at ``--metrics-interval`` simulated seconds) without
perturbing determinism; ``--metrics-out DIR`` writes one JSONL file per
cell, ready for ``python -m repro.obs.aggregate`` to band across seeds.

``verify-trace`` runs experiments with the protocol conformance sanitizer
enabled: every station's trace is replayed through the statechart and
dialogue checker (:mod:`repro.verify.conformance`) and any violation is
reported and fails the command.

``snapshot`` pre-warms a keyed snapshot store (one warm-up simulation per
experiment variant, captured at ``--at`` simulated seconds), and
``--warm-start STORE[@T]`` makes every subsequent run fast-forward its
warm-up through that store via :mod:`repro.snapshot` — results are
byte-identical to cold runs, only the repeated warm-up work disappears.

``sweep`` runs the grid as a durable job (:mod:`repro.service`): the
spec is digest-keyed, completed cells append to a chained journal, and
worker death retries with backoff.  ^C drains and journals in-flight
cells and exits 130; ``--resume JOB`` (or re-running the same spec)
replays the journal + cache byte-identically and continues.
``--adaptive --epsilon E`` switches from fixed seeds to sequential
stopping: per experiment, seeds are added until the target metric's CI
half-width drops below E (or ``--max-seeds`` caps it).

``--faults spec.json`` / ``--chaos PRESET`` inject a
:class:`~repro.fault.schedule.FaultSchedule` into every run (link flaps,
noise bursts, station churn — :mod:`repro.fault`); same-seed runs stay
deterministic.  The ``chaos`` subcommand instead runs the degradation
benchmark: clean vs faulted six-pad cells per protocol, reporting how
much throughput and delay MACAW/MACA/CSMA retain under the schedule.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional

from repro.experiments.base import SeedSweepResult
from repro.experiments.registry import all_experiments, experiment_ids, get_experiment


def _parse_seeds(spec: str, base: int) -> List[int]:
    """Seed list from a ``--seeds`` value: a count, or a comma-joined list.

    Raises ValueError on a malformed value; ``main`` reports it and
    exits 2 like every other usage error.
    """
    if "," in spec:
        seeds = [int(item) for item in spec.split(",") if item.strip()]
        deduped = list(dict.fromkeys(seeds))
        if len(deduped) != len(seeds):
            # Silent double-counting would skew sweep means and pass
            # rates; keep first occurrences, preserve order, say so once.
            print(
                f"macaw-sim: --seeds list {spec!r} contains duplicates; "
                f"running each seed once ({len(deduped)} unique)",
                file=sys.stderr,
            )
        return deduped
    count = int(spec)
    if count < 1:
        raise ValueError(f"--seeds count must be >= 1, got {count}")
    return list(range(base, base + count))


def _add_run_options(parser: argparse.ArgumentParser, seeds: bool = True) -> None:
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    if seeds:
        parser.add_argument(
            "--seeds", default="1", metavar="N|A,B,...",
            help="run N seeds (seed..seed+N-1) or an explicit comma-separated "
            "seed list; multiple seeds report means + pass rates",
        )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds per run (default: experiment-specific)",
    )
    parser.add_argument(
        "--warmup", type=float, default=None,
        help="seconds excluded from throughput (default 50, as in the paper)",
    )
    parser.add_argument(
        "--no-paper", action="store_true",
        help="hide the paper's reference columns",
    )


def _parse_metrics_interval(spec: str) -> float:
    """Sampling interval from a ``--metrics-interval`` value.

    Raises ValueError (reported as exit 2, like ``--seeds``) on anything
    that is not a positive number.
    """
    try:
        interval = float(spec)
    except ValueError:
        raise ValueError(
            f"--metrics-interval must be a positive number of seconds, got {spec!r}"
        ) from None
    if interval <= 0 or interval != interval or interval == float("inf"):
        raise ValueError(
            f"--metrics-interval must be a positive number of seconds, got {spec!r}"
        )
    return interval


def _add_runner_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the experiment × seed grid (default 1)",
    )
    parser.add_argument(
        "--digest", action="store_true",
        help="print each run's combined trace digest (forces tracing on)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="memoize finished runs on disk (.macaw_cache or $MACAW_CACHE_DIR)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache directory (implies --cache)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="instrument runs with the repro.obs probe catalogue "
        "(per-station backoff/queue/dwell, channel busy fraction, "
        "per-stream load); determinism-neutral",
    )
    parser.add_argument(
        "--metrics-interval", default="1.0", metavar="SECONDS",
        help="sampling cadence in simulated seconds (default 1.0)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="DIR",
        help="write one metrics JSONL file per cell into DIR "
        "(implies --metrics; aggregate sweeps with "
        "'python -m repro.obs.aggregate DIR/*.jsonl')",
    )
    parser.add_argument(
        "--queue", default=None, metavar="BACKEND",
        help="event-queue backend: 'heap' (default), 'wheel', or "
        "'wheel:WIDTH' with an explicit bucket width in seconds; "
        "results are byte-identical per seed, only speed differs "
        "($REPRO_QUEUE sets the ambient default)",
    )
    parser.add_argument(
        "--warm-start", default=None, metavar="STORE[@T]",
        help="fast-forward every run's warm-up through the snapshot "
        "store at STORE, branching at T simulated seconds (default 50); "
        "missing snapshots are created on first use ('macaw-sim "
        "snapshot' pre-warms a store).  Results are byte-identical to "
        "cold runs",
    )
    _add_fault_options(parser)


def _parse_warm_start(spec: str):
    """A :class:`WarmStart` from a ``--warm-start STORE[@T]`` value."""
    store, _, at_text = spec.partition("@")
    if not store:
        raise ValueError(f"--warm-start needs a store directory, got {spec!r}")
    at = 50.0
    if at_text:
        try:
            at = float(at_text)
        except ValueError:
            raise ValueError(
                f"--warm-start time must be a number, got {at_text!r}"
            ) from None
    if at <= 0:
        raise ValueError(f"--warm-start time must be > 0, got {at!r}")
    from repro.core.config import WarmStart
    from repro.snapshot import store_digest

    return WarmStart(at=at, store=store, digest=store_digest(store))


def _add_fault_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--faults", default=None, metavar="SPEC.json",
        help="inject the fault schedule from a JSON spec into every run "
        "(see repro.fault; deterministic per seed)",
    )
    parser.add_argument(
        "--chaos", default=None, metavar="PRESET",
        help="inject a named chaos preset ('macaw-sim chaos --list' "
        "shows them); mutually exclusive with --faults",
    )


def _load_schedule(faults_path: Optional[str], chaos_name: Optional[str]):
    """The fault schedule the flags ask for, or None.

    Raises ValueError on conflicting flags, unknown presets, or an
    unreadable/invalid spec file — reported as exit 2 by the callers.
    """
    if faults_path is not None and chaos_name is not None:
        raise ValueError("--faults and --chaos are mutually exclusive")
    if chaos_name is not None:
        from repro.fault.presets import get_preset

        return get_preset(chaos_name)
    if faults_path is not None:
        from repro.fault import FaultSchedule

        try:
            return FaultSchedule.from_file(faults_path)
        except OSError as exc:
            raise ValueError(f"cannot read --faults spec: {exc}") from None
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="macaw-sim",
        description="MACAW (SIGCOMM '94) reproduction: run the paper's experiments.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', 'list', or 'verify-trace'",
    )
    _add_run_options(parser)
    _add_runner_options(parser)
    return parser


def _resolve_experiments(selector: str) -> Optional[list]:
    """Experiments named by ``selector`` ('all' or an id); None if unknown."""
    if selector == "all":
        return all_experiments()
    try:
        return [get_experiment(selector)]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return None


def _cmd_verify_trace(argv: List[str]) -> int:
    """Run experiments under the conformance sanitizer; nonzero on violations."""
    from repro.verify.conformance import ConformanceError
    from repro.verify.runtime import sanitized

    parser = argparse.ArgumentParser(
        prog="macaw-sim verify-trace",
        description="Replay experiment traces through the protocol "
        "conformance sanitizer.",
    )
    parser.add_argument(
        "experiment", help="experiment id (see 'list'), or 'all'",
    )
    _add_run_options(parser, seeds=False)
    args = parser.parse_args(argv)

    experiments = _resolve_experiments(args.experiment)
    if experiments is None:
        return 2

    clean = True
    for exp in experiments:
        with sanitized(True) as stats:
            try:
                exp.run(seed=args.seed, duration=args.duration, warmup=args.warmup)
            except ConformanceError as exc:
                clean = False
                print(f"{exp.spec.exp_id:24} CONFORMANCE VIOLATIONS")
                print(exc.report.render())
                continue
        print(
            f"{exp.spec.exp_id:24} OK "
            f"({stats.records} trace records, {stats.runs} scenario runs)"
        )
    return 0 if clean else 1


def _cmd_chaos(argv: List[str]) -> int:
    """Degradation benchmark: clean vs faulted runs per protocol."""
    parser = argparse.ArgumentParser(
        prog="macaw-sim chaos",
        description="Compare protocol throughput/delay with and without a "
        "fault schedule (six-pad cell, Figure 3 topology).",
    )
    parser.add_argument(
        "preset", nargs="?", default=None,
        help="chaos preset name (see --list); or use --faults SPEC.json",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC.json",
        help="fault schedule from a JSON spec instead of a preset",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the known presets and exit",
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument(
        "--duration", type=float, default=300.0,
        help="simulated seconds per run (default 300)",
    )
    parser.add_argument(
        "--warmup", type=float, default=50.0,
        help="seconds excluded from measurements (default 50)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="instrument the faulted runs (fault.* probes included)",
    )
    parser.add_argument(
        "--metrics-interval", default="1.0", metavar="SECONDS",
        help="sampling cadence in simulated seconds (default 1.0)",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="DIR",
        help="write the faulted runs' metrics JSONL into DIR "
        "(implies --metrics)",
    )
    args = parser.parse_args(argv)

    from repro.fault.presets import preset_names

    if args.list:
        for name in preset_names():
            print(name)
        return 0
    try:
        metrics_interval = _parse_metrics_interval(args.metrics_interval)
        schedule = _load_schedule(args.faults, args.preset)
    except ValueError as exc:
        print(f"macaw-sim: {exc}", file=sys.stderr)
        return 2
    if schedule is None:
        print(
            f"macaw-sim: chaos needs a preset ({', '.join(preset_names())}) "
            "or --faults SPEC.json",
            file=sys.stderr,
        )
        return 2
    if args.warmup >= args.duration:
        print("macaw-sim: --warmup must precede --duration", file=sys.stderr)
        return 2
    metrics_on = args.metrics or args.metrics_out is not None

    from repro.fault.report import run_degradation

    report = run_degradation(
        schedule,
        seed=args.seed,
        duration=args.duration,
        warmup=args.warmup,
        metrics=metrics_interval if metrics_on else None,
    )
    print(report.render())
    if args.metrics_out is not None and report.metrics:
        from pathlib import Path

        from repro.obs.export import write_jsonl

        directory = Path(args.metrics_out)
        directory.mkdir(parents=True, exist_ok=True)
        for protocol, dump in report.metrics.items():
            path = directory / f"chaos_{protocol}_seed{args.seed}.metrics.jsonl"
            write_jsonl(path, [dump], meta={
                "exp": f"chaos:{args.preset or args.faults}",
                "seed": args.seed,
                "duration": args.duration,
                "interval": metrics_interval,
            })
        print(f"metrics: {len(report.metrics)} faulted runs -> {directory}/")
    return 0


def _cmd_snapshot(argv: List[str]) -> int:
    """Pre-warm a snapshot store: one warm-up per experiment variant.

    Runs the selected experiments with a warm-start profile pointed at
    ``--store``; every scenario variant a cell builds lands one keyed
    ``*.snap`` file at ``--at`` simulated seconds.  Later sweeps passing
    ``--warm-start STORE[@T]`` then restore instead of re-simulating the
    warm-up.
    """
    parser = argparse.ArgumentParser(
        prog="macaw-sim snapshot",
        description="Capture warm-up snapshots for experiments into a "
        "keyed store (see --warm-start).",
    )
    parser.add_argument(
        "experiment", help="experiment id (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--at", type=float, default=50.0, metavar="T",
        help="simulated seconds to capture at (default 50, the paper's "
        "warm-up horizon)",
    )
    parser.add_argument(
        "--store", default=".macaw_snapshots", metavar="DIR",
        help="snapshot store directory (default .macaw_snapshots)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument(
        "--seeds", default="1", metavar="N|A,B,...",
        help="seed count or explicit comma-separated list (as for runs)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds per warming run (default: --at + 10)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (atomic store writes make this safe)",
    )
    parser.add_argument(
        "--queue", default=None, metavar="BACKEND",
        help="event-queue backend for the warming runs",
    )
    _add_fault_options(parser)
    args = parser.parse_args(argv)

    experiments = _resolve_experiments(args.experiment)
    if experiments is None:
        return 2
    try:
        seeds = _parse_seeds(args.seeds, args.seed)
        schedule = _load_schedule(args.faults, args.chaos)
        if args.at <= 0:
            raise ValueError(f"--at must be > 0, got {args.at!r}")
    except ValueError as exc:
        print(f"macaw-sim: {exc}", file=sys.stderr)
        return 2
    duration = args.duration if args.duration is not None else args.at + 10.0
    if duration <= args.at:
        print("macaw-sim: --duration must exceed --at", file=sys.stderr)
        return 2

    from pathlib import Path

    from repro.core.config import RunProfile, WarmStart
    from repro.runner import expand_cells, run_cells

    try:
        profile = RunProfile(
            faults=schedule,
            queue=args.queue,
            # Warm traced: the snapshot then carries the t<T records a
            # --digest or sanitized sweep needs, and warm_key treats
            # "traced however it was forced" as one key, so this store
            # serves traced and digest-collecting runs alike.  Untraced
            # sweeps warm their own (cheaper) snapshots on first use.
            trace=True,
            warm_start=WarmStart(at=args.at, store=args.store),
        )
    except ValueError as exc:
        print(f"macaw-sim: {exc}", file=sys.stderr)
        return 2

    started = time.perf_counter()  # repro-lint: allow=REPRO102 (wall-time report)
    cells = expand_cells(
        [exp.spec.exp_id for exp in experiments], seeds,
        duration=duration, warmup=0.0,
    )
    run_cells(cells, jobs=args.jobs, profile=profile)
    elapsed = time.perf_counter() - started  # repro-lint: allow=REPRO102

    store = Path(args.store)
    snaps = sorted(store.glob("*.snap")) if store.is_dir() else []
    print(f"{len(snaps)} snapshot(s) in {store}/ at t={args.at:g} "
          f"({len(cells)} warming cells, {elapsed:.1f}s wall)")
    for snap in snaps:
        print(f"  {snap.name}")
    return 0


def _cmd_sweep(argv: List[str]) -> int:
    """Durable, resumable sweep jobs (the repro.service orchestrator).

    A sweep is journaled under ``--job-dir/<job_id>/``: every completed
    cell appends to a digest-chained JSONL journal, so ``--resume JOB``
    (or simply re-running the same spec) replays completed cells from
    the journal + result cache and continues byte-identically.  ^C
    drains in-flight workers, journals them, and exits 130.
    """
    parser = argparse.ArgumentParser(
        prog="macaw-sim sweep",
        description="Run a durable experiment × seed sweep job with "
        "journaled resume, worker-death retry, and optional adaptive "
        "(CI-driven) seed allocation.",
    )
    parser.add_argument(
        "experiments", nargs="*", metavar="EXPERIMENT",
        help="experiment ids (see 'list'), or 'all'",
    )
    parser.add_argument(
        "--resume", default=None, metavar="JOB",
        help="resume the job with this id (or unambiguous id prefix, or "
        "a path to a job directory); the saved spec wins over spec flags",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_jobs",
        help="list the jobs under --job-dir and exit",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--seeds", default=None, metavar="N|A,B,...",
        help="fixed allocation: a count (seed..seed+N-1) or an explicit "
        "comma-separated list (default 3; exclusive with --adaptive)",
    )
    parser.add_argument(
        "--adaptive", action="store_true",
        help="sequential stopping: per experiment, keep adding seeds "
        "until the target metric's CI half-width is below --epsilon "
        "(or --max-seeds is hit)",
    )
    parser.add_argument(
        "--epsilon", type=float, default=None, metavar="PPS",
        help="target CI half-width in metric units (required with "
        "--adaptive)",
    )
    parser.add_argument(
        "--metric", default="total", metavar="SPEC",
        help="stopping metric: 'total' (default) or 'variant:NAME'",
    )
    parser.add_argument(
        "--min-seeds", type=int, default=3, metavar="N",
        help="adaptive: seeds to run before the first CI decision "
        "(default 3)",
    )
    parser.add_argument(
        "--max-seeds", type=int, default=32, metavar="N",
        help="adaptive: hard cap per experiment (default 32)",
    )
    parser.add_argument(
        "--step", type=int, default=1, metavar="N",
        help="adaptive: seeds added per round (default 1)",
    )
    parser.add_argument(
        "--confidence", type=float, default=0.95,
        help="adaptive: CI confidence level, 0.95 or 0.99 (default 0.95)",
    )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds per run (default: experiment-specific)",
    )
    parser.add_argument(
        "--warmup", type=float, default=None,
        help="seconds excluded from throughput",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes; purely a speed knob — the digest set is "
        "identical at any value (default 1)",
    )
    parser.add_argument(
        "--job-dir", default=None, metavar="DIR",
        help="where job journals live (default .macaw_jobs)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result cache directory (default .macaw_cache or "
        "$MACAW_CACHE_DIR; the service always caches — resume "
        "rematerializes full results from it)",
    )
    parser.add_argument(
        "--queue", default=None, metavar="BACKEND",
        help="event-queue backend: 'heap' (default), 'wheel', or "
        "'wheel:WIDTH' (byte-identical results, different speed)",
    )
    parser.add_argument(
        "--no-digest", action="store_true",
        help="skip per-cell trace digests (faster; forfeits the "
        "resume byte-equality fingerprint)",
    )
    parser.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help="worker-death retries per cell before the job fails "
        "(default 2)",
    )
    parser.add_argument(
        "--backoff", type=float, default=None, metavar="SECONDS",
        help="retry backoff base; retry N waits backoff * 2^(N-1) "
        "(default 0.5)",
    )
    # Deterministic interruption for tests and the CI resume smoke:
    # stop scheduling after N fresh cells, exit as if ^C'd.
    parser.add_argument(
        "--stop-after", type=int, default=None, help=argparse.SUPPRESS,
    )
    _add_fault_options(parser)
    args = parser.parse_args(argv)

    from pathlib import Path

    from repro.core.config import RunProfile
    from repro.runner import ResultCache
    from repro.service import (
        DEFAULT_BACKOFF_S,
        DEFAULT_JOB_DIR,
        DEFAULT_RETRIES,
        AdaptiveSeeds,
        CellFailure,
        FixedSeeds,
        Job,
        JobSpec,
        JournalError,
        WorkerDeath,
        find_job,
        run_job,
    )

    job_dir = args.job_dir if args.job_dir is not None else DEFAULT_JOB_DIR

    if args.list_jobs:
        root = Path(job_dir)
        entries = sorted(
            entry for entry in (root.iterdir() if root.is_dir() else [])
            if (entry / "spec.json").exists()
        )
        if not entries:
            print(f"no jobs under {root}/")
            return 0
        for entry in entries:
            try:
                job = Job.load(entry)
            except (ValueError, KeyError) as exc:
                print(f"{entry.name}  (unreadable spec: {exc})")
                continue
            status, cells = _job_journal_summary(job)
            policy = job.spec.policy.to_dict()
            policy_text = (
                f"seeds={len(policy['seeds'])}" if policy["kind"] == "fixed"
                else f"adaptive eps={policy['epsilon']:g}"
            )
            print(f"{job.job_id}  {status:<12} {cells:>4} cells  "
                  f"{policy_text:<20} {','.join(job.spec.experiments)}")
        return 0

    if args.jobs < 1:
        print("macaw-sim: --jobs must be >= 1", file=sys.stderr)
        return 2

    if args.resume is not None:
        if args.experiments or args.seeds or args.adaptive:
            print("macaw-sim: --resume takes no spec flags (the saved "
                  "spec wins)", file=sys.stderr)
            return 2
        try:
            spec = find_job(args.resume, job_dir).spec
        except (FileNotFoundError, ValueError) as exc:
            print(f"macaw-sim: {exc}", file=sys.stderr)
            return 2
    else:
        if not args.experiments:
            print("macaw-sim: sweep needs experiment ids, --resume JOB, "
                  "or --list", file=sys.stderr)
            return 2
        if args.experiments == ["all"]:
            exp_ids = experiment_ids()
        else:
            exp_ids = args.experiments
            for exp_id in exp_ids:
                try:
                    get_experiment(exp_id)
                except KeyError as exc:
                    print(exc.args[0], file=sys.stderr)
                    return 2
        try:
            if args.adaptive:
                if args.seeds is not None:
                    raise ValueError(
                        "--seeds and --adaptive are mutually exclusive"
                    )
                if args.epsilon is None:
                    raise ValueError("--adaptive requires --epsilon")
                policy = AdaptiveSeeds(
                    epsilon=args.epsilon, metric=args.metric,
                    min_seeds=args.min_seeds, max_seeds=args.max_seeds,
                    step=args.step, base_seed=args.seed,
                    confidence=args.confidence,
                )
            else:
                seeds = _parse_seeds(args.seeds or "3", args.seed)
                policy = FixedSeeds(seeds=tuple(seeds))
            schedule = _load_schedule(args.faults, args.chaos)
            profile = RunProfile(faults=schedule, queue=args.queue)
            spec = JobSpec(
                experiments=tuple(exp_ids), policy=policy, profile=profile,
                duration=args.duration, warmup=args.warmup,
                collect_digests=not args.no_digest,
            )
        except ValueError as exc:
            print(f"macaw-sim: {exc}", file=sys.stderr)
            return 2

    cache = ResultCache(args.cache_dir)
    print(f"job {spec.job_id} -> {Path(job_dir) / spec.job_id}/ "
          f"(jobs={args.jobs})")

    def on_event(kind: str, payload: dict) -> None:
        if kind == "cell":
            note = f" ({payload['attempts']} attempts)" \
                if payload["attempts"] > 1 else ""
            print(f"  [{payload['done']:>3}] {payload['exp']} "
                  f"seed {payload['seed']}: {payload['wall_s']:.2f}s"
                  f"{note}")
        elif kind == "stop":
            print(f"  {payload['exp']}: stopped after {payload['n']} "
                  f"seeds ({payload['reason']})")
        elif kind == "interrupt":
            print(f"\nmacaw-sim: interrupted — draining "
                  f"{payload['drain']} in-flight cell(s), journaling; "
                  "^C again to terminate", file=sys.stderr)

    started = time.perf_counter()  # repro-lint: allow=REPRO102 (wall-time report)
    try:
        job = run_job(
            spec, jobs=args.jobs, job_dir=job_dir, cache=cache,
            retries=args.retries if args.retries is not None
            else DEFAULT_RETRIES,
            backoff_s=args.backoff if args.backoff is not None
            else DEFAULT_BACKOFF_S,
            on_event=on_event, stop_after=args.stop_after,
        )
    except KeyboardInterrupt:
        print("macaw-sim: sweep terminated", file=sys.stderr)
        return 130
    except JournalError as exc:
        print(f"macaw-sim: {exc}", file=sys.stderr)
        return 1
    except (WorkerDeath, CellFailure) as exc:
        print(f"macaw-sim: {exc}", file=sys.stderr)
        return 1
    elapsed = time.perf_counter() - started  # repro-lint: allow=REPRO102

    failed = sum(1 for o in job.outcomes if o.failed_checks)
    print(f"\njob {job.job_id}: {job.status} — {len(job.outcomes)} cells "
          f"({job.executed} executed, {job.replayed} replayed, "
          f"{job.retries} worker retries, {failed} with failed checks) "
          f"in {elapsed:.1f}s wall")
    for exp_id, stop in job.stops.items():
        half = stop["half_width"]
        half_text = f", CI half-width {half:.3g}" if half is not None else ""
        print(f"  {exp_id}: {stop['n']} seeds ({stop['reason']}{half_text})")
    if spec.collect_digests:
        print(f"  digest set: {job.digest_set()}")
    if job.interrupted:
        print(f"  resume with: macaw-sim sweep --resume {job.job_id}"
              + (f" --job-dir {job_dir}" if args.job_dir is not None else ""))
        return 130
    return 0


def _job_journal_summary(job) -> tuple:
    """(status, completed-cell count) from a job's journal, for --list."""
    from repro.service import JournalError

    try:
        records = job.journal().load()
    except JournalError:
        return "corrupt", 0
    cells = sum(1 for r in records if r.get("kind") == "cell")
    status = "running"
    for record in reversed(records):
        if record.get("kind") in ("complete", "interrupted"):
            status = record["kind"]
            break
    return status, cells


def _report_metrics(outcomes: list, out_dir: Optional[str],
                    interval: float) -> None:
    """Write (or summarize) the metrics series a sweep shipped back."""
    series_total = sum(
        len(dump.get("series", [])) for o in outcomes for dump in o.metrics
    )
    if out_dir is None:
        print(f"metrics: {series_total} series collected at {interval:g}s cadence "
              "(pass --metrics-out DIR to save JSONL)")
        return
    from pathlib import Path

    from repro.obs.export import write_jsonl

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written = []
    for outcome in outcomes:
        if not outcome.metrics:
            continue
        path = directory / (
            f"{outcome.cell.exp_id}_seed{outcome.cell.seed}.metrics.jsonl"
        )
        write_jsonl(path, outcome.metrics, meta={
            "exp": outcome.cell.exp_id,
            "seed": outcome.cell.seed,
            "duration": outcome.cell.duration,
            "interval": interval,
        })
        written.append(path.name)
    print(f"metrics: {series_total} series -> {directory}/ "
          f"({len(written)} files)")


def main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "verify-trace":
        return _cmd_verify_trace(raw[1:])
    if raw and raw[0] == "chaos":
        return _cmd_chaos(raw[1:])
    if raw and raw[0] == "analyze":
        from repro.verify.analysis.cli import main as analysis_main

        return analysis_main(raw[1:])
    if raw and raw[0] == "snapshot":
        return _cmd_snapshot(raw[1:])
    if raw and raw[0] == "sweep":
        return _cmd_sweep(raw[1:])
    if raw and raw[0] == "diff":
        from repro.verify.diff.cli import main_diff

        return main_diff(raw[1:])
    if raw and raw[0] == "fuzz":
        from repro.verify.diff.cli import main_fuzz

        return main_fuzz(raw[1:])

    args = _build_parser().parse_args(raw)

    if args.experiment == "list":
        for exp_id in experiment_ids():
            exp = get_experiment(exp_id)
            print(f"{exp_id:24} {exp.spec.title}")
        return 0

    experiments = _resolve_experiments(args.experiment)
    if experiments is None:
        return 2

    try:
        seeds = _parse_seeds(args.seeds, args.seed)
    except ValueError as exc:
        message = str(exc)
        if "--seeds" not in message:
            message = f"invalid --seeds value {args.seeds!r}"
        print(f"macaw-sim: {message}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("macaw-sim: --jobs must be >= 1", file=sys.stderr)
        return 2
    try:
        metrics_interval = _parse_metrics_interval(args.metrics_interval)
    except ValueError as exc:
        print(f"macaw-sim: {exc}", file=sys.stderr)
        return 2
    metrics_on = args.metrics or args.metrics_out is not None
    try:
        schedule = _load_schedule(args.faults, args.chaos)
        warm_start = (
            _parse_warm_start(args.warm_start)
            if args.warm_start is not None else None
        )
    except ValueError as exc:
        print(f"macaw-sim: {exc}", file=sys.stderr)
        return 2

    from repro.core.config import RunProfile
    from repro.runner import ResultCache, expand_cells, run_cells

    # The one profile of the invocation: it flows through run_cells into
    # every cell, serially or across the worker pool.
    try:
        profile = RunProfile(
            metrics=metrics_interval if metrics_on else None,
            faults=schedule,
            queue=args.queue,
            warm_start=warm_start,
        )
    except ValueError as exc:
        print(f"macaw-sim: {exc}", file=sys.stderr)
        return 2

    cache = (
        ResultCache(args.cache_dir)
        if (args.cache or args.cache_dir is not None)
        else None
    )

    started = time.perf_counter()  # repro-lint: allow=REPRO102 (wall-time report)
    cells = expand_cells(
        [exp.spec.exp_id for exp in experiments], seeds,
        duration=args.duration, warmup=args.warmup,
    )
    outcomes = run_cells(cells, jobs=args.jobs, cache=cache,
                         collect_digests=args.digest, profile=profile)
    elapsed = time.perf_counter() - started  # repro-lint: allow=REPRO102

    if metrics_on:
        _report_metrics(outcomes, args.metrics_out, metrics_interval)

    grouped: Dict[str, list] = {}
    for outcome in outcomes:
        grouped.setdefault(outcome.cell.exp_id, []).append(outcome)

    all_passed = True
    for exp in experiments:
        rows = grouped.get(exp.spec.exp_id, [])
        if not rows:  # pragma: no cover - run_cells returns every cell
            continue
        if len(rows) > 1:
            sweep = SeedSweepResult(spec=exp.spec, results=[r.result for r in rows])
            print(sweep.mean_table().render(show_paper=not args.no_paper))
            rates = sweep.check_pass_rates()
            for name, rate in rates.items():
                print(f"  [{rate:4.0%}] {name}")
            all_passed = all_passed and all(r == 1.0 for r in rates.values())
        else:
            result = rows[0].result
            print(result.table.render(show_paper=not args.no_paper))
            for name, ok in result.checks.items():
                print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
            all_passed = all_passed and result.passed
        if args.digest:
            for row in rows:
                print(f"  digest seed {row.cell.seed}: {row.digest}")
        detail = f"{len(rows)} run{'s' if len(rows) != 1 else ''}"
        cached = sum(1 for row in rows if row.cached)
        if cached:
            detail += f", {cached} cached"
        first = rows[0].result
        print(f"  ({first.duration:g}s simulated, seed {rows[0].cell.seed}; {detail})")
        print()

    summary = f"{len(outcomes)} cells in {elapsed:.1f}s wall (jobs={args.jobs}"
    if cache is not None:
        summary += f", cache: {cache.hits} hits / {cache.misses} misses"
    print(summary + ")")
    return 0 if all_passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
