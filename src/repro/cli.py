"""Command-line interface: run reproduced experiments.

Usage::

    macaw-sim list
    macaw-sim table5
    macaw-sim table5 --seed 3 --duration 200
    macaw-sim all --duration 200
    macaw-sim verify-trace table5
    macaw-sim verify-trace all

``verify-trace`` runs experiments with the protocol conformance sanitizer
enabled: every station's trace is replayed through the statechart and
dialogue checker (:mod:`repro.verify.conformance`) and any violation is
reported and fails the command.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.experiments.registry import all_experiments, experiment_ids, get_experiment


def _add_run_options(parser: argparse.ArgumentParser, seeds: bool = True) -> None:
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    if seeds:
        parser.add_argument(
            "--seeds", type=int, default=1,
            help="run N seeds (seed..seed+N-1) and report means + pass rates",
        )
    parser.add_argument(
        "--duration", type=float, default=None,
        help="simulated seconds per run (default: experiment-specific)",
    )
    parser.add_argument(
        "--warmup", type=float, default=None,
        help="seconds excluded from throughput (default 50, as in the paper)",
    )
    parser.add_argument(
        "--no-paper", action="store_true",
        help="hide the paper's reference columns",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="macaw-sim",
        description="MACAW (SIGCOMM '94) reproduction: run the paper's experiments.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'list'), or 'all', 'list', or 'verify-trace'",
    )
    _add_run_options(parser)
    return parser


def _resolve_experiments(selector: str) -> Optional[list]:
    """Experiments named by ``selector`` ('all' or an id); None if unknown."""
    if selector == "all":
        return all_experiments()
    try:
        return [get_experiment(selector)]
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return None


def _cmd_verify_trace(argv: List[str]) -> int:
    """Run experiments under the conformance sanitizer; nonzero on violations."""
    from repro.verify.conformance import ConformanceError
    from repro.verify.runtime import sanitized

    parser = argparse.ArgumentParser(
        prog="macaw-sim verify-trace",
        description="Replay experiment traces through the protocol "
        "conformance sanitizer.",
    )
    parser.add_argument(
        "experiment", help="experiment id (see 'list'), or 'all'",
    )
    _add_run_options(parser, seeds=False)
    args = parser.parse_args(argv)

    experiments = _resolve_experiments(args.experiment)
    if experiments is None:
        return 2

    clean = True
    for exp in experiments:
        with sanitized(True) as stats:
            try:
                exp.run(seed=args.seed, duration=args.duration, warmup=args.warmup)
            except ConformanceError as exc:
                clean = False
                print(f"{exp.spec.exp_id:24} CONFORMANCE VIOLATIONS")
                print(exc.report.render())
                continue
        print(
            f"{exp.spec.exp_id:24} OK "
            f"({stats.records} trace records, {stats.runs} scenario runs)"
        )
    return 0 if clean else 1


def main(argv: Optional[List[str]] = None) -> int:
    raw = list(sys.argv[1:] if argv is None else argv)
    if raw and raw[0] == "verify-trace":
        return _cmd_verify_trace(raw[1:])

    args = _build_parser().parse_args(raw)

    if args.experiment == "list":
        for exp_id in experiment_ids():
            exp = get_experiment(exp_id)
            print(f"{exp_id:24} {exp.spec.title}")
        return 0

    experiments = _resolve_experiments(args.experiment)
    if experiments is None:
        return 2

    all_passed = True
    for exp in experiments:
        started = time.perf_counter()  # repro-lint: allow=REPRO102 (wall-time report)
        if args.seeds > 1:
            seeds = range(args.seed, args.seed + args.seeds)
            sweep = exp.run_seeds(seeds, duration=args.duration, warmup=args.warmup)
            elapsed = time.perf_counter() - started  # repro-lint: allow=REPRO102
            print(sweep.mean_table().render(show_paper=not args.no_paper))
            rates = sweep.check_pass_rates()
            for name, rate in rates.items():
                print(f"  [{rate:4.0%}] {name}")
            print(f"  ({args.seeds} seeds in {elapsed:.1f}s wall)")
            print()
            all_passed = all_passed and all(r == 1.0 for r in rates.values())
            continue
        result = exp.run(seed=args.seed, duration=args.duration, warmup=args.warmup)
        elapsed = time.perf_counter() - started  # repro-lint: allow=REPRO102
        print(result.table.render(show_paper=not args.no_paper))
        for name, ok in result.checks.items():
            print(f"  [{'PASS' if ok else 'FAIL'}] {name}")
        print(f"  ({result.duration:g}s simulated in {elapsed:.1f}s wall, seed {result.seed})")
        print()
        all_passed = all_passed and result.passed
    return 0 if all_passed else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
