"""MAC frame formats.

The paper uses six frame types.  Control frames (RTS, CTS, DS, ACK, RRTS)
are 30 bytes; DATA frames are whatever the network layer hands down (512
bytes in all the paper's experiments; 40 bytes for our TCP transport ACKs).

Appendix B.2 adds three header fields used by the backoff copying rules:
``local_backoff`` (the sender's congestion estimate), ``remote_backoff``
(the sender's estimate of the *receiver's* congestion, or I_DONT_KNOW), and
``esn`` (exchange sequence number, used both to detect retransmissions and
to de-duplicate DATA after a lost ACK).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Final, Iterator, Optional

#: Destination name denoting a multicast frame (§3.3.4).
MULTICAST: Final[str] = "*"

#: Sentinel for an unknown remote backoff (Appendix B.2).
I_DONT_KNOW: Final[Optional[float]] = None

#: Size of every control frame, bytes (§3: "control packets ... are 30 bytes").
CONTROL_BYTES: Final[int] = 30

_frame_ids: Iterator[int] = itertools.count(1)


class FrameType(Enum):
    """The MAC frame kinds: MACAW's six plus §4's NACK extension."""

    RTS = "RTS"
    CTS = "CTS"
    DS = "DS"
    DATA = "DATA"
    ACK = "ACK"
    RRTS = "RRTS"
    NACK = "NACK"

    # Members are singletons, so identity hashing is equivalent to the
    # Enum default but C-speed — frame kinds key the per-station stats
    # dicts touched on every send/receive.
    __hash__ = object.__hash__

    @property
    def is_control(self) -> bool:
        return self is not FrameType.DATA


@dataclass
class Frame:
    """One frame on the air.

    Attributes
    ----------
    kind:
        Frame type.
    src, dst:
        MAC names.  ``dst`` may be :data:`MULTICAST`.
    size_bytes:
        Wire size; determines airtime.
    data_bytes:
        Length of the proposed/ongoing DATA transmission, carried by RTS,
        CTS, DS and RRTS so overhearers can size their defer periods.
    local_backoff, remote_backoff:
        Appendix B.2 copying fields (``remote_backoff`` may be
        :data:`I_DONT_KNOW`).
    esn:
        Exchange sequence number for the (src → dst) stream.
    retry:
        True when this RTS re-attempts an exchange (lets the receiver apply
        the B.2 retransmission inference).
    payload:
        For DATA frames, the network-layer packet being carried.
    """

    kind: FrameType
    src: str
    dst: str
    size_bytes: int
    data_bytes: int = 0
    local_backoff: Optional[float] = None
    remote_backoff: Optional[float] = I_DONT_KNOW
    esn: Optional[int] = None
    retry: bool = False
    payload: Any = None
    #: §4 piggyback extension: on an RTS, the sender indicates it does NOT
    #: need an immediate ACK (more packets are queued for this stream).
    no_ack_request: bool = False
    #: §4 piggyback extension.  On an RTS: the ESN of the sender's previous
    #: (optimistically completed) packet, asking "did you receive this?".
    #: On a CTS: the echo of that ESN if the packet arrived, else None.
    ack_esn: Optional[int] = None
    uid: int = field(default_factory=lambda: next(_frame_ids))

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"frame size must be positive, got {self.size_bytes!r}")
        if self.kind.is_control and self.payload is not None:
            raise ValueError(f"{self.kind.value} frames carry no payload")

    @property
    def is_multicast(self) -> bool:
        return self.dst == MULTICAST

    def addressed_to(self, name: str) -> bool:
        """True when this frame is for ``name`` (multicast reaches all)."""
        return self.dst == name or self.is_multicast

    def describe(self) -> str:
        """Compact human-readable form for traces: 'RTS A→B esn=3'."""
        out = f"{self.kind.value} {self.src}→{self.dst}"
        if self.esn is not None:
            out += f" esn={self.esn}"
        if self.retry:
            out += " retry"
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({self.describe()}, {self.size_bytes}B)"


def control_frame(
    kind: FrameType,
    src: str,
    dst: str,
    data_bytes: int = 0,
    local_backoff: Optional[float] = None,
    remote_backoff: Optional[float] = I_DONT_KNOW,
    esn: Optional[int] = None,
    retry: bool = False,
    no_ack_request: bool = False,
    ack_esn: Optional[int] = None,
) -> Frame:
    """Build a 30-byte control frame of the given kind."""
    if kind is FrameType.DATA:
        raise ValueError("use data_frame() for DATA")
    return Frame(
        kind=kind,
        src=src,
        dst=dst,
        size_bytes=CONTROL_BYTES,
        data_bytes=data_bytes,
        local_backoff=local_backoff,
        remote_backoff=remote_backoff,
        esn=esn,
        retry=retry,
        no_ack_request=no_ack_request,
        ack_esn=ack_esn,
    )


def data_frame(
    src: str,
    dst: str,
    size_bytes: int,
    payload: Any = None,
    local_backoff: Optional[float] = None,
    remote_backoff: Optional[float] = I_DONT_KNOW,
    esn: Optional[int] = None,
) -> Frame:
    """Build a DATA frame carrying a network-layer packet."""
    return Frame(
        kind=FrameType.DATA,
        src=src,
        dst=dst,
        size_bytes=size_bytes,
        data_bytes=size_bytes,
        local_backoff=local_backoff,
        remote_backoff=remote_backoff,
        esn=esn,
        payload=payload,
    )
