"""MACA — Karn's Multiple Access, Collision Avoidance protocol (Appendix A).

MACA is the starting point of the paper's investigation: an RTS-CTS-DATA
exchange with binary exponential backoff, one FIFO queue and one backoff
counter per station, and no copying, DS, RRTS or link ACK.

Appendix A's five-state machine (IDLE, CONTEND, WFCTS, WFData, QUIET) is a
strict subset of Appendix B's ten-state MACAW machine, so MACA is realized
here as the configurable exchange MAC of :mod:`repro.core.macaw` with every
MACAW feature disabled — which also guarantees that each paper comparison
(MACA column vs MACAW column) differs only in the flags the paper names.

Defer rules realized (Appendix A):

1. overheard RTS → QUIET long enough for the sender to hear the CTS;
2. overheard CTS → QUIET long enough for the data transmission.

Timeout and control rules map one-to-one onto the shared machine; see
:class:`repro.core.macaw.MacawMac`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.config import MACA_CONFIG, ProtocolConfig, maca_config
from repro.core.macaw import MacawMac
from repro.mac.timing import MacTiming
from repro.phy.medium import Medium
from repro.sim.kernel import Simulator

__all__ = ["MacaMac", "maca_config"]


class MacaMac(MacawMac):
    """A station running plain MACA (RTS-CTS-DATA, BEB, single queue).

    Observability: inherits the full :class:`MacawMac` probe surface
    (``backoff_value`` is the single BEB counter, per-state dwell covers
    Appendix A's five-state subset); ``protocol_name`` tags the exported
    series so MACA and MACAW sweeps aggregate separately.
    """

    protocol_name = "maca"

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
        config: ProtocolConfig = MACA_CONFIG,
        timing: Optional[MacTiming] = None,
        queue_capacity: Optional[int] = 64,
    ) -> None:
        if config.use_ds or config.use_rrts:
            raise ValueError(
                "MACA has no DS or RRTS; use MacawMac for extended configurations"
            )
        super().__init__(
            sim,
            medium,
            name,
            position=position,
            config=config,
            timing=timing,
            queue_capacity=queue_capacity,
        )
