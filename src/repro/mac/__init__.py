"""MAC layer: frame formats, timing, shared machinery, and baselines.

The package hosts everything common to the media-access protocols plus the
CSMA baseline:

* :mod:`repro.mac.frames` — RTS/CTS/DS/DATA/ACK/RRTS frames with the
  backoff-copying header fields of Appendix B.2.
* :mod:`repro.mac.timing` — slot and timeout arithmetic (30-byte control
  packets at 256 kbps define the 937.5 µs slot).
* :mod:`repro.mac.base` — deferral, contention and queue bookkeeping shared
  by the state machines.
* :mod:`repro.mac.csma` — carrier-sense baseline (§2.2).
* :mod:`repro.mac.maca` — Karn's MACA as specified in Appendix A.

MACA is configured on top of the machine in :mod:`repro.core.macaw`, so
``repro.mac.maca`` is intentionally *not* imported here (it would make the
``mac`` package depend on ``core`` at import time); import it directly or
use the re-export at the ``repro`` top level.
"""

from repro.mac.frames import Frame, FrameType, MULTICAST, I_DONT_KNOW
from repro.mac.timing import MacTiming
from repro.mac.base import BaseMac, MacState, MacStats
from repro.mac.csma import CsmaMac, CsmaConfig
from repro.mac.polling import PollingBaseMac, PollingConfig, PollingPadMac

__all__ = [
    "Frame",
    "FrameType",
    "MULTICAST",
    "I_DONT_KNOW",
    "MacTiming",
    "BaseMac",
    "MacState",
    "MacStats",
    "CsmaMac",
    "CsmaConfig",
    "PollingBaseMac",
    "PollingPadMac",
    "PollingConfig",
]
