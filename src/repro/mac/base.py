"""Shared MAC machinery: states, statistics, and the station-side plumbing
every protocol in this repository builds on.

The protocol state machines themselves live in :mod:`repro.core.macaw`
(the configurable RTS-CTS exchange that realizes both MACA and MACAW) and
:mod:`repro.mac.csma`.  This module holds what they share:

* :class:`MacState` — the union of Appendix A's five and Appendix B's ten
  protocol states;
* :class:`MacStats` — per-station counters used by tests and experiments;
* :class:`BaseMac` — upper-layer interface (enqueue/deliver/drop callbacks),
  power on/off, random slot draws, and the transmit guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Optional, Tuple

from repro.mac.frames import Frame, FrameType
from repro.mac.timing import MacTiming
from repro.phy.medium import Medium, ReceiverPort, Transmission
from repro.sim.kernel import Simulator

__all__ = ["MacState", "MacStats", "BaseMac"]


class MacState(Enum):
    """Protocol states (Appendix A ∪ Appendix B)."""

    IDLE = "IDLE"
    CONTEND = "CONTEND"
    WFRTS = "WFRTS"
    WFCTS = "WFCTS"
    WFCONTEND = "WFCONTEND"
    SENDDATA = "SendData"
    WFDS = "WFDS"
    WFDATA = "WFData"
    WFACK = "WFACK"
    QUIET = "QUIET"


@dataclass
class MacStats:
    """Counters for one station.  Everything tests and tables read."""

    sent: Dict[FrameType, int] = field(default_factory=dict)
    received: Dict[FrameType, int] = field(default_factory=dict)
    #: Frames that arrived corrupted (collision, capture failure, noise).
    corrupted: int = 0
    #: RTS attempts that drew neither CTS nor ACK.
    cts_timeouts: int = 0
    #: DATA transmissions that drew no ACK.
    ack_timeouts: int = 0
    #: Packets abandoned after max_retries.
    drops: int = 0
    #: Network packets handed to the upper layer.
    delivered: int = 0
    #: Duplicate DATA suppressed by the ESN check.
    duplicates: int = 0
    #: Exchanges completed as sender.
    successes: int = 0
    #: Packets rejected at enqueue (queue full or powered off).
    enqueue_rejected: int = 0
    #: §4 NACK mode: optimistically-completed packets whose outcome was
    #: never learned (the stash was overwritten before a NACK could land).
    silent_losses: int = 0

    def count_sent(self, kind: FrameType) -> None:
        # Keyed by FrameType, read by tests/tables — predates repro.obs and
        # is the model's own bookkeeping, not ad-hoc telemetry.
        self.sent[kind] = self.sent.get(kind, 0) + 1  # repro-lint: allow=REPRO107

    def count_received(self, kind: FrameType) -> None:
        self.received[kind] = self.received.get(kind, 0) + 1  # repro-lint: allow=REPRO107

    def sent_of(self, kind: FrameType) -> int:
        return self.sent.get(kind, 0)

    def received_of(self, kind: FrameType) -> int:
        return self.received.get(kind, 0)


class BaseMac(ReceiverPort):
    """Common station-side plumbing.

    Subclasses implement :meth:`on_frame`, :meth:`enqueue` and their own
    state machines; this base supplies the medium hookup, upper-layer
    callbacks, the per-station random stream, and power control.

    Upper-layer callbacks (all optional):

    * ``on_deliver(payload, src)`` — a network packet arrived for us;
    * ``on_drop(payload, dst)`` — the MAC gave up on a queued packet;
    * ``on_sent(payload, dst)`` — an exchange completed as sender.

    Observability (:mod:`repro.obs`) attaches a per-station probe to
    :attr:`probe`; protocols with a state machine call
    ``probe.note_state(old, new, now)`` on transitions so per-state dwell
    time can be accounted.  The probe surface is read-only — gauges read
    :meth:`queue_len`, :meth:`backoff_value`, :meth:`current_retries` and
    :attr:`stats` at sample time.
    """

    #: Probe label for this MAC flavour (subclasses override).
    protocol_name = "mac"

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
        timing: Optional[MacTiming] = None,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.name = name
        self.position = position
        self.timing = timing if timing is not None else MacTiming(bitrate_bps=medium.bitrate_bps)
        self.stats = MacStats()
        self.powered = True
        self.on_deliver: Optional[Callable[[Any, str], None]] = None
        self.on_drop: Optional[Callable[[Any, str], None]] = None
        self.on_sent: Optional[Callable[[Any, str], None]] = None
        #: Per-station observability probe; None when metrics are off, so
        #: hot paths pay a single ``is not None`` test.
        self.probe: Optional[Any] = None
        medium.attach(self)

    # ------------------------------------------------------------ randomness
    def draw_slots(self, bound: float) -> int:
        """Uniform integer slot count in [1, round(bound)] — the paper's
        contention draw — from this station's private random stream."""
        high = max(1, int(round(bound)))
        return self.sim.streams.uniform_slots(f"mac:{self.name}", 1, high)

    # ----------------------------------------------------------- power state
    def power_off(self) -> None:
        """Turn the radio off (Figure 9): stop hearing, sending, queueing."""
        if not self.powered:
            return
        self.powered = False
        self.sim.trace.record(self.sim.now, "power", self.name, on=False)
        self.medium.detach(self)
        self._on_power_change(False)

    def power_on(self) -> None:
        """Re-attach a powered-off radio."""
        if self.powered:
            return
        self.powered = True
        self.sim.trace.record(self.sim.now, "power", self.name, on=True)
        self.medium.attach(self)
        self._on_power_change(True)

    def _on_power_change(self, powered: bool) -> None:
        """Hook for subclasses to reset timers/state on power transitions."""

    # ------------------------------------------------------------ transmit
    def send_frame(self, frame: Frame) -> Optional[Transmission]:
        """Put a frame on the air unless we are mid-transmission or off.

        Returns the transmission, or None when sending was impossible —
        callers treat that like any other lost frame (timers recover).
        """
        if not self.powered or self.medium.is_transmitting(self):
            return None
        self.stats.count_sent(frame.kind)
        if self.sim.trace.enabled:
            # Structured fields feed the conformance sanitizer; the
            # human-readable "frame" string stays for debugging and the
            # existing trace-based tests.
            self.sim.trace.record(
                self.sim.now, "send", self.name,
                frame=frame.describe(),
                kind=frame.kind.value,
                src=frame.src,
                dst=frame.dst,
                esn=frame.esn,
                size=frame.size_bytes,
                data_bytes=frame.data_bytes,
                retry=frame.retry,
            )
        return self.medium.transmit(self, frame)

    # ------------------------------------------------------------- deliver
    def deliver_up(self, payload: Any, src: str) -> None:
        """Hand a received network packet to the upper layer."""
        self.stats.delivered += 1
        if self.on_deliver is not None:
            self.on_deliver(payload, src)

    def notify_drop(self, payload: Any, dst: str) -> None:
        self.stats.drops += 1
        if self.on_drop is not None:
            self.on_drop(payload, dst)

    def notify_sent(self, payload: Any, dst: str) -> None:
        self.stats.successes += 1
        if self.on_sent is not None:
            self.on_sent(payload, dst)

    # ----------------------------------------------------------- interface
    def enqueue(self, payload: Any, dst: str, size_bytes: int) -> bool:
        """Queue a network packet for transmission.  Subclasses implement."""
        raise NotImplementedError

    def queue_len(self) -> int:
        """Packets currently queued (subclasses override)."""
        return 0

    # -------------------------------------------------------- probe surface
    def backoff_value(self) -> Optional[float]:
        """Current backoff counter, or None for protocols without one."""
        return None

    def current_retries(self) -> int:
        """Retry count of the packet at the head of the queue, if any."""
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"
