"""Slot and timeout arithmetic.

All protocol timing derives from two facts (§3): the channel runs at
256 kbps and control packets are 30 bytes, so one *slot* — the unit of
contention delay — is the control-frame airtime, 937.5 µs.  The paper's
simulations use a *null turnaround* (a station can reply the instant a
frame ends); we keep turnaround configurable but default it to zero.

Timeouts are "time for the expected reply, plus margin".  The margin is one
slot, which realizes the paper's "some time after the associated CTS packet
would have finished" and keeps boundary events unambiguous.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.mac.frames import CONTROL_BYTES


@dataclass(frozen=True)
class MacTiming:
    """Precomputed durations for one channel configuration.

    Parameters
    ----------
    bitrate_bps:
        Channel rate; 256 kbps for PARC's radio.
    control_bytes:
        Control frame size; 30 bytes in the paper.
    turnaround_s:
        Receive-to-transmit switching time; the paper simulates it as null.
    margin_slots:
        Extra slots added to every timeout/defer so boundary events cannot
        race.
    """

    bitrate_bps: float = 256_000.0
    control_bytes: int = CONTROL_BYTES
    turnaround_s: float = 0.0
    margin_slots: float = 1.0

    #: One contention slot = control-frame airtime (§3).  Precomputed in
    #: ``__post_init__`` — slot and margin are read on every overheard
    #: frame, so they must not pay the validated-division cost each time.
    slot: float = dataclasses.field(init=False, repr=False, compare=False, default=0.0)
    margin: float = dataclasses.field(init=False, repr=False, compare=False, default=0.0)

    def __post_init__(self) -> None:
        if self.bitrate_bps <= 0:
            raise ValueError(f"bitrate must be positive, got {self.bitrate_bps!r}")
        if self.control_bytes <= 0:
            raise ValueError(f"control size must be positive, got {self.control_bytes!r}")
        if self.turnaround_s < 0:
            raise ValueError(f"turnaround must be >= 0, got {self.turnaround_s!r}")
        object.__setattr__(self, "slot", self.airtime(self.control_bytes))
        object.__setattr__(self, "margin", self.margin_slots * self.slot)

    # ------------------------------------------------------------ primitives
    def airtime(self, size_bytes: int) -> float:
        """Seconds to transmit ``size_bytes``."""
        if size_bytes <= 0:
            raise ValueError(f"size must be positive, got {size_bytes!r}")
        return (size_bytes * 8) / self.bitrate_bps

    # -------------------------------------------------------------- timeouts
    def cts_timeout(self) -> float:
        """How long an RTS sender waits for the CTS (from RTS end)."""
        return self.turnaround_s + self.slot + self.margin

    def ds_timeout(self) -> float:
        """How long a CTS sender waits for the DS (from CTS end)."""
        return self.turnaround_s + self.slot + self.margin

    def data_timeout(self, data_bytes: int) -> float:
        """How long a receiver waits for DATA of the given size."""
        return self.turnaround_s + self.airtime(data_bytes) + self.margin

    def ack_timeout(self) -> float:
        """How long a DATA sender waits for the link ACK (from DATA end)."""
        return self.turnaround_s + self.slot + self.margin

    def rts_timeout(self) -> float:
        """How long an RRTS sender waits for the answering RTS."""
        return self.turnaround_s + self.slot + self.margin

    # ----------------------------------------------------------- defer spans
    def defer_after_rts(self) -> float:
        """Overheard RTS: defer until the CTS could finish (§2.3 / §3.3.2).

        Measured from the *end* of the overheard RTS: the receiver's
        turnaround plus the CTS airtime plus margin.
        """
        return self.turnaround_s + self.slot + self.margin

    def defer_after_cts(self, data_bytes: int, use_ds: bool = True,
                        use_ack: bool = True) -> float:
        """Overheard CTS: defer for the whole expected DATA.

        Includes the DS slot when the protocol uses DS, and the ACK slot
        when it uses ACKs — an overhearer of the CTS is in range of the
        DATA receiver, whose ACK it must not clobber.
        """
        span = self.turnaround_s + self.airtime(data_bytes) + self.margin
        if use_ds:
            span += self.slot + self.turnaround_s
        if use_ack:
            span += self.turnaround_s + self.slot
        return span

    def defer_after_ds(self, data_bytes: int, use_ack: bool = True) -> float:
        """Overheard DS: defer until the ACK slot has passed (§3.3.2)."""
        span = self.airtime(data_bytes) + self.margin
        if use_ack:
            span += self.turnaround_s + self.slot
        return span

    def defer_after_multicast_rts(self, data_bytes: int) -> float:
        """Overheard multicast RTS: DATA follows immediately, so all
        stations defer for its length (§3.3.4)."""
        return self.turnaround_s + self.airtime(data_bytes) + self.margin

    def defer_after_rrts(self) -> float:
        """Overheard RRTS: "defer for two slot times, long enough to hear if
        a successful RTS-CTS exchange occurs" (§3.3.3)."""
        return 2 * self.slot + self.margin

    def defer_full_exchange(self, data_bytes: int) -> float:
        """Appendix-B-literal RTS defer: the entire remaining exchange
        (CTS + DS + DATA + ACK) from the end of the overheard RTS."""
        return (
            self.turnaround_s
            + self.slot  # CTS
            + self.turnaround_s
            + self.slot  # DS
            + self.airtime(data_bytes)
            + self.turnaround_s
            + self.slot  # ACK
            + self.margin
        )

    def exchange_airtime(self, data_bytes: int, use_ds: bool, use_ack: bool) -> float:
        """Total airtime of one successful exchange (no contention delay)."""
        control = 2 + (1 if use_ds else 0) + (1 if use_ack else 0)
        return control * self.slot + self.airtime(data_bytes) + 4 * self.turnaround_s
