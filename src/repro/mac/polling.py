"""A polling MAC — the §4 road not taken.

§4: "Various token-based schemes, or those involving polling or
reservations, are possibilities we hope to explore in future work."  This
module explores the simplest of them: the base station owns the cell and
polls its pads round-robin.  There is no contention at all —

* **uplink**: the base sends a 30-byte POLL (an RTS frame addressed to the
  pad with ``data_bytes = 0``); the pad answers with one DATA frame, or
  with a 30-byte NACK meaning "queue empty";
* **downlink**: the base transmits directly in its own schedule slot.

Within a single isolated cell this is maximally efficient and perfectly
fair.  Its weaknesses are exactly the reasons §2.1 gives for choosing
multiple access: the base is a single point of coordination, every pad
must be registered (mobility means constant re-registration), empty polls
burn airtime at low load, and neighbouring cells' polls collide with each
other across borders with no collision-avoidance machinery at all.  The
``ablation-polling`` experiment measures both sides.

Implementation notes: pads answer a poll even mid-arrival of other signals
(polling assumes a clean cell); lost polls or answers are simply skipped —
the next cycle retries.  The base's poll cycle is driven by timers, with a
configurable inter-poll gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.core.streams import StreamQueue
from repro.mac.base import BaseMac
from repro.mac.frames import Frame, FrameType, control_frame, data_frame
from repro.mac.timing import MacTiming
from repro.phy.medium import Medium, Transmission
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer


@dataclass(frozen=True)
class PollingConfig:
    """Knobs for the polling MAC."""

    #: Gap between schedule steps, in slots (guard time for turnaround).
    inter_poll_slots: float = 0.25
    #: How long the base waits for a poll answer, in slots, beyond the
    #: answer's airtime.
    answer_margin_slots: float = 1.0
    #: Largest uplink frame a poll grants (pads truncate to their head
    #: packet's size, so this only caps the wait).
    max_data_bytes: int = 512

    def __post_init__(self) -> None:
        if self.inter_poll_slots < 0 or self.answer_margin_slots <= 0:
            raise ValueError("poll gaps must be non-negative, margin positive")
        if self.max_data_bytes <= 0:
            raise ValueError("max_data_bytes must be positive")


class PollingBaseMac(BaseMac):
    """The cell coordinator: polls registered pads and sends downlink.

    The schedule alternates uplink polls (one per registered pad, round
    robin) with downlink transmissions (one queued frame per cycle step).
    """

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
        config: PollingConfig = PollingConfig(),
        timing: Optional[MacTiming] = None,
        queue_capacity: Optional[int] = 64,
    ) -> None:
        super().__init__(sim, medium, name, position, timing)
        self.config = config
        self.queue = StreamQueue(multi=True, capacity=queue_capacity)
        self._pads: List[str] = []
        self._next_pad = 0
        self._downlink_turn = False
        self._awaiting: Optional[str] = None  # pad whose answer we await
        self._timer = Timer(sim, self._step, name=f"{name}:poll")
        #: Polls that drew no answer (pad empty, off, or collision).
        self.idle_polls = 0
        self.polls_sent = 0
        self._started = False

    # ------------------------------------------------------------- control
    def register_pad(self, pad_name: str) -> None:
        """Add a pad to the poll schedule (idempotent)."""
        if pad_name not in self._pads:
            self._pads.append(pad_name)
        if not self._started:
            self._started = True
            self._timer.start(self.timing.slot)

    def unregister_pad(self, pad_name: str) -> None:
        if pad_name in self._pads:
            index = self._pads.index(pad_name)
            self._pads.remove(pad_name)
            if self._next_pad > index:
                self._next_pad -= 1
            if self._pads:
                self._next_pad %= len(self._pads)

    def enqueue(self, payload: Any, dst: str, size_bytes: int) -> bool:
        if not self.powered:
            self.stats.enqueue_rejected += 1
            return False
        entry = self.queue.push(payload, dst, size_bytes, self.sim.now)
        if entry is None:
            self.stats.enqueue_rejected += 1
            return False
        return True

    def queue_len(self) -> int:
        return len(self.queue)

    def _on_power_change(self, powered: bool) -> None:
        self._timer.stop()
        self._awaiting = None
        if powered and self._started:
            self._timer.start(self.timing.slot)

    # ------------------------------------------------------------ schedule
    def _step(self) -> None:
        """One schedule step: downlink frame or uplink poll."""
        if not self.powered:
            return
        gap = self.config.inter_poll_slots * self.timing.slot
        if self._downlink_turn and not self.queue.is_empty():
            entry = self.queue.candidates()[0]
            frame = data_frame(self.name, entry.dst, entry.size_bytes,
                               payload=entry.payload)
            self._downlink_turn = False
            if self.send_frame(frame) is not None:
                self._pending_downlink = entry
                return  # next step scheduled at transmit-complete
            self._timer.start(gap)
            return
        self._downlink_turn = True
        if not self._pads:
            self._timer.start(self.timing.slot + gap)
            return
        pad = self._pads[self._next_pad]
        self._next_pad = (self._next_pad + 1) % len(self._pads)
        poll = control_frame(FrameType.RTS, self.name, pad,
                             data_bytes=self.config.max_data_bytes)
        self.polls_sent += 1
        if self.send_frame(poll) is not None:
            self._awaiting = pad
            # Timer armed at transmit-complete (covers the answer window).
        else:
            self._timer.start(gap)

    def on_transmit_complete(self, transmission: Transmission) -> None:
        gap = self.config.inter_poll_slots * self.timing.slot
        frame = transmission.frame
        if frame.kind is FrameType.RTS:
            window = (
                self.timing.turnaround_s
                + self.timing.airtime(self.config.max_data_bytes)
                + self.config.answer_margin_slots * self.timing.slot
            )
            self._timer.start(window)
        elif frame.kind is FrameType.DATA:
            entry = getattr(self, "_pending_downlink", None)
            if entry is not None:
                self.queue.pop(entry)
                self.notify_sent(entry.payload, entry.dst)
                self._pending_downlink = None
            self._timer.start(gap)

    # ------------------------------------------------------------- receive
    def on_frame(self, frame: Frame, clean: bool) -> None:
        if not clean:
            self.stats.corrupted += 1
            return
        self.stats.count_received(frame.kind)
        if frame.dst != self.name:
            return
        if self._awaiting is not None and frame.src == self._awaiting:
            self._awaiting = None
            if frame.kind is FrameType.DATA:
                self.deliver_up(frame.payload, frame.src)
            else:  # NACK: "nothing to send"
                self.idle_polls += 1
            self._timer.start(self.config.inter_poll_slots * self.timing.slot)


class PollingPadMac(BaseMac):
    """A pad in a polled cell: transmits only when polled."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
        config: PollingConfig = PollingConfig(),
        timing: Optional[MacTiming] = None,
        queue_capacity: Optional[int] = 64,
    ) -> None:
        super().__init__(sim, medium, name, position, timing)
        self.config = config
        self.queue = StreamQueue(multi=False, capacity=queue_capacity)

    def enqueue(self, payload: Any, dst: str, size_bytes: int) -> bool:
        if not self.powered:
            self.stats.enqueue_rejected += 1
            return False
        entry = self.queue.push(payload, dst, size_bytes, self.sim.now)
        if entry is None:
            self.stats.enqueue_rejected += 1
            return False
        return True

    def queue_len(self) -> int:
        return len(self.queue)

    def on_frame(self, frame: Frame, clean: bool) -> None:
        if not clean:
            self.stats.corrupted += 1
            return
        self.stats.count_received(frame.kind)
        if frame.dst != self.name:
            return
        if frame.kind is FrameType.RTS:
            self._answer_poll(frame)
        elif frame.kind is FrameType.DATA:
            self.deliver_up(frame.payload, frame.src)

    def _answer_poll(self, poll: Frame) -> None:
        candidates = self.queue.candidates()
        if candidates:
            entry = candidates[0]
            frame = data_frame(self.name, entry.dst, entry.size_bytes,
                               payload=entry.payload)
            if self.send_frame(frame) is not None:
                self.queue.pop(entry)
                self.notify_sent(entry.payload, entry.dst)
                return
        nothing = control_frame(FrameType.NACK, self.name, poll.src)
        self.send_frame(nothing)
