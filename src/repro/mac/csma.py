"""CSMA — the carrier-sense baseline the paper argues against (§2.2).

"In CSMA, every station senses the carrier before transmitting; if the
station detects carrier then the station defers transmission."  The paper's
point is that carrier sense tests the signal at the *sender* while
collisions happen at the *receiver*, producing the hidden-terminal and
exposed-terminal pathologies of Figure 1.  This implementation exists to
demonstrate exactly those pathologies against MACA/MACAW.

Two classic variants are provided:

* **non-persistent** (default): on sensing carrier, back off a random number
  of slots and sense again;
* **1-persistent**: on sensing carrier, wait for the channel to go idle and
  transmit immediately (maximally collision-prone).

An optional link-layer ACK (on by default, as in contemporary packet-radio
stacks) gives the sender the loss feedback that drives its binary
exponential backoff; without it CSMA is fire-and-forget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.core.streams import QueuedPacket, StreamQueue
from repro.mac.base import BaseMac
from repro.mac.frames import Frame, FrameType, control_frame, data_frame
from repro.mac.timing import MacTiming
from repro.phy.medium import Medium, Transmission
from repro.sim.kernel import Simulator
from repro.sim.timers import Timer


@dataclass(frozen=True)
class CsmaConfig:
    """Knobs for the CSMA baseline."""

    #: "nonpersistent" or "1persistent".
    persistence: str = "nonpersistent"
    #: Send (and expect) link ACKs; drives retransmission and backoff.
    use_ack: bool = True
    bo_min: float = 2.0
    bo_max: float = 64.0
    max_retries: int = 8

    def __post_init__(self) -> None:
        if self.persistence not in ("nonpersistent", "1persistent"):
            raise ValueError(f"unknown persistence {self.persistence!r}")
        if not 1 <= self.bo_min <= self.bo_max:
            raise ValueError("need 1 <= bo_min <= bo_max")


class CsmaMac(BaseMac):
    """A station running CSMA with BEB and optional link ACKs."""

    protocol_name = "csma"

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        name: str,
        position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
        config: CsmaConfig = CsmaConfig(),
        timing: Optional[MacTiming] = None,
        queue_capacity: Optional[int] = 64,
    ) -> None:
        super().__init__(sim, medium, name, position, timing)
        self.config = config
        self.queue = StreamQueue(multi=False, capacity=queue_capacity)
        self.bo = config.bo_min
        self._retry_timer = Timer(sim, self._attempt, name=f"{name}:csma-retry")
        self._ack_timer = Timer(sim, self._on_ack_timeout, name=f"{name}:csma-ack")
        #: Packet currently being sent / awaiting ACK.
        self._current: Optional[QueuedPacket] = None
        #: Waiting for the carrier to free (1-persistent only).
        self._waiting_for_idle = False
        #: Sequence numbers for duplicate suppression at receivers.
        self._next_seq: Dict[str, int] = {}
        self._seen_seq: Dict[str, int] = {}

    # ---------------------------------------------------------- upper layer
    def enqueue(self, payload: Any, dst: str, size_bytes: int) -> bool:
        if not self.powered:
            self.stats.enqueue_rejected += 1
            return False
        entry = self.queue.push(payload, dst, size_bytes, self.sim.now)
        if entry is None:
            self.stats.enqueue_rejected += 1
            return False
        if self._idle():
            self._attempt()
        return True

    def queue_len(self) -> int:
        return len(self.queue)

    # -------------------------------------------------------- probe surface
    def backoff_value(self) -> Optional[float]:
        """Current BEB window ceiling (slots)."""
        return self.bo

    def current_retries(self) -> int:
        entry = self._current
        return entry.retries if entry is not None else 0

    def _idle(self) -> bool:
        return (
            self._current is None
            and not self._retry_timer.running
            and not self._waiting_for_idle
        )

    def _on_power_change(self, powered: bool) -> None:
        self._retry_timer.stop()
        self._ack_timer.stop()
        self._current = None
        self._waiting_for_idle = False
        if powered and not self.queue.is_empty():
            self._attempt()

    # -------------------------------------------------------------- attempts
    def _attempt(self) -> None:
        """Sense the carrier and transmit, defer, or reschedule."""
        candidates = self.queue.candidates()
        if not candidates:
            return
        entry = candidates[0]
        if self.medium.is_transmitting(self):
            self._backoff_retry()
            return
        if self.medium.carrier_sensed(self):
            if self.config.persistence == "1persistent":
                self._waiting_for_idle = True
            else:
                self._backoff_retry()
            return
        self._transmit(entry)

    def _transmit(self, entry: QueuedPacket) -> None:
        if entry.esn is None:
            entry.esn = self._next_seq.get(entry.dst, 0)
            self._next_seq[entry.dst] = entry.esn + 1
        frame = data_frame(
            self.name, entry.dst, entry.size_bytes, payload=entry.payload, esn=entry.esn
        )
        if self.send_frame(frame) is None:
            self._backoff_retry()
            return
        self._current = entry

    def _backoff_retry(self) -> None:
        slots = self.sim.streams.uniform_slots(
            f"mac:{self.name}", 1, max(1, int(round(self.bo)))
        )
        self._retry_timer.start(slots * self.timing.slot)

    def on_carrier(self, busy: bool) -> None:
        if not busy and self._waiting_for_idle:
            self._waiting_for_idle = False
            self._attempt()

    # ------------------------------------------------------------ completion
    def on_transmit_complete(self, transmission: Transmission) -> None:
        frame = transmission.frame
        if frame.kind is FrameType.ACK:
            if self._idle() and not self.queue.is_empty():
                self._attempt()
            return
        entry = self._current
        if entry is None:
            return
        if self.config.use_ack:
            self._ack_timer.start(self.timing.ack_timeout())
        else:
            # Fire-and-forget: the MAC's job ends with the transmission.
            self._finish(entry, delivered=True)

    def _finish(self, entry: QueuedPacket, delivered: bool) -> None:
        self._current = None
        self._ack_timer.stop()
        self.queue.pop(entry)
        if delivered:
            self.bo = self.config.bo_min  # BEB success: reset to floor
            self.notify_sent(entry.payload, entry.dst)
        else:
            self.notify_drop(entry.payload, entry.dst)
        if not self.queue.is_empty():
            self._backoff_retry()

    def _on_ack_timeout(self) -> None:
        entry = self._current
        if entry is None:
            return
        self.stats.ack_timeouts += 1
        self._current = None
        entry.retries += 1
        self.bo = min(2.0 * self.bo, self.config.bo_max)  # BEB failure
        if entry.retries >= self.config.max_retries:
            self._finish_drop(entry)
        else:
            self._backoff_retry()

    def _finish_drop(self, entry: QueuedPacket) -> None:
        self.queue.pop(entry)
        self.notify_drop(entry.payload, entry.dst)
        if not self.queue.is_empty():
            self._backoff_retry()

    # -------------------------------------------------------------- receive
    def on_frame(self, frame: Frame, clean: bool) -> None:
        if not clean:
            self.stats.corrupted += 1
            return
        self.stats.count_received(frame.kind)
        if frame.dst != self.name:
            return
        if frame.kind is FrameType.DATA:
            duplicate = (
                frame.esn is not None and self._seen_seq.get(frame.src) == frame.esn
            )
            if duplicate:
                self.stats.duplicates += 1
            else:
                if frame.esn is not None:
                    self._seen_seq[frame.src] = frame.esn
                self.deliver_up(frame.payload, frame.src)
            if self.config.use_ack and not self.medium.is_transmitting(self):
                ack = control_frame(FrameType.ACK, self.name, frame.src, esn=frame.esn)
                self.send_frame(ack)
        elif frame.kind is FrameType.ACK:
            entry = self._current
            if (
                entry is not None
                and frame.src == entry.dst
                and (frame.esn is None or frame.esn == entry.esn)
            ):
                self._finish(entry, delivered=True)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CsmaMac({self.name!r}, queue={len(self.queue)}, bo={self.bo:.1f})"
