"""Process-wide opt-in for metrics collection, mirroring verify.runtime.

Experiments build their scenarios deep inside driver code, so the
metrics switch cannot always be threaded through as a parameter.  This
module provides the ambient hook that
:class:`repro.topo.builder.ScenarioBuilder` consults when its own
``metrics`` argument is left unset:

* the :func:`collecting` context manager turns collection on for a block
  and yields the list that every instrumented scenario's metrics dump is
  appended to (the CLI and the parallel runner use this);
* the ``REPRO_METRICS`` environment variable (``1``/``true``/``yes``/
  ``on``) turns collection on from the outside, with
  ``REPRO_METRICS_INTERVAL`` overriding the sampling cadence.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional, Union

__all__ = [
    "MetricsConfig",
    "ambient_config",
    "collecting",
    "note_metrics",
    "resolve_metrics",
]

_TRUTHY = ("1", "true", "yes", "on")


@dataclass(frozen=True)
class MetricsConfig:
    """How a scenario should be instrumented when metrics are on."""

    #: Sampling cadence in simulated seconds.
    interval: float = 1.0
    #: Ring capacity per series; oldest samples drop beyond this.
    capacity: int = 4096

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError(f"metrics interval must be > 0, got {self.interval}")
        if self.capacity < 1:
            raise ValueError(f"metrics capacity must be >= 1, got {self.capacity}")


#: Config of the innermost active :func:`collecting` block, if any.
_config: Optional[MetricsConfig] = None

#: Dump sink of the innermost active :func:`collecting` block.
_sink: Optional[List[dict]] = None


def ambient_config() -> Optional[MetricsConfig]:
    """Active config: the :func:`collecting` block's, else the environment's."""
    if _config is not None:
        return _config
    if os.environ.get("REPRO_METRICS", "").strip().lower() in _TRUTHY:
        interval = float(os.environ.get("REPRO_METRICS_INTERVAL", "1.0"))
        return MetricsConfig(interval=interval)
    return None


MetricsArg = Union[None, bool, int, float, MetricsConfig]


def resolve_metrics(explicit: MetricsArg) -> Optional[MetricsConfig]:
    """Resolve a builder's ``metrics=`` argument to a config (or None = off).

    ``None`` defers to the ambient switch; ``False`` forces off even
    inside a :func:`collecting` block; ``True`` means defaults; a number
    is a sampling interval in seconds; a :class:`MetricsConfig` is taken
    as-is.
    """
    if explicit is None:
        return ambient_config()
    if explicit is False:
        return None
    if explicit is True:
        return MetricsConfig()
    if isinstance(explicit, MetricsConfig):
        return explicit
    if isinstance(explicit, (int, float)):
        return MetricsConfig(interval=float(explicit))
    raise TypeError(f"metrics= expects None/bool/seconds/MetricsConfig, "
                    f"got {explicit!r}")


def note_metrics(dump: dict) -> None:
    """Record one scenario run's metrics dump (called by Scenario.run)."""
    if _sink is not None:
        _sink.append(dump)


@contextmanager
def collecting(config: Union[MetricsConfig, float, None] = None,
               ) -> Iterator[List[dict]]:
    """Enable metrics collection for a block; yields the dump sink.

    Scenario runs inside the block that did not force ``metrics=False``
    are instrumented, and each appends its end-of-run dump (a plain,
    picklable dict — see ``ScenarioMetrics.dump``) to the yielded list
    in run order.
    """
    global _config, _sink
    if config is None:
        resolved = MetricsConfig()
    elif isinstance(config, MetricsConfig):
        resolved = config
    else:
        resolved = MetricsConfig(interval=float(config))
    previous, previous_sink = _config, _sink
    _config = resolved
    _sink = sink = []
    try:
        yield sink
    finally:
        _config, _sink = previous, previous_sink
