"""Typed metric registry: counters, gauges, fixed-bucket histograms.

The registry is the namespace a scenario's probes publish into.  It is
deliberately small and Prometheus-shaped:

* :class:`Counter` — a cumulative, monotonically non-decreasing value.
  Either owned (incremented with :meth:`Counter.add`) or *bound* to an
  existing model counter (``registry.counter(...).bind(lambda: mac.stats
  .data_sent)``) so instrumentation can read the model's own bookkeeping
  without duplicating it.
* :class:`Gauge` — an instantaneous value, almost always bound to a
  read-callback (queue depth, current backoff, channel busy fraction).
* :class:`Histogram` — fixed upper-bound buckets plus sum/count.  Fed by
  :meth:`Histogram.observe`; dumped once at end of run, never sampled
  into a time series.

Instruments are identified by ``(name, labels)`` where ``labels`` is a
frozen, sorted tuple of ``(key, value)`` string pairs — the registry
hands back the same instrument object for the same identity, and
iteration order is insertion order, so a fixed scenario always exports
series in the same order (determinism matters even for output files).

Everything here is passive with respect to the simulation: no events,
no trace records, no RNG.  Reading a bound gauge merely calls back into
model state.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

LabelItems = Tuple[Tuple[str, str], ...]
InstrumentKey = Tuple[str, LabelItems]

#: Default delay-style buckets (seconds): sub-slot to tens of seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
)


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Common identity + rendering for every instrument type."""

    kind: str = "?"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels = labels

    @property
    def key(self) -> InstrumentKey:
        return (self.name, self.labels)

    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pairs = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{type(self).__name__}({self.name}{{{pairs}}})"


class Counter(_Instrument):
    """Cumulative value: owned (``add``) or bound to a model callback."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self._value = 0.0
        self._read: Optional[Callable[[], float]] = None

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (add {amount})")
        self._value += amount

    def inc(self) -> None:
        self._value += 1.0

    def bind(self, read: Callable[[], float]) -> "Counter":
        """Source the value from ``read()`` instead of internal state."""
        self._read = read
        return self

    def read(self) -> float:
        if self._read is not None:
            return float(self._read())
        return self._value


class Gauge(_Instrument):
    """Instantaneous value: bound callback, or explicitly ``set``."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self._value = 0.0
        self._read: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self._value = float(value)

    def bind(self, read: Callable[[], float]) -> "Gauge":
        self._read = read
        return self

    def read(self) -> float:
        if self._read is not None:
            value = self._read()
            return 0.0 if value is None else float(value)
        return self._value


class Histogram(_Instrument):
    """Fixed-bucket histogram with cumulative-style bucket counts.

    ``bounds`` are inclusive upper edges; an implicit +inf bucket catches
    the overflow.  ``counts[i]`` is the number of observations ``<=
    bounds[i]`` that did not fit an earlier bucket (i.e. per-bucket, not
    cumulative — exporters can integrate if they want Prometheus ``le``
    semantics).
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems,
                 bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, labels)
        ordered = tuple(float(b) for b in bounds)
        if not ordered or any(b2 <= b1 for b1, b2 in zip(ordered, ordered[1:])):
            raise ValueError(f"histogram bounds must be strictly increasing: {bounds}")
        self.bounds = ordered
        self.counts = [0] * (len(ordered) + 1)  # +1: the +inf overflow bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if value != value:  # NaN (e.g. delay of an unmatched packet): skip
            return
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class MetricsRegistry:
    """Insertion-ordered instrument namespace for one scenario run."""

    def __init__(self) -> None:
        self._instruments: Dict[InstrumentKey, _Instrument] = {}

    # ------------------------------------------------------------- creation
    def _get_or_create(self, cls: type, name: str, labels: Dict[str, str],
                       **kwargs: object) -> _Instrument:
        key: InstrumentKey = (name, _label_items(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name}{dict(key[1])} already registered as "
                    f"{existing.kind}, requested {cls.__name__.lower()}"
                )
            return existing
        instrument = cls(name, key[1], **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        instrument = self._get_or_create(Counter, name, labels)
        assert isinstance(instrument, Counter)
        return instrument

    def gauge(self, name: str, **labels: str) -> Gauge:
        instrument = self._get_or_create(Gauge, name, labels)
        assert isinstance(instrument, Gauge)
        return instrument

    def histogram(self, name: str,
                  bounds: Sequence[float] = DEFAULT_BUCKETS,
                  **labels: str) -> Histogram:
        instrument = self._get_or_create(Histogram, name, labels, bounds=bounds)
        assert isinstance(instrument, Histogram)
        return instrument

    # ------------------------------------------------------------ iteration
    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self._instruments.values())

    def scalars(self) -> List[Union[Counter, Gauge]]:
        """Time-sampleable instruments (counters + gauges), insertion order."""
        return [i for i in self._instruments.values()
                if isinstance(i, (Counter, Gauge))]

    def histograms(self) -> List[Histogram]:
        return [i for i in self._instruments.values() if isinstance(i, Histogram)]
