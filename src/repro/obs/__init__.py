"""Live instrumentation: typed metrics, kernel-hooked samplers, exporters.

The observability subsystem turns an opaque simulation run into
time-resolved telemetry without perturbing it:

* :mod:`repro.obs.registry` — counters, gauges, fixed-bucket histograms;
* :mod:`repro.obs.sampler` — periodic snapshots into ring-buffered time
  series, driven by the kernel's passive clock observer;
* :mod:`repro.obs.probes` — the probe catalogue over MAC, channel and
  transport layers (``instrument_scenario``);
* :mod:`repro.obs.runtime` — the ambient opt-in the ScenarioBuilder,
  CLI (``--metrics``) and parallel runner use;
* :mod:`repro.obs.export` / :mod:`repro.obs.aggregate` — JSONL/CSV
  output and cross-seed mean/min/max bands.

The determinism contract: instrumentation schedules no events, writes no
trace records and draws no randomness, so a seeded run produces the same
``Trace.digest()`` and ``events_fired`` with metrics on or off
(tests/verify/test_metrics_determinism.py holds this to account).

Quick start::

    from repro.obs import collecting
    from repro.topo.builder import ScenarioBuilder

    builder = ScenarioBuilder(seed=1, profile=RunProfile(metrics=0.5))
    ...
    scenario = builder.build().run(500)
    t, backoff = scenario.metrics.series("mac.backoff", station="P1")
"""

from repro.obs.aggregate import aggregate_files, bands
from repro.obs.export import load_jsonl, write_csv, write_jsonl
from repro.obs.probes import ScenarioMetrics, instrument_scenario
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import MetricsConfig, collecting, resolve_metrics
from repro.obs.sampler import RingSeries, Sampler

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsConfig",
    "MetricsRegistry",
    "RingSeries",
    "Sampler",
    "ScenarioMetrics",
    "aggregate_files",
    "bands",
    "collecting",
    "instrument_scenario",
    "load_jsonl",
    "resolve_metrics",
    "write_csv",
    "write_jsonl",
]
