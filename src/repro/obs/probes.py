"""Probe catalogue: instrument a built scenario for live metrics.

:func:`instrument_scenario` walks a :class:`~repro.topo.builder.Scenario`
and publishes the layers' state into a fresh
:class:`~repro.obs.registry.MetricsRegistry`, then attaches a
:class:`~repro.obs.sampler.Sampler` to the scenario's kernel.  Everything
registered here is read-only with respect to the simulation: gauges and
bound counters read existing model attributes at sample time; the only
write paths into the model are two passive hooks (``BaseMac.probe`` for
state-dwell accounting and ``FlowRecorder.on_record`` for delivery
counters/delay histograms), neither of which schedules events, writes
trace records, or draws randomness.

Exported series (``{label}`` dimensions in braces):

========================  =======  ==================================================
``mac.backoff{station}``  gauge    current backoff counter (MACAW F(station), CSMA BEB window)
``mac.queue{station}``    gauge    MAC queue depth in packets
``mac.retries{station}``  gauge    retry count of the in-flight packet
``mac.dwell_s{station,state}``  counter  cumulative seconds spent in each MAC state
``mac.cts_timeouts{station}``   counter  RTS attempts that drew no CTS/ACK
``mac.drops{station}``    counter  packets abandoned after max retries
``chan.busy_frac``        gauge    fraction of elapsed time with >= 1 tx in flight
``chan.active_tx``        gauge    concurrent transmissions right now
``chan.clean``            counter  clean frame deliveries (capture survived)
``chan.corrupt``          counter  corrupted deliveries (collision/capture/noise)
``net.offered{stream}``   counter  packets the application handed down
``net.rejected{stream}``  counter  packets refused at enqueue (queue full)
``net.delivered{stream}`` counter  packets delivered to the application
``net.rto_events{stream}``      counter  TCP retransmission timeouts
``net.retransmissions{stream}`` counter  TCP segments retransmitted
``net.delay_s{stream}``   histogram  end-to-end packet delay (dumped at end)
``fault.active``          gauge    faults currently in effect (injector)
``fault.injected{kind}``  counter  fault activations by effect kind
``fault.recovery_s``      histogram  fault outage durations (dumped at end)
========================  =======  ==================================================

The ``fault.*`` rows exist only when the scenario's profile carried a
non-empty :class:`~repro.fault.schedule.FaultSchedule`; they read the
injector's counters and tap its ``on_recovery`` callback, which — like
the recorder tap — never writes back into the simulation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.obs.registry import Counter, Histogram, MetricsRegistry
from repro.obs.runtime import MetricsConfig
from repro.obs.sampler import Sampler

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mac.base import BaseMac
    from repro.topo.builder import Scenario

__all__ = ["MacProbe", "ScenarioMetrics", "instrument_scenario"]

#: End-to-end delay buckets (seconds), spanning one data airtime (~16 ms at
#: 256 kbps) out to deep-queue pathologies.
DELAY_BUCKETS: Tuple[float, ...] = (
    0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0,
)

#: Fault recovery-time buckets (seconds): sub-second blips out to the
#: minute-scale outages of the churn presets.
RECOVERY_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0,
)


class MacProbe:
    """Per-station dwell-time accounting, fed by ``_set_state`` hooks.

    Counters are created lazily on the first exit from a state, so a
    MACA run exports only Appendix A's five states, never Appendix B's
    ten.  The dwell of the *current* state is committed on the next
    transition; a station parked in one state to the end of the run
    keeps that tail out of the counter (time series consumers diff
    cumulative values, so only the final partial interval is affected).
    """

    __slots__ = ("_registry", "_station", "_entered", "_dwell")

    def __init__(self, registry: MetricsRegistry, station: str, now: float) -> None:
        self._registry = registry
        self._station = station
        self._entered = now
        self._dwell: Dict[str, Counter] = {}

    def note_state(self, old: str, new: str, now: float) -> None:
        counter = self._dwell.get(old)
        if counter is None:
            counter = self._registry.counter(
                "mac.dwell_s", station=self._station, state=old
            )
            self._dwell[old] = counter
        counter.add(now - self._entered)
        self._entered = now


class ScenarioMetrics:
    """Handle tying one scenario run to its registry and sampler."""

    def __init__(self, scenario: "Scenario", config: MetricsConfig) -> None:
        self.config = config
        self.registry = MetricsRegistry()
        self.stations: Dict[str, str] = {}
        self._scenario = scenario
        self._wire(scenario)
        self.sampler = Sampler(
            scenario.sim, self.registry,
            interval=config.interval, capacity=config.capacity,
        )

    # -------------------------------------------------------------- wiring
    def _wire(self, scenario: "Scenario") -> None:
        registry = self.registry
        sim = scenario.sim
        for name, station in scenario.stations.items():
            self._wire_mac(name, station.mac)
        medium = scenario.medium
        registry.gauge("chan.busy_frac").bind(
            lambda: medium.busy_seconds() / sim.now if sim.now > 0 else 0.0
        )
        registry.gauge("chan.active_tx").bind(medium.active_count)
        registry.counter("chan.clean").bind(lambda: medium.clean_deliveries)
        registry.counter("chan.corrupt").bind(lambda: medium.corrupt_deliveries)
        for stream_id, stream in scenario.streams.items():
            counters = getattr(stream, "counters", None)
            if counters is None:  # pragma: no cover - every stream type has one
                continue
            for key in counters():
                registry.counter(f"net.{key}", stream=stream_id).bind(
                    lambda s=stream, k=key: s.counters()[k]
                )
        self._wire_recorder(scenario)
        self._wire_faults(scenario)

    def _wire_mac(self, name: str, mac: "BaseMac") -> None:
        registry = self.registry
        self.stations[name] = mac.protocol_name
        registry.gauge("mac.backoff", station=name).bind(mac.backoff_value)
        registry.gauge("mac.queue", station=name).bind(mac.queue_len)
        registry.gauge("mac.retries", station=name).bind(mac.current_retries)
        stats = mac.stats
        registry.counter("mac.cts_timeouts", station=name).bind(
            lambda s=stats: s.cts_timeouts
        )
        registry.counter("mac.drops", station=name).bind(lambda s=stats: s.drops)
        mac.probe = MacProbe(registry, name, mac.sim.now)

    def _wire_recorder(self, scenario: "Scenario") -> None:
        """Tap FlowRecorder for true delivery counters + delay histograms."""
        registry = self.registry
        delivered: Dict[str, Counter] = {}
        delays: Dict[str, Histogram] = {}

        def on_record(stream: str, time: float, size: int, delay: float) -> None:
            counter = delivered.get(stream)
            if counter is None:
                counter = delivered[stream] = registry.counter(
                    "net.delivered", stream=stream
                )
                delays[stream] = registry.histogram(
                    "net.delay_s", bounds=DELAY_BUCKETS, stream=stream
                )
            counter.inc()
            delays[stream].observe(delay)

        scenario.recorder.on_record = on_record

    def _wire_faults(self, scenario: "Scenario") -> None:
        """Publish the fault injector's telemetry (if one is installed)."""
        injector = scenario.fault_injector
        if injector is None:
            return
        registry = self.registry
        registry.gauge("fault.active").bind(injector.active_count)
        for kind in injector.injected:
            registry.counter("fault.injected", kind=kind).bind(
                lambda i=injector, k=kind: i.injected[k]
            )
        recovery = registry.histogram("fault.recovery_s", bounds=RECOVERY_BUCKETS)

        def on_recovery(kind: str, duration: float) -> None:
            recovery.observe(duration)

        injector.on_recovery = on_recovery

    # ------------------------------------------------------------- reading
    def series(self, name: str, **labels: str) -> Tuple[list, list]:
        return self.sampler.series(name, **labels)

    def dump(self) -> dict:
        """End-of-run snapshot as a plain, picklable, JSON-able dict."""
        buffers = self.sampler.all_series()
        series = []
        for instrument in self.registry.scalars():
            buf = buffers.get(instrument.key)
            if buf is None:
                continue
            t, v = buf.points()
            series.append({
                "name": instrument.name,
                "labels": instrument.label_dict(),
                "kind": instrument.kind,
                "t": t,
                "v": v,
                "dropped": buf.dropped,
            })
        histograms = [{
            "name": h.name,
            "labels": h.label_dict(),
            "kind": h.kind,
            "bounds": list(h.bounds),
            "counts": list(h.counts),
            "sum": h.sum,
            "count": h.count,
        } for h in self.registry.histograms()]
        return {
            "schema": 1,
            "interval": self.config.interval,
            "t_end": self._scenario.sim.now,
            "samples": self.sampler.samples_taken,
            "stations": dict(self.stations),
            "series": series,
            "histograms": histograms,
        }


def instrument_scenario(scenario: "Scenario",
                        config: Optional[MetricsConfig] = None) -> ScenarioMetrics:
    """Attach the full probe catalogue + sampler to a built scenario."""
    return ScenarioMetrics(scenario, config if config is not None else MetricsConfig())
