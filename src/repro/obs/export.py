"""Exporters: metrics dumps to JSONL and CSV, and back.

One JSONL file holds one cell's metrics (one experiment × seed): a
``meta`` line followed by one line per series and per histogram, each
tagged with the index of the scenario run it came from (experiments may
run several scenario variants per cell).  JSONL keeps every series
self-describing and appendable; CSV flattens the samples into long-form
``run,name,labels,t,v`` rows for spreadsheet/pandas consumption.

All writes are deterministic: dict keys are emitted sorted and series
order follows registry insertion order, so identical runs produce
byte-identical files.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

__all__ = ["load_jsonl", "write_csv", "write_jsonl"]

PathLike = Union[str, Path]


def _dumps(obj: dict) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def write_jsonl(path: PathLike, dumps: Sequence[dict],
                meta: Optional[dict] = None) -> int:
    """Write scenario metrics ``dumps`` (see ``ScenarioMetrics.dump``) to
    ``path`` as JSONL.  Returns the number of data lines written."""
    lines: List[str] = []
    header = {"kind": "meta", "schema": 1, "runs": len(dumps)}
    if meta:
        header.update(meta)
    lines.append(_dumps(header))
    count = 0
    for run, dump in enumerate(dumps):
        run_info = {
            "run": run,
            "interval": dump.get("interval"),
            "t_end": dump.get("t_end"),
            "stations": dump.get("stations", {}),
        }
        for series in dump.get("series", []):
            record = {"kind": "series", **run_info, **series}
            record["kind"] = "series"  # series dicts carry their own "kind"
            record["itype"] = series["kind"]
            lines.append(_dumps(record))
            count += 1
        for hist in dump.get("histograms", []):
            record = {"kind": "hist", **run_info, **hist}
            record["kind"] = "hist"
            record["itype"] = hist["kind"]
            lines.append(_dumps(record))
            count += 1
    Path(path).write_text("\n".join(lines) + "\n")
    return count


def load_jsonl(path: PathLike) -> Dict[str, object]:
    """Parse a metrics JSONL file into ``{"meta": ..., "series": [...],
    "histograms": [...]}`` (inverse of :func:`write_jsonl`)."""
    meta: dict = {}
    series: List[dict] = []
    histograms: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("kind")
            if kind == "meta":
                meta = record
            elif kind == "series":
                series.append(record)
            elif kind == "hist":
                histograms.append(record)
            else:
                raise ValueError(f"{path}: unknown record kind {kind!r}")
    return {"meta": meta, "series": series, "histograms": histograms}


def write_csv(path: PathLike, dumps: Sequence[dict]) -> int:
    """Flatten time series into long-form CSV rows; returns the row count."""
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["run", "name", "labels", "itype", "t", "v"])
        for run, dump in enumerate(dumps):
            for series in dump.get("series", []):
                labels = _dumps(series.get("labels", {}))
                for t, v in zip(series["t"], series["v"]):
                    writer.writerow([run, series["name"], labels,
                                     series["kind"], t, v])
                    rows += 1
    return rows


def iter_series(loaded: Dict[str, object]) -> Iterable[dict]:
    """The series records of a :func:`load_jsonl` result (convenience)."""
    return list(loaded.get("series", []))  # type: ignore[arg-type]
