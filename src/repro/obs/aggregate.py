"""Aggregate per-seed metrics series across runner sweeps.

A seed sweep produces one JSONL file per cell (``table2_seed0.metrics
.jsonl``, ``table2_seed1...``).  :func:`bands` merges the files'
matching series — same run index, name and labels — into pointwise
mean/min/max envelopes, aligned on sample time:

    python -m repro.obs.aggregate runs/table2_seed*.metrics.jsonl \
        -o runs/table2_bands.json

Series are aligned by the *sample times themselves*, not by array
index: lazily-created instruments (per-state dwell counters) start
sampling mid-run, and ring overflow can trim the head of a long series,
so matching seeds may cover different time windows.  ``n`` reports how
many seeds contributed to each point.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.export import load_jsonl

__all__ = ["aggregate_files", "bands", "main"]

SeriesKey = Tuple[int, str, Tuple[Tuple[str, str], ...]]


def _series_key(record: dict) -> SeriesKey:
    labels = tuple(sorted((str(k), str(v))
                          for k, v in record.get("labels", {}).items()))
    return (int(record.get("run", 0)), str(record["name"]), labels)


def bands(series_sets: Sequence[Sequence[dict]]) -> List[dict]:
    """Merge matching series from N seeds into mean/min/max bands.

    ``series_sets`` holds one sequence of series records per seed.
    Returns one band record per distinct ``(run, name, labels)`` key, in
    first-seen order, with parallel ``t``/``mean``/``min``/``max``/``n``
    arrays over the union of sample times.
    """
    grouped: Dict[SeriesKey, Dict[float, List[float]]] = {}
    order: List[SeriesKey] = []
    exemplar: Dict[SeriesKey, dict] = {}
    for series_set in series_sets:
        for record in series_set:
            key = _series_key(record)
            points = grouped.get(key)
            if points is None:
                points = grouped[key] = {}
                order.append(key)
                exemplar[key] = record
            seen: set = set()
            for t, v in zip(record["t"], record["v"]):
                t = float(t)
                if t in seen:
                    # Within one seed's record a sample time must be
                    # unique: merging duplicates would silently inflate
                    # that seed's weight in the band (cross-seed
                    # alignment on equal times is the whole point and
                    # stays as-is).
                    raise ValueError(
                        f"duplicate sample time {t!r} within series "
                        f"run={key[0]} name={key[1]!r} labels={dict(key[2])}"
                    )
                seen.add(t)
                points.setdefault(t, []).append(float(v))

    merged: List[dict] = []
    for key in order:
        points = grouped[key]
        times = sorted(points)
        values = [points[t] for t in times]
        record = exemplar[key]
        merged.append({
            "run": key[0],
            "name": key[1],
            "labels": dict(key[2]),
            "itype": record.get("itype", record.get("kind", "gauge")),
            "t": times,
            "mean": [sum(vs) / len(vs) for vs in values],
            "min": [min(vs) for vs in values],
            "max": [max(vs) for vs in values],
            "n": [len(vs) for vs in values],
            "seeds": len(series_sets),
        })
    return merged


def aggregate_files(paths: Sequence[str]) -> dict:
    """Load metrics JSONL files and band their series (one file = one seed)."""
    loaded = [load_jsonl(path) for path in paths]
    return {
        "sources": [str(p) for p in paths],
        "seeds": len(paths),
        "bands": bands([entry["series"] for entry in loaded]),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.aggregate",
        description="Merge per-seed metrics JSONL files into mean/min/max bands.",
    )
    parser.add_argument("files", nargs="+", help="metrics .jsonl files, one per seed")
    parser.add_argument("-o", "--out", default=None, metavar="OUT.json",
                        help="write the bands as JSON here (default: stdout)")
    args = parser.parse_args(argv)

    for path in args.files:
        if not Path(path).is_file():
            print(f"aggregate: no such file: {path}", file=sys.stderr)
            return 2
    result = aggregate_files(args.files)
    rendered = json.dumps(result, sort_keys=True, indent=None, separators=(",", ":"))
    if args.out:
        Path(args.out).write_text(rendered + "\n")
        print(f"aggregate: {len(result['bands'])} bands from "
              f"{result['seeds']} seeds -> {args.out}")
    else:
        print(rendered)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
