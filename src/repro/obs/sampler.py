"""Kernel-hooked periodic sampler with ring-buffered time series.

The :class:`Sampler` attaches to a :class:`~repro.sim.kernel.Simulator`
as its passive clock observer.  Whenever the kernel is about to advance
the clock past one or more sample deadlines, the sampler reads every
scalar instrument in its registry and appends ``(t, value)`` points to
per-instrument :class:`RingSeries` buffers.

Semantics worth spelling out:

* Deadlines are ``base + k * interval`` computed from an integer tick
  counter, so a 2000 s run at 0.25 s cadence accumulates no float drift.
* A sample at deadline ``d`` reflects simulation state *immediately
  before* time ``d`` — the observer runs before the event at ``d`` fires
  (and before the clock pads out to the run horizon).
* The sampler is passive: it schedules nothing, records nothing to the
  trace, draws no randomness.  A run with a sampler attached fires the
  same events in the same order as one without.
* Buffers are rings: when ``capacity`` is exhausted the oldest points
  fall off and ``dropped`` counts them, bounding memory on arbitrarily
  long runs.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.obs.registry import InstrumentKey, MetricsRegistry
from repro.sim.kernel import Simulator

__all__ = ["RingSeries", "Sampler"]


class RingSeries:
    """Fixed-capacity ring of ``(t, value)`` samples."""

    __slots__ = ("capacity", "dropped", "_t", "_v", "_start")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._t: List[float] = []
        self._v: List[float] = []
        self._start = 0  # index of the oldest sample once the ring is full

    def append(self, t: float, value: float) -> None:
        if len(self._t) < self.capacity:
            self._t.append(t)
            self._v.append(value)
        else:
            self._t[self._start] = t
            self._v[self._start] = value
            self._start = (self._start + 1) % self.capacity
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._t)

    def points(self) -> Tuple[List[float], List[float]]:
        """Samples in time order as parallel ``(times, values)`` lists."""
        if self._start == 0:
            return list(self._t), list(self._v)
        return (self._t[self._start:] + self._t[:self._start],
                self._v[self._start:] + self._v[:self._start])


class Sampler:
    """Periodic snapshot of a registry's scalars, driven by the kernel clock.

    Attaching takes an immediate baseline sample at the current clock
    value, then samples at every multiple of ``interval`` after it.
    Instruments created after attach (probes register some lazily, e.g.
    per-state dwell counters on first transition) join the series set at
    the next deadline; their series simply start later.
    """

    def __init__(self, sim: Simulator, registry: MetricsRegistry,
                 interval: float = 1.0, capacity: int = 4096) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be > 0, got {interval}")
        self.sim = sim
        self.registry = registry
        self.interval = float(interval)
        self.capacity = int(capacity)
        self.samples_taken = 0
        self._base = sim.now
        self._ticks = 0
        self._series: Dict[InstrumentKey, RingSeries] = {}
        sim.attach_observer(self._on_advance)
        self._sample(sim.now)  # baseline at attach time

    # ------------------------------------------------------------- observing
    def _on_advance(self, next_time: float) -> None:
        """Kernel observer: flush every deadline the clock is about to pass."""
        while True:
            deadline = self._base + (self._ticks + 1) * self.interval
            if deadline > next_time:
                return
            self._ticks += 1
            self._sample(deadline)

    def _sample(self, t: float) -> None:
        series = self._series
        for instrument in self.registry.scalars():
            buf = series.get(instrument.key)
            if buf is None:
                buf = series[instrument.key] = RingSeries(self.capacity)
            buf.append(t, instrument.read())
        self.samples_taken += 1

    def detach(self) -> None:
        self.sim.detach_observer(self._on_advance)

    # -------------------------------------------------------------- reading
    def series(self, name: str, **labels: str) -> Tuple[List[float], List[float]]:
        """Time/value lists for one instrument (empty if never sampled)."""
        key: InstrumentKey = (name, tuple(sorted(labels.items())))
        buf = self._series.get(key)
        return buf.points() if buf is not None else ([], [])

    def all_series(self) -> Dict[InstrumentKey, RingSeries]:
        return dict(self._series)
