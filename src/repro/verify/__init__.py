"""Verification tooling: protocol conformance and static analysis.

Two independent layers keep the reproduction honest:

* **Protocol conformance** (:mod:`repro.verify.statecharts`,
  :mod:`repro.verify.conformance`) — declarative transition tables for
  Appendix A (MACA) and Appendix B (MACAW) plus a trace linter that
  replays a :class:`repro.sim.trace.Trace` and flags illegal state
  transitions, CTS-without-RTS, DATA-without-DS, ACK/ESN sequence
  violations, overlapping transmissions and non-monotonic clocks.
* **Static analysis** (:mod:`repro.verify.analysis`, with
  :mod:`repro.verify.lint` as its legacy compat shim) — a pluggable
  two-pass AST engine enforcing the rules that make a single seed
  reproduce an entire run (no ``random.*`` or wall-clock calls in model
  code, no mutable default arguments, no mutation of the kernel clock)
  plus the cross-module contracts: the layer DAG, frozen-value
  immutability, order-stable iteration and kernel-callback discipline.
  Run it with ``macaw-sim analyze src/repro``; see DESIGN.md §10.

Sanitized runs are opted into per scenario (``ScenarioBuilder(
profile=RunProfile(sanitize=True))``), globally (:func:`repro.verify.runtime.force_sanitize` or the
``REPRO_SANITIZE`` environment variable), or from the command line
(``macaw-sim verify-trace <experiment>``).
"""

from repro.verify.conformance import (
    ConformanceError,
    ConformanceReport,
    StationProfile,
    Violation,
    check_scenario,
    check_trace,
    profile_for_mac,
)
# repro.verify.lint is deliberately NOT imported here: it is a module-level
# tool (`python -m repro.verify.lint`), and importing it from the package
# __init__ would trigger the runpy double-import warning on every run.
from repro.verify.runtime import (
    SanitizeStats,
    force_sanitize,
    sanitize_enabled,
    sanitized,
)
from repro.verify.statecharts import (
    MACA_STATECHART,
    MACAW_STATECHART,
    Statechart,
    statechart_for,
)

__all__ = [
    "ConformanceError",
    "ConformanceReport",
    "StationProfile",
    "Violation",
    "check_scenario",
    "check_trace",
    "profile_for_mac",
    "SanitizeStats",
    "force_sanitize",
    "sanitize_enabled",
    "sanitized",
    "MACA_STATECHART",
    "MACAW_STATECHART",
    "Statechart",
    "statechart_for",
]
