"""Trace-level protocol conformance sanitizer.

Replays a recorded :class:`repro.sim.trace.Trace` against the declarative
statecharts of :mod:`repro.verify.statecharts` and the control-frame
dialogue rules of the paper, reporting every deviation as a
:class:`Violation`.  The checks:

``non-monotonic-clock``
    Trace timestamps must never decrease (the kernel guarantees this;
    the check catches hand-built or corrupted traces).
``unknown-state``
    A state record names a state outside the station's statechart.
``illegal-transition``
    A state change not in the statechart's transition table, or whose
    source disagrees with the tracked current state (a gap in the trace).
``cts-without-rts``
    A station transmitted a CTS without a cleanly-received, not-yet-
    answered RTS from that peer (control rule 5 grants one CTS per RTS).
``data-without-ds``
    With the DS packet enabled, unicast DATA must be announced by a DS
    to the same peer with the same ESN (§3.3.2); multicast DATA is exempt
    because the multicast exchange has no DS (§3.3.4).
``ack-unsolicited``
    An ACK whose ESN matches no DATA received from that peer.
``ack-duplicate-esn``
    An ACK re-sent for an already-acknowledged ESN without the
    retransmitted RTS that control rule 7 requires as its trigger.
``esn-regression``
    A sender's DATA ESNs for one stream moved backwards.  Skipped for
    the §4 piggyback/NACK variants, whose loss-resurrection legitimately
    reorders the stream (see ``core/macaw.py``).
``overlapping-transmission``
    One station had two of its own frames on the air at once (physically
    impossible for a half-duplex radio).

Stations running MACs without the RTS-CTS dialogue (CSMA, polling) are
checked only for the protocol-independent invariants (clock monotonicity
and transmission overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set

from repro.core.macaw import MacawMac
from repro.mac.frames import MULTICAST
from repro.sim.trace import Trace, TraceRecord
from repro.verify.statecharts import Statechart, statechart_for

__all__ = [
    "Violation",
    "ConformanceReport",
    "ConformanceError",
    "StationProfile",
    "profile_for_mac",
    "check_trace",
    "check_scenario",
]

#: Slack for float comparisons of transmission boundaries (seconds).
_EPS = 1e-12


@dataclass(frozen=True)
class Violation:
    """One conformance finding."""

    code: str
    time: float
    station: str
    message: str

    def render(self) -> str:
        return f"t={self.time:.6f} {self.station}: [{self.code}] {self.message}"


@dataclass(frozen=True)
class StationProfile:
    """What the checker needs to know about one station."""

    name: str
    #: Transition table, or None for MACs outside the RTS-CTS family.
    statechart: Optional[Statechart] = None
    use_ds: bool = False
    use_ack: bool = False
    #: False when §4 resurrection (piggyback/NACK) may reorder ESNs.
    ordered_esn: bool = True


@dataclass
class ConformanceReport:
    """All violations found in one trace replay."""

    violations: List[Violation] = field(default_factory=list)
    #: Records examined, by category (sanity signal: 0 means no trace).
    examined: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def by_code(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for violation in self.violations:
            out[violation.code] = out.get(violation.code, 0) + 1  # repro-lint: allow=REPRO107 (report summary)
        return out

    def render(self, limit: int = 20) -> str:
        if self.ok:
            total = sum(self.examined.values())
            return f"conformance OK ({total} trace records examined)"
        lines = [f"{len(self.violations)} conformance violation(s):"]
        for violation in self.violations[:limit]:
            lines.append("  " + violation.render())
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)


class ConformanceError(AssertionError):
    """Raised by sanitized runs when the trace violates the protocol."""

    def __init__(self, report: ConformanceReport) -> None:
        super().__init__(report.render())
        self.report = report


def profile_for_mac(mac: Any) -> StationProfile:
    """Build the checker profile for one attached MAC entity.

    :class:`~repro.core.macaw.MacawMac` (and its MACA subclass) get the
    full dialogue profile derived from their config; anything else is
    checked only for protocol-independent invariants.
    """
    if isinstance(mac, MacawMac):
        config = mac.config
        return StationProfile(
            name=mac.name,
            statechart=statechart_for(config),
            use_ds=config.use_ds,
            use_ack=config.use_ack,
            ordered_esn=not (config.ack_variant == "piggyback" or config.use_nack),
        )
    return StationProfile(name=mac.name)


class _DialogueState:
    """Mutable per-station bookkeeping while replaying a trace."""

    __slots__ = (
        "state",
        "pending_rts",
        "pending_ds",
        "pending_data_esn",
        "reack_esn",
        "received_esns",
        "acked_esns",
        "tx_end",
        "max_data_esn",
    )

    def __init__(self, initial: str) -> None:
        self.state = initial
        #: Clean, unanswered RTS per peer: peer -> esn (None allowed).
        self.pending_rts: Dict[str, Optional[int]] = {}
        #: DS announced but DATA not yet sent, per peer: peer -> esn.
        self.pending_ds: Dict[str, Optional[int]] = {}
        #: Most recent clean DATA not yet acknowledged, per peer.
        self.pending_data_esn: Dict[str, Optional[int]] = {}
        #: Rule-7 re-ACK armed by a retransmitted RTS, per peer.
        self.reack_esn: Dict[str, Optional[int]] = {}
        #: Every ESN of clean DATA received, per peer.
        self.received_esns: Dict[str, Set[int]] = {}
        #: Every ESN this station has acknowledged, per peer.
        self.acked_esns: Dict[str, Set[int]] = {}
        #: End time of this station's own in-flight transmission.
        self.tx_end: float = float("-inf")
        #: Highest DATA ESN sent per destination (esn-regression check).
        self.max_data_esn: Dict[str, int] = {}


def check_trace(
    trace: Iterable[TraceRecord],
    profiles: Mapping[str, StationProfile],
    bitrate_bps: float = 256_000.0,
) -> ConformanceReport:
    """Replay ``trace`` against the per-station ``profiles``.

    Stations appearing in the trace without a profile are treated like
    non-dialogue MACs (invariant checks only).  ``bitrate_bps`` converts
    frame sizes to airtime for the overlap check.
    """
    report = ConformanceReport()
    states: Dict[str, _DialogueState] = {}
    last_time = float("-inf")

    def dialogue(name: str) -> _DialogueState:
        entry = states.get(name)
        if entry is None:
            profile = profiles.get(name)
            initial = (
                profile.statechart.initial
                if profile is not None and profile.statechart is not None
                else "IDLE"
            )
            entry = _DialogueState(initial)
            states[name] = entry
        return entry

    for record in trace:
        report.examined[record.category] = report.examined.get(record.category, 0) + 1  # repro-lint: allow=REPRO107 (sanitizer tally)
        if record.time < last_time - _EPS:
            report.violations.append(Violation(
                "non-monotonic-clock", record.time, record.station,
                f"clock moved backwards ({last_time:.9f} -> {record.time:.9f})",
            ))
        last_time = max(last_time, record.time)

        profile = profiles.get(record.station)
        if record.category == "state":
            _check_state(record, profile, dialogue(record.station), report)
        elif record.category == "send":
            _check_send(record, profile, dialogue(record.station), report, bitrate_bps)
        elif record.category == "recv":
            _note_recv(record, profile, dialogue(record.station))
        elif record.category == "power":
            # A power cycle (Figure 9, fault-injection churn) reboots the
            # radio into its statechart's initial state and forgets any
            # half-open dialogue; replay must do the same or the next
            # transition reads as a trace gap.
            initial = (
                profile.statechart.initial
                if profile is not None and profile.statechart is not None
                else "IDLE"
            )
            entry = dialogue(record.station)
            entry.state = initial
            entry.pending_rts.clear()
            entry.pending_ds.clear()
            entry.pending_data_esn.clear()
            entry.reack_esn.clear()
            entry.tx_end = float("-inf")
    return report


def _check_state(
    record: TraceRecord,
    profile: Optional[StationProfile],
    entry: _DialogueState,
    report: ConformanceReport,
) -> None:
    frm = str(record.detail.get("frm", ""))
    to = str(record.detail.get("to", ""))
    if profile is None or profile.statechart is None:
        entry.state = to
        return
    chart = profile.statechart
    for state in (frm, to):
        if state not in chart:
            report.violations.append(Violation(
                "unknown-state", record.time, record.station,
                f"state {state!r} is not in the {chart.name} statechart",
            ))
    if frm != entry.state:
        report.violations.append(Violation(
            "illegal-transition", record.time, record.station,
            f"trace gap: transition claims {frm!r} but station was in"
            f" {entry.state!r}",
        ))
    elif not chart.allows(frm, to):
        report.violations.append(Violation(
            "illegal-transition", record.time, record.station,
            f"{frm} -> {to} is not a legal {chart.name} transition",
        ))
    entry.state = to


def _check_send(
    record: TraceRecord,
    profile: Optional[StationProfile],
    entry: _DialogueState,
    report: ConformanceReport,
    bitrate_bps: float,
) -> None:
    detail = record.detail
    kind = detail.get("kind")
    dst = str(detail.get("dst", ""))
    esn = detail.get("esn")
    size = detail.get("size")

    # Half-duplex: one station, one frame on the air at a time.
    if record.time < entry.tx_end - _EPS:
        report.violations.append(Violation(
            "overlapping-transmission", record.time, record.station,
            f"{kind} to {dst} starts before the previous transmission ends"
            f" at t={entry.tx_end:.9f}",
        ))
    if isinstance(size, (int, float)) and size > 0:
        entry.tx_end = record.time + (float(size) * 8.0) / bitrate_bps

    if profile is None or profile.statechart is None or kind is None:
        return

    if kind == "CTS":
        if dst not in entry.pending_rts:
            report.violations.append(Violation(
                "cts-without-rts", record.time, record.station,
                f"CTS to {dst} without an unanswered RTS from {dst}",
            ))
        else:
            del entry.pending_rts[dst]
    elif kind == "DS":
        entry.pending_ds[dst] = esn
    elif kind == "DATA":
        if profile.use_ds and dst != MULTICAST:
            announced = entry.pending_ds.pop(dst, "missing")
            if announced == "missing":
                report.violations.append(Violation(
                    "data-without-ds", record.time, record.station,
                    f"DATA to {dst} without a preceding DS",
                ))
            elif announced is not None and esn is not None and announced != esn:
                report.violations.append(Violation(
                    "data-without-ds", record.time, record.station,
                    f"DATA esn={esn} to {dst} but the DS announced"
                    f" esn={announced}",
                ))
        if esn is not None and dst != MULTICAST:
            previous = entry.max_data_esn.get(dst)
            if (
                profile.ordered_esn
                and previous is not None
                and int(esn) < previous
            ):
                report.violations.append(Violation(
                    "esn-regression", record.time, record.station,
                    f"DATA esn={esn} to {dst} after esn={previous}",
                ))
            entry.max_data_esn[dst] = max(previous or 0, int(esn))
    elif kind == "ACK":
        _check_ack(record, entry, dst, esn, report)


def _check_ack(
    record: TraceRecord,
    entry: _DialogueState,
    dst: str,
    esn: Any,
    report: ConformanceReport,
) -> None:
    if esn is None:
        # ACKs without an ESN carry no sequence contract to check.
        return
    esn = int(esn)
    acked = entry.acked_esns.setdefault(dst, set())
    if entry.pending_data_esn.get(dst) == esn:
        entry.pending_data_esn[dst] = None
        acked.add(esn)
        return
    if entry.reack_esn.get(dst) == esn:
        entry.reack_esn[dst] = None
        acked.add(esn)
        return
    if esn in entry.received_esns.get(dst, set()):
        report.violations.append(Violation(
            "ack-duplicate-esn", record.time, record.station,
            f"re-ACK of esn={esn} to {dst} without a retransmitted RTS",
        ))
    else:
        report.violations.append(Violation(
            "ack-unsolicited", record.time, record.station,
            f"ACK esn={esn} to {dst} matches no DATA received from {dst}",
        ))


def _note_recv(
    record: TraceRecord,
    profile: Optional[StationProfile],
    entry: _DialogueState,
) -> None:
    detail = record.detail
    if not detail.get("clean", False):
        return
    if str(detail.get("dst", "")) != record.station:
        return  # overheard or multicast: not part of this station's dialogue
    kind = detail.get("kind")
    src = str(detail.get("src", ""))
    esn = detail.get("esn")
    if kind == "RTS":
        entry.pending_rts[src] = esn
        if esn is not None and int(esn) in entry.received_esns.get(src, set()):
            # Control rule 7: a re-requested exchange may be re-ACKed.
            entry.reack_esn[src] = int(esn)
    elif kind == "DATA":
        if esn is not None:
            entry.pending_data_esn[src] = int(esn)
            entry.received_esns.setdefault(src, set()).add(int(esn))


def check_scenario(scenario: Any) -> ConformanceReport:
    """Check a built :class:`~repro.topo.builder.Scenario`'s trace.

    Profiles are derived from the scenario's stations and the medium's
    bitrate; the scenario must have been built with tracing enabled.
    """
    profiles = {
        name: profile_for_mac(station.mac)
        for name, station in scenario.stations.items()
    }
    trace: Trace = scenario.sim.trace
    return check_trace(trace, profiles, bitrate_bps=scenario.medium.bitrate_bps)
