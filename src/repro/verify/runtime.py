"""Process-wide switch for sanitized (conformance-checked) runs.

Experiments build their scenarios deep inside driver code, so the
sanitizer cannot always be threaded through as a parameter.  This module
provides the global opt-in that :class:`repro.topo.builder.ScenarioBuilder`
consults when its own ``sanitize`` argument is left unset:

* :func:`force_sanitize` / the :func:`sanitized` context manager flip the
  switch programmatically (the ``verify-trace`` CLI uses this);
* the ``REPRO_SANITIZE`` environment variable (``1``/``true``/``yes``/
  ``on``) flips it from the outside, e.g. for a whole pytest run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

__all__ = [
    "SanitizeStats",
    "force_sanitize",
    "note_report",
    "sanitize_enabled",
    "sanitized",
]

#: Programmatic override; None means "fall back to the environment".
_forced: Optional[bool] = None

_TRUTHY = ("1", "true", "yes", "on")


def force_sanitize(value: Optional[bool]) -> None:
    """Set (True/False) or clear (None) the global sanitize override."""
    global _forced
    _forced = value


def sanitize_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve whether a run should be sanitized.

    Precedence: the caller's explicit choice, then the programmatic
    override, then the ``REPRO_SANITIZE`` environment variable.
    """
    if explicit is not None:
        return explicit
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


@dataclass
class SanitizeStats:
    """Aggregate over the scenario runs inside one :func:`sanitized` block."""

    runs: int = 0
    records: int = 0
    violations: int = 0


#: Stats object of the innermost active :func:`sanitized` block, if any.
_stats: Optional[SanitizeStats] = None


def note_report(examined: int, violations: int) -> None:
    """Record one scenario's conformance results (called by Scenario.run)."""
    if _stats is not None:
        _stats.runs += 1
        _stats.records += examined
        _stats.violations += violations


@contextmanager
def sanitized(value: bool = True) -> Iterator[SanitizeStats]:
    """Temporarily force sanitized mode on (or off) for a code block.

    Yields a :class:`SanitizeStats` that accumulates the scenario runs
    checked inside the block (useful for "N records examined" reporting).
    """
    global _forced, _stats
    previous, previous_stats = _forced, _stats
    _forced = value
    _stats = stats = SanitizeStats()
    try:
        yield stats
    finally:
        _forced, _stats = previous, previous_stats
