"""Process-wide switch for sanitized (conformance-checked) runs.

Experiments build their scenarios deep inside driver code, so the
sanitizer cannot always be threaded through as a parameter.  This module
provides the global opt-in that :class:`repro.topo.builder.ScenarioBuilder`
consults when its own ``sanitize`` argument is left unset:

* :func:`force_sanitize` / the :func:`sanitized` context manager flip the
  switch programmatically (the ``verify-trace`` CLI uses this);
* the ``REPRO_SANITIZE`` environment variable (``1``/``true``/``yes``/
  ``on``) flips it from the outside, e.g. for a whole pytest run.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, List, Optional

__all__ = [
    "SanitizeStats",
    "capturing_digests",
    "capturing_traces",
    "digests_enabled",
    "force_sanitize",
    "note_digest",
    "note_report",
    "note_trace",
    "sanitize_enabled",
    "sanitized",
    "traces_enabled",
]

#: Programmatic override; None means "fall back to the environment".
_forced: Optional[bool] = None

_TRUTHY = ("1", "true", "yes", "on")


def force_sanitize(value: Optional[bool]) -> None:
    """Set (True/False) or clear (None) the global sanitize override."""
    global _forced
    _forced = value


def sanitize_enabled(explicit: Optional[bool] = None) -> bool:
    """Resolve whether a run should be sanitized.

    Precedence: the caller's explicit choice, then the programmatic
    override, then the ``REPRO_SANITIZE`` environment variable.
    """
    if explicit is not None:
        return explicit
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


@dataclass
class SanitizeStats:
    """Aggregate over the scenario runs inside one :func:`sanitized` block."""

    runs: int = 0
    records: int = 0
    violations: int = 0


#: Stats object of the innermost active :func:`sanitized` block, if any.
_stats: Optional[SanitizeStats] = None


def note_report(examined: int, violations: int) -> None:
    """Record one scenario's conformance results (called by Scenario.run)."""
    if _stats is not None:
        _stats.runs += 1
        _stats.records += examined
        _stats.violations += violations


#: Digest sink of the innermost active :func:`capturing_digests` block.
#: While set, ScenarioBuilder.build() force-enables tracing and every
#: Scenario.run() appends its trace digest here — the hook the parallel
#: experiment runner uses to prove serial/parallel equivalence without
#: threading a flag through every experiment driver.
_digest_sink: Optional[List[str]] = None


def digests_enabled() -> bool:
    """True while a :func:`capturing_digests` block is active."""
    return _digest_sink is not None


def note_digest(digest: str) -> None:
    """Record one scenario run's trace digest (called by Scenario.run)."""
    if _digest_sink is not None:
        _digest_sink.append(digest)


@contextmanager
def capturing_digests() -> Iterator[List[str]]:
    """Force tracing on and collect every scenario's trace digest.

    Yields the list the digests accumulate into, in scenario-run order
    (experiments run their variants sequentially, so the order — and hence
    any combined digest — is deterministic).
    """
    global _digest_sink
    previous = _digest_sink
    _digest_sink = sink = []
    try:
        yield sink
    finally:
        _digest_sink = previous


#: Trace sink of the innermost active :func:`capturing_traces` block.
#: The heavyweight sibling of :data:`_digest_sink`: while set, every
#: Scenario.run() appends its full record list (not just the digest),
#: which is what the differential bisector needs to compare *events*
#: once digests have already disagreed.
_trace_sink: Optional[List[list]] = None


def traces_enabled() -> bool:
    """True while a :func:`capturing_traces` block is active."""
    return _trace_sink is not None


def note_trace(records: list) -> None:
    """Record one scenario run's trace records (called by Scenario.run)."""
    if _trace_sink is not None:
        _trace_sink.append(records)


@contextmanager
def capturing_traces() -> Iterator[List[list]]:
    """Force tracing on and collect every scenario's trace records.

    Yields the list the per-scenario record lists accumulate into, in
    scenario-run order (mirroring :func:`capturing_digests`).  Use only
    for diagnosis — a long run's records dwarf its digest.
    """
    global _trace_sink
    previous = _trace_sink
    _trace_sink = sink = []
    try:
        yield sink
    finally:
        _trace_sink = previous


@contextmanager
def sanitized(value: bool = True) -> Iterator[SanitizeStats]:
    """Temporarily force sanitized mode on (or off) for a code block.

    Yields a :class:`SanitizeStats` that accumulates the scenario runs
    checked inside the block (useful for "N records examined" reporting).
    """
    global _forced, _stats
    previous, previous_stats = _forced, _stats
    _forced = value
    _stats = stats = SanitizeStats()
    try:
        yield stats
    finally:
        _forced, _stats = previous, previous_stats
