"""Protocol-conformance and determinism lint pass (compat shim).

This module is now a thin facade over the pluggable analysis engine in
:mod:`repro.verify.analysis`; it runs exactly the legacy REPRO101-108
rule set with the legacy output format and exit codes, so existing
tooling (``python -m repro.verify.lint src/repro``) keeps working.  New
code should prefer ``python -m repro.verify.analysis`` / ``macaw-sim
analyze``, which adds the cross-module REPRO110-113 rules, baselines,
SARIF output, and parallel analysis.

The rules (see :mod:`repro.verify.analysis.rules` for the living
definitions):

``REPRO101`` stdlib-random ban, ``REPRO102`` wall-clock ban,
``REPRO103`` mutable defaults, ``REPRO104`` clock mutation outside the
kernel, ``REPRO105`` unused imports, ``REPRO106`` ``._audible`` access
outside ``repro/phy``, ``REPRO107`` ad-hoc telemetry, ``REPRO108``
fault-injection stream discipline.

Waive a finding on one line with ``# repro-lint: allow=CODE[,CODE...]``
or ``allow=all``.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.verify.analysis.engine import analyze_paths, analyze_source
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.registry import LEGACY_RULE_CODES, Rule, get_rules

__all__ = ["Finding", "lint_source", "lint_file", "lint_paths", "main"]


def _legacy_rules() -> List[Rule]:
    return get_rules(list(LEGACY_RULE_CODES))


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; returns findings (possibly empty)."""
    return analyze_source(source, path, _legacy_rules(), project=None).findings


def lint_file(path: Path) -> List[Finding]:
    """Lint one file on disk."""
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[Path]) -> List[Finding]:
    """Lint files and/or directory trees (``*.py``, sorted, recursive).

    Unlike single-file :func:`lint_source`, this runs the engine's
    whole-tree pass first, so REPRO105 recognizes names re-exported
    through a package ``__init__``'s ``__all__``.
    """
    run = analyze_paths(list(paths), rules=_legacy_rules(), jobs=1)
    return run.findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.verify.lint <path> [<path> ...]",  # repro-lint: allow=REPRO107 (CLI output)
              file=sys.stderr)
        return 2
    paths = [Path(arg) for arg in args]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)  # repro-lint: allow=REPRO107 (CLI output)
        return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.render())  # repro-lint: allow=REPRO107 (CLI output)
    if findings:
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1  # repro-lint: allow=REPRO107 (report summary)
        summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        print(f"{len(findings)} finding(s) ({summary})")  # repro-lint: allow=REPRO107 (CLI output)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
