"""Simulation-determinism lint: an AST pass with simulator-specific rules.

The reproduction's core guarantee is that one integer seed replays an
entire experiment.  Python makes it easy to break that silently — one
``random.random()`` or ``time.time()`` in model code and every table is
seed-dependent in ways no test will catch.  This pass enforces the rules
mechanically:

``REPRO101`` unseeded-randomness
    No ``import random`` / ``random.*`` and no direct ``numpy.random``
    use outside :mod:`repro.sim.rng`.  All randomness must flow through
    ``Simulator.streams`` so that every draw is owned by a named,
    master-seeded stream.
``REPRO102`` wall-clock
    No ``time.time()``, ``time.monotonic()``, ``time.perf_counter()``,
    ``datetime.now()`` etc. in ``src/repro``: simulated time comes from
    ``Simulator.now`` only.  Reporting code may annotate a line with
    ``# repro-lint: allow=REPRO102`` (e.g. the CLI's wall-time printout).
``REPRO103`` mutable-default
    No list/dict/set/bytearray literals or constructor calls as function
    argument defaults (shared mutable state across calls).
``REPRO104`` clock-mutation
    No assignment to a ``._now`` attribute outside the kernel: event
    callbacks must never move the simulation clock.
``REPRO105`` unused-import
    Imports that are never referenced (and not re-exported via
    ``__all__``) — drift that hides real dependencies.
``REPRO106`` private-audibility
    No ``._audible`` access outside ``repro/phy``: upper layers must go
    through ``Medium.audible(sender, receiver)``, the cached public
    accessor, so the per-pair link cache stays authoritative and hot
    paths never bypass it.
``REPRO107`` ad-hoc-telemetry
    No ``print()`` calls and no manual counter-dict updates
    (``d[k] = d.get(k, 0) + n``) in ``src/repro`` outside
    ``repro/obs/`` and ``cli.py``: telemetry belongs in the typed
    metrics registry (:mod:`repro.obs`), and user-facing output belongs
    to the CLI.  Reporting entry points (bench, this linter) annotate
    their output lines with ``# repro-lint: allow=REPRO107``.
``REPRO108`` fault-randomness
    Fault-injection code (``repro/fault/``) must draw all randomness
    from dedicated ``fault:*`` substreams: no ``random`` / ``numpy
    .random``, no private ``RandomStreams(...)`` universes, and every
    ``streams.get(...)`` / ``streams.uniform_slots(...)`` with a
    literal stream name must use a ``fault:``-prefixed name.  Faults
    that shared protocol or noise streams would silently perturb the
    clean runs they are compared against.

Run it as a module::

    python -m repro.verify.lint src/repro

Exit status is 0 when clean, 1 when findings were reported, 2 on usage
or parse errors.  A line can waive specific rules with a trailing
``# repro-lint: allow=CODE[,CODE...]`` comment (or ``allow=all``).
"""

from __future__ import annotations

import ast
import re
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "lint_source", "lint_file", "lint_paths", "main"]

#: Wall-clock callables, as (module alias base, attribute) pairs.
_WALLCLOCK_TIME_ATTRS = {
    "time", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "time_ns", "localtime", "gmtime",
}
_WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: Mutable constructor names whose call (or literal) must not be a default.
_MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque", "defaultdict"}

_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow=([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One lint finding."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"


def _allowed_codes(source_lines: Sequence[str], line: int) -> Set[str]:
    """Rules waived on ``line`` (1-indexed) by a repro-lint pragma."""
    if not 1 <= line <= len(source_lines):
        return set()
    match = _ALLOW_RE.search(source_lines[line - 1])
    if not match:
        return set()
    return {token.strip().upper() for token in match.group(1).split(",")}


class _Visitor(ast.NodeVisitor):
    def __init__(
        self,
        path: str,
        is_rng_module: bool,
        is_kernel_module: bool,
        is_phy_module: bool = False,
        is_telemetry_module: bool = False,
        is_fault_module: bool = False,
    ) -> None:
        self.path = path
        self.is_rng_module = is_rng_module
        self.is_kernel_module = is_kernel_module
        self.is_phy_module = is_phy_module
        self.is_telemetry_module = is_telemetry_module
        self.is_fault_module = is_fault_module
        self.findings: List[Finding] = []
        #: Aliases bound to the stdlib ``random`` module.
        self.random_aliases: Set[str] = set()
        #: Aliases bound to the ``numpy`` module.
        self.numpy_aliases: Set[str] = set()
        #: Aliases bound to the stdlib ``time`` module.
        self.time_aliases: Set[str] = set()
        #: Aliases bound to ``datetime`` (module) / ``datetime.datetime``.
        self.datetime_aliases: Set[str] = set()
        #: Names bound directly to wall-clock callables via from-imports.
        self.wallclock_names: Set[str] = set()
        #: (name, node) for every import binding, for REPRO105.
        self.import_bindings: List[Tuple[str, ast.stmt]] = []
        #: Every identifier referenced anywhere (including annotations).
        self.used_names: Set[str] = set()
        #: Strings that may name identifiers (__all__, string annotations).
        self.string_constants: List[str] = []

    # ------------------------------------------------------------- helpers
    def _report(self, node: ast.AST, code: str, message: str) -> None:
        self.findings.append(Finding(
            self.path,
            getattr(node, "lineno", 0),
            getattr(node, "col_offset", 0),
            code,
            message,
        ))

    # ------------------------------------------------------------- imports
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            root = alias.name.split(".")[0]
            if root == "random":
                self.random_aliases.add(bound)
                self._report(
                    node, "REPRO101",
                    "stdlib 'random' is banned in model code; draw from"
                    " Simulator.streams instead",
                )
                if self.is_fault_module:
                    self._report(
                        node, "REPRO108",
                        "fault code must draw only from named 'fault:*'"
                        " substreams of Simulator.streams",
                    )
            elif root == "numpy":
                self.numpy_aliases.add(bound)
            elif root == "time":
                self.time_aliases.add(bound)
            elif root == "datetime":
                self.datetime_aliases.add(bound)
            self.import_bindings.append((bound, node))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        root = module.split(".")[0]
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            if module == "__future__":
                continue
            if root == "random":
                self._report(
                    node, "REPRO101",
                    "stdlib 'random' is banned in model code; draw from"
                    " Simulator.streams instead",
                )
                if self.is_fault_module:
                    self._report(
                        node, "REPRO108",
                        "fault code must draw only from named 'fault:*'"
                        " substreams of Simulator.streams",
                    )
            elif root == "time" and alias.name in _WALLCLOCK_TIME_ATTRS:
                self.wallclock_names.add(bound)
            elif root == "datetime" and alias.name in ("datetime", "date"):
                self.datetime_aliases.add(bound)
            self.import_bindings.append((bound, node))
        self.generic_visit(node)

    # ----------------------------------------------------------- name uses
    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.used_names.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # REPRO106: the audibility predicate is private to the physical
        # layer; everything above it must use the cached Medium.audible().
        if node.attr == "_audible" and not self.is_phy_module:
            self._report(
                node, "REPRO106",
                "direct '._audible' access outside repro/phy; use the cached"
                " Medium.audible(sender, receiver) accessor",
            )
        # REPRO101: random.<anything>, np.random.<anything>.
        base = node.value
        if isinstance(base, ast.Name):
            if base.id in self.random_aliases:
                self._report(
                    node, "REPRO101",
                    f"'{base.id}.{node.attr}' bypasses the seeded stream"
                    " registry (Simulator.streams)",
                )
            if (
                not self.is_rng_module
                and base.id in self.numpy_aliases
                and node.attr == "random"
            ):
                self._report(
                    node, "REPRO101",
                    "direct numpy.random use outside repro.sim.rng; derive a"
                    " named stream from Simulator.streams",
                )
                if self.is_fault_module:
                    self._report(
                        node, "REPRO108",
                        "fault code must draw only from named 'fault:*'"
                        " substreams of Simulator.streams",
                    )
            # REPRO102: time.time(), datetime.now(), ...
            if base.id in self.time_aliases and node.attr in _WALLCLOCK_TIME_ATTRS:
                self._report(
                    node, "REPRO102",
                    f"wall-clock call '{base.id}.{node.attr}' in simulation"
                    " code; use Simulator.now",
                )
            if (
                base.id in self.datetime_aliases
                and node.attr in _WALLCLOCK_DATETIME_ATTRS
            ):
                self._report(
                    node, "REPRO102",
                    f"wall-clock call '{base.id}.{node.attr}' in simulation"
                    " code; use Simulator.now",
                )
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in self.datetime_aliases
            and node.attr in _WALLCLOCK_DATETIME_ATTRS
        ):
            # datetime.datetime.now(), datetime.date.today(), ...
            self._report(
                node, "REPRO102",
                f"wall-clock call '{base.value.id}.{base.attr}.{node.attr}'"
                " in simulation code; use Simulator.now",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in self.wallclock_names:
            self._report(
                node, "REPRO102",
                f"wall-clock call '{node.func.id}()' in simulation code;"
                " use Simulator.now",
            )
        # REPRO107: ad-hoc print() in model code.
        if (
            not self.is_telemetry_module
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            self._report(
                node, "REPRO107",
                "ad-hoc print() in model code; publish through the repro.obs"
                " metrics registry or report via the CLI",
            )
        if self.is_fault_module:
            self._check_fault_streams(node)
        self.generic_visit(node)

    # -------------------------------------------------- fault randomness
    @staticmethod
    def _stream_name_prefix_ok(arg: ast.expr) -> Optional[bool]:
        """Whether a stream-name argument starts with ``fault:``.

        Returns None when the name cannot be judged statically (a
        variable, attribute, call result, or f-string whose leading piece
        is dynamic) — those are left to runtime and review.
        """
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value.startswith("fault:")
        if isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return head.value.startswith("fault:")
        return None

    def _check_fault_streams(self, node: ast.Call) -> None:
        """REPRO108: fault code touches only ``fault:*`` substreams."""
        func = node.func
        if isinstance(func, ast.Name) and func.id == "RandomStreams":
            self._report(
                node, "REPRO108",
                "private RandomStreams(...) universe in fault code; use the"
                " simulator's registry via a 'fault:*' substream",
            )
            return
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "uniform_slots")
        ):
            return
        owner = func.value
        owner_is_streams = (
            (isinstance(owner, ast.Attribute) and owner.attr == "streams")
            or (isinstance(owner, ast.Name) and owner.id == "streams")
        )
        if not owner_is_streams or not node.args:
            return
        if self._stream_name_prefix_ok(node.args[0]) is False:
            self._report(
                node, "REPRO108",
                "fault code drawing from a non-'fault:*' stream; faults must"
                " never share protocol/traffic/noise randomness",
            )

    # -------------------------------------------------- mutable defaults
    def _check_defaults(self, node: ast.AST, args: ast.arguments) -> None:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                kind = type(default).__name__.lower()
                self._report(
                    default, "REPRO103",
                    f"mutable default argument ({kind} literal); use None"
                    " and create inside the function",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            ):
                self._report(
                    default, "REPRO103",
                    f"mutable default argument ({default.func.id}());"
                    " use None and create inside the function",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node, node.args)
        self.generic_visit(node)

    # -------------------------------------------------- clock mutation
    def visit_Assign(self, node: ast.Assign) -> None:
        if not self.is_kernel_module:
            for target in node.targets:
                self._check_now_target(target)
        if not self.is_telemetry_module:
            self._check_counter_dict(node)
        self.generic_visit(node)

    def _check_counter_dict(self, node: ast.Assign) -> None:
        """REPRO107: ``d[k] = d.get(k, 0) + n`` — a hand-rolled counter."""
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        value = node.value
        if not isinstance(target, ast.Subscript) or not isinstance(value, ast.BinOp):
            return
        if not isinstance(value.op, ast.Add):
            return
        for side in (value.left, value.right):
            if (
                isinstance(side, ast.Call)
                and isinstance(side.func, ast.Attribute)
                and side.func.attr == "get"
                and len(side.args) == 2
                and isinstance(side.args[1], ast.Constant)
                and side.args[1].value == 0
                and ast.dump(side.func.value) == ast.dump(target.value)
            ):
                self._report(
                    node, "REPRO107",
                    "manual counter dict ('d[k] = d.get(k, 0) + n'); use a"
                    " repro.obs Counter instead",
                )
                return

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if not self.is_kernel_module:
            self._check_now_target(node.target)
        self.generic_visit(node)

    def _check_now_target(self, target: ast.AST) -> None:
        if isinstance(target, ast.Attribute) and target.attr == "_now":
            self._report(
                target, "REPRO104",
                "assignment to '._now' outside the kernel; event callbacks"
                " must never move the simulation clock",
            )

    # --------------------------------------------------------- strings
    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str):
            self.string_constants.append(node.value)
        self.generic_visit(node)


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def lint_source(source: str, path: str = "<string>") -> List[Finding]:
    """Lint one module's source text; returns findings (possibly empty)."""
    normalized = path.replace("\\", "/")
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 0, exc.offset or 0, "REPRO100",
                        f"syntax error: {exc.msg}")]
    visitor = _Visitor(
        path,
        is_rng_module=normalized.endswith("sim/rng.py"),
        is_kernel_module=normalized.endswith("sim/kernel.py"),
        is_phy_module="/phy/" in normalized or normalized.startswith("phy/"),
        is_telemetry_module=(
            "/obs/" in normalized
            or normalized.startswith("obs/")
            or normalized.endswith("cli.py")
        ),
        is_fault_module="/fault/" in normalized or normalized.startswith("fault/"),
    )
    visitor.visit(tree)
    findings = visitor.findings

    # REPRO105: unused imports.  Names referenced anywhere (including
    # inside string annotations and __all__) count as used; __init__.py
    # modules are exempt because their imports ARE the public API.
    if not normalized.endswith("__init__.py"):
        string_idents: Set[str] = set()
        for text in visitor.string_constants:
            if len(text) < 200:  # identifiers, not docstrings
                string_idents.update(_IDENT_RE.findall(text))
        used = visitor.used_names | string_idents
        for name, node in visitor.import_bindings:
            if name not in used:
                findings.append(Finding(
                    path, node.lineno, node.col_offset, "REPRO105",
                    f"'{name}' imported but unused",
                ))

    source_lines = source.splitlines()
    kept = []
    for finding in findings:
        allowed = _allowed_codes(source_lines, finding.line)
        if finding.code in allowed or "ALL" in allowed:
            continue
        kept.append(finding)
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    return kept


def lint_file(path: Path) -> List[Finding]:
    """Lint one file on disk."""
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def lint_paths(paths: Iterable[Path]) -> List[Finding]:
    """Lint files and/or directory trees (``*.py``, sorted, recursive)."""
    findings: List[Finding] = []
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                findings.extend(lint_file(file))
        else:
            findings.extend(lint_file(path))
    return findings


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print("usage: python -m repro.verify.lint <path> [<path> ...]",  # repro-lint: allow=REPRO107 (CLI output)
              file=sys.stderr)
        return 2
    paths = [Path(arg) for arg in args]
    missing = [p for p in paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)  # repro-lint: allow=REPRO107 (CLI output)
        return 2
    findings = lint_paths(paths)
    for finding in findings:
        print(finding.render())  # repro-lint: allow=REPRO107 (CLI output)
    if findings:
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1  # repro-lint: allow=REPRO107 (report summary)
        summary = ", ".join(f"{code}: {n}" for code, n in sorted(counts.items()))
        print(f"{len(findings)} finding(s) ({summary})")  # repro-lint: allow=REPRO107 (CLI output)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
