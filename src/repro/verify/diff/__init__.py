"""Differential execution oracle, first-divergence bisector and fuzzer.

The repo's central correctness claim is that a run's ``Trace.digest()``
is byte-identical across every *execution mode*: heap vs wheel event
queues, serial vs pooled workers, snapshot-restore vs straight-through,
metrics instrumentation on or off.  Each mode is supposed to be a pure
performance/observability knob — when one of them leaks into the event
stream (PR 6's mid-reschedule compaction bug), results silently change
and only a hand-written parity test catches it.

This package is the machine that finds such bugs first:

* :class:`~repro.verify.diff.oracle.DiffOracle` runs an experiment grid
  under a configurable matrix of :class:`~repro.verify.diff.modes.ExecMode`
  values and asserts per-cell digest equality;
* :mod:`~repro.verify.diff.bisect` replays a divergent pair with
  shrinking ``run(until=...)`` horizons and localizes the *first
  divergent trace record* (time, seq, record), emitting a minimal-repro
  JSON that replays standalone;
* :mod:`~repro.verify.diff.fuzz` generates random scenarios (topology,
  traffic, fault schedules) from dedicated ``fuzz:*`` RNG substreams,
  feeds them to the oracle, and greedily shrinks failures
  (:mod:`~repro.verify.diff.shrink`).

Like the CLI, this sits *above* the stack — it orchestrates experiments,
the runner and the snapshot subsystem, so it is exempt from the
``verify`` layer's usual import surface (see
``repro.verify.analysis.layers.SUBTREE_ALLOWED_IMPORTS``).  The
``fuzz:*`` substream namespace is reserved for this package; analyzer
rule REPRO116 keeps generation randomness out of the protocol stack.
"""

from repro.verify.diff.bisect import DivergencePoint, locate_first_divergence
from repro.verify.diff.modes import ExecMode, default_matrix, full_matrix
from repro.verify.diff.oracle import (
    CellDivergence,
    DiffOracle,
    OracleReport,
    ScenarioOracle,
)
from repro.verify.diff.fuzz import FuzzFailure, FuzzScenario, generate_case, run_fuzz
from repro.verify.diff.shrink import shrink_case

__all__ = [
    "CellDivergence",
    "DiffOracle",
    "DivergencePoint",
    "ExecMode",
    "FuzzFailure",
    "FuzzScenario",
    "OracleReport",
    "ScenarioOracle",
    "default_matrix",
    "full_matrix",
    "generate_case",
    "locate_first_divergence",
    "run_fuzz",
    "shrink_case",
]
