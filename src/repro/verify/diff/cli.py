"""``macaw-sim diff`` / ``macaw-sim fuzz`` — the differential front doors.

``diff`` sweeps registered experiments across the execution-mode matrix
and localizes any digest mismatch; ``fuzz`` searches generated scenarios
for one.  Both write a minimal-repro JSON on failure and exit 1, so CI
can gate on them and archive the repro as an artifact.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.experiments.registry import all_experiments, get_experiment
from repro.verify.diff.fuzz import (
    DEFAULT_CASE_DURATION_S,
    experiment_repro,
    run_fuzz,
    write_repro,
)
from repro.verify.diff.bisect import BisectError, locate_first_divergence
from repro.verify.diff.modes import default_matrix, full_matrix
from repro.verify.diff.oracle import DiffOracle

__all__ = ["main_diff", "main_fuzz"]


def _parse_queues(spec: str) -> List[str]:
    queues = [item.strip() for item in spec.split(",") if item.strip()]
    if not queues:
        raise ValueError(f"--queues needs at least one backend, got {spec!r}")
    return queues


def _parse_seed_list(spec: str, base: int) -> List[int]:
    if "," in spec:
        return [int(item) for item in spec.split(",") if item.strip()]
    count = int(spec)
    if count < 1:
        raise ValueError(f"--seeds count must be >= 1, got {count}")
    return list(range(base, base + count))


def main_diff(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="macaw-sim diff",
        description="Differential execution oracle: run experiments under "
        "a matrix of execution modes (queue backend x jobs x "
        "snapshot-roundtrip x metrics) and require byte-identical "
        "digests; bisect any mismatch to its first divergent event.",
    )
    parser.add_argument(
        "experiments", nargs="+",
        help="experiment ids (see 'macaw-sim list'), or 'all'",
    )
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument(
        "--seeds", default="1", metavar="N|A,B,...",
        help="seed count (seed..seed+N-1) or explicit comma list",
    )
    parser.add_argument("--duration", type=float, default=None,
                        help="simulated seconds (default: experiment default)")
    parser.add_argument("--warmup", type=float, default=None,
                        help="warm-up seconds (default: experiment default)")
    parser.add_argument("--queues", default="heap,wheel", metavar="A,B",
                        help="queue backends to cross (first = baseline)")
    parser.add_argument("--full", action="store_true",
                        help="full 16-point cross product instead of the "
                        "baseline-plus-one-axis covering matrix")
    parser.add_argument("--no-bisect", action="store_true",
                        help="report digest mismatches without localizing")
    parser.add_argument("--out", default="diff-repro.json", metavar="PATH",
                        help="where the minimal-repro JSON lands on failure")
    args = parser.parse_args(argv)

    exp_ids: List[str] = []
    for name in args.experiments:
        if name == "all":
            exp_ids.extend(exp.spec.exp_id for exp in all_experiments())
            continue
        try:
            get_experiment(name)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        exp_ids.append(name)

    try:
        seeds = _parse_seed_list(args.seeds, args.seed)
        queues = _parse_queues(args.queues)
        modes = full_matrix(queues) if args.full else default_matrix(queues)
        oracle = DiffOracle(
            exp_ids, seeds=seeds, duration=args.duration,
            warmup=args.warmup, modes=modes,
        )
    except ValueError as exc:
        print(f"macaw-sim diff: {exc}", file=sys.stderr)
        return 2

    print(f"diff: {len(oracle.cells)} cell(s) x {len(oracle.modes)} mode(s) "
          f"[{', '.join(mode.label for mode in oracle.modes)}]")
    report = oracle.check()
    for mode in report.modes:
        digests = report.digests[mode.label]
        print(f"  {mode.label:16} {len([d for d in digests if d])} digest(s)")
    if report.ok:
        print("diff: all modes byte-identical")
        return 0

    for divergence in report.divergences:
        print(f"diff: DIVERGENCE {divergence.describe()}", file=sys.stderr)
    first = report.divergences[0]
    point = None
    if not args.no_bisect and first.cell is not None:
        print(f"diff: bisecting {first.cell.exp_id} seed {first.cell.seed} "
              f"({first.mode_a.label} vs {first.mode_b.label})...")
        try:
            point = locate_first_divergence(
                oracle.replayer(first.cell, first.mode_a),
                oracle.replayer(first.cell, first.mode_b),
                first.cell.duration,
            )
        except BisectError as exc:
            print(f"diff: bisection aborted: {exc}", file=sys.stderr)
        if point is not None:
            print(f"diff: first divergent event: scenario "
                  f"{point.scenario_index} seq {point.event_index} "
                  f"at t={point.time} (horizon {point.horizon:.6f}, "
                  f"{point.probes} probes)")
        else:
            print("diff: divergence did not reproduce in-process "
                  "(likely jobs-axis only)", file=sys.stderr)
    payload = experiment_repro(
        first.cell.exp_id, first.cell.seed, first.cell.duration,
        first.cell.warmup, oracle.profile, first, point,
    )
    out = write_repro(args.out, payload)
    print(f"diff: repro written to {out}", file=sys.stderr)
    return 1


def main_fuzz(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="macaw-sim fuzz",
        description="Scenario fuzzer: generate random topologies, traffic "
        "mixes and fault schedules, run each under the execution-mode "
        "matrix, and shrink + bisect the first divergence.",
    )
    parser.add_argument("--budget", type=int, default=25,
                        help="number of generated cases (default 25)")
    parser.add_argument(
        "--seed", default="0", metavar="S|from-run-id",
        help="fuzz universe seed; 'from-run-id' uses $GITHUB_RUN_ID so "
        "every CI run explores a fresh slice",
    )
    parser.add_argument("--duration", type=float,
                        default=DEFAULT_CASE_DURATION_S,
                        help="simulated seconds per case")
    parser.add_argument("--queues", default="heap,wheel", metavar="A,B",
                        help="queue backends to cross (first = baseline)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip greedy shrinking of a failing case")
    parser.add_argument("--out", default="fuzz-repro.json", metavar="PATH",
                        help="where the minimal-repro JSON lands on failure")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress lines")
    args = parser.parse_args(argv)

    if args.seed == "from-run-id":
        seed = int(os.environ.get("GITHUB_RUN_ID", "0") or "0")
    else:
        try:
            seed = int(args.seed)
        except ValueError:
            print(f"macaw-sim fuzz: --seed must be an integer or "
                  f"'from-run-id', got {args.seed!r}", file=sys.stderr)
            return 2
    if args.budget < 1:
        print(f"macaw-sim fuzz: --budget must be >= 1, got {args.budget}",
              file=sys.stderr)
        return 2

    try:
        modes = default_matrix(_parse_queues(args.queues))
    except ValueError as exc:
        print(f"macaw-sim fuzz: {exc}", file=sys.stderr)
        return 2

    print(f"fuzz: seed {seed}, budget {args.budget}, "
          f"{args.duration}s cases, modes "
          f"[{', '.join(mode.label for mode in modes)}]")
    progress = None if args.quiet else (lambda message: print(f"fuzz: {message}"))
    failure = run_fuzz(
        budget=args.budget, seed=seed, duration=args.duration,
        modes=modes, shrink=not args.no_shrink, progress=progress,
    )
    if failure is None:
        print(f"fuzz: {args.budget} case(s) passed the mode matrix clean")
        return 0

    print(f"fuzz: DIVERGENCE in case {failure.index}: "
          f"{failure.divergence.describe()}", file=sys.stderr)
    print(f"fuzz: shrunk case: {failure.shrunk.describe()}", file=sys.stderr)
    if failure.point is not None:
        print(f"fuzz: first divergent event: seq "
              f"{failure.point.event_index} at t={failure.point.time} "
              f"(horizon {failure.point.horizon:.6f})", file=sys.stderr)
    out = write_repro(args.out, failure.repro)
    print(f"fuzz: repro written to {out}", file=sys.stderr)
    return 1
