"""Execution modes: the axes the differential oracle crosses.

An :class:`ExecMode` names one point in the (queue backend × worker
count × snapshot-roundtrip × metrics) space.  Every axis is documented
as digest-neutral; the oracle's job is to catch the day that stops
being true.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence

from repro.core.config import RunProfile
from repro.sim.queues import resolve_backend

__all__ = ["ExecMode", "default_matrix", "full_matrix"]

#: Metrics sampling interval (seconds) the ``metrics`` axis switches on.
METRICS_INTERVAL_S = 2.0


@dataclass(frozen=True)
class ExecMode:
    """One execution configuration of an otherwise-identical run."""

    #: Event-queue backend spec (``"heap"``, ``"wheel"``, ``"wheel:W"``).
    queue: str = "heap"
    #: Worker processes (1 = serial in-process).
    jobs: int = 1
    #: Roundtrip the run through a mid-horizon snapshot capture/restore.
    snapshot: bool = False
    #: Collect periodic metrics during the run.
    metrics: bool = False

    def __post_init__(self) -> None:
        resolve_backend(self.queue)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs!r}")

    @property
    def label(self) -> str:
        """Compact human label, e.g. ``"wheel+jobs2+snap"``."""
        parts = [self.queue]
        if self.jobs > 1:
            parts.append(f"jobs{self.jobs}")
        if self.snapshot:
            parts.append("snap")
        if self.metrics:
            parts.append("metrics")
        return "+".join(parts)

    def apply(self, profile: RunProfile) -> RunProfile:
        """The profile with this mode's queue/metrics knobs applied.

        The jobs and snapshot axes are *execution* choices, not profile
        knobs — the oracle realizes them when it runs the cell.
        """
        return profile.but(
            queue=self.queue,
            metrics=METRICS_INTERVAL_S if self.metrics else False,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "queue": self.queue,
            "jobs": self.jobs,
            "snapshot": self.snapshot,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExecMode":
        return cls(
            queue=str(payload.get("queue", "heap")),
            jobs=int(payload.get("jobs", 1)),
            snapshot=bool(payload.get("snapshot", False)),
            metrics=bool(payload.get("metrics", False)),
        )


def default_matrix(queues: Sequence[str] = ("heap", "wheel")) -> List[ExecMode]:
    """Baseline plus one-axis variants: covers every axis in 5 runs.

    One divergent axis is enough to flag a bug; the full cross product
    is for post-mortem confirmation, not the smoke path.
    """
    base_queue = queues[0]
    matrix = [ExecMode(queue=base_queue)]
    matrix.extend(ExecMode(queue=q) for q in queues[1:])
    matrix.append(ExecMode(queue=base_queue, jobs=2))
    matrix.append(ExecMode(queue=base_queue, snapshot=True))
    matrix.append(ExecMode(queue=base_queue, metrics=True))
    return matrix


def full_matrix(queues: Sequence[str] = ("heap", "wheel")) -> List[ExecMode]:
    """The full cross product: queue × jobs × snapshot × metrics."""
    matrix = []
    for queue in queues:
        for jobs in (1, 2):
            for snapshot in (False, True):
                for metrics in (False, True):
                    matrix.append(ExecMode(
                        queue=queue, jobs=jobs,
                        snapshot=snapshot, metrics=metrics,
                    ))
    return matrix
