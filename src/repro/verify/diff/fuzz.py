"""Seeded scenario fuzzer feeding the differential oracle.

Scenarios are drawn from a small grammar — a base station plus 2–5 pads,
a star topology with random extra pad-pad links (hidden/exposed-terminal
geometry falls out), per-pad uplink/downlink UDP flows, and 0–3 fault
events — using dedicated ``fuzz:*`` RNG substreams so case ``i`` of seed
``s`` is the same scenario on every machine, forever.  The ``fuzz:*``
namespace is reserved for this package (analyzer rule REPRO116): fuzzing
randomness must never leak into the protocol stack's stream space.

A failing case is greedily shrunk (:mod:`repro.verify.diff.shrink`),
bisected to its first divergent record, and written out as a minimal
repro JSON that :func:`replay_repro` — or a regression test — can re-run
standalone.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import RunProfile
from repro.fault import (
    BurstNoise,
    FaultSchedule,
    LinkFlap,
    QueueSqueeze,
    StationChurn,
)
from repro.fault.events import FaultEvent
from repro.sim.rng import RandomStreams
from repro.topo.builder import ScenarioBuilder
from repro.verify.diff.bisect import DivergencePoint, locate_first_divergence
from repro.verify.diff.modes import ExecMode
from repro.verify.diff.oracle import CellDivergence, ScenarioOracle
from repro.verify.diff.shrink import shrink_case

__all__ = [
    "FuzzFailure",
    "FuzzScenario",
    "REPRO_SCHEMA",
    "generate_case",
    "load_repro",
    "replay_repro",
    "run_fuzz",
    "write_repro",
]

#: Version tag on every emitted repro JSON document.
REPRO_SCHEMA = 1

#: Default simulated duration of a fuzz case (seconds): long enough for
#: backoff/copy dynamics, short enough for a budgeted CI smoke.
DEFAULT_CASE_DURATION_S = 12.0

_RATES_PPS = (16.0, 32.0, 48.0)


@dataclass(frozen=True)
class FuzzScenario:
    """One generated scenario: the fuzzer's (and shrinker's) unit."""

    seed: int
    duration: float = DEFAULT_CASE_DURATION_S
    protocol: str = "macaw"
    pads: Tuple[str, ...] = ()
    #: Pad-pad links beyond the base star (hidden-terminal geometry).
    extra_links: Tuple[Tuple[str, str], ...] = ()
    #: (src, dst, rate_pps) UDP flows.
    flows: Tuple[Tuple[str, str, float], ...] = ()
    faults: Tuple[FaultEvent, ...] = ()

    def build_builder(self, profile: RunProfile) -> ScenarioBuilder:
        """Materialize this case as a ready-to-build ScenarioBuilder."""
        schedule = FaultSchedule(self.faults) if self.faults else None
        builder = ScenarioBuilder(
            seed=self.seed, protocol=self.protocol,
            profile=profile.but(faults=schedule),
        )
        builder.add_base("B")
        for pad in self.pads:
            builder.add_pad(pad)
            builder.link("B", pad)
        for a, b in self.extra_links:
            builder.link(a, b)
        for src, dst, rate in self.flows:
            builder.udp(src, dst, rate)
        return builder

    def describe(self) -> str:
        return (
            f"seed={self.seed} pads={len(self.pads)} "
            f"links=+{len(self.extra_links)} flows={len(self.flows)} "
            f"faults={len(self.faults)} duration={self.duration}"
        )

    # -------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "duration": self.duration,
            "protocol": self.protocol,
            "pads": list(self.pads),
            "extra_links": [list(link) for link in self.extra_links],
            "flows": [list(flow) for flow in self.flows],
            "faults": FaultSchedule(self.faults).to_dict() if self.faults else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FuzzScenario":
        faults_payload = payload.get("faults")
        faults: Tuple[FaultEvent, ...] = ()
        if faults_payload:
            faults = tuple(FaultSchedule.from_dict(faults_payload))
        return cls(
            seed=int(payload["seed"]),
            duration=float(payload.get("duration", DEFAULT_CASE_DURATION_S)),
            protocol=str(payload.get("protocol", "macaw")),
            pads=tuple(str(p) for p in payload.get("pads", ())),
            extra_links=tuple(
                (str(a), str(b)) for a, b in payload.get("extra_links", ())
            ),
            flows=tuple(
                (str(src), str(dst), float(rate))
                for src, dst, rate in payload.get("flows", ())
            ),
            faults=faults,
        )

    # ------------------------------------------------------------ shrinking
    def removal_candidates(self) -> List[Tuple[str, int]]:
        """Everything the shrinker may try to drop, one element at a time.

        Ordered most-structural first: dropping a pad (and everything
        attached to it) shrinks fastest.
        """
        candidates: List[Tuple[str, int]] = []
        candidates.extend(("pad", i) for i in range(len(self.pads)))
        candidates.extend(("fault", i) for i in range(len(self.faults)))
        candidates.extend(("flow", i) for i in range(len(self.flows)))
        candidates.extend(("link", i) for i in range(len(self.extra_links)))
        return candidates

    def remove(self, candidate: Tuple[str, int]) -> Optional["FuzzScenario"]:
        """The case minus one element, or None when removal is invalid."""
        kind, index = candidate
        if kind == "pad":
            if len(self.pads) <= 1:
                return None
            pad = self.pads[index]
            flows = tuple(f for f in self.flows if pad not in (f[0], f[1]))
            if not flows:
                return None
            return replace(
                self,
                pads=self.pads[:index] + self.pads[index + 1:],
                extra_links=tuple(l for l in self.extra_links if pad not in l),
                flows=flows,
                faults=tuple(
                    f for f in self.faults if pad not in f.station_names()
                ),
            )
        if kind == "fault":
            return replace(
                self, faults=self.faults[:index] + self.faults[index + 1:]
            )
        if kind == "flow":
            if len(self.flows) <= 1:
                return None
            return replace(
                self, flows=self.flows[:index] + self.flows[index + 1:]
            )
        if kind == "link":
            return replace(
                self,
                extra_links=self.extra_links[:index] + self.extra_links[index + 1:],
            )
        raise ValueError(f"unknown removal candidate {candidate!r}")


def generate_case(master_seed: int, index: int,
                  duration: float = DEFAULT_CASE_DURATION_S) -> FuzzScenario:
    """Draw case ``index`` of the ``master_seed`` universe from the grammar.

    Each case owns its own substreams (``fuzz:<index>:topology`` etc.),
    so cases are independent and any one of them regenerates without
    replaying the ones before it.
    """
    streams = RandomStreams(master_seed)
    topo = streams.get(f"fuzz:{index}:topology")
    traffic = streams.get(f"fuzz:{index}:traffic")
    chaos = streams.get(f"fuzz:{index}:faults")

    n_pads = int(topo.integers(2, 6))
    pads = tuple(f"P{i + 1}" for i in range(n_pads))
    extra_links = tuple(
        (pads[i], pads[j])
        for i in range(n_pads)
        for j in range(i + 1, n_pads)
        if topo.random() < 0.5
    )

    flows: List[Tuple[str, str, float]] = []
    for pad in pads:
        if traffic.random() < 0.75:
            rate = _RATES_PPS[int(traffic.integers(0, len(_RATES_PPS)))]
            if traffic.random() < 0.5:
                flows.append((pad, "B", rate))
            else:
                flows.append(("B", pad, rate))
    if not flows:
        flows.append((pads[0], "B", 32.0))

    faults: List[FaultEvent] = []
    for _ in range(int(chaos.integers(0, 4))):
        start = 1.0 + float(chaos.random()) * (duration - 2.0)
        span = 0.5 + 2.5 * float(chaos.random())
        end = min(start + span, duration - 0.5)
        pad = pads[int(chaos.integers(0, n_pads))]
        kind = int(chaos.integers(0, 4))
        if kind == 0:
            faults.append(LinkFlap("B", pad, start=start, end=end))
        elif kind == 1:
            faults.append(BurstNoise(
                start=start, end=end,
                error_rate=0.2 + 0.5 * float(chaos.random()),
            ))
        elif kind == 2:
            on_at = start + span if start + span < duration else None
            faults.append(StationChurn(station=pad, off_at=start, on_at=on_at))
        else:
            faults.append(QueueSqueeze(
                station=pad, capacity=1 + int(chaos.integers(0, 3)),
                start=start, end=end,
            ))

    run_seed = int(streams.get(f"fuzz:{index}:seed").integers(0, 2**31 - 1))
    return FuzzScenario(
        seed=run_seed, duration=duration, pads=pads,
        extra_links=extra_links, flows=tuple(flows), faults=tuple(faults),
    )


@dataclass
class FuzzFailure:
    """A divergent case, after shrinking and bisection."""

    index: int
    case: FuzzScenario
    shrunk: FuzzScenario
    divergence: CellDivergence
    point: Optional[DivergencePoint]
    repro: Dict[str, Any] = field(default_factory=dict)


def _build_repro(kind: str, subject: Dict[str, Any], profile: RunProfile,
                 divergence: CellDivergence,
                 point: Optional[DivergencePoint]) -> Dict[str, Any]:
    from repro.service.job import profile_to_dict

    payload: Dict[str, Any] = {
        "schema": REPRO_SCHEMA,
        "kind": kind,
        "profile": profile_to_dict(profile),
        "mode_a": divergence.mode_a.to_dict(),
        "mode_b": divergence.mode_b.to_dict(),
        "digest_a": divergence.digest_a,
        "digest_b": divergence.digest_b,
    }
    payload.update(subject)
    if point is not None:
        payload["divergence"] = point.to_dict()
    return payload


def scenario_repro(case: FuzzScenario, profile: RunProfile,
                   divergence: CellDivergence,
                   point: Optional[DivergencePoint]) -> Dict[str, Any]:
    """Minimal-repro JSON payload for a scenario-level divergence."""
    return _build_repro(
        "scenario",
        {"scenario": case.to_dict(), "seed": case.seed,
         "duration": case.duration},
        profile, divergence, point,
    )


def experiment_repro(exp_id: str, seed: int, duration: float, warmup: float,
                     profile: RunProfile, divergence: CellDivergence,
                     point: Optional[DivergencePoint]) -> Dict[str, Any]:
    """Minimal-repro JSON payload for an experiment-level divergence."""
    return _build_repro(
        "experiment",
        {"exp_id": exp_id, "seed": seed, "duration": duration,
         "warmup": warmup},
        profile, divergence, point,
    )


def write_repro(path: str, payload: Mapping[str, Any]) -> Path:
    """Write a repro payload as stable, diffable JSON."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n",
                   encoding="utf-8")
    return out


def load_repro(path: str) -> Dict[str, Any]:
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if payload.get("schema") != REPRO_SCHEMA:
        raise ValueError(f"unsupported repro schema {payload.get('schema')!r}")
    return payload


def replay_repro(payload: Mapping[str, Any]) -> Optional[DivergencePoint]:
    """Re-run a scenario repro's two configurations; relocalize or clear.

    Returns the freshly-bisected divergence point, or None when the two
    configurations now agree (i.e. the bug is fixed).
    """
    from repro.service.job import profile_from_dict

    if payload.get("kind") != "scenario":
        raise ValueError("replay_repro handles scenario repros; use "
                         "DiffOracle for experiment repros")
    case = FuzzScenario.from_dict(payload["scenario"])
    profile = profile_from_dict(payload["profile"])
    mode_a = ExecMode.from_dict(payload["mode_a"])
    mode_b = ExecMode.from_dict(payload["mode_b"])
    oracle = ScenarioOracle(modes=[mode_a, mode_b], profile=profile)
    return locate_first_divergence(
        oracle.replayer(case, mode_a),
        oracle.replayer(case, mode_b),
        float(payload.get("duration", case.duration)),
    )


def run_fuzz(
    budget: int,
    seed: int,
    duration: float = DEFAULT_CASE_DURATION_S,
    modes: Optional[Sequence[ExecMode]] = None,
    profile: Optional[RunProfile] = None,
    shrink: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> Optional[FuzzFailure]:
    """Fuzz up to ``budget`` cases; stop at (and localize) the first failure.

    Returns None when every case passes the mode matrix clean.
    """
    oracle = ScenarioOracle(modes=modes, profile=profile)
    say = progress if progress is not None else (lambda message: None)
    for index in range(budget):
        case = generate_case(seed, index, duration=duration)
        say(f"case {index}/{budget}: {case.describe()}")
        divergence = oracle.check(case)
        if divergence is None:
            continue
        say(f"case {index} diverges: {divergence.describe()}")
        shrunk = case
        if shrink:
            shrunk = shrink_case(
                case, lambda smaller: oracle.check(smaller) is not None
            )
            say(f"shrunk to: {shrunk.describe()}")
        final = oracle.check(shrunk) or divergence
        point = locate_first_divergence(
            oracle.replayer(shrunk, final.mode_a),
            oracle.replayer(shrunk, final.mode_b),
            shrunk.duration,
        )
        repro = scenario_repro(shrunk, oracle.profile, final, point)
        return FuzzFailure(
            index=index, case=case, shrunk=shrunk,
            divergence=final, point=point, repro=repro,
        )
    return None
