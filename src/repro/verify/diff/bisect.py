"""First-divergence bisection between two execution configurations.

Once the oracle has two configurations whose digests disagree, this
module localizes *where* they part ways.  The key property making that
sound is horizon-prefix stability: a scenario's trace records up to time
``t`` are identical whether the run stops at ``t`` or continues to its
full duration (``run(until=...)`` only ever stops earlier; nothing in
the stack schedules differently based on the total horizon).  Digest
equality at horizon ``h`` therefore means "the first divergent event is
after ``h``", which is exactly the predicate a binary search needs.

The search replays both configurations digest-only at shrinking
horizons, then makes one final *traced* replay at the smallest divergent
horizon and walks the two record lists to the first index where they
differ — the (time, seq, record) triple the repro JSON pins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.sim.trace import TraceRecord

__all__ = [
    "BisectError",
    "DivergencePoint",
    "Replay",
    "ScenarioRun",
    "locate_first_divergence",
    "record_to_dict",
]

#: Probe budget: each probe replays both configurations once.
MAX_PROBES = 48

#: Stop narrowing once the horizon window is this small (seconds).
HORIZON_TOL_S = 1e-6


class BisectError(RuntimeError):
    """A replay failed mid-bisection (driver crash at a short horizon)."""


@dataclass
class ScenarioRun:
    """One scenario's outcome inside a replay."""

    digest: str
    #: Full record list; None on digest-only replays.
    records: Optional[List[TraceRecord]] = None


#: A replay callback: ``replay(horizon, traced)`` re-executes one
#: configuration up to ``horizon`` and returns one :class:`ScenarioRun`
#: per scenario the run built, in scenario-run order.
Replay = Callable[[float, bool], List[ScenarioRun]]


def record_to_dict(record: TraceRecord) -> Dict[str, Any]:
    """JSON-safe rendering of a trace record (detail values via repr)."""
    return {
        "time": record.time,
        "category": record.category,
        "station": record.station,
        "detail": {key: repr(value) for key, value in sorted(record.detail.items())},
    }


@dataclass
class DivergencePoint:
    """The first divergent trace record between two configurations."""

    #: Smallest probed horizon at which the runs already disagree.
    horizon: float
    #: Index of the divergent scenario in scenario-run order.
    scenario_index: int
    #: Index of the first divergent record within that scenario (its seq).
    event_index: int
    #: Simulated time of the first divergent record.
    time: Optional[float]
    #: The two records at ``event_index`` (None past a shorter trace).
    record_a: Optional[Dict[str, Any]]
    record_b: Optional[Dict[str, Any]]
    #: Scenario digests at ``horizon``.
    digest_a: str = ""
    digest_b: str = ""
    #: Digest-only probe count the search spent.
    probes: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "horizon": self.horizon,
            "scenario_index": self.scenario_index,
            "event_index": self.event_index,
            "time": self.time,
            "record_a": self.record_a,
            "record_b": self.record_b,
            "digest_a": self.digest_a,
            "digest_b": self.digest_b,
            "probes": self.probes,
        }


def _first_mismatch(runs_a: List[ScenarioRun], runs_b: List[ScenarioRun]) -> Optional[int]:
    """Index of the first scenario whose digests disagree, else None."""
    for index in range(min(len(runs_a), len(runs_b))):
        if runs_a[index].digest != runs_b[index].digest:
            return index
    if len(runs_a) != len(runs_b):
        return min(len(runs_a), len(runs_b))
    return None


def _diverged_at(replay_a: Replay, replay_b: Replay, horizon: float,
                 scenario_index: int) -> bool:
    """Whether scenario ``scenario_index`` already differs at ``horizon``."""
    try:
        runs_a = replay_a(horizon, False)
        runs_b = replay_b(horizon, False)
    except Exception as exc:
        raise BisectError(
            f"replay failed at horizon {horizon!r}: {exc}"
        ) from exc
    if scenario_index >= len(runs_a) or scenario_index >= len(runs_b):
        return True
    return runs_a[scenario_index].digest != runs_b[scenario_index].digest


def locate_first_divergence(
    replay_a: Replay,
    replay_b: Replay,
    duration: float,
    max_probes: int = MAX_PROBES,
    tol: float = HORIZON_TOL_S,
) -> Optional[DivergencePoint]:
    """Bisect two configurations down to their first divergent record.

    Returns None when the full-horizon replays agree (the divergence did
    not reproduce under these replayers — e.g. a jobs-axis mismatch that
    vanishes in-process).
    """
    runs_a = replay_a(duration, False)
    runs_b = replay_b(duration, False)
    scenario_index = _first_mismatch(runs_a, runs_b)
    if scenario_index is None:
        return None

    # Narrow [lo, hi]: digests agree at lo, disagree at hi.
    lo, hi = 0.0, duration
    probes = 0
    while hi - lo > tol and probes < max_probes:
        mid = (lo + hi) / 2.0
        probes += 1
        if _diverged_at(replay_a, replay_b, mid, scenario_index):
            hi = mid
        else:
            lo = mid

    # One traced replay at the divergent horizon pins the exact record.
    traced_a = replay_a(hi, True)
    traced_b = replay_b(hi, True)
    records_a = traced_a[scenario_index].records if scenario_index < len(traced_a) else []
    records_b = traced_b[scenario_index].records if scenario_index < len(traced_b) else []
    records_a = records_a or []
    records_b = records_b or []

    event_index = None
    for index in range(min(len(records_a), len(records_b))):
        if records_a[index] != records_b[index]:
            event_index = index
            break
    if event_index is None:
        event_index = min(len(records_a), len(records_b))

    rec_a = records_a[event_index] if event_index < len(records_a) else None
    rec_b = records_b[event_index] if event_index < len(records_b) else None
    time = rec_a.time if rec_a is not None else (rec_b.time if rec_b is not None else None)
    return DivergencePoint(
        horizon=hi,
        scenario_index=scenario_index,
        event_index=event_index,
        time=time,
        record_a=record_to_dict(rec_a) if rec_a is not None else None,
        record_b=record_to_dict(rec_b) if rec_b is not None else None,
        digest_a=traced_a[scenario_index].digest if scenario_index < len(traced_a) else "",
        digest_b=traced_b[scenario_index].digest if scenario_index < len(traced_b) else "",
        probes=probes,
    )
