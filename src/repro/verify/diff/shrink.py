"""Greedy scenario shrinking: drop elements while the divergence persists.

Classic delta-debugging lite: repeatedly try removing one element (pad,
fault event, flow, extra link — structural first) and keep any removal
that still fails the oracle.  The loop restarts after every successful
removal, so the result is *1-minimal*: removing any single remaining
element makes the divergence disappear.  That is the strongest guarantee
worth paying for here — each probe is a full differential run, and
1-minimal cases are already small enough to read.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["shrink_case", "MAX_SHRINK_PROBES"]

#: Upper bound on oracle probes one shrink may spend (safety valve; a
#: handful of pads/flows/faults converges in far fewer).
MAX_SHRINK_PROBES = 200


def shrink_case(case: Any, still_fails: Callable[[Any], bool],
                max_probes: int = MAX_SHRINK_PROBES) -> Any:
    """Greedily 1-minimize ``case`` under the ``still_fails`` predicate.

    ``case`` must expose ``removal_candidates()`` and ``remove(candidate)``
    (returning None for removals that would leave the case degenerate) —
    the :class:`repro.verify.diff.fuzz.FuzzScenario` surface.
    """
    probes = 0
    improved = True
    while improved and probes < max_probes:
        improved = False
        for candidate in case.removal_candidates():
            smaller = case.remove(candidate)
            if smaller is None:
                continue
            probes += 1
            if still_fails(smaller):
                case = smaller
                improved = True
                break
            if probes >= max_probes:
                break
    return case
