"""The differential execution oracle.

Two granularities share the same mode matrix:

* :class:`DiffOracle` runs registered *experiments* (an experiment ×
  seed grid) under every :class:`~repro.verify.diff.modes.ExecMode` via
  the public runner surface (:func:`repro.runner.run_cells` — the same
  machinery ``repro.api`` drives) and compares per-cell digests.
* :class:`ScenarioOracle` runs one *scenario case* (anything exposing
  ``build_builder(profile)``/``duration`` — the fuzzer's generated
  cases) under every mode in-process, which is what the bisector and
  shrinker need for fast replays.

The snapshot axis is realized as a genuine capture/restore roundtrip:
the first pass warms the store (straight-through + capture), the second
restores from it, and the *restored* run's digest is the mode's answer —
exactly the path PR 8's invariant promises is byte-identical.
"""

from __future__ import annotations

import multiprocessing
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import RunProfile, WarmStart
from repro.experiments.registry import get_experiment
from repro.runner.cells import Cell, expand_cells
from repro.runner.parallel import run_cells
from repro.service.job import profile_from_dict, profile_to_dict
from repro.snapshot import Snapshot
from repro.verify.diff.bisect import Replay, ScenarioRun
from repro.verify.diff.modes import ExecMode, default_matrix
from repro.verify.runtime import capturing_digests, capturing_traces

__all__ = [
    "CellDivergence",
    "DiffOracle",
    "OracleReport",
    "ScenarioOracle",
]


@dataclass
class CellDivergence:
    """One (cell, mode) digest mismatch against the baseline mode."""

    cell: Optional[Cell]
    mode_a: ExecMode
    mode_b: ExecMode
    digest_a: Optional[str]
    digest_b: Optional[str]

    def describe(self) -> str:
        where = f"{self.cell.exp_id} seed {self.cell.seed}" if self.cell else "scenario"
        return (
            f"{where}: {self.mode_a.label} != {self.mode_b.label} "
            f"({(self.digest_a or '?')[:12]} vs {(self.digest_b or '?')[:12]})"
        )


@dataclass
class OracleReport:
    """Everything one oracle sweep produced."""

    cells: List[Cell]
    modes: List[ExecMode]
    #: mode label -> per-cell digest list (input cell order).
    digests: Dict[str, List[Optional[str]]] = field(default_factory=dict)
    divergences: List[CellDivergence] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences


class DiffOracle:
    """Run an experiment grid under a mode matrix; assert digest equality."""

    def __init__(
        self,
        experiments: Sequence[str],
        seeds: Sequence[int] = (0,),
        duration: Optional[float] = None,
        warmup: Optional[float] = None,
        profile: Optional[RunProfile] = None,
        modes: Optional[Sequence[ExecMode]] = None,
        snap_store: Optional[str] = None,
    ) -> None:
        self.cells = [
            cell.resolved()
            for cell in expand_cells(experiments, list(seeds), duration, warmup)
        ]
        if not self.cells:
            raise ValueError("DiffOracle needs at least one (experiment, seed) cell")
        self.modes = list(modes) if modes is not None else default_matrix()
        if len(self.modes) < 2:
            raise ValueError("the mode matrix needs at least two modes to compare")
        self.profile = profile if profile is not None else RunProfile()
        #: Mid-horizon the snapshot axis roundtrips through — below every
        #: cell's duration so capture always precedes the end of the run.
        self.snap_at = min(cell.duration for cell in self.cells) / 2.0
        self._snap_store = snap_store
        self._tmp: Optional[tempfile.TemporaryDirectory] = None

    def _store(self) -> str:
        if self._snap_store is not None:
            Path(self._snap_store).mkdir(parents=True, exist_ok=True)
            return self._snap_store
        if self._tmp is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="macaw-diff-snap-")
        return self._tmp.name

    def digests_for(self, mode: ExecMode) -> List[Optional[str]]:
        """Per-cell digests (input cell order) under one execution mode."""
        profile = mode.apply(self.profile)
        if mode.snapshot:
            warmed = profile.but(
                warm_start=WarmStart(at=self.snap_at, store=self._store())
            )
            # Pass 1 warms the store (straight-through + capture) ...
            run_cells(self.cells, jobs=mode.jobs, collect_digests=True,
                      profile=warmed)
            # ... pass 2 takes the restore path; its digests answer.
            results = run_cells(self.cells, jobs=mode.jobs,
                                collect_digests=True, profile=warmed)
        else:
            results = run_cells(self.cells, jobs=mode.jobs,
                                collect_digests=True, profile=profile)
        return [result.digest for result in results]

    def check(self) -> OracleReport:
        """Run every mode and compare each against the baseline (mode 0)."""
        report = OracleReport(cells=list(self.cells), modes=list(self.modes))
        baseline_mode = self.modes[0]
        baseline = self.digests_for(baseline_mode)
        report.digests[baseline_mode.label] = baseline
        for mode in self.modes[1:]:
            digests = self.digests_for(mode)
            report.digests[mode.label] = digests
            for cell, expected, got in zip(self.cells, baseline, digests):
                if expected != got:
                    report.divergences.append(CellDivergence(
                        cell=cell, mode_a=baseline_mode, mode_b=mode,
                        digest_a=expected, digest_b=got,
                    ))
        return report

    # ------------------------------------------------------------ bisection
    def replayer(self, cell: Cell, mode: ExecMode) -> Replay:
        """A :data:`~repro.verify.diff.bisect.Replay` for one (cell, mode).

        Replays run in-process regardless of the mode's ``jobs`` axis
        (a worker pool cannot be horizon-shrunk record-by-record); a
        divergence that only manifests across process boundaries will
        come back "did not reproduce" rather than mislocalized.  The
        snapshot axis keeps its roundtrip whenever the horizon extends
        past the capture point.
        """
        applied = mode.apply(self.profile)
        snap_at = self.snap_at
        store = self._store() if mode.snapshot else None

        def replay(horizon: float, traced: bool) -> List[ScenarioRun]:
            profile = applied
            if store is not None and horizon > snap_at:
                profile = applied.but(
                    warm_start=WarmStart(at=snap_at, store=store)
                )
                # Warm once so the measured replay is the restore path.
                _run_experiment(cell.exp_id, cell.seed, horizon, profile,
                                traced=False)
            return _run_experiment(cell.exp_id, cell.seed, horizon, profile,
                                   traced=traced)

        return replay


def _run_experiment(exp_id: str, seed: int, horizon: float,
                    profile: RunProfile, traced: bool) -> List[ScenarioRun]:
    """One in-process experiment run, returning per-scenario runs.

    ``warmup=0`` everywhere: warm-up only affects *measurement* windows,
    never the event stream, and bisection horizons routinely shrink
    below any configured warm-up.
    """
    exp = get_experiment(exp_id)
    with capturing_digests() as digests:
        if traced:
            with capturing_traces() as traces:
                exp.run(seed=seed, duration=horizon, warmup=0.0,
                        profile=profile)
        else:
            traces = []
            exp.run(seed=seed, duration=horizon, warmup=0.0, profile=profile)
    return [
        ScenarioRun(
            digest=digest,
            records=traces[index] if traced and index < len(traces) else None,
        )
        for index, digest in enumerate(digests)
    ]


class ScenarioOracle:
    """Differential oracle over one directly-built scenario case.

    ``case`` is anything with ``build_builder(profile) -> ScenarioBuilder``,
    a ``duration`` attribute and (for the jobs axis) ``to_dict`` /
    ``from_dict`` — i.e. :class:`repro.verify.diff.fuzz.FuzzScenario`.
    """

    def __init__(
        self,
        modes: Optional[Sequence[ExecMode]] = None,
        profile: Optional[RunProfile] = None,
    ) -> None:
        self.modes = list(modes) if modes is not None else default_matrix()
        if len(self.modes) < 2:
            raise ValueError("the mode matrix needs at least two modes to compare")
        base = profile if profile is not None else RunProfile()
        # Tracing is the oracle's measurement instrument.
        self.profile = base.but(trace=True)

    def run_case(self, case: Any, mode: ExecMode,
                 horizon: Optional[float] = None,
                 traced: bool = False) -> ScenarioRun:
        """Run ``case`` under ``mode`` up to ``horizon`` (default: full)."""
        duration = float(horizon if horizon is not None else case.duration)
        if mode.jobs > 1:
            return _case_in_subprocess(case, mode, self.profile, duration, traced)
        return _run_case(case, mode, self.profile, duration, traced)

    def check(self, case: Any) -> Optional[CellDivergence]:
        """First digest mismatch against the baseline mode, or None."""
        baseline_mode = self.modes[0]
        baseline = self.run_case(case, baseline_mode)
        for mode in self.modes[1:]:
            run = self.run_case(case, mode)
            if run.digest != baseline.digest:
                return CellDivergence(
                    cell=None, mode_a=baseline_mode, mode_b=mode,
                    digest_a=baseline.digest, digest_b=run.digest,
                )
        return None

    def replayer(self, case: Any, mode: ExecMode) -> Replay:
        """A bisection replay callback for one (case, mode).

        Like :meth:`DiffOracle.replayer`, replays stay in-process (the
        jobs axis collapses to serial execution here).
        """
        def replay(horizon: float, traced: bool) -> List[ScenarioRun]:
            return [_run_case(case, mode, self.profile, horizon, traced)]

        return replay


#: Snapshot-roundtrip point, as a fraction of the case duration.
SNAP_FRACTION = 0.5


def _run_case(case: Any, mode: ExecMode, profile: RunProfile,
              duration: float, traced: bool) -> ScenarioRun:
    """Run one scenario case in this process under one mode."""
    applied = mode.apply(profile)
    builder = case.build_builder(applied)
    snap_at = float(case.duration) * SNAP_FRACTION
    if mode.snapshot and duration > snap_at:
        scenario = builder.build()
        scenario.sim.run(until=snap_at)
        snap = Snapshot.capture(scenario, builder)
        scenario = builder.build()
        snap.restore(scenario, builder)
        scenario.run(duration)
    else:
        scenario = builder.build().run(duration)
    return ScenarioRun(
        digest=scenario.sim.trace.digest(),
        records=list(scenario.sim.trace) if traced else None,
    )


def _case_worker(payload: Tuple[dict, dict, dict, float, bool]) -> ScenarioRun:
    """Pool entry point: rebuild the case and run it in this worker."""
    from repro.verify.diff.fuzz import FuzzScenario

    case_dict, mode_dict, profile_dict, duration, traced = payload
    return _run_case(
        FuzzScenario.from_dict(case_dict),
        ExecMode.from_dict(mode_dict),
        profile_from_dict(profile_dict),
        duration,
        traced,
    )


def _case_in_subprocess(case: Any, mode: ExecMode, profile: RunProfile,
                        duration: float, traced: bool) -> ScenarioRun:
    """The jobs axis at scenario granularity: one run in a pool worker.

    Exercises the same process boundary the experiment runner's pool
    crosses (fork where available, spawn otherwise).
    """
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else "spawn")
    payload = (
        case.to_dict(), mode.to_dict(), profile_to_dict(profile),
        duration, traced,
    )
    with ctx.Pool(processes=1) as pool:
        return pool.apply(_case_worker, (payload,))
