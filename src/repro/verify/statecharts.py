"""Declarative MAC statecharts (Appendix A and Appendix B).

The paper specifies MACA as a five-state machine (Appendix A: IDLE,
CONTEND, WFCTS, WFData, QUIET) and MACAW as a ten-state machine
(Appendix B: those plus SendData, WFDS, WFACK, WFRTS, WFContend).  The
implementation in :mod:`repro.core.macaw` realizes both from one
configurable machine, with two documented refinements (see DESIGN.md):

* ``SendData`` exists even in the MACA configuration, because the
  simulator models transmission airtime explicitly — the appendix's
  atomic "send data" rule spans a real interval here;
* ``WFCONTEND`` exists even in the MACA configuration: a deferring
  station with queued work waits for the quiet period to end before
  contending, which Appendix A folds into QUIET.

This module is the *specification* side of the conformance sanitizer: a
:class:`Statechart` is a pure transition table derived from a
:class:`~repro.core.config.ProtocolConfig`, against which
:mod:`repro.verify.conformance` replays recorded traces.  Keeping the
table declarative (rather than re-deriving legality from the
implementation) is the point — a silent illegal transition in the state
machine cannot also silently rewrite the table it is checked against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Set, Tuple

from repro.core.config import MACA_CONFIG, MACAW_CONFIG, ProtocolConfig
from repro.mac.base import MacState

__all__ = ["Statechart", "statechart_for", "MACA_STATECHART", "MACAW_STATECHART"]

# Canonical state names as they appear in traces (MacState values).
IDLE = MacState.IDLE.value
CONTEND = MacState.CONTEND.value
WFRTS = MacState.WFRTS.value
WFCTS = MacState.WFCTS.value
WFCONTEND = MacState.WFCONTEND.value
SENDDATA = MacState.SENDDATA.value
WFDS = MacState.WFDS.value
WFDATA = MacState.WFDATA.value
WFACK = MacState.WFACK.value
QUIET = MacState.QUIET.value


@dataclass(frozen=True)
class Statechart:
    """An immutable transition table for one protocol configuration."""

    name: str
    states: FrozenSet[str]
    initial: str
    transitions: FrozenSet[Tuple[str, str]]

    def allows(self, frm: str, to: str) -> bool:
        """True when ``frm -> to`` is a legal transition."""
        return (frm, to) in self.transitions

    def successors(self, state: str) -> FrozenSet[str]:
        """States reachable from ``state`` in one transition."""
        return frozenset(to for frm, to in self.transitions if frm == state)

    def unreachable_states(self) -> FrozenSet[str]:
        """States never entered from :attr:`initial` (spec self-check)."""
        seen: Set[str] = {self.initial}
        frontier = [self.initial]
        while frontier:
            here = frontier.pop()
            for nxt in self.successors(here):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return frozenset(self.states - seen)

    def __contains__(self, state: str) -> bool:
        return state in self.states


def statechart_for(config: ProtocolConfig, name: str = "") -> Statechart:
    """Derive the legal transition table for one protocol configuration.

    The table follows Appendix A/B rule-by-rule, specialized by the
    config's feature flags exactly as the paper's tables are (each table
    toggles one flag): without ``use_ds`` the receiver grant leads
    straight to WFData; without ``use_ack`` the sender never enters
    WFACK; without ``use_rrts`` WFRTS does not exist.
    """
    transitions: Set[Tuple[str, str]] = {
        # Contention entry and the empty-queue return (control rules 1, 3).
        (IDLE, CONTEND),
        (CONTEND, IDLE),
        # Deferral (control rule 11 / Appendix A rule 4): a station that
        # overhears a control packet goes quiet — to WFCONTEND when it has
        # work waiting, QUIET otherwise — and returns when the period ends.
        (IDLE, WFCONTEND),
        (IDLE, QUIET),
        (CONTEND, WFCONTEND),
        (CONTEND, QUIET),
        (QUIET, WFCONTEND),
        (WFCONTEND, QUIET),
        (QUIET, CONTEND),
        (WFCONTEND, CONTEND),
        (QUIET, IDLE),
        (WFCONTEND, IDLE),
        # Sender: RTS goes out at the contention boundary (rule 2).
        (CONTEND, WFCTS),
        # CTS answered / timed out (rules 4, timeout rule 1).
        (WFCTS, SENDDATA),
        (WFCTS, IDLE),
        # DATA sent; without an ACK the exchange completes here (§2.3).
        (SENDDATA, IDLE),
        # Multicast: RTS is followed immediately by DATA (§3.3.4).
        (CONTEND, SENDDATA),
        # Receiver: grant a CTS and wait for the exchange to continue.
        (WFDATA, IDLE),
    }

    # Receiver grant target depends on the DS flag (§3.3.2).
    grant = WFDS if config.use_ds else WFDATA
    grant_sources = [IDLE, CONTEND]
    if config.use_rrts:
        grant_sources.append(WFRTS)
    for source in grant_sources:
        transitions.add((source, grant))
    if config.use_ds:
        transitions.add((WFDS, WFDATA))   # DS arrived (control rule 6)
        transitions.add((WFDS, IDLE))     # DS timeout (timeout rule 3)
    if config.use_ack:
        transitions.add((SENDDATA, WFACK))  # DATA sent, await ACK (§3.3.1)
        transitions.add((WFACK, IDLE))      # ACK or timeout (timeout rule 4)
    if config.use_rrts:
        transitions.add((CONTEND, WFRTS))   # RRTS sent (control rule 10)
        transitions.add((WFRTS, IDLE))      # answered by rule 7 ACK / timeout
        transitions.add((WFRTS, CONTEND))   # grant failed, re-contend
        # Rule 13: the RRTS is answered with an immediate RTS.
        transitions.add((IDLE, WFCTS))

    states = {IDLE, CONTEND, WFCTS, WFCONTEND, SENDDATA, WFDATA, QUIET}
    if config.use_ds:
        states.add(WFDS)
    if config.use_ack:
        states.add(WFACK)
    if config.use_rrts:
        states.add(WFRTS)

    if not name:
        name = "MACAW" if config == MACAW_CONFIG else (
            "MACA" if config == MACA_CONFIG else "custom"
        )
    return Statechart(
        name=name,
        states=frozenset(states),
        initial=IDLE,
        transitions=frozenset(transitions),
    )


#: Appendix A's MACA machine (5 paper states + 2 documented refinements).
MACA_STATECHART = statechart_for(MACA_CONFIG, name="MACA")

#: Appendix B's MACAW machine (all 10 states).
MACAW_STATECHART = statechart_for(MACAW_CONFIG, name="MACAW")
