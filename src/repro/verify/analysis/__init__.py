"""Layer-aware static analysis for the MACAW reproduction tree.

A pluggable two-pass AST framework replacing the PR 1 flat linter:

* **Pass 1** (:mod:`~repro.verify.analysis.facts`) parses each module
  once into plain-data facts; file summaries fold into the whole-tree
  :class:`~repro.verify.analysis.project.ProjectIndex` (import graph,
  private-attribute ownership, ``__init__`` re-exports, frozen types).
* **Pass 2** (:mod:`~repro.verify.analysis.engine`) runs registered rule
  plugins (:mod:`~repro.verify.analysis.rules`) per file against facts
  plus index, then applies ``# repro-lint: allow=`` pragmas and sorts.

Rules REPRO101-108 are byte-identical ports of the legacy pass (which
survives as the :mod:`repro.verify.lint` compat shim); REPRO110-113 add
cross-module layering, frozen-mutation, order-sensitive-iteration, and
callback-discipline checks.  See ``DESIGN.md`` §10 and
``python -m repro.verify.analysis --list-rules``.
"""

from repro.verify.analysis.baseline import Baseline, apply_baseline
from repro.verify.analysis.engine import (
    AnalysisCache,
    AnalysisRun,
    FileResult,
    analyze_paths,
    analyze_source,
    collect_files,
)
from repro.verify.analysis.findings import Finding, fingerprint_findings
from repro.verify.analysis.project import ProjectIndex, build_index
from repro.verify.analysis.registry import (
    LEGACY_RULE_CODES,
    Rule,
    all_rules,
    get_rules,
    rule,
    rule_codes,
)

__all__ = [
    "AnalysisCache",
    "AnalysisRun",
    "Baseline",
    "FileResult",
    "Finding",
    "LEGACY_RULE_CODES",
    "ProjectIndex",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "apply_baseline",
    "build_index",
    "collect_files",
    "fingerprint_findings",
    "get_rules",
    "rule",
    "rule_codes",
]
