"""The two-pass analysis engine.

Pass 1 parses every file once and reduces it to a serializable summary;
the summaries fold into the whole-tree
:class:`~repro.verify.analysis.project.ProjectIndex`.  Pass 2 runs the
selected rule plugins per file against the facts *and* the index, then
applies ``# repro-lint: allow=`` pragmas and sorts — exactly the legacy
pipeline, so the :mod:`repro.verify.lint` shim stays byte-identical.

Per-file results are cached keyed on ``(content hash, path, rule
selection, engine version, project digest)``: an edit that does not
change any cross-module table re-analyzes only the edited file.  The
``jobs`` fan-out mirrors :mod:`repro.runner.parallel` — workers receive
only plain data, output order is input order, and a parallel run is
byte-identical to a serial one.
"""

from __future__ import annotations

import hashlib
import io
import json
import multiprocessing
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.verify.analysis.facts import extract_facts
from repro.verify.analysis.findings import Finding, fingerprint_findings
from repro.verify.analysis.project import ProjectIndex, build_index
from repro.verify.analysis.registry import Rule, get_rules, rules_signature

__all__ = [
    "ENGINE_VERSION",
    "AnalysisCache",
    "AnalysisRun",
    "FileResult",
    "analyze_source",
    "analyze_paths",
    "collect_files",
]

#: Bumped whenever extraction or rule semantics change; part of every
#: cache key so stale caches can never resurface old findings.
ENGINE_VERSION = "3"

_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow=([A-Za-z0-9_,\s]+)")


@dataclass
class FileResult:
    """Per-file outcome: kept findings, pragma-suppressed ones, metadata."""

    path: str
    findings: List[Finding] = field(default_factory=list)
    fingerprints: List[str] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    pragma_lines: List[int] = field(default_factory=list)
    from_cache: bool = False

    def to_blob(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "findings": [f.to_dict() for f in self.findings],
            "fingerprints": list(self.fingerprints),
            "suppressed": [f.to_dict() for f in self.suppressed],
            "pragma_lines": list(self.pragma_lines),
        }

    @classmethod
    def from_blob(cls, blob: Dict[str, Any]) -> "FileResult":
        return cls(
            path=str(blob["path"]),
            findings=[Finding.from_dict(f) for f in blob["findings"]],
            fingerprints=[str(fp) for fp in blob["fingerprints"]],
            suppressed=[Finding.from_dict(f) for f in blob["suppressed"]],
            pragma_lines=[int(line) for line in blob["pragma_lines"]],
            from_cache=True,
        )


@dataclass
class AnalysisRun:
    """A whole-tree analysis outcome."""

    files: List[FileResult]
    index: Optional[ProjectIndex] = None
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def findings(self) -> List[Finding]:
        out: List[Finding] = []
        for result in self.files:
            out.extend(result.findings)
        return out

    @property
    def fingerprints(self) -> List[Tuple[Finding, str]]:
        out: List[Tuple[Finding, str]] = []
        for result in self.files:
            out.extend(zip(result.findings, result.fingerprints))
        return out


def _allowed_codes(source_lines: Sequence[str], line: int) -> Set[str]:
    """Rules waived on ``line`` (1-indexed) by a repro-lint pragma."""
    if not 1 <= line <= len(source_lines):
        return set()
    match = _ALLOW_RE.search(source_lines[line - 1])
    if not match:
        return set()
    return {token.strip().upper() for token in match.group(1).split(",")}


def _comment_pragma_lines(source: str) -> List[int]:
    """Lines whose actual COMMENT token is a repro-lint pragma.

    Findings are *suppressed* by a raw-line regex (legacy semantics),
    but only genuine comments are candidates for ``--fix`` pragma
    removal — a docstring that merely mentions the pragma syntax must
    never be rewritten.
    """
    lines: List[int] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if (token.type == tokenize.COMMENT
                    and _ALLOW_RE.search(token.string)):
                lines.append(token.start[0])
    except (tokenize.TokenError, IndentationError):
        pass
    return lines


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[Rule]] = None,
    project: Optional[ProjectIndex] = None,
) -> FileResult:
    """Run the selected rules over one module's source text."""
    if rules is None:
        rules = get_rules()
    try:
        facts = extract_facts(source, path)
    except SyntaxError as exc:
        finding = Finding(path, exc.lineno or 0, exc.offset or 0, "REPRO100",
                          f"syntax error: {exc.msg}")
        lines = source.splitlines()
        fps = [fp for _, fp in fingerprint_findings([finding], lines)]
        return FileResult(path=path, findings=[finding], fingerprints=fps)
    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.run(facts, project))
    source_lines = source.splitlines()
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in raw:
        allowed = _allowed_codes(source_lines, finding.line)
        if finding.code in allowed or "ALL" in allowed:
            suppressed.append(finding)
        else:
            kept.append(finding)
    kept.sort(key=lambda f: (f.line, f.col, f.code))
    suppressed.sort(key=lambda f: (f.line, f.col, f.code))
    pragma_lines = _comment_pragma_lines(source)
    return FileResult(
        path=path,
        findings=kept,
        fingerprints=[fp for _, fp in fingerprint_findings(kept, source_lines)],
        suppressed=suppressed,
        pragma_lines=pragma_lines,
    )


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files and directory trees (``*.py``, sorted, recursive)."""
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    return files


# ---------------------------------------------------------------- caching

class AnalysisCache:
    """On-disk per-file result cache (atomic writes, content-hash keys)."""

    def __init__(self, directory: Path) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _entry(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[FileResult]:
        entry = self._entry(key)
        try:
            blob = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return FileResult.from_blob(blob)

    def put(self, key: str, result: FileResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        entry = self._entry(key)
        tmp = entry.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(result.to_blob(), sort_keys=True), encoding="utf-8"
        )
        tmp.replace(entry)


def _file_key(path: str, content: bytes, signature: str,
              project_digest: str) -> str:
    blob = hashlib.sha256()
    blob.update(content)
    blob.update(path.encode("utf-8"))
    blob.update(signature.encode("utf-8"))
    blob.update(ENGINE_VERSION.encode("utf-8"))
    blob.update(project_digest.encode("utf-8"))
    return blob.hexdigest()


# ------------------------------------------------------------- fan-out

def _preferred_context() -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, inherits the imported tree), else spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def _summary_worker(path_str: str) -> Optional[Dict[str, Any]]:
    """Pass 1: one file's serializable summary (None on read/parse error)."""
    try:
        source = Path(path_str).read_text(encoding="utf-8")
        return extract_facts(source, path_str).summary()
    except (OSError, SyntaxError):
        return None


def _analyze_worker(
    payload: Tuple[str, Optional[Tuple[str, ...]], Optional[ProjectIndex]],
) -> FileResult:
    """Pass 2: analyze one file (worker-safe: plain-data payload)."""
    path_str, codes, project = payload
    rules = get_rules(list(codes) if codes is not None else None)
    try:
        source = Path(path_str).read_text(encoding="utf-8")
    except OSError as exc:
        finding = Finding(path_str, 0, 0, "REPRO100", f"cannot read file: {exc}")
        return FileResult(path=path_str, findings=[finding],
                          fingerprints=[fp for _, fp in
                                        fingerprint_findings([finding], [])])
    return analyze_source(source, path_str, rules, project)


def analyze_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    jobs: int = 1,
    cache: Optional[AnalysisCache] = None,
    build_project: bool = True,
) -> AnalysisRun:
    """Analyze files/trees with the full two-pass engine.

    ``jobs=N`` fans both passes out over N worker processes; the result
    is byte-identical to a serial run (output order is input order, and
    every worker sees the same pinned project index).  ``build_project=
    False`` skips pass 1 entirely — the legacy single-pass mode the
    :mod:`repro.verify.lint` shim uses for ad-hoc file lists.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs!r}")
    if rules is None:
        rules = get_rules()
    files = collect_files(paths)
    file_names = [str(path) for path in files]

    project: Optional[ProjectIndex] = None
    if build_project:
        if jobs > 1 and len(file_names) > 1:
            ctx = _preferred_context()
            with ctx.Pool(processes=min(jobs, len(file_names))) as pool:
                summaries = pool.map(_summary_worker, file_names, chunksize=4)
        else:
            summaries = [_summary_worker(name) for name in file_names]
        project = build_index([s for s in summaries if s is not None])

    signature = rules_signature(list(rules))
    project_digest = project.digest() if project is not None else "none"
    codes: Optional[Tuple[str, ...]] = tuple(r.code for r in rules)

    results: List[Optional[FileResult]] = [None] * len(file_names)
    pending: List[Tuple[int, str]] = []
    keys: Dict[int, str] = {}
    for index, name in enumerate(file_names):
        if cache is not None:
            try:
                content = Path(name).read_bytes()
            except OSError:
                content = b""
            key = _file_key(name, content, signature, project_digest)
            keys[index] = key
            hit = cache.get(key)
            if hit is not None:
                results[index] = hit
                continue
        pending.append((index, name))

    if pending:
        payloads = [(name, codes, project) for _, name in pending]
        if jobs == 1 or len(pending) == 1:
            fresh = [_analyze_worker(payload) for payload in payloads]
        else:
            ctx = _preferred_context()
            with ctx.Pool(processes=min(jobs, len(pending))) as pool:
                fresh = pool.map(_analyze_worker, payloads, chunksize=4)
        for (index, _name), outcome in zip(pending, fresh):
            results[index] = outcome
            if cache is not None and index in keys:
                cache.put(keys[index], outcome)

    final = [result for result in results if result is not None]
    return AnalysisRun(
        files=final,
        index=project,
        cache_hits=cache.hits if cache is not None else 0,
        cache_misses=cache.misses if cache is not None else 0,
    )
