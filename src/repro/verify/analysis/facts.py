"""Pass 1: per-file fact extraction.

One AST traversal per module collects *facts* — plain-data event records
— that every rule plugin then consumes in pass 2.  Splitting extraction
from judgment is what makes the engine pluggable: a rule never walks the
tree itself, so adding a rule costs one function over these tables, and
the whole-file traversal happens exactly once no matter how many rules
are registered.

The traversal preserves the legacy lint's single-pass semantics: alias
sets (``import random as r`` …) grow in document order, and each event
snapshots the judgment flags *as they stood at that point in the file*,
so the ported REPRO101–108 plugins reproduce the old pass byte-for-byte.

:class:`ModuleFacts` additionally yields a serializable
:meth:`~ModuleFacts.summary` — the per-file contribution to the
whole-tree :class:`~repro.verify.analysis.project.ProjectIndex` (imports,
exports, private-attribute ownership, frozen classes).  Summaries contain
no AST nodes, so they pickle across the ``--jobs`` worker pool and hash
stably for the result cache.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.verify.analysis.layers import classify_module, module_package

__all__ = [
    "AttrEvent",
    "CallEvent",
    "DefaultEvent",
    "ImportBinding",
    "IterationEvent",
    "FrozenWriteEvent",
    "ModuleFacts",
    "extract_facts",
]

#: Wall-clock callables, as (module alias base, attribute) pairs.
WALLCLOCK_TIME_ATTRS = {
    "time", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
    "process_time", "process_time_ns", "time_ns", "localtime", "gmtime",
}
WALLCLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: Mutable constructor names whose call (or literal) must not be a default.
MUTABLE_CALLS = {"list", "dict", "set", "bytearray", "deque", "defaultdict"}

#: Functions in which ``object.__setattr__`` is the sanctioned frozen-
#: dataclass construction idiom.
INIT_FAMILY = {"__init__", "__post_init__", "__setattr__", "__new__"}

#: Legacy keyword surfaces REPRO115 polices: callable -> kwargs that
#: moved into :class:`~repro.core.config.RunProfile`.  Mirrors the
#: ``_LEGACY_KWARGS`` shim in ``topo/builder.py`` and the deprecated
#: ``run_cells`` spellings; keep the three lists in sync.
LEGACY_API_KWARGS = {
    "ScenarioBuilder": frozenset({
        "bitrate_bps", "trace", "grid_kwargs", "queue_capacity",
        "timing", "sanitize", "metrics", "faults",
    }),
    "run_cells": frozenset({"sanitize", "metrics_interval"}),
}

_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
_SET_METHODS = {"union", "intersection", "difference", "symmetric_difference", "copy"}
_SCHEDULE_ATTRS = {"schedule", "at", "call_soon"}

IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass(frozen=True)
class ImportBinding:
    """One name bound by an import statement."""

    name: str            #: the name bound in this module
    orig_name: str       #: alias.name — the imported member / dotted module
    module: str          #: full module path ("" for plain ``import x``-roots)
    root: str            #: top-level module root ("random", "repro", ...)
    line: int
    col: int
    is_from: bool
    redundant_alias: bool   #: ``import x as x`` / ``from m import y as y``
    type_checking: bool     #: bound inside an ``if TYPE_CHECKING:`` block
    level: int = 0          #: relative-import level (ImportFrom only)


@dataclass(frozen=True)
class AttrEvent:
    """One attribute access, with legacy judgment flags snapshotted."""

    line: int
    col: int
    attr: str
    is_store: bool
    base_is_self: bool
    base_name: Optional[str]
    #: legacy flags, resolved against alias sets at visit time
    random_alias_base: bool = False
    numpy_random: bool = False
    time_wallclock: bool = False
    datetime_wallclock: bool = False
    datetime_chain: Optional[Tuple[str, str]] = None  #: (base root, mid attr)


@dataclass(frozen=True)
class CallEvent:
    """One call site, with everything the rules need precomputed."""

    line: int
    col: int
    func_name: Optional[str]
    func_attr: Optional[str]
    enclosing_function: Optional[str]
    wallclock_name: bool = False
    is_print: bool = False
    fault_private_universe: bool = False
    fault_stream_violation: bool = False
    #: ``streams.get("fuzz:...")``-style call — the fuzzer's reserved
    #: substream namespace (REPRO116 confines it to repro/verify/diff/).
    fuzz_stream_call: bool = False
    object_setattr: bool = False
    sim_run_call: bool = False
    at_constant_time: bool = False
    #: Keywords at this call site that hit the deprecated kwarg shim
    #: (see :data:`LEGACY_API_KWARGS`); empty for every other call.
    legacy_api_kwargs: Tuple[str, ...] = ()


@dataclass(frozen=True)
class DefaultEvent:
    """One mutable default argument."""

    line: int
    col: int
    literal_kind: Optional[str]   #: "list"/"dict"/"set" for literals
    call_name: Optional[str]      #: constructor name for calls


@dataclass(frozen=True)
class IterationEvent:
    """Iteration over an unordered set feeding order-sensitive work."""

    line: int
    col: int
    reason: str       #: "accumulation" | "scheduling" | "float-sum"
    detail: str


@dataclass(frozen=True)
class FrozenWriteEvent:
    """Direct attribute store on a value of a known (possibly frozen) class."""

    line: int
    col: int
    var: str
    class_name: str
    attr: str
    enclosing_function: Optional[str]


@dataclass
class ModuleFacts:
    """Everything pass 1 learned about one module."""

    path: str
    normalized: str
    rel: Optional[str]          #: repro-relative path, None outside the tree
    package: Optional[str]      #: repro package ("", "cli", "mac", ...)
    # Legacy module-kind flags (path-derived, matching repro.verify.lint).
    is_rng_module: bool = False
    is_kernel_module: bool = False
    is_phy_module: bool = False
    is_telemetry_module: bool = False
    is_fault_module: bool = False
    #: Under ``verify/diff/`` — the differential oracle/fuzzer subtree.
    is_diff_module: bool = False
    is_init_module: bool = False

    imports: List[ImportBinding] = field(default_factory=list)
    attr_events: List[AttrEvent] = field(default_factory=list)
    call_events: List[CallEvent] = field(default_factory=list)
    default_events: List[DefaultEvent] = field(default_factory=list)
    now_assigns: List[Tuple[int, int, Optional[str]]] = field(default_factory=list)
    counter_dicts: List[Tuple[int, int]] = field(default_factory=list)
    iteration_events: List[IterationEvent] = field(default_factory=list)
    frozen_writes: List[FrozenWriteEvent] = field(default_factory=list)

    used_names: Set[str] = field(default_factory=set)
    string_constants: List[str] = field(default_factory=list)
    all_names: List[str] = field(default_factory=list)      #: __all__ members
    callback_names: Set[str] = field(default_factory=set)
    frozen_classes: Set[str] = field(default_factory=set)
    private_attr_defs: Set[str] = field(default_factory=set)

    def summary(self) -> Dict[str, Any]:
        """The serializable whole-tree contribution of this module."""
        return {
            "rel": self.rel,
            "package": self.package,
            "is_init": self.is_init_module,
            "imports": [
                {
                    "name": b.name,
                    "orig": b.orig_name,
                    "module": b.module,
                    "root": b.root,
                    "is_from": b.is_from,
                    "type_checking": b.type_checking,
                    "level": b.level,
                }
                for b in self.imports
            ],
            "all": list(self.all_names),
            "private_attr_defs": sorted(self.private_attr_defs),
            "frozen_classes": sorted(self.frozen_classes),
        }


def _is_type_checking_test(test: ast.expr) -> bool:
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _is_frozen_dataclass_decorator(node: ast.expr) -> bool:
    """``@dataclass(frozen=True)`` (bare or attribute-qualified)."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    name = func.id if isinstance(func, ast.Name) else (
        func.attr if isinstance(func, ast.Attribute) else None
    )
    if name != "dataclass":
        return False
    for keyword in node.keywords:
        if keyword.arg == "frozen" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value)
    return False


class _FactsVisitor(ast.NodeVisitor):
    """The single traversal filling a :class:`ModuleFacts`."""

    def __init__(self, facts: ModuleFacts) -> None:
        self.facts = facts
        self.random_aliases: Set[str] = set()
        self.numpy_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.datetime_aliases: Set[str] = set()
        self.wallclock_names: Set[str] = set()
        self._type_checking_depth = 0
        self._function_stack: List[str] = []
        #: per-scope Name -> constructor class for frozen-write tracking;
        #: scope 0 is the module, one frame per function.
        self._binding_stack: List[Dict[str, str]] = [{}]
        #: per-scope names known to hold sets.
        self._set_vars_stack: List[Set[str]] = [set()]

    # ------------------------------------------------------------ helpers
    @property
    def _enclosing(self) -> Optional[str]:
        return self._function_stack[-1] if self._function_stack else None

    def _set_like(self, node: ast.expr) -> bool:
        """Whether ``node`` statically looks like an unordered set value."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in self._set_vars_stack[-1] or (
                node.id in self._set_vars_stack[0]
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.Sub, ast.BitAnd, ast.BitOr, ast.BitXor)
        ):
            return self._set_like(node.left) or self._set_like(node.right)
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._set_like(func.value)
        return False

    @staticmethod
    def _annotation_is_set(annotation: Optional[ast.expr]) -> bool:
        if annotation is None:
            return False
        target = annotation
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Name):
            return target.id in _SET_ANNOTATIONS
        if isinstance(target, ast.Attribute):
            return target.attr in _SET_ANNOTATIONS
        return False

    @staticmethod
    def _constructor_name(value: ast.expr) -> Optional[str]:
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            return value.func.attr
        return None

    @staticmethod
    def _annotation_class(annotation: Optional[ast.expr]) -> Optional[str]:
        if isinstance(annotation, ast.Name):
            return annotation.id
        if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
            match = IDENT_RE.match(annotation.value.strip())
            return match.group(0) if match else None
        return None

    # ------------------------------------------------------------ imports
    def visit_If(self, node: ast.If) -> None:
        if _is_type_checking_test(node.test):
            self.visit(node.test)
            self._type_checking_depth += 1
            for child in node.body:
                self.visit(child)
            self._type_checking_depth -= 1
            for child in node.orelse:
                self.visit(child)
            return
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            root = alias.name.split(".")[0]
            if root == "random":
                self.random_aliases.add(bound)
            elif root == "numpy":
                self.numpy_aliases.add(bound)
            elif root == "time":
                self.time_aliases.add(bound)
            elif root == "datetime":
                self.datetime_aliases.add(bound)
            self.facts.imports.append(ImportBinding(
                name=bound,
                orig_name=alias.name,
                module=alias.name,
                root=root,
                line=node.lineno,
                col=node.col_offset,
                is_from=False,
                redundant_alias=alias.asname is not None and alias.asname == alias.name,
                type_checking=self._type_checking_depth > 0,
            ))
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        module = node.module or ""
        root = module.split(".")[0]
        for alias in node.names:
            if alias.name == "*":
                continue
            bound = alias.asname or alias.name
            if module == "__future__":
                continue
            if root == "time" and alias.name in WALLCLOCK_TIME_ATTRS:
                self.wallclock_names.add(bound)
            elif root == "datetime" and alias.name in ("datetime", "date"):
                self.datetime_aliases.add(bound)
            self.facts.imports.append(ImportBinding(
                name=bound,
                orig_name=alias.name,
                module=module,
                root=root,
                line=node.lineno,
                col=node.col_offset,
                is_from=True,
                redundant_alias=alias.asname is not None and alias.asname == alias.name,
                type_checking=self._type_checking_depth > 0,
                level=node.level or 0,
            ))
        self.generic_visit(node)

    # ---------------------------------------------------------- name uses
    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            self.facts.used_names.add(node.id)
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = node.value
        base_name = base.id if isinstance(base, ast.Name) else None
        base_is_self = base_name in ("self", "cls")
        datetime_chain: Optional[Tuple[str, str]] = None
        random_alias_base = False
        numpy_random = False
        time_wallclock = False
        datetime_wallclock = False
        if base_name is not None:
            random_alias_base = base_name in self.random_aliases
            numpy_random = base_name in self.numpy_aliases and node.attr == "random"
            time_wallclock = (
                base_name in self.time_aliases
                and node.attr in WALLCLOCK_TIME_ATTRS
            )
            datetime_wallclock = (
                base_name in self.datetime_aliases
                and node.attr in WALLCLOCK_DATETIME_ATTRS
            )
        elif (
            isinstance(base, ast.Attribute)
            and isinstance(base.value, ast.Name)
            and base.value.id in self.datetime_aliases
            and node.attr in WALLCLOCK_DATETIME_ATTRS
        ):
            datetime_chain = (base.value.id, base.attr)
        interesting = (
            node.attr.startswith("_")
            or random_alias_base or numpy_random or time_wallclock
            or datetime_wallclock or datetime_chain is not None
        )
        if interesting:
            self.facts.attr_events.append(AttrEvent(
                line=node.lineno,
                col=node.col_offset,
                attr=node.attr,
                is_store=isinstance(node.ctx, ast.Store),
                base_is_self=base_is_self,
                base_name=base_name,
                random_alias_base=random_alias_base,
                numpy_random=numpy_random,
                time_wallclock=time_wallclock,
                datetime_wallclock=datetime_wallclock,
                datetime_chain=datetime_chain,
            ))
        if (
            node.attr.startswith("_")
            and not node.attr.startswith("__")
            and base_is_self
            and isinstance(node.ctx, ast.Store)
        ):
            self.facts.private_attr_defs.add(node.attr)
        self.generic_visit(node)

    # ---------------------------------------------------------------- calls
    @staticmethod
    def _stream_name_head(arg: ast.expr) -> Optional[str]:
        """The literal head of a stream-name argument, if statically known.

        Plain string constants yield themselves; f-strings yield their
        leading literal chunk (enough to judge a ``fault:``/``fuzz:``
        namespace prefix); anything dynamic yields None.
        """
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        if isinstance(arg, ast.JoinedStr) and arg.values:
            head = arg.values[0]
            if isinstance(head, ast.Constant) and isinstance(head.value, str):
                return head.value
        return None

    def _stream_call_literal(self, node: ast.Call) -> Optional[str]:
        """The literal stream-name head of a ``streams.get``-style call."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in ("get", "uniform_slots")
        ):
            return None
        owner = func.value
        owner_is_streams = (
            (isinstance(owner, ast.Attribute) and owner.attr == "streams")
            or (isinstance(owner, ast.Name) and owner.id == "streams")
        )
        if not owner_is_streams or not node.args:
            return None
        return self._stream_name_head(node.args[0])

    def _note_callback_registration(self, node: ast.Call) -> None:
        """Record callbacks handed to the kernel (or a Timer/builder)."""
        func = node.func
        callback_arg: Optional[ast.expr] = None
        if isinstance(func, ast.Attribute):
            if func.attr in ("schedule", "at") and len(node.args) >= 2:
                callback_arg = node.args[1]
            elif func.attr == "call_soon" and node.args:
                callback_arg = node.args[0]
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name == "Timer" and len(node.args) >= 2:
            callback_arg = node.args[1]
        if isinstance(callback_arg, ast.Attribute):
            self.facts.callback_names.add(callback_arg.attr)
        elif isinstance(callback_arg, ast.Name):
            self.facts.callback_names.add(callback_arg.id)

    @staticmethod
    def _receiver_is_simulator(func: ast.Attribute) -> bool:
        owner = func.value
        if isinstance(owner, ast.Name):
            return owner.id in ("sim", "simulator", "kernel")
        if isinstance(owner, ast.Attribute):
            return owner.attr in ("sim", "simulator", "kernel")
        return False

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        func_name = func.id if isinstance(func, ast.Name) else None
        func_attr = func.attr if isinstance(func, ast.Attribute) else None
        object_setattr = (
            func_attr == "__setattr__"
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
        )
        sim_run_call = (
            func_attr == "run"
            and isinstance(func, ast.Attribute)
            and self._receiver_is_simulator(func)
        )
        at_constant_time = (
            func_attr == "at"
            and bool(node.args)
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, (int, float))
            and not isinstance(node.args[0].value, bool)
        )
        shim = LEGACY_API_KWARGS.get(
            func_name if func_name is not None else (func_attr or "")
        )
        legacy_api_kwargs: Tuple[str, ...] = ()
        if shim:
            legacy_api_kwargs = tuple(sorted(
                keyword.arg for keyword in node.keywords
                if keyword.arg is not None and keyword.arg in shim
            ))
        stream_literal = self._stream_call_literal(node)
        self.facts.call_events.append(CallEvent(
            line=node.lineno,
            col=node.col_offset,
            func_name=func_name,
            func_attr=func_attr,
            enclosing_function=self._enclosing,
            wallclock_name=func_name in self.wallclock_names
            if func_name is not None else False,
            is_print=func_name == "print",
            fault_private_universe=func_name == "RandomStreams",
            fault_stream_violation=(
                stream_literal is not None
                and not stream_literal.startswith("fault:")
            ),
            fuzz_stream_call=(
                stream_literal is not None
                and stream_literal.startswith("fuzz:")
            ),
            object_setattr=object_setattr,
            sim_run_call=sim_run_call,
            at_constant_time=at_constant_time,
            legacy_api_kwargs=legacy_api_kwargs,
        ))
        self._note_callback_registration(node)
        # sum()/math.fsum() directly over an unordered set.
        is_sum = func_name == "sum" or func_attr == "fsum"
        if is_sum and node.args:
            arg = node.args[0]
            unordered = self._set_like(arg)
            if not unordered and isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                unordered = any(
                    self._set_like(gen.iter) for gen in arg.generators
                )
            if unordered:
                self.facts.iteration_events.append(IterationEvent(
                    line=node.lineno, col=node.col_offset,
                    reason="float-sum",
                    detail="sum over an unordered set",
                ))
        self.generic_visit(node)

    # ------------------------------------------------- mutable defaults
    def _check_defaults(self, args: ast.arguments) -> None:
        for default in list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.facts.default_events.append(DefaultEvent(
                    line=default.lineno, col=default.col_offset,
                    literal_kind=type(default).__name__.lower(), call_name=None,
                ))
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in MUTABLE_CALLS
            ):
                self.facts.default_events.append(DefaultEvent(
                    line=default.lineno, col=default.col_offset,
                    literal_kind=None, call_name=default.func.id,
                ))

    def _visit_function(self, node: Any) -> None:
        self._check_defaults(node.args)
        self._function_stack.append(node.name)
        bindings: Dict[str, str] = {}
        set_vars: Set[str] = set()
        all_args = list(node.args.posonlyargs) + list(node.args.args) + list(
            node.args.kwonlyargs
        )
        for arg in all_args:
            cls = self._annotation_class(arg.annotation)
            if cls is not None:
                bindings[arg.arg] = cls
            if self._annotation_is_set(arg.annotation):
                set_vars.add(arg.arg)
        self._binding_stack.append(bindings)
        self._set_vars_stack.append(set_vars)
        self.generic_visit(node)
        self._set_vars_stack.pop()
        self._binding_stack.pop()
        self._function_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node.args)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if any(_is_frozen_dataclass_decorator(dec) for dec in node.decorator_list):
            self.facts.frozen_classes.add(node.name)
        self.generic_visit(node)

    # ------------------------------------------------------- assignments
    def _track_binding(self, target: ast.expr, value: Optional[ast.expr],
                       annotation: Optional[ast.expr] = None) -> None:
        if not isinstance(target, ast.Name):
            return
        scope_bindings = self._binding_stack[-1]
        scope_sets = self._set_vars_stack[-1]
        if annotation is not None:
            cls = self._annotation_class(annotation)
            if cls is not None:
                scope_bindings[target.id] = cls
            if self._annotation_is_set(annotation):
                scope_sets.add(target.id)
                return
        if value is None:
            return
        if self._set_like(value):
            scope_sets.add(target.id)
            scope_bindings.pop(target.id, None)
            return
        ctor = self._constructor_name(value)
        if ctor is not None:
            scope_bindings[target.id] = ctor
            scope_sets.discard(target.id)
        else:
            scope_bindings.pop(target.id, None)
            scope_sets.discard(target.id)

    def _lookup_binding(self, name: str) -> Optional[str]:
        for frame in reversed(self._binding_stack):
            if name in frame:
                return frame[name]
        return None

    def _check_frozen_write(self, target: ast.expr) -> None:
        if not isinstance(target, ast.Attribute):
            return
        base = target.value
        if not isinstance(base, ast.Name) or base.id in ("self", "cls"):
            return
        cls = self._lookup_binding(base.id)
        if cls is None:
            return
        self.facts.frozen_writes.append(FrozenWriteEvent(
            line=target.lineno, col=target.col_offset,
            var=base.id, class_name=cls, attr=target.attr,
            enclosing_function=self._enclosing,
        ))

    def _check_now_target(self, target: ast.expr) -> None:
        if isinstance(target, ast.Attribute) and target.attr == "_now":
            self.facts.now_assigns.append(
                (target.lineno, target.col_offset, self._enclosing)
            )

    def _check_counter_dict(self, node: ast.Assign) -> None:
        """``d[k] = d.get(k, 0) + n`` — a hand-rolled counter."""
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        value = node.value
        if not isinstance(target, ast.Subscript) or not isinstance(value, ast.BinOp):
            return
        if not isinstance(value.op, ast.Add):
            return
        for side in (value.left, value.right):
            if (
                isinstance(side, ast.Call)
                and isinstance(side.func, ast.Attribute)
                and side.func.attr == "get"
                and len(side.args) == 2
                and isinstance(side.args[1], ast.Constant)
                and side.args[1].value == 0
                and ast.dump(side.func.value) == ast.dump(target.value)
            ):
                self.facts.counter_dicts.append((node.lineno, node.col_offset))
                return

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_now_target(target)
            self._check_frozen_write(target)
            if len(node.targets) == 1:
                self._track_binding(target, node.value)
        self._check_counter_dict(node)
        self._collect_all(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_now_target(node.target)
        self._check_frozen_write(node.target)
        self._track_binding(node.target, node.value, node.annotation)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_now_target(node.target)
        self._check_frozen_write(node.target)
        self.generic_visit(node)

    def _collect_all(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            return
        target = node.targets[0]
        if not (isinstance(target, ast.Name) and target.id == "__all__"):
            return
        if isinstance(node.value, (ast.List, ast.Tuple)):
            for element in node.value.elts:
                if isinstance(element, ast.Constant) and isinstance(element.value, str):
                    self.facts.all_names.append(element.value)

    # ---------------------------------------------------------- iteration
    def _body_order_sensitivity(self, body: List[ast.stmt]) -> Optional[str]:
        """Why iterating this body in arbitrary order would diverge."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.AugAssign) and isinstance(
                    node.op, (ast.Add, ast.Sub)
                ):
                    return "accumulation"
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ) and node.func.attr in _SCHEDULE_ATTRS:
                    return "scheduling"
        return None

    def visit_For(self, node: ast.For) -> None:
        if self._set_like(node.iter):
            reason = self._body_order_sensitivity(node.body)
            if reason is not None:
                self.facts.iteration_events.append(IterationEvent(
                    line=node.lineno, col=node.col_offset,
                    reason=reason,
                    detail=f"loop body performs {reason}",
                ))
        self.generic_visit(node)

    # ------------------------------------------------------------ strings
    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str):
            self.facts.string_constants.append(node.value)
        self.generic_visit(node)


def extract_facts(source: str, path: str = "<string>") -> ModuleFacts:
    """Parse ``source`` and run the fact-collection traversal.

    Raises :class:`SyntaxError` on unparseable source — the engine maps
    that to a REPRO100 finding, exactly like the legacy pass.
    """
    normalized = path.replace("\\", "/")
    tree = ast.parse(source, filename=path)
    facts = ModuleFacts(
        path=path,
        normalized=normalized,
        rel=classify_module(normalized),
        package=module_package(normalized),
        is_rng_module=normalized.endswith("sim/rng.py"),
        is_kernel_module=normalized.endswith("sim/kernel.py"),
        is_phy_module="/phy/" in normalized or normalized.startswith("phy/"),
        is_telemetry_module=(
            "/obs/" in normalized
            or normalized.startswith("obs/")
            or normalized.endswith("cli.py")
        ),
        is_fault_module="/fault/" in normalized or normalized.startswith("fault/"),
        is_diff_module=(
            "/verify/diff/" in normalized
            or normalized.startswith("verify/diff/")
        ),
        is_init_module=normalized.endswith("__init__.py"),
    )
    _FactsVisitor(facts).visit(tree)
    return facts
