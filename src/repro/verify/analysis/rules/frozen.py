"""REPRO111: frozen-dataclass mutation.

The run configuration surface — :class:`~repro.core.config.RunProfile`,
:class:`~repro.core.config.ProtocolConfig`, fault events, timing tables —
is frozen *so that* a profile hashed into a cache key or a digest cannot
drift after the fact.  ``object.__setattr__`` pierces that freeze; the
only sanctioned sites are ``__init__``/``__post_init__`` (normalization
during construction).  Two checks:

* any ``object.__setattr__(...)`` call outside the construction family;
* a direct field write ``x.field = ...`` where ``x`` is statically known
  (annotation or constructor call) to be a ``@dataclass(frozen=True)``
  type — at runtime this raises ``FrozenInstanceError``, but only on the
  code path that executes; the analyzer catches it tree-wide.  The
  frozen-class set is whole-tree when the project index is available,
  file-local otherwise.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.verify.analysis.facts import INIT_FAMILY, ModuleFacts
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.project import ProjectIndex
from repro.verify.analysis.registry import rule


@rule("REPRO111", name="frozen-mutation",
      summary="frozen dataclasses are immutable after construction",
      requires_project=True)
def check_frozen_mutation(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    for event in facts.call_events:
        if event.object_setattr and event.enclosing_function not in INIT_FAMILY:
            yield Finding(
                facts.path, event.line, event.col, "REPRO111",
                "object.__setattr__ outside __init__/__post_init__ mutates a"
                " frozen value; build a new instance with"
                " dataclasses.replace() / .but() instead",
            )
    frozen = set(facts.frozen_classes)
    if project is not None:
        frozen |= set(project.frozen_classes)
    if not frozen:
        return
    for write in facts.frozen_writes:
        if write.class_name in frozen:
            yield Finding(
                facts.path, write.line, write.col, "REPRO111",
                f"direct field write '{write.var}.{write.attr}' on frozen"
                f" dataclass '{write.class_name}'; frozen values are"
                " immutable — use dataclasses.replace() / .but()",
            )
