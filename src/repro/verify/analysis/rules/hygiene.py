"""REPRO103 mutable-default, REPRO105 unused-import.

REPRO105 is re-export aware (the PR 1 pass was not):

* ``from x import y as y`` (and ``import x as x``) is the PEP 484
  re-export idiom — the redundant alias *states* the intent, so the
  binding is never "unused";
* a name imported by the package's ``__init__.py`` *from this module*
  and listed in that ``__init__``'s ``__all__`` is part of the public
  API surface — the re-export is the use.  This needs the whole-tree
  :class:`~repro.verify.analysis.project.ProjectIndex`; in single-file
  mode the rule degrades to its file-local subset.

``__init__.py`` modules themselves stay exempt: their imports ARE the
public API.
"""

from __future__ import annotations

from typing import Iterator, Optional, Set

from repro.verify.analysis.facts import IDENT_RE, ModuleFacts
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.project import ProjectIndex, module_fullname
from repro.verify.analysis.registry import rule


@rule("REPRO103", name="mutable-default",
      summary="no mutable default arguments")
def check_mutable_defaults(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    for event in facts.default_events:
        if event.literal_kind is not None:
            yield Finding(
                facts.path, event.line, event.col, "REPRO103",
                f"mutable default argument ({event.literal_kind} literal);"
                " use None and create inside the function",
            )
        else:
            yield Finding(
                facts.path, event.line, event.col, "REPRO103",
                f"mutable default argument ({event.call_name}());"
                " use None and create inside the function",
            )


@rule("REPRO105", name="unused-import",
      summary="imports must be referenced or deliberately re-exported",
      requires_project=True)
def check_unused_imports(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    if facts.is_init_module:
        return
    string_idents: Set[str] = set()
    for text in facts.string_constants:
        if len(text) < 200:  # identifiers, not docstrings
            string_idents.update(IDENT_RE.findall(text))
    used = facts.used_names | string_idents
    fullname = module_fullname(facts.rel)
    for binding in facts.imports:
        if binding.name in used:
            continue
        if binding.redundant_alias:
            continue  # `from x import y as y`: the re-export idiom
        if (
            project is not None
            and fullname is not None
            and (fullname, binding.name) in project.init_reexports
        ):
            continue  # re-exported through the package __init__'s __all__
        yield Finding(
            facts.path, binding.line, binding.col, "REPRO105",
            f"'{binding.name}' imported but unused",
        )
