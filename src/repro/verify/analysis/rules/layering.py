"""REPRO110: the layer DAG and cross-layer private-attribute access.

Two checks, both driven by :mod:`repro.verify.analysis.layers`:

* **Imports** — a module may import its own layer and the layers below
  it (``sim <- phy <- mac/core <- net <- topo <- experiments``); the
  obs/verify/fault/runner service layers each declare exactly the
  surface they need, and stack modules reach *into* the services only
  from declared hook points (``topo/builder.py``, ``core/config.py``,
  ``fault/report.py``).  ``TYPE_CHECKING``-only imports are exempt.
* **Private attributes** (requires the project index) — generalizing
  REPRO106's ``._audible`` ban: reading ``x._name`` where ``_name`` is
  written (``self._name = ...``) by exactly one *other* layer group is a
  layering leak; the owning layer should grow a public accessor.
  ``._audible`` itself stays REPRO106's, to keep one finding per site.
  Packages in :data:`~repro.verify.analysis.layers.PRIVATE_ACCESS_EXEMPT`
  (the snapshot codec) skip this half only — their imports are still
  checked.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.verify.analysis.facts import ModuleFacts
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.layers import (
    HOOK_EXCEPTIONS,
    KNOWN_PACKAGES,
    PRIVATE_ACCESS_EXEMPT,
    allowed_imports,
)
from repro.verify.analysis.project import ProjectIndex, module_fullname
from repro.verify.analysis.registry import rule


def _import_target_package(module: str, level: int,
                           own_module: Optional[str]) -> Optional[str]:
    """The repro package an import lands in, or None for external ones."""
    if level > 0 and own_module is not None:
        base = own_module.split(".")
        if level <= len(base):
            base = base[:len(base) - level + 1] if own_module.endswith(
                "__init__") else base[:len(base) - level]
        module = ".".join(base + ([module] if module else []))
    parts = module.split(".")
    if parts[0] != "repro":
        return None
    if len(parts) == 1:
        return ""
    return parts[1] if parts[1] in KNOWN_PACKAGES else (
        "cli" if parts[1] == "cli" else ""
    )


@rule("REPRO110", name="layering",
      summary="imports and private access must follow the layer DAG",
      requires_project=True)
def check_layering(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    package = facts.package
    if package is None or facts.rel is None:
        return
    allowed = allowed_imports(package, facts.rel)
    own_module = module_fullname(facts.rel)
    for binding in facts.imports:
        if binding.type_checking:
            continue
        target = _import_target_package(
            binding.module or binding.orig_name, binding.level, own_module
        )
        if target is None or target == package:
            continue
        if target in allowed:
            continue
        if (facts.rel, target) in HOOK_EXCEPTIONS:
            continue
        layer = package if package else "top-level"
        ok = ", ".join(sorted(p for p in allowed if p)) or "(none)"
        yield Finding(
            facts.path, binding.line, binding.col, "REPRO110",
            f"layer '{layer}' must not import "
            f"'{f'repro.{target}' if target else 'repro'}'"
            f" (allowed: {ok}); the layer DAG is"
            " sim <- phy <- mac/core <- net <- topo <- experiments, with"
            " obs/verify/fault reached only via declared hook points"
            " (repro.verify.analysis.layers)",
        )
    if project is None or package in PRIVATE_ACCESS_EXEMPT:
        # The snapshot codec serializes other layers' private state by
        # design; its import discipline is still checked above.
        return
    for event in facts.attr_events:
        if (
            not event.attr.startswith("_")
            or event.attr.startswith("__")
            or event.base_is_self
            or event.attr == "_audible"  # REPRO106 owns this one
        ):
            continue
        owner = project.attr_owned_elsewhere(event.attr, package)
        if owner is None:
            continue
        yield Finding(
            facts.path, event.line, event.col, "REPRO110",
            f"cross-layer access to private attribute '.{event.attr}' owned"
            f" by layer '{owner}'; promote a public accessor on the owning"
            " layer instead of reaching through it",
        )
