"""REPRO114: ad-hoc pickling of simulator state.

Live simulator objects are full of things ``pickle`` silently gets
wrong: callbacks bound into the event queue, RNG substreams whose
identity (not just state) matters, process-global sequence counters,
and cross-references that must survive as *the same object*.  The
checkpoint subsystem (``repro/snapshot/``) exists precisely to handle
all of that — its codec routes every registered component and RNG
through stable tokens and re-encodes sets deterministically.

So ``pickle`` (and ``copyreg``, its customization surface) may be
imported only inside ``repro/snapshot/``.  Everything else either uses
the snapshot API or — for plain-data records like the result cache's
``CellResult`` blobs — carries an explicit per-line allow pragma::

    import pickle  # repro-lint: allow=REPRO114 (CellResult blobs, ...)

``TYPE_CHECKING``-only imports are exempt, as everywhere.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.verify.analysis.facts import ModuleFacts
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.project import ProjectIndex
from repro.verify.analysis.registry import rule

#: Modules whose import marks ad-hoc persistence of live objects.
_PERSISTENCE_ROOTS = frozenset({"pickle", "copyreg"})


def _in_snapshot_package(facts: ModuleFacts) -> bool:
    if facts.package == "snapshot":
        return True
    # Fixture paths without a repro/ segment classify by leading package.
    rel = facts.rel or ""
    return rel.split("/")[0] == "snapshot"


@rule("REPRO114", name="persistence",
      summary="pickle/copyreg are confined to repro/snapshot/")
def check_persistence(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    if _in_snapshot_package(facts):
        return
    for binding in facts.imports:
        if binding.type_checking:
            continue
        if binding.root not in _PERSISTENCE_ROOTS:
            continue
        yield Finding(
            facts.path, binding.line, binding.col, "REPRO114",
            f"direct '{binding.root}' use outside repro/snapshot/; serialize"
            " simulator state through repro.snapshot (registered tokens,"
            " deterministic set encoding) — or, for plain-data records,"
            " add '# repro-lint: allow=REPRO114 (<why>)' on this line",
        )
