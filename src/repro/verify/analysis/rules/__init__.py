"""Rule plugins.

Importing this package registers every built-in rule with
:mod:`repro.verify.analysis.registry`.  Each module owns one family:

==========================  ==============================================
Module                      Rules
==========================  ==============================================
:mod:`.determinism`         REPRO101 unseeded-randomness, REPRO102
                            wall-clock, REPRO108 fault-randomness,
                            REPRO116 fuzz-randomness
:mod:`.hygiene`             REPRO103 mutable-default, REPRO105
                            unused-import (re-export aware)
:mod:`.kernel`              REPRO104 clock-mutation, REPRO113
                            callback-discipline
:mod:`.telemetry`           REPRO106 private-audibility, REPRO107
                            ad-hoc-telemetry
:mod:`.layering`            REPRO110 layer DAG + cross-layer privates
:mod:`.frozen`              REPRO111 frozen-dataclass mutation
:mod:`.ordering`            REPRO112 order-sensitive set iteration
:mod:`.persistence`         REPRO114 pickle-outside-snapshot
:mod:`.api`                 REPRO115 legacy-api-kwargs
==========================  ==============================================
"""

from repro.verify.analysis.rules import (  # noqa: F401  (registration side effect)
    api,
    determinism,
    frozen,
    hygiene,
    kernel,
    layering,
    ordering,
    persistence,
    telemetry,
)
