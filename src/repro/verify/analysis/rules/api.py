"""REPRO115 legacy-api-kwargs.

PR 4 moved per-run knobs (``sanitize``, ``metrics``, ``trace``,
``faults``, …) off the ``ScenarioBuilder``/``run_cells`` signatures and
into :class:`~repro.core.config.RunProfile`; the old spellings survive
only as a ``DeprecationWarning`` shim.  This rule stops *new* in-tree
callers from reaching for the shim: any call site passing a shimmed
keyword is flagged and pointed at ``profile=RunProfile(...)`` (or the
:mod:`repro.api` facade).  Existing violators — there are none today —
would live in the committed baseline, which is only allowed to shrink.

The shimmed surface is :data:`~repro.verify.analysis.facts
.LEGACY_API_KWARGS`; extraction happens in the fact pass, so the rule
itself is a pure filter.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.verify.analysis.facts import ModuleFacts
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.project import ProjectIndex
from repro.verify.analysis.registry import rule


@rule("REPRO115", name="legacy-api-kwargs",
      summary="no new callers of deprecated kwarg shims; use RunProfile")
def check_legacy_api_kwargs(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    for event in facts.call_events:
        if not event.legacy_api_kwargs:
            continue
        callee = event.func_name or event.func_attr
        kwargs = ", ".join(event.legacy_api_kwargs)
        yield Finding(
            facts.path, event.line, event.col, "REPRO115",
            f"{callee}() passes deprecated kwarg(s) {kwargs}; set them on"
            f" profile=RunProfile(...) instead (see repro.api)",
        )
