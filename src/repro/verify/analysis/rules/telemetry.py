"""REPRO106 private-audibility, REPRO107 ad-hoc-telemetry.

Ported verbatim from the legacy pass.  ``._audible`` stays a named rule
(rather than folding into REPRO110) because it guards a *performance*
contract, not just layering: ``Medium.audible()`` is the cached accessor
the PR 2 link cache depends on.  REPRO107 keeps telemetry in the typed
:mod:`repro.obs` registry and user-facing output in the CLI.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.verify.analysis.facts import ModuleFacts
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.project import ProjectIndex
from repro.verify.analysis.registry import rule


@rule("REPRO106", name="private-audibility",
      summary="'._audible' is private to repro/phy")
def check_private_audibility(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    if facts.is_phy_module:
        return
    for event in facts.attr_events:
        if event.attr == "_audible":
            yield Finding(
                facts.path, event.line, event.col, "REPRO106",
                "direct '._audible' access outside repro/phy; use the cached"
                " Medium.audible(sender, receiver) accessor",
            )


@rule("REPRO107", name="ad-hoc-telemetry",
      summary="telemetry belongs in repro.obs, output in the CLI")
def check_adhoc_telemetry(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    if facts.is_telemetry_module:
        return
    for event in facts.call_events:
        if event.is_print:
            yield Finding(
                facts.path, event.line, event.col, "REPRO107",
                "ad-hoc print() in model code; publish through the repro.obs"
                " metrics registry or report via the CLI",
            )
    for line, col in facts.counter_dicts:
        yield Finding(
            facts.path, line, col, "REPRO107",
            "manual counter dict ('d[k] = d.get(k, 0) + n'); use a"
            " repro.obs Counter instead",
        )
