"""REPRO104 clock-mutation, REPRO113 callback-discipline.

REPRO104 (ported from the legacy pass) bans ``._now`` assignment outside
``sim/kernel.py``: event callbacks must never move the simulation clock.

REPRO113 polices the functions that actually *run as* kernel events.
Pass 1 records every callable handed to ``schedule(delay, cb)`` /
``at(time, cb)`` / ``call_soon(cb)`` / ``Timer(sim, cb)``; a function
whose name is registered anywhere in the module is a callback, and its
body must not:

* call ``sim.run(...)`` — the kernel is not reentrant;
* rebind ``._now`` — only the kernel moves the clock;
* schedule at a *constant* absolute time — inside a callback every
  schedule must derive from ``Simulator.now``, or a replayed run can
  schedule into its own past.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.verify.analysis.facts import ModuleFacts
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.project import ProjectIndex
from repro.verify.analysis.registry import rule


@rule("REPRO104", name="clock-mutation",
      summary="only the kernel may assign '._now'")
def check_clock_mutation(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    if facts.is_kernel_module:
        return
    for line, col, _enclosing in facts.now_assigns:
        yield Finding(
            facts.path, line, col, "REPRO104",
            "assignment to '._now' outside the kernel; event callbacks"
            " must never move the simulation clock",
        )


@rule("REPRO113", name="callback-discipline",
      summary="kernel callbacks must not run/rewind/abs-schedule")
def check_callback_discipline(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    callbacks = facts.callback_names
    if not callbacks:
        return
    for event in facts.call_events:
        if event.enclosing_function not in callbacks:
            continue
        if event.sim_run_call:
            yield Finding(
                facts.path, event.line, event.col, "REPRO113",
                f"event callback '{event.enclosing_function}' calls"
                " Simulator.run(); the kernel is not reentrant — callbacks"
                " must return to the run loop",
            )
        if event.at_constant_time:
            yield Finding(
                facts.path, event.line, event.col, "REPRO113",
                f"event callback '{event.enclosing_function}' schedules at a"
                " constant absolute time; derive schedule times from"
                " Simulator.now",
            )
    for line, col, enclosing in facts.now_assigns:
        if enclosing in callbacks:
            yield Finding(
                facts.path, line, col, "REPRO113",
                f"event callback '{enclosing}' rebinds '._now'; only the"
                " kernel may move the simulation clock",
            )
