"""REPRO101 unseeded-randomness, REPRO102 wall-clock, REPRO108 fault-randomness.

Ported verbatim from the flat :mod:`repro.verify.lint` pass: same
judgments, same messages, same positions — the compat-shim equivalence
test pins that.  All randomness must flow through ``Simulator.streams``
(REPRO101); simulated time comes only from ``Simulator.now`` (REPRO102);
fault-injection code may draw only from dedicated ``fault:*`` substreams
so chaos runs never perturb the clean runs they are compared against
(REPRO108).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.verify.analysis.facts import ModuleFacts
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.project import ProjectIndex
from repro.verify.analysis.registry import rule

_RANDOM_IMPORT_MSG = (
    "stdlib 'random' is banned in model code; draw from"
    " Simulator.streams instead"
)
_FAULT_STREAM_MSG = (
    "fault code must draw only from named 'fault:*'"
    " substreams of Simulator.streams"
)


@rule("REPRO101", name="unseeded-randomness",
      summary="all randomness must flow through Simulator.streams")
def check_randomness(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    for binding in facts.imports:
        if binding.root == "random":
            yield Finding(facts.path, binding.line, binding.col,
                          "REPRO101", _RANDOM_IMPORT_MSG)
    for event in facts.attr_events:
        if event.random_alias_base:
            yield Finding(
                facts.path, event.line, event.col, "REPRO101",
                f"'{event.base_name}.{event.attr}' bypasses the seeded stream"
                " registry (Simulator.streams)",
            )
        if event.numpy_random and not facts.is_rng_module:
            yield Finding(
                facts.path, event.line, event.col, "REPRO101",
                "direct numpy.random use outside repro.sim.rng; derive a"
                " named stream from Simulator.streams",
            )


@rule("REPRO102", name="wall-clock",
      summary="simulated time comes from Simulator.now only")
def check_wallclock(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    for event in facts.attr_events:
        if event.time_wallclock or event.datetime_wallclock:
            yield Finding(
                facts.path, event.line, event.col, "REPRO102",
                f"wall-clock call '{event.base_name}.{event.attr}' in"
                " simulation code; use Simulator.now",
            )
        elif event.datetime_chain is not None:
            root, mid = event.datetime_chain
            yield Finding(
                facts.path, event.line, event.col, "REPRO102",
                f"wall-clock call '{root}.{mid}.{event.attr}'"
                " in simulation code; use Simulator.now",
            )
    for event in facts.call_events:
        if event.wallclock_name:
            yield Finding(
                facts.path, event.line, event.col, "REPRO102",
                f"wall-clock call '{event.func_name}()' in simulation code;"
                " use Simulator.now",
            )


@rule("REPRO108", name="fault-randomness",
      summary="fault code draws only from 'fault:*' substreams")
def check_fault_streams(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    if not facts.is_fault_module:
        return
    for binding in facts.imports:
        if binding.root == "random":
            yield Finding(facts.path, binding.line, binding.col,
                          "REPRO108", _FAULT_STREAM_MSG)
    for event in facts.attr_events:
        if event.numpy_random and not facts.is_rng_module:
            yield Finding(facts.path, event.line, event.col,
                          "REPRO108", _FAULT_STREAM_MSG)
    for event in facts.call_events:
        if event.fault_private_universe:
            yield Finding(
                facts.path, event.line, event.col, "REPRO108",
                "private RandomStreams(...) universe in fault code; use the"
                " simulator's registry via a 'fault:*' substream",
            )
        elif event.fault_stream_violation:
            yield Finding(
                facts.path, event.line, event.col, "REPRO108",
                "fault code drawing from a non-'fault:*' stream; faults must"
                " never share protocol/traffic/noise randomness",
            )


@rule("REPRO116", name="fuzz-randomness",
      summary="'fuzz:*' substreams belong to repro/verify/diff/ only")
def check_fuzz_streams(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    """The fuzzer's reserved namespace must not leak into the stack.

    Scenario generation draws from dedicated ``fuzz:*`` substreams so a
    fuzz case is reproducible from (seed, index) alone; protocol,
    traffic or fault code drawing from that namespace would entangle
    model behaviour with the fuzzing harness — the same containment
    REPRO108 gives the ``fault:*`` namespace, pointed the other way.
    """
    if facts.is_diff_module:
        return
    for event in facts.call_events:
        if event.fuzz_stream_call:
            yield Finding(
                facts.path, event.line, event.col, "REPRO116",
                "'fuzz:*' substreams are reserved for the differential"
                " fuzzer (repro/verify/diff/); model code must use its"
                " own stream namespace",
            )
