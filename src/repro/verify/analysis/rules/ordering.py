"""REPRO112: order-sensitive iteration over unordered sets.

Float addition does not associate, and the kernel breaks same-instant
ties by scheduling order — so any ``for`` over a ``set`` that feeds an
accumulator or schedules events makes the run depend on Python's hash
seed and insertion history.  This is exactly the class of bug the PR 2
``_active`` fix patched by hand (the interference sum was folded in
set-iteration order); this rule catches the next one mechanically.

Flagged shapes:

* ``for x in <set-expr>:`` whose body contains ``+=``/``-=`` or a
  ``schedule``/``at``/``call_soon`` call;
* ``sum(<set-expr>)`` / ``math.fsum(<set-expr>)``, including generator
  arguments drawing from a set.

``sorted(<set>)`` is the sanctioned fix and is never flagged: sorting
re-establishes a canonical order.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.verify.analysis.facts import ModuleFacts
from repro.verify.analysis.findings import Finding
from repro.verify.analysis.project import ProjectIndex
from repro.verify.analysis.registry import rule

_MESSAGES: Dict[str, str] = {
    "float-sum": (
        "sum over an unordered set; float addition is order-sensitive —"
        " sum a sorted(...) or insertion-ordered sequence instead"
    ),
    "accumulation": (
        "iteration over an unordered set feeds an accumulator; iterate"
        " sorted(...) or an insertion-ordered sequence so results do not"
        " depend on set hashing"
    ),
    "scheduling": (
        "iteration over an unordered set schedules events; event order must"
        " not depend on set hashing — iterate sorted(...) instead"
    ),
}


@rule("REPRO112", name="order-sensitive-iteration",
      summary="unordered sets must not feed accumulation or scheduling")
def check_order_sensitive_iteration(
    facts: ModuleFacts, project: Optional[ProjectIndex]
) -> Iterator[Finding]:
    for event in facts.iteration_events:
        yield Finding(
            facts.path, event.line, event.col, "REPRO112",
            _MESSAGES[event.reason],
        )
