"""Finding renderers: legacy text, machine JSON, SARIF 2.1.0.

SARIF is the interchange format CI annotators understand; the emitted
log is deliberately minimal — one run, one driver, one rule descriptor
per registered rule, one result per finding — but schema-valid, so it
can be uploaded as a code-scanning artifact without post-processing.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.verify.analysis.findings import Finding
from repro.verify.analysis.registry import Rule

__all__ = ["render_text", "render_json", "render_sarif", "summary_line"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
TOOL_NAME = "repro-analysis"


def summary_line(findings: Sequence[Finding]) -> str:
    """The legacy one-line tally: ``N finding(s) (CODE: n, ...)``."""
    tally = Counter(f.code for f in findings)
    per_code = ", ".join(f"{code}: {tally[code]}" for code in sorted(tally))
    return f"{len(findings)} finding(s) ({per_code})"


def render_text(findings: Sequence[Finding]) -> str:
    """``path:line:col: CODE message`` per finding plus the tally line."""
    lines = [f.render() for f in findings]
    if findings:
        lines.append(summary_line(findings))
    else:
        lines.append("0 finding(s)")
    return "\n".join(lines) + "\n"


def render_json(
    pairs: Sequence[Tuple[Finding, str]],
    stale_baseline: Sequence[str] = (),
) -> str:
    blob: Dict[str, Any] = {
        "tool": TOOL_NAME,
        "findings": [
            dict(f.to_dict(), fingerprint=fp) for f, fp in pairs
        ],
        "stale_baseline": list(stale_baseline),
    }
    return json.dumps(blob, indent=2, sort_keys=True) + "\n"


def _sarif_rules(rules: Sequence[Rule]) -> List[Dict[str, Any]]:
    return [
        {
            "id": r.code,
            "name": r.name,
            "shortDescription": {"text": r.summary},
        }
        for r in rules
    ]


def render_sarif(
    pairs: Sequence[Tuple[Finding, str]],
    rules: Sequence[Rule],
    baselined: Optional[Sequence[Tuple[Finding, str]]] = None,
) -> str:
    """A single-run SARIF 2.1.0 log.

    New findings carry ``baselineState: "new"`` and baselined ones
    ``"unchanged"`` when a baseline split is provided; fingerprints ride
    in ``partialFingerprints`` so scanners can track identity across
    line moves.
    """
    results: List[Dict[str, Any]] = []

    def _result(finding: Finding, fingerprint: str,
                state: Optional[str]) -> Dict[str, Any]:
        result: Dict[str, Any] = {
            "ruleId": finding.code,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": finding.path},
                        "region": {
                            "startLine": max(finding.line, 1),
                            "startColumn": max(finding.col + 1, 1),
                        },
                    }
                }
            ],
            "partialFingerprints": {"reproAnalysis/v1": fingerprint},
        }
        if state is not None:
            result["baselineState"] = state
        return result

    has_split = baselined is not None
    for finding, fingerprint in pairs:
        results.append(
            _result(finding, fingerprint, "new" if has_split else None)
        )
    for finding, fingerprint in baselined or ():
        results.append(_result(finding, fingerprint, "unchanged"))

    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "informationUri":
                            "https://example.invalid/repro-analysis",
                        "rules": _sarif_rules(rules),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True) + "\n"
