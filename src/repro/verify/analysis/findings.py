"""Finding records and stable fingerprints.

A :class:`Finding` is one diagnostic: ``path:line:col: CODE message``.
The dataclass is shared by every rule plugin, the legacy
:mod:`repro.verify.lint` shim, the baseline machinery and the SARIF/JSON
emitters, so it stays plain data — everything in it pickles across the
``--jobs`` worker pool and serializes byte-stably.

Fingerprints identify a finding across unrelated edits: they hash the
file path, the rule code, the *text* of the flagged line and the
occurrence index among identical (path, code, text) triples — so adding
a blank line above a baselined finding does not invalidate the baseline,
while changing the flagged code does.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["Finding", "fingerprint_findings"]


@dataclass(frozen=True)
class Finding:
    """One analysis finding."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }

    @classmethod
    def from_dict(cls, blob: Dict[str, object]) -> "Finding":
        return cls(
            path=str(blob["path"]),
            line=int(blob["line"]),  # type: ignore[arg-type]
            col=int(blob["col"]),  # type: ignore[arg-type]
            code=str(blob["code"]),
            message=str(blob["message"]),
        )


def _line_text(source_lines: Sequence[str], line: int) -> str:
    if 1 <= line <= len(source_lines):
        return source_lines[line - 1].strip()
    return ""


def fingerprint_findings(
    findings: Sequence[Finding], source_lines: Sequence[str]
) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    ``source_lines`` are the lines of the file the findings came from
    (every finding in one call must share a file).  The fingerprint folds
    in an occurrence index so two identical findings on identical lines
    (e.g. a copy-pasted violation) baseline independently.
    """
    seen: Dict[Tuple[str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for finding in findings:
        text = _line_text(source_lines, finding.line)
        key = (finding.path, finding.code, text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        blob = f"{finding.path}\n{finding.code}\n{text}\n{index}"
        digest = hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]
        out.append((finding, digest))
    return out
