"""``python -m repro.verify.analysis`` entry point."""

from __future__ import annotations

import sys

from repro.verify.analysis.cli import main

if __name__ == "__main__":
    sys.exit(main())
