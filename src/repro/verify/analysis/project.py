"""The whole-tree index: what cross-module rules know about the project.

Pass 1 reduces every module to a serializable summary
(:meth:`~repro.verify.analysis.facts.ModuleFacts.summary`); this module
folds those summaries into the :class:`ProjectIndex` that pass-2 rule
plugins consult:

* ``private_attr_owners`` — for each ``self._name`` attribute written
  anywhere in the tree, the set of layer groups that define it.  The
  REPRO110 attribute rule flags reads of an attribute whose *only*
  defining layer is a different one.
* ``init_reexports`` — ``(source module, name)`` pairs that a package
  ``__init__.py`` imports and lists in its ``__all__``.  REPRO105 treats
  such names as used (the re-export *is* the use).
* ``frozen_classes`` — every ``@dataclass(frozen=True)`` class name in
  the tree, for REPRO111's direct-write check.

:meth:`ProjectIndex.digest` hashes exactly the tables above.  The
per-file result cache keys on it, so an edit that does not change any
cross-module table invalidates only the edited file's entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.verify.analysis.layers import LAYER_GROUP

__all__ = ["ProjectIndex", "build_index", "module_fullname"]


def module_fullname(rel: Optional[str]) -> Optional[str]:
    """Dotted module name for a repro-relative path (``mac/maca.py``)."""
    if rel is None or not rel.endswith(".py"):
        return None
    stem = rel[:-3]
    if stem.endswith("/__init__"):
        stem = stem[: -len("/__init__")]
    return "repro." + stem.replace("/", ".") if stem else "repro"


def _layer_group(package: Optional[str]) -> Optional[str]:
    if package is None:
        return None
    return LAYER_GROUP.get(package, package)


@dataclass
class ProjectIndex:
    """Cross-module facts shared by every pass-2 rule."""

    #: private attribute -> layer groups whose classes write it via self.
    private_attr_owners: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    #: (source dotted module, name) pairs re-exported by a package __init__.
    init_reexports: Set[Tuple[str, str]] = field(default_factory=set)
    #: every @dataclass(frozen=True) class name in the tree.
    frozen_classes: FrozenSet[str] = field(default_factory=frozenset)
    #: dotted module names present in the tree (for import resolution).
    modules: FrozenSet[str] = field(default_factory=frozenset)

    def digest(self) -> str:
        """Stable hash over every table a rule can read."""
        blob = json.dumps(
            {
                "private_attr_owners": {
                    attr: sorted(owners)
                    for attr, owners in sorted(self.private_attr_owners.items())
                },
                "init_reexports": sorted(list(pair) for pair in self.init_reexports),
                "frozen_classes": sorted(self.frozen_classes),
                "modules": sorted(self.modules),
            },
            sort_keys=True,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def attr_owned_elsewhere(self, attr: str, package: Optional[str]) -> Optional[str]:
        """The sole owning layer group of ``attr`` when it is not ours.

        Returns the owner's name when exactly one layer group defines the
        attribute and the accessing ``package`` is a different group;
        None otherwise (unknown attribute, shared ownership, same layer).
        """
        owners = self.private_attr_owners.get(attr)
        if owners is None or len(owners) != 1:
            return None
        (owner,) = owners
        if _layer_group(package) == owner:
            return None
        return owner


def _resolve_init_import(package_module: str, module: str, level: int) -> str:
    """Resolve an ``__init__`` import's source module to a dotted name.

    ``package_module`` is the dotted name of the package itself
    (``repro.mac``); relative imports resolve against it (level 1 means
    "this package").
    """
    if level <= 0:
        return module
    base_parts = package_module.split(".")
    if level > 1:
        base_parts = base_parts[: -(level - 1)] or base_parts[:1]
    base = ".".join(base_parts)
    return f"{base}.{module}" if module else base


def build_index(summaries: List[Dict[str, Any]]) -> ProjectIndex:
    """Fold per-module summaries into one :class:`ProjectIndex`."""
    owners: Dict[str, Set[str]] = {}
    reexports: Set[Tuple[str, str]] = set()
    frozen: Set[str] = set()
    modules: Set[str] = set()
    for summary in summaries:
        rel = summary.get("rel")
        package = summary.get("package")
        fullname = module_fullname(rel)
        if fullname is not None:
            modules.add(fullname)
        group = _layer_group(package)
        if group is not None:
            for attr in summary.get("private_attr_defs", ()):
                owners.setdefault(attr, set()).add(group)
        frozen.update(summary.get("frozen_classes", ()))
        if summary.get("is_init") and fullname is not None:
            exported = set(summary.get("all", ()))
            if exported:
                for imp in summary.get("imports", ()):
                    if not imp.get("is_from"):
                        continue
                    name = imp["name"]
                    if name not in exported:
                        continue
                    source = _resolve_init_import(
                        fullname, imp.get("module", ""), imp.get("level", 0)
                    )
                    reexports.add((source, imp["orig"]))
    return ProjectIndex(
        private_attr_owners={
            attr: frozenset(pkgs) for attr, pkgs in owners.items()
        },
        init_reexports=reexports,
        frozen_classes=frozenset(frozen),
        modules=frozenset(modules),
    )
