"""Command-line driver: ``python -m repro.verify.analysis`` and
``macaw-sim analyze``.

Exit codes follow the legacy linter: 0 clean (modulo baseline), 1 at
least one non-baselined finding, 2 usage errors.  ``--jobs N`` is
byte-identical to a serial run; ``--update-baseline`` rewrites the
committed inventory from the current run (adds new findings, prunes
stale entries).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.verify.analysis.baseline import Baseline, apply_baseline
from repro.verify.analysis.engine import (
    AnalysisCache,
    analyze_paths,
    collect_files,
)
from repro.verify.analysis.fixes import fix_paths
from repro.verify.analysis.output import (
    render_json,
    render_sarif,
    render_text,
    summary_line,
)
from repro.verify.analysis.registry import all_rules, get_rules

__all__ = ["main", "DEFAULT_BASELINE"]

#: The committed whole-tree baseline (relative to the repo root).
DEFAULT_BASELINE = Path("benchmarks/ANALYSIS_baseline.json")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.analysis",
        description="Layer-aware static analysis for the MACAW repro tree.",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to analyze")
    parser.add_argument("--rules", default=None, metavar="CODES",
                        help="comma-separated rule codes (default: all)")
    parser.add_argument("--format", dest="fmt", default="text",
                        choices=("text", "json", "sarif"),
                        help="output format (default: text)")
    parser.add_argument("--output", type=Path, default=None, metavar="FILE",
                        help="write the report to FILE instead of stdout")
    parser.add_argument("--baseline", type=Path, default=None, metavar="FILE",
                        help=f"baseline file (default: {DEFAULT_BASELINE}"
                             " when it exists)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline from this run and exit 0")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="analyze with N worker processes (default: 1)")
    parser.add_argument("--cache-dir", type=Path, default=None, metavar="DIR",
                        help="cache per-file results under DIR")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanically-safe fixes (unused imports,"
                             " stale pragmas) and re-report")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    return parser


def _resolve_baseline(args: argparse.Namespace) -> Optional[Path]:
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    return DEFAULT_BASELINE if DEFAULT_BASELINE.exists() else None


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name}: {rule.summary}")
        return 0

    if not args.paths:
        print("usage: python -m repro.verify.analysis PATH [PATH...]",
              file=sys.stderr)
        return 2
    missing = [p for p in args.paths if not p.exists()]
    if missing:
        for path in missing:
            print(f"error: no such path: {path}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}", file=sys.stderr)
        return 2

    try:
        codes = ([c.strip() for c in args.rules.split(",") if c.strip()]
                 if args.rules else None)
        rules = get_rules(codes)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    cache = AnalysisCache(args.cache_dir) if args.cache_dir else None
    run = analyze_paths(args.paths, rules=rules, jobs=args.jobs, cache=cache)

    if args.fix:
        files = collect_files(args.paths)
        outcomes = fix_paths(files, run.files, run.index)
        changed = [o for o in outcomes if o.changed]
        for outcome in changed:
            details = []
            if outcome.removed_imports:
                details.append(f"{outcome.removed_imports} unused import(s)")
            if outcome.removed_pragmas:
                details.append(f"{outcome.removed_pragmas} stale pragma(s)")
            print(f"fixed {outcome.path}: {', '.join(details) or 'rewritten'}")
        if changed:
            # Re-analyze so the report reflects the fixed tree.
            run = analyze_paths(args.paths, rules=rules, jobs=args.jobs)

    pairs = run.fingerprints
    baseline_path = _resolve_baseline(args)

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        target.parent.mkdir(parents=True, exist_ok=True)
        Baseline.from_findings(pairs).save(target)
        print(f"baseline updated: {target} ({len(pairs)} finding(s))")
        return 0

    baseline = Baseline.load(baseline_path) if baseline_path else Baseline()
    delta = apply_baseline(pairs, baseline)

    if args.fmt == "text":
        report = render_text([f for f, _ in delta.new])
    elif args.fmt == "json":
        report = render_json(delta.new, stale_baseline=delta.stale)
    else:
        report = render_sarif(delta.new, rules, baselined=delta.baselined)

    if args.output is not None:
        args.output.parent.mkdir(parents=True, exist_ok=True)
        args.output.write_text(report, encoding="utf-8")
    else:
        sys.stdout.write(report)

    notes: List[str] = []
    if delta.baselined:
        notes.append(f"{len(delta.baselined)} baselined finding(s) hidden")
    if delta.stale:
        notes.append(
            f"{len(delta.stale)} stale baseline entr(y/ies) — run"
            " --update-baseline to prune"
        )
    if args.output is not None and delta.new:
        notes.append(summary_line([f for f, _ in delta.new]))
    for note in notes:
        print(f"note: {note}", file=sys.stderr)

    return 1 if delta.new else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
