"""The layer DAG and module classification.

The reproduction is layered bottom-up::

    sim <- phy <- mac/core <- net <- topo <- experiments

(``core`` holds the MACAW exchange engine and the configuration
vocabulary; it and ``mac`` are one layer — they import each other by
design.)  A module may import its own layer and anything *below* it.
The service subsystems — observability, fault injection, verification,
the sweep runner and the CLI — sit beside the stack and reach into it
only through **declared hook points**:

* ``topo/builder.py`` is the wiring hook: the one stack module allowed
  to import ``obs``, ``verify`` and ``fault`` (ScenarioBuilder installs
  sanitizers, probes and fault schedules at build time).
* ``core/config.py`` is the configuration hook: :class:`RunProfile`
  consolidates metrics and fault knobs, so it may name their types.
* ``fault/report.py`` is the degradation-benchmark hook: it drives whole
  scenarios, so it may import ``topo``.

``TYPE_CHECKING``-only imports are exempt everywhere: they cannot leak
runtime behaviour across layers, and annotations routinely point upward
(``phy`` annotating a ``mac.frames.Frame`` payload, for instance).

REPRO110 enforces both halves of this contract: the import DAG above,
and — generalizing REPRO106's ``._audible`` ban — any access to a
private attribute *owned by another layer* (ownership is computed from
the whole-tree ``self._name = ...`` writes in pass 1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Optional, Tuple

__all__ = [
    "KNOWN_PACKAGES",
    "LAYER_ALLOWED_IMPORTS",
    "SUBTREE_ALLOWED_IMPORTS",
    "HOOK_EXCEPTIONS",
    "PRIVATE_ACCESS_EXEMPT",
    "LAYER_GROUP",
    "classify_module",
    "module_package",
    "allowed_imports",
]

#: Every package directly under ``src/repro``.  Top-level modules
#: (``cli.py``, ``__init__.py``, ``__main__.py``) classify as ``""``.
KNOWN_PACKAGES: FrozenSet[str] = frozenset({
    "sim", "phy", "mac", "core", "net", "topo", "experiments",
    "analysis", "obs", "verify", "fault", "runner", "snapshot",
    "service",
})

_STACK_BELOW_NET = frozenset({"sim", "phy", "mac", "core"})
_STACK_BELOW_TOPO = _STACK_BELOW_NET | {"net"}
_STACK_ALL = _STACK_BELOW_TOPO | {"topo"}

#: package -> packages it may import at runtime (its own always included).
LAYER_ALLOWED_IMPORTS: Dict[str, FrozenSet[str]] = {
    "sim": frozenset({"sim"}),
    "phy": frozenset({"sim", "phy"}),
    "mac": frozenset(_STACK_BELOW_NET),
    "core": frozenset(_STACK_BELOW_NET),
    "net": frozenset(_STACK_BELOW_TOPO),
    "topo": frozenset(_STACK_ALL),
    "experiments": frozenset(
        _STACK_ALL | {"experiments", "analysis", "runner", "verify"}
    ),
    # Result analysis (tables/metrics) reads the stack's outputs.
    "analysis": frozenset(_STACK_ALL | {"analysis"}),
    # Service layers: each declares exactly the hook surface it needs.
    "obs": frozenset({"sim", "mac", "obs"}),
    "verify": frozenset({"sim", "mac", "core", "verify"}),
    "fault": frozenset({"sim", "phy", "core", "fault"}),
    "runner": frozenset(
        _STACK_ALL | {"experiments", "obs", "verify", "runner", ""}
    ),
    # Checkpoint/restore spans the whole stack by design: it captures
    # every layer's state and keys warm-start stores off the runner's
    # code-version hash.  It sits *above* runner (runner never imports
    # snapshot; run_cells only carries core's WarmStart descriptor).
    "snapshot": frozenset(
        _STACK_ALL | {"fault", "obs", "runner", "snapshot"}
    ),
    # The sweep service orchestrates runner cells under policies: it
    # sits above runner (journal + scheduler + seed policy) and, like
    # runner, pins ambient obs/verify switches into the profile.
    "service": frozenset(
        _STACK_ALL | {"experiments", "obs", "verify", "fault",
                      "runner", "service"}
    ),
    # The CLI and the top-level package tie everything together.
    "cli": frozenset(KNOWN_PACKAGES | {"", "cli"}),
    "": frozenset(KNOWN_PACKAGES | {"", "cli"}),
}

#: (module path relative to the repro root, imported package) pairs that
#: are *declared hook points* — reviewed exceptions to the DAG above.
HOOK_EXCEPTIONS: FrozenSet[Tuple[str, str]] = frozenset({
    ("topo/builder.py", "obs"),
    ("topo/builder.py", "verify"),
    ("topo/builder.py", "fault"),
    ("core/config.py", "obs"),
    ("core/config.py", "fault"),
    ("fault/report.py", "topo"),
    # Warm-start hook: build() hands the finished scenario to the
    # snapshot subsystem when the profile carries a WarmStart.
    ("topo/builder.py", "snapshot"),
    # Bench hook: the engine bench measures the sweep orchestrator's
    # adaptive-vs-fixed savings, so its (lazy, measurement-only) import
    # reaches one layer up.  Nothing else in runner touches service.
    ("runner/bench.py", "service"),
})

#: Subtrees whose modules get their own import surface, overriding their
#: package's row above.  The differential oracle/fuzzer orchestrates the
#: whole system — experiments, the runner, snapshots, fault schedules —
#: exactly like the CLI does, but lives under ``verify`` because digest
#: equality is a verification concern.  Keyed by repro-relative path
#: prefix; first match wins.
SUBTREE_ALLOWED_IMPORTS: Dict[str, FrozenSet[str]] = {
    "verify/diff/": frozenset(KNOWN_PACKAGES | {""}),
}

#: Packages exempt from REPRO110's cross-layer *private attribute* check.
#: The snapshot codec's whole job is serializing other layers' private
#: state (queue entries, RNG internals, busy-interval accounting); a
#: public accessor per field would be a parallel API mirroring every
#: layer's internals.  Import discipline still applies to it in full.
PRIVATE_ACCESS_EXEMPT: FrozenSet[str] = frozenset({"snapshot"})

#: Packages sharing a rank (mutual private-attribute access is in-layer).
LAYER_GROUP: Dict[str, str] = {
    "mac": "mac/core",
    "core": "mac/core",
}


def classify_module(normalized_path: str) -> Optional[str]:
    """The repro-relative path of a module, or None when outside the tree.

    ``normalized_path`` uses forward slashes.  Works for installed
    checkouts (``src/repro/mac/maca.py`` -> ``mac/maca.py``) and for
    fixture paths that simply start with a known package name
    (``mac/maca.py``, matching the legacy lint's conventions).
    """
    parts = normalized_path.split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            rel = "/".join(parts[index + 1:])
            return rel or None
    if parts and (parts[0] in KNOWN_PACKAGES or len(parts) == 1):
        return normalized_path
    return None


def module_package(normalized_path: str) -> Optional[str]:
    """The repro package a module belongs to ("" for top-level modules)."""
    rel = classify_module(normalized_path)
    if rel is None:
        return None
    head = rel.split("/")[0]
    if "/" not in rel:
        return "cli" if head == "cli.py" else ""
    return head if head in KNOWN_PACKAGES else None


def allowed_imports(package: str, rel: Optional[str] = None) -> FrozenSet[str]:
    """Packages ``package`` may import at runtime (empty = unknown package).

    ``rel`` (the repro-relative module path) lets subtree overrides in
    :data:`SUBTREE_ALLOWED_IMPORTS` widen one directory's surface without
    touching its whole package.
    """
    if rel is not None:
        for prefix, allowed in SUBTREE_ALLOWED_IMPORTS.items():
            if rel.startswith(prefix):
                return allowed
    return LAYER_ALLOWED_IMPORTS.get(package, frozenset())
