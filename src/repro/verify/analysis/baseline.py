"""Committed finding baselines.

A baseline is a checked-in JSON inventory of *accepted* findings, keyed
by content fingerprint (``sha256(path, code, stripped line text,
occurrence index)`` — stable under line renumbering).  CI fails on any
finding **not** in the baseline, and a companion job asserts the file
only ever shrinks: debt may be paid down, never silently added.

``--update-baseline`` rewrites the file from the current run;
``apply_baseline`` splits a run into (new, baselined, stale) where
*stale* entries no longer match anything and should be deleted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Sequence, Tuple

from repro.verify.analysis.findings import Finding

__all__ = ["Baseline", "BaselineDelta", "apply_baseline"]

_FORMAT = "repro-analysis-baseline/v1"


@dataclass
class Baseline:
    """The parsed baseline file: fingerprint -> descriptive entry."""

    entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            blob = json.loads(Path(path).read_text(encoding="utf-8"))
        except FileNotFoundError:
            return cls()
        if blob.get("format") != _FORMAT:
            raise ValueError(
                f"{path}: unrecognized baseline format {blob.get('format')!r}"
            )
        return cls(entries=dict(blob.get("findings", {})))

    def save(self, path: Path) -> None:
        blob = {
            "format": _FORMAT,
            "findings": {fp: self.entries[fp] for fp in sorted(self.entries)},
        }
        Path(path).write_text(
            json.dumps(blob, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    @classmethod
    def from_findings(
        cls, pairs: Sequence[Tuple[Finding, str]]
    ) -> "Baseline":
        entries: Dict[str, Dict[str, Any]] = {}
        for finding, fingerprint in pairs:
            entries[fingerprint] = {
                "path": finding.path,
                "code": finding.code,
                "message": finding.message,
            }
        return cls(entries=entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class BaselineDelta:
    """How a run relates to the committed baseline."""

    new: List[Tuple[Finding, str]] = field(default_factory=list)
    baselined: List[Tuple[Finding, str]] = field(default_factory=list)
    stale: List[str] = field(default_factory=list)


def apply_baseline(
    pairs: Sequence[Tuple[Finding, str]], baseline: Baseline
) -> BaselineDelta:
    """Split run findings into new / accepted; report unmatched entries."""
    delta = BaselineDelta()
    seen = set()
    for finding, fingerprint in pairs:
        if fingerprint in baseline:
            delta.baselined.append((finding, fingerprint))
            seen.add(fingerprint)
        else:
            delta.new.append((finding, fingerprint))
    delta.stale = sorted(fp for fp in baseline.entries if fp not in seen)
    return delta
