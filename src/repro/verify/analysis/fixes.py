"""``--fix``: apply the mechanically-safe subset of findings.

Only two fix classes are safe enough to automate, and both are applied
from a single analysis snapshot (edits are applied bottom-up so line
numbers computed once stay valid):

* **REPRO105 unused imports** — delete the import statement when every
  name it binds is unused; rewrite single-line statements dropping only
  the unused aliases.  Multi-line partial rewrites and lines carrying
  comments or multiple statements are left alone: a fixer must never
  guess.
* **Stale pragmas** — a ``# repro-lint: allow=...`` comment that no
  longer suppresses any finding (under the *full* rule set) is dead
  weight that would silently waive future findings; strip it.

Fixing is idempotent: a second run over fixed sources produces zero
edits (covered by a regression test).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.verify.analysis.engine import FileResult, analyze_source
from repro.verify.analysis.project import ProjectIndex
from repro.verify.analysis.registry import get_rules

__all__ = ["FixOutcome", "plan_fixes", "fix_paths"]

_UNUSED_RE = re.compile(r"^'(?P<name>[^']+)' imported but unused$")
_PRAGMA_STRIP_RE = re.compile(r"\s*#\s*repro-lint:.*$")


@dataclass
class FixOutcome:
    """One file's fix result."""

    path: str
    changed: bool
    removed_imports: int = 0
    removed_pragmas: int = 0


def _bound_name(alias: ast.alias, is_from: bool) -> str:
    if alias.asname is not None:
        return alias.asname
    return alias.name if is_from else alias.name.split(".")[0]


def _render_import(node: ast.stmt, kept: List[ast.alias], indent: str) -> str:
    parts = ", ".join(
        a.name + (f" as {a.asname}" if a.asname else "") for a in kept
    )
    if isinstance(node, ast.ImportFrom):
        dots = "." * node.level
        return f"{indent}from {dots}{node.module or ''} import {parts}"
    return f"{indent}import {parts}"


def plan_fixes(source: str, result: FileResult) -> Tuple[Optional[str], int, int]:
    """Compute the fixed source, or None when nothing applies.

    Returns ``(new_source or None, imports_removed, pragmas_removed)``.
    """
    lines = source.splitlines()
    trailing_newline = source.endswith("\n")

    # Unused-import findings, grouped by the statement line they anchor to.
    unused_by_line: Dict[int, Set[str]] = {}
    for finding in result.findings:
        if finding.code != "REPRO105":
            continue
        match = _UNUSED_RE.match(finding.message)
        if match:
            unused_by_line.setdefault(finding.line, set()).add(
                match.group("name")
            )

    # (start, end, replacement-or-None): None deletes the line range.
    edits: List[Tuple[int, int, Optional[str]]] = []

    if unused_by_line:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            tree = None
        for node in ast.walk(tree) if tree is not None else ():
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            unused = unused_by_line.get(node.lineno)
            if not unused:
                continue
            is_from = isinstance(node, ast.ImportFrom)
            bound = [_bound_name(a, is_from) for a in node.names]
            kept = [
                a for a, name in zip(node.names, bound) if name not in unused
            ]
            end = node.end_lineno or node.lineno
            if not kept:
                edits.append((node.lineno, end, None))
                continue
            line_text = lines[node.lineno - 1]
            if end != node.lineno or "#" in line_text or ";" in line_text:
                continue  # partial fix on a complex statement: leave alone
            indent = line_text[: len(line_text) - len(line_text.lstrip())]
            edits.append(
                (node.lineno, end, _render_import(node, kept, indent))
            )

    # Stale pragmas: allow-comments that suppress nothing any more.
    suppressed_lines = {f.line for f in result.suppressed}
    removed_pragmas = 0
    for pragma_line in result.pragma_lines:
        if pragma_line in suppressed_lines:
            continue
        if any(start <= pragma_line <= end for start, end, _ in edits):
            continue  # the whole statement is going away anyway
        text = _PRAGMA_STRIP_RE.sub("", lines[pragma_line - 1])
        removed_pragmas += 1
        edits.append(
            (pragma_line, pragma_line, None if not text.strip() else text)
        )

    if not edits:
        return None, 0, 0

    removed_imports = sum(
        1 for line, _, _ in edits if line in unused_by_line
    )
    new_lines = list(lines)
    for start, end, replacement in sorted(edits, reverse=True):
        if replacement is None:
            del new_lines[start - 1:end]
        else:
            new_lines[start - 1:end] = [replacement]
    new_source = "\n".join(new_lines)
    if trailing_newline and new_source:
        new_source += "\n"
    return new_source, removed_imports, removed_pragmas


def fix_paths(
    files: Sequence[Path],
    results: Sequence[FileResult],
    project: Optional[ProjectIndex] = None,
) -> List[FixOutcome]:
    """Apply fixes in place; returns per-file outcomes (changed or not).

    ``results`` must come from a run over the **full** rule set —
    otherwise a pragma waiving an unselected rule would look stale.
    """
    rules = get_rules()
    outcomes: List[FixOutcome] = []
    for path, result in zip(files, results):
        try:
            source = Path(path).read_text(encoding="utf-8")
        except OSError:
            outcomes.append(FixOutcome(path=str(path), changed=False))
            continue
        new_source, n_imports, n_pragmas = plan_fixes(source, result)
        if new_source is None or new_source == source:
            outcomes.append(FixOutcome(path=str(path), changed=False))
            continue
        # Never ship a fix that breaks the file: re-analyze the rewrite.
        check = analyze_source(new_source, str(path), rules, project)
        if any(f.code == "REPRO100" for f in check.findings):
            outcomes.append(FixOutcome(path=str(path), changed=False))
            continue
        Path(path).write_text(new_source, encoding="utf-8")
        outcomes.append(
            FixOutcome(
                path=str(path), changed=True,
                removed_imports=n_imports, removed_pragmas=n_pragmas,
            )
        )
    return outcomes
