"""Rule plugin registry.

A rule is a function from ``(ModuleFacts, ProjectIndex | None)`` to an
iterable of :class:`~repro.verify.analysis.findings.Finding`, registered
under its diagnostic code with the :func:`rule` decorator::

    @rule("REPRO142", name="no-teleportation",
          summary="stations must not move faster than light")
    def check_teleportation(facts, project):
        ...

Registration is declarative — the engine discovers rules by importing
:mod:`repro.verify.analysis.rules`, runs whichever subset the caller
selected, and sorts the combined findings, so plugin order never affects
output.  ``requires_project`` marks cross-module rules: they still run
in single-file mode (``lint_source``), but receive ``project=None`` and
are expected to degrade to their file-local subset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple,
)

from repro.verify.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.verify.analysis.facts import ModuleFacts
    from repro.verify.analysis.project import ProjectIndex

__all__ = [
    "Rule", "rule", "all_rules", "get_rules", "rule_codes",
    "LEGACY_RULE_CODES", "rules_signature",
]

CheckFn = Callable[
    ["ModuleFacts", Optional["ProjectIndex"]], Iterable[Finding]
]

#: The REPRO101-108 set the legacy ``repro.verify.lint`` shim runs.
LEGACY_RULE_CODES: Tuple[str, ...] = (
    "REPRO101", "REPRO102", "REPRO103", "REPRO104",
    "REPRO105", "REPRO106", "REPRO107", "REPRO108",
)


@dataclass(frozen=True)
class Rule:
    """One registered rule plugin."""

    code: str
    name: str
    summary: str
    check: CheckFn = field(repr=False)
    requires_project: bool = False

    def run(
        self, facts: "ModuleFacts", project: Optional["ProjectIndex"]
    ) -> List[Finding]:
        return list(self.check(facts, project))


_RULES: Dict[str, Rule] = {}


def rule(
    code: str,
    name: str,
    summary: str,
    requires_project: bool = False,
) -> Callable[[CheckFn], CheckFn]:
    """Register a rule plugin under ``code`` (e.g. ``REPRO110``)."""

    def register(check: CheckFn) -> CheckFn:
        if code in _RULES:
            raise ValueError(f"duplicate rule registration: {code}")
        _RULES[code] = Rule(
            code=code, name=name, summary=summary, check=check,
            requires_project=requires_project,
        )
        return check

    return register


def _load_rules() -> None:
    """Import the rule package so its modules self-register."""
    if not _RULES:
        import importlib

        importlib.import_module("repro.verify.analysis.rules")


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    _load_rules()
    return [_RULES[code] for code in sorted(_RULES)]


def rule_codes() -> List[str]:
    _load_rules()
    return sorted(_RULES)


def get_rules(codes: Optional[Sequence[str]] = None) -> List[Rule]:
    """The selected rules (all when ``codes`` is None).

    Raises KeyError on an unknown code so typos fail loudly.
    """
    _load_rules()
    if codes is None:
        return all_rules()
    missing = [code for code in codes if code not in _RULES]
    if missing:
        raise KeyError(f"unknown rule code(s): {', '.join(sorted(missing))}")
    return [_RULES[code] for code in sorted(set(codes))]


def rules_signature(rules: Sequence[Rule]) -> str:
    """A stable identifier for a rule selection (folded into cache keys)."""
    return ",".join(r.code for r in rules)
