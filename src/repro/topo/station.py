"""Stations: pads and base stations.

"We will use the term station to refer to both pads and base stations"
(§2.1).  A :class:`Station` bundles a MAC entity with its delivery
dispatcher and exposes the operations scenarios need: power control and
(for mobility) repositioning.
"""

from __future__ import annotations

from typing import Tuple

from repro.mac.base import BaseMac
from repro.net.sink import Dispatcher, FlowRecorder

#: Station kinds (§2.1): ceiling-mounted base stations and portable pads.
KINDS = ("pad", "base")


class Station:
    """One radio-equipped device."""

    def __init__(self, name: str, kind: str, mac: BaseMac, recorder: FlowRecorder) -> None:
        if kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {kind!r}")
        self.name = name
        self.kind = kind
        self.mac = mac
        self.dispatcher = Dispatcher(mac, recorder)

    @property
    def position(self) -> Tuple[float, float, float]:
        return self.mac.position

    @position.setter
    def position(self, value: Tuple[float, float, float]) -> None:
        """Move the station and invalidate the medium's link cache.

        The grid medium memoizes pairwise audibility and receive power, so
        movement must flush it; code that repositions a MAC directly (not
        through a :class:`Station`) must call
        :meth:`~repro.phy.medium.Medium.invalidate_links` itself.
        """
        self.mac.position = value
        self.mac.medium.invalidate_links()

    @property
    def powered(self) -> bool:
        return self.mac.powered

    def power_off(self) -> None:
        """Switch the radio off (Figure 9's disappearing pad)."""
        self.mac.power_off()

    def power_on(self) -> None:
        self.mac.power_on()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Station({self.name!r}, {self.kind}, powered={self.powered})"
