"""The paper's figure configurations (Figures 1–11), one builder each.

Every function returns a configured :class:`~repro.topo.builder.ScenarioBuilder`
(not yet built), so experiments can override the protocol, seed, or rates
before calling ``build()``.  Connectivity follows the figures' text exactly;
we use the graph medium because the paper specifies the multi-cell
configurations by who-hears-whom, not by coordinates.  Single-cell
configurations can alternatively be placed on the cube-grid medium via
``medium="grid"`` — stations are positioned geometrically with pads 6 feet
below the base station (§3: "all pads are 6 feet below the base station
height").

Stream rates default to the paper's workloads: 64 pps where the paper says
a stream can fully load the media, 32 pps where it says so, UDP except for
the Figure 11 office scenario (TCP).
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.phy.noise import PacketErrorModel
from repro.topo.builder import ScenarioBuilder

#: Height of ceiling-mounted base stations above pad height, feet (§3).
BASE_HEIGHT_FT = 6.0


def _builder(protocol: str, config: Optional[Any], seed: int, medium: str = "graph",
             **kwargs: Any) -> ScenarioBuilder:
    return ScenarioBuilder(seed=seed, medium=medium, protocol=protocol,
                           config=config, **kwargs)


# --------------------------------------------------------------- Figure 1
def fig1_chain(protocol: str = "csma", config: Optional[Any] = None,
               seed: int = 0) -> ScenarioBuilder:
    """Figure 1's A—B—C chain plus a fourth station D heard only by C.

    A and C cannot hear each other (hidden terminals for receiver B);
    C is exposed to B's transmissions toward A; D gives C somewhere to
    send that B's activity should not block.
    """
    builder = _builder(protocol, config, seed)
    for name in ("A", "B", "C", "D"):
        builder.add_pad(name)
    builder.link("A", "B")
    builder.link("B", "C")
    builder.link("C", "D")
    return builder


def fig1_hidden_terminal(protocol: str = "csma", config: Optional[Any] = None,
                         seed: int = 0, rate_pps: float = 64.0) -> ScenarioBuilder:
    """Hidden-terminal workload: A→B and C→B collide at B under CSMA."""
    builder = fig1_chain(protocol, config, seed)
    builder.udp("A", "B", rate_pps)
    builder.udp("C", "B", rate_pps)
    return builder


def fig1_exposed_terminal(protocol: str = "csma", config: Optional[Any] = None,
                          seed: int = 0, rate_pps: float = 64.0) -> ScenarioBuilder:
    """Exposed-terminal workload: B→A should not block C→D."""
    builder = fig1_chain(protocol, config, seed)
    builder.udp("B", "A", rate_pps)
    builder.udp("C", "D", rate_pps)
    return builder


# --------------------------------------------------------------- Figure 2
def fig2_two_pads(protocol: str = "maca", config: Optional[Any] = None,
                  seed: int = 0, rate_pps: float = 64.0,
                  medium: str = "graph") -> ScenarioBuilder:
    """One cell, two pads each sending 64 pps UDP to the base (Table 1)."""
    builder = _builder(protocol, config, seed, medium=medium)
    if medium == "grid":
        builder.add_base("B", (10.5, 10.5, BASE_HEIGHT_FT + 0.5))
        builder.add_pad("P1", (7.5, 10.5, 0.5))
        builder.add_pad("P2", (13.5, 10.5, 0.5))
    else:
        builder.add_base("B")
        builder.add_pad("P1")
        builder.add_pad("P2")
        builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", rate_pps)
    builder.udp("P2", "B", rate_pps)
    return builder


# --------------------------------------------------------------- Figure 3
def fig3_six_pads(protocol: str = "maca", config: Optional[Any] = None,
                  seed: int = 0, rate_pps: float = 32.0,
                  medium: str = "graph") -> ScenarioBuilder:
    """One cell, six pads each sending 32 pps UDP to the base (Table 2)."""
    builder = _builder(protocol, config, seed, medium=medium)
    names = [f"P{i}" for i in range(1, 7)]
    if medium == "grid":
        builder.add_base("B", (10.5, 10.5, BASE_HEIGHT_FT + 0.5))
        for i, name in enumerate(names):
            angle = 2 * math.pi * i / len(names)
            builder.add_pad(
                name,
                (10.5 + 4.0 * math.cos(angle), 10.5 + 4.0 * math.sin(angle), 0.5),
            )
    else:
        builder.add_base("B")
        for name in names:
            builder.add_pad(name)
        builder.clique("B", *names)
    for name in names:
        builder.udp(name, "B", rate_pps)
    return builder


# --------------------------------------------------------------- Figure 4
def fig4_mixed_directions(protocol: str = "maca", config: Optional[Any] = None,
                          seed: int = 0, rate_pps: float = 32.0) -> ScenarioBuilder:
    """One cell: B→P1, B→P2, P3→B at 32 pps UDP each (Table 3)."""
    builder = _builder(protocol, config, seed)
    builder.add_base("B")
    for name in ("P1", "P2", "P3"):
        builder.add_pad(name)
    builder.clique("B", "P1", "P2", "P3")
    builder.udp("B", "P1", rate_pps)
    builder.udp("B", "P2", rate_pps)
    builder.udp("P3", "B", rate_pps)
    return builder


# ------------------------------------------------- single TCP stream (T4/T9)
def single_stream_cell(protocol: str = "macaw", config: Optional[Any] = None,
                       seed: int = 0, rate_pps: float = 64.0,
                       transport: str = "udp",
                       error_rate: float = 0.0) -> ScenarioBuilder:
    """One pad, one base station, one saturating stream (Tables 4 and 9)."""
    builder = _builder(protocol, config, seed)
    builder.add_base("B")
    builder.add_pad("P")
    builder.clique("B", "P")
    if transport == "udp":
        builder.udp("P", "B", rate_pps)
    elif transport == "tcp":
        builder.tcp("P", "B", rate_pps)
    else:
        raise ValueError(f"unknown transport {transport!r}")
    if error_rate > 0.0:
        builder.noise(PacketErrorModel(error_rate))
    return builder


# --------------------------------------------------------------- Figure 5
def fig5_exposed_pads(protocol: str = "macaw", config: Optional[Any] = None,
                      seed: int = 0, rate_pps: float = 64.0) -> ScenarioBuilder:
    """Two cells, pads in mutual range, both sending to their own base
    (Table 5: the DS experiment)."""
    builder = _builder(protocol, config, seed)
    builder.add_base("B1")
    builder.add_base("B2")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.link("P1", "B1")
    builder.link("P2", "B2")
    builder.link("P1", "P2")
    builder.udp("P1", "B1", rate_pps)
    builder.udp("P2", "B2", rate_pps)
    return builder


# --------------------------------------------------------------- Figure 6
def fig6_reversed_flows(protocol: str = "macaw", config: Optional[Any] = None,
                        seed: int = 0, rate_pps: float = 64.0) -> ScenarioBuilder:
    """Figure 5's topology with both flows reversed: base→pad in each cell
    (Table 6: the RRTS experiment)."""
    builder = _builder(protocol, config, seed)
    builder.add_base("B1")
    builder.add_base("B2")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.link("P1", "B1")
    builder.link("P2", "B2")
    builder.link("P1", "P2")
    builder.udp("B1", "P1", rate_pps)
    builder.udp("B2", "P2", rate_pps)
    return builder


# --------------------------------------------------------------- Figure 7
def fig7_unsolved(protocol: str = "macaw", config: Optional[Any] = None,
                  seed: int = 0, rate_pps: float = 64.0) -> ScenarioBuilder:
    """B1→P1 versus P2→B2 where P1 hears P2's data: P1 never receives B1's
    RTS cleanly, so even RRTS cannot help (Table 7, the open problem)."""
    builder = _builder(protocol, config, seed)
    builder.add_base("B1")
    builder.add_base("B2")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.link("P1", "B1")
    builder.link("P2", "B2")
    builder.link("P1", "P2")
    builder.udp("B1", "P1", rate_pps)
    builder.udp("P2", "B2", rate_pps)
    return builder


# --------------------------------------------------------------- Figure 8
def fig8_leakage(protocol: str = "macaw", config: Optional[Any] = None,
                 seed: int = 0, rate_pps: float = 64.0) -> ScenarioBuilder:
    """Two adjoining cells with border pads in mutual range: backoff values
    "leak" between regions of very different congestion (§3.4)."""
    builder = _builder(protocol, config, seed)
    builder.add_base("B1")
    builder.add_base("B2")
    border = [f"P{i}" for i in range(1, 5)]  # C1 pads, all near the border
    for name in border:
        builder.add_pad(name)
        builder.link(name, "B1")
    builder.add_pad("P5")  # C2 pad near the border
    builder.add_pad("P6")  # C2 pad away from the border
    builder.link("P5", "B2")
    builder.link("P6", "B2")
    builder.clique(*border, "P5")  # border pads overhear each other
    for name in border + ["P5", "P6"]:
        base = "B1" if name in border else "B2"
        builder.udp(name, base, rate_pps)
    return builder


# --------------------------------------------------------------- Figure 9
def fig9_dead_pad(protocol: str = "macaw", config: Optional[Any] = None,
                  seed: int = 0, rate_pps: float = 32.0,
                  power_off_at: float = 100.0) -> ScenarioBuilder:
    """One cell, three pads with bidirectional streams; P1 is switched off
    mid-run while the base keeps trying to reach it (Table 8)."""
    builder = _builder(protocol, config, seed)
    builder.add_base("B1")
    for name in ("P1", "P2", "P3"):
        builder.add_pad(name)
    builder.clique("B1", "P1", "P2", "P3")
    for name in ("P1", "P2", "P3"):
        builder.udp("B1", name, rate_pps)
        builder.udp(name, "B1", rate_pps)
    builder.power_off_at("P1", power_off_at)
    return builder


# -------------------------------------------------------------- Figure 10
def fig10_three_cells(protocol: str = "macaw", config: Optional[Any] = None,
                      seed: int = 0, rate_pps: float = 32.0) -> ScenarioBuilder:
    """Three cells (§3.5): C1 holds P1–P4 near the C2 border, C2 holds P5
    near that border, P6 straddles the C2/C3 border and sends to B3.

    P1–P5 overhear each other but "can only hear their own base station";
    each of P1–P5 runs UDP streams to *and from* its base; P6→B3 only.
    """
    builder = _builder(protocol, config, seed)
    for base in ("B1", "B2", "B3"):
        builder.add_base(base)
    c1_pads = [f"P{i}" for i in range(1, 5)]
    for name in c1_pads:
        builder.add_pad(name)
        builder.link(name, "B1")
    builder.add_pad("P5")
    builder.link("P5", "B2")
    builder.add_pad("P6")
    builder.link("P6", "B2")
    builder.link("P6", "B3")
    builder.clique(*c1_pads, "P5")
    for name in c1_pads:
        builder.udp(name, "B1", rate_pps)
        builder.udp("B1", name, rate_pps)
    builder.udp("P5", "B2", rate_pps)
    builder.udp("B2", "P5", rate_pps)
    builder.udp("P6", "B3", rate_pps)
    return builder


# -------------------------------------------------------------- Figure 11
def fig11_office(protocol: str = "macaw", config: Optional[Any] = None,
                 seed: int = 0, rate_pps: float = 32.0,
                 noise_error_rate: float = 0.01,
                 p7_arrival_s: float = 300.0) -> ScenarioBuilder:
    """The PARC office-floor scenario (§3.5, Table 11).

    Four cells: the open area C1 (pads P1–P4 plus whiteboard noise at
    packet error rate 0.01), offices C2 (P6) and C3 (P5), and the coffee
    room C4 which P7 enters at t = 300 s.  All streams are 32 pps TCP from
    pad to base.  Extra connectivity from the paper: P7 hears P1 and P3;
    P4, P5 and P6 hear each other.
    """
    builder = _builder(protocol, config, seed)
    for base in ("B1", "B2", "B3", "B4"):
        builder.add_base(base)
    c1_pads = [f"P{i}" for i in range(1, 5)]
    for name in c1_pads:
        builder.add_pad(name)
        builder.link(name, "B1")
    builder.clique(*c1_pads)  # pads of one cell hear each other
    builder.add_pad("P6")
    builder.link("P6", "B2")
    builder.add_pad("P5")
    builder.link("P5", "B3")
    builder.link("P4", "P5")
    builder.link("P4", "P6")
    builder.link("P5", "P6")
    builder.add_pad("P7")

    for name in c1_pads:
        builder.tcp(name, "B1", rate_pps)
    builder.tcp("P5", "B3", rate_pps)
    builder.tcp("P6", "B2", rate_pps)
    builder.tcp("P7", "B4", rate_pps, start=p7_arrival_s)

    # Whiteboard noise corrupts receptions at C1 stations.
    builder.noise(PacketErrorModel(noise_error_rate,
                                   receivers=["B1"] + c1_pads))

    def bring_in_p7(scenario: Any) -> None:
        medium = scenario.medium
        stations = scenario.stations
        medium.set_link(stations["P7"].mac, stations["B4"].mac, True)
        medium.set_link(stations["P7"].mac, stations["P1"].mac, True)
        medium.set_link(stations["P7"].mac, stations["P3"].mac, True)

    builder.at(p7_arrival_s, bring_in_p7)
    return builder
