"""Declarative scenario construction.

A :class:`ScenarioBuilder` collects the description of an experiment —
medium type, stations, connectivity, traffic streams, noise, scheduled
events — and :meth:`~ScenarioBuilder.build` materializes it into a
:class:`Scenario` ready to :meth:`~Scenario.run`.

Example (the paper's Figure 2)::

    builder = ScenarioBuilder(seed=1, protocol="maca")
    builder.add_base("B")
    builder.add_pad("P1")
    builder.add_pad("P2")
    builder.clique("B", "P1", "P2")
    builder.udp("P1", "B", rate_pps=64)
    builder.udp("P2", "B", rate_pps=64)
    scenario = builder.build().run(500)
    scenario.throughput("P1-B", warmup=50)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.core.config import (
    MACA_CONFIG,
    MACAW_CONFIG,
    RunProfile,
    ambient_profile,
    warn_deprecated_kwarg,
)
from repro.core.macaw import MacawMac
from repro.mac.base import BaseMac
from repro.mac.csma import CsmaConfig, CsmaMac
from repro.mac.timing import MacTiming
from repro.net.sink import FlowRecorder
from repro.net.tcp import TcpStream
from repro.net.udp import UdpStream
from repro.phy.graph_medium import GraphMedium
from repro.phy.grid_medium import GridMedium
from repro.phy.medium import Medium
from repro.phy.noise import PacketErrorModel
from repro.sim.kernel import Simulator
from repro.sim.trace import Trace
from repro.topo.station import Station
from repro.verify.conformance import (
    ConformanceError,
    ConformanceReport,
    check_scenario,
)
from repro.obs.runtime import note_metrics, resolve_metrics
from repro.verify.runtime import (
    digests_enabled,
    note_digest,
    note_report,
    note_trace,
    sanitize_enabled,
    traces_enabled,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fault.inject import FaultInjector
    from repro.obs.probes import ScenarioMetrics

#: Default warm-up excluded from throughput measurements (§3: "a warmup
#: period of 50 seconds").
DEFAULT_WARMUP_S = 50.0


class Scenario:
    """A materialized experiment: simulator, medium, stations and streams."""

    def __init__(
        self,
        sim: Simulator,
        medium: Medium,
        recorder: FlowRecorder,
        sanitize: bool = False,
    ) -> None:
        self.sim = sim
        self.medium = medium
        self.recorder = recorder
        self.stations: Dict[str, Station] = {}
        self.streams: Dict[str, Any] = {}
        self.duration: Optional[float] = None
        #: When True, every :meth:`run` replays the trace through the
        #: conformance sanitizer and raises on protocol violations.
        self.sanitize = sanitize
        #: When True (set by the builder while a
        #: :func:`repro.verify.runtime.capturing_digests` block is active),
        #: every :meth:`run` reports the trace digest to the capture sink.
        self.report_digest = False
        #: Like :attr:`report_digest`, but for the full record list
        #: (:func:`repro.verify.runtime.capturing_traces`) — the
        #: differential bisector's event-level view.
        self.report_trace = False
        #: Report from the most recent :meth:`verify` / sanitized run.
        self.conformance: Optional[ConformanceReport] = None
        #: Live metrics handle (:class:`repro.obs.probes.ScenarioMetrics`);
        #: None unless the builder instrumented this scenario.
        self.metrics: Optional["ScenarioMetrics"] = None
        #: Installed fault injector (:mod:`repro.fault`); None unless the
        #: builder's profile carried a non-empty schedule.
        self.fault_injector: Optional["FaultInjector"] = None
        #: Provenance of a warm-started or forked build (store key, snap
        #: digest, branch time); None for a cold build.  Set by
        #: :mod:`repro.snapshot`.
        self.warm_start_info: Optional[Dict[str, Any]] = None

    def station(self, name: str) -> Station:
        return self.stations[name]

    def stream(self, stream_id: str) -> Any:
        return self.streams[stream_id]

    def run(self, duration: float) -> "Scenario":
        """Advance the simulation to ``duration`` seconds and remember it.

        In sanitized mode the recorded trace is then replayed through the
        protocol conformance checker; any violation raises
        :class:`~repro.verify.conformance.ConformanceError`.
        """
        self.sim.run(until=duration)
        self.duration = duration
        if self.report_digest:
            note_digest(self.sim.trace.digest())
        if self.report_trace:
            note_trace(list(self.sim.trace))
        if self.metrics is not None:
            note_metrics(self.metrics.dump())
        if self.sanitize:
            report = self.verify()
            note_report(sum(report.examined.values()), len(report.violations))
            if not report.ok:
                raise ConformanceError(report)
        return self

    def verify(self) -> ConformanceReport:
        """Replay the recorded trace through the conformance sanitizer.

        Requires tracing to have been enabled (``trace=True`` or
        ``sanitize=True`` on the builder); with tracing off the report is
        trivially empty.
        """
        self.conformance = check_scenario(self)
        return self.conformance

    # ------------------------------------------------------------- results
    def throughput(
        self,
        stream_id: str,
        warmup: float = DEFAULT_WARMUP_S,
        end: Optional[float] = None,
    ) -> float:
        """Delivered packets per second for one stream, past warm-up."""
        if end is None:
            if self.duration is None:
                raise RuntimeError("run() the scenario before reading throughput")
            end = self.duration
        return self.recorder.throughput_pps(stream_id, warmup, end)

    def throughputs(
        self, warmup: float = DEFAULT_WARMUP_S, end: Optional[float] = None
    ) -> Dict[str, float]:
        """Throughput of every declared stream, in declaration order."""
        return {
            stream_id: self.throughput(stream_id, warmup, end)
            for stream_id in self.streams
        }


@dataclass
class _StationSpec:
    name: str
    kind: str
    position: Tuple[float, float, float]
    protocol: Optional[str]
    config: Optional[Any]


#: Keyword arguments the builder accepted before :class:`RunProfile`
#: consolidated them; each still works, warning once per process.
_LEGACY_KWARGS = (
    "bitrate_bps", "trace", "grid_kwargs", "queue_capacity",
    "timing", "sanitize", "metrics", "faults",
)


class ScenarioBuilder:
    """Collects an experiment description; ``build()`` wires it together.

    Parameters
    ----------
    seed:
        Master random seed (one integer reproduces the whole run).
    medium:
        ``"graph"`` (explicit connectivity, the figures' textual topology)
        or ``"grid"`` (the paper's cube-grid signal model).
    protocol:
        Default MAC for stations: ``"macaw"``, ``"maca"`` or ``"csma"``.
    config:
        Default protocol configuration (a :class:`ProtocolConfig` for
        macaw/maca, a :class:`CsmaConfig` for csma).
    profile:
        Every run-level knob — bitrate, queue bound, timing, tracing,
        sanitizer, metrics, grid kwargs and the fault schedule — as one
        :class:`~repro.core.config.RunProfile`.  Omitted, the builder
        adopts the ambient profile
        (:func:`~repro.core.config.active_profile`) or plain defaults.

    The pre-profile keyword arguments (``bitrate_bps``, ``trace``,
    ``grid_kwargs``, ``queue_capacity``, ``timing``, ``sanitize``,
    ``metrics``, ``faults``) still work identically — each folds into the
    profile and emits one :class:`DeprecationWarning` per process.  The
    knobs also remain readable/assignable as builder attributes
    (``builder.metrics = 2.0``), backed by the profile.
    """

    def __init__(
        self,
        seed: int = 0,
        medium: str = "graph",
        protocol: str = "macaw",
        config: Optional[Any] = None,
        profile: Optional[RunProfile] = None,
        **legacy: Any,
    ) -> None:
        if medium not in ("graph", "grid"):
            raise ValueError(f"medium must be 'graph' or 'grid', got {medium!r}")
        unknown = set(legacy) - set(_LEGACY_KWARGS)
        if unknown:
            raise TypeError(
                f"ScenarioBuilder() got unexpected keyword argument(s) "
                f"{', '.join(sorted(unknown))}"
            )
        if profile is not None and not isinstance(profile, RunProfile):
            raise TypeError(f"profile expects a RunProfile, got {profile!r}")
        self.seed = seed
        self.medium_kind = medium
        self.protocol = protocol
        self.config = config
        base = profile if profile is not None else ambient_profile()
        self.profile = base if base is not None else RunProfile()
        for name in _LEGACY_KWARGS:
            if name in legacy:
                warn_deprecated_kwarg("ScenarioBuilder", name)
                self.profile = self.profile.but(**{name: legacy[name]})
        self._stations: List[_StationSpec] = []
        self._links: List[Tuple[str, str, bool]] = []
        self._streams: List[Tuple[str, Dict[str, Any]]] = []
        self._noise: List[PacketErrorModel] = []
        self._events: List[Tuple[float, Callable[[Scenario], None]]] = []

    # ------------------------------------------------- profile-backed knobs
    # The legacy attribute surface: reads and writes go through the
    # (immutable) profile so ``builder.metrics = 2.0`` keeps working.
    @property
    def bitrate_bps(self) -> float:
        return self.profile.bitrate_bps

    @bitrate_bps.setter
    def bitrate_bps(self, value: float) -> None:
        self.profile = self.profile.but(bitrate_bps=value)

    @property
    def trace(self) -> bool:
        return self.profile.trace

    @trace.setter
    def trace(self, value: bool) -> None:
        self.profile = self.profile.but(trace=value)

    @property
    def sanitize(self) -> Optional[bool]:
        return self.profile.sanitize

    @sanitize.setter
    def sanitize(self, value: Optional[bool]) -> None:
        self.profile = self.profile.but(sanitize=value)

    @property
    def metrics(self) -> Any:
        return self.profile.metrics

    @metrics.setter
    def metrics(self, value: Any) -> None:
        self.profile = self.profile.but(metrics=value)

    @property
    def grid_kwargs(self) -> Dict[str, Any]:
        return self.profile.grid_dict()

    @grid_kwargs.setter
    def grid_kwargs(self, value: Optional[Dict[str, Any]]) -> None:
        self.profile = self.profile.but(grid_kwargs=value)

    @property
    def queue_capacity(self) -> Optional[int]:
        return self.profile.queue_capacity

    @queue_capacity.setter
    def queue_capacity(self, value: Optional[int]) -> None:
        self.profile = self.profile.but(queue_capacity=value)

    @property
    def timing(self) -> Optional[MacTiming]:
        return self.profile.timing

    @timing.setter
    def timing(self, value: Optional[MacTiming]) -> None:
        self.profile = self.profile.but(timing=value)

    @property
    def faults(self) -> Optional[Any]:
        return self.profile.faults

    @faults.setter
    def faults(self, value: Optional[Any]) -> None:
        self.profile = self.profile.but(faults=value)

    @property
    def queue(self) -> Optional[str]:
        return self.profile.queue

    @queue.setter
    def queue(self, value: Optional[str]) -> None:
        self.profile = self.profile.but(queue=value)

    # ------------------------------------------------------------- stations
    def add_station(
        self,
        name: str,
        kind: str,
        position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
        protocol: Optional[str] = None,
        config: Optional[Any] = None,
    ) -> "ScenarioBuilder":
        if any(spec.name == name for spec in self._stations):
            raise ValueError(f"duplicate station {name!r}")
        self._stations.append(_StationSpec(name, kind, position, protocol, config))
        return self

    def add_pad(self, name: str, position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                **kwargs: Any) -> "ScenarioBuilder":
        return self.add_station(name, "pad", position, **kwargs)

    def add_base(self, name: str, position: Tuple[float, float, float] = (0.0, 0.0, 0.0),
                 **kwargs: Any) -> "ScenarioBuilder":
        return self.add_station(name, "base", position, **kwargs)

    # ---------------------------------------------------------------- links
    def _require_station(self, name: str) -> None:
        if not any(spec.name == name for spec in self._stations):
            raise ValueError(
                f"unknown station {name!r} in link(); declare it with "
                f"add_pad()/add_base() first"
            )

    def link(self, a: str, b: str, symmetric: bool = True) -> "ScenarioBuilder":
        """Declare that ``a`` and ``b`` are in range (graph medium only).

        Both stations must already be declared — a typo fails here, at the
        declaration site, rather than as a ``KeyError`` deep in
        :meth:`build`.
        """
        self._require_station(a)
        self._require_station(b)
        self._links.append((a, b, symmetric))
        return self

    def clique(self, *names: str) -> "ScenarioBuilder":
        """Declare a set of mutually in-range stations (one cell)."""
        members = list(names)
        for i, a in enumerate(members):
            for b in members[i + 1:]:
                self.link(a, b)
        return self

    # -------------------------------------------------------------- traffic
    def udp(
        self,
        src: str,
        dst: str,
        rate_pps: float,
        stream_id: Optional[str] = None,
        **kwargs: Any,
    ) -> str:
        """Declare a UDP stream; returns its id (default ``"src-dst"``)."""
        stream_id = stream_id or f"{src}-{dst}"
        self._streams.append(("udp", dict(src=src, dst=dst, rate_pps=rate_pps,
                                          stream_id=stream_id, **kwargs)))
        return stream_id

    def tcp(
        self,
        src: str,
        dst: str,
        rate_pps: float,
        stream_id: Optional[str] = None,
        **kwargs: Any,
    ) -> str:
        """Declare a TCP stream; returns its id (default ``"src-dst"``)."""
        stream_id = stream_id or f"{src}-{dst}"
        self._streams.append(("tcp", dict(src=src, dst=dst, rate_pps=rate_pps,
                                          stream_id=stream_id, **kwargs)))
        return stream_id

    # ------------------------------------------------------- noise & events
    def noise(self, model: PacketErrorModel) -> "ScenarioBuilder":
        """Attach a packet-error model to the medium."""
        self._noise.append(model)
        return self

    def at(self, time: float, action: Callable[[Scenario], None]) -> "ScenarioBuilder":
        """Schedule ``action(scenario)`` at simulated ``time`` (mobility,
        power changes, reconfiguration)."""
        self._events.append((time, action))
        return self

    def power_off_at(self, name: str, time: float) -> "ScenarioBuilder":
        """Schedule a station power-off (Figure 9)."""
        return self.at(time, lambda scenario: scenario.station(name).power_off())

    # ----------------------------------------------------------------- build
    def _make_mac(
        self, sim: Simulator, medium: Medium, spec: _StationSpec, timing: MacTiming
    ) -> BaseMac:
        protocol = spec.protocol or self.protocol
        config = spec.config if spec.config is not None else self.config
        if protocol == "macaw":
            return MacawMac(
                sim, medium, spec.name, position=spec.position,
                config=config if config is not None else MACAW_CONFIG,
                timing=timing, queue_capacity=self.queue_capacity,
            )
        if protocol == "maca":
            # Imported here: repro.mac deliberately does not import maca at
            # package level (see repro/mac/__init__.py).
            from repro.mac.maca import MacaMac

            return MacaMac(
                sim, medium, spec.name, position=spec.position,
                config=config if config is not None else MACA_CONFIG,
                timing=timing, queue_capacity=self.queue_capacity,
            )
        if protocol == "csma":
            return CsmaMac(
                sim, medium, spec.name, position=spec.position,
                config=config if config is not None else CsmaConfig(),
                timing=timing, queue_capacity=self.queue_capacity,
            )
        if protocol == "polling":
            from repro.mac.polling import (
                PollingBaseMac,
                PollingConfig,
                PollingPadMac,
            )

            cls = PollingBaseMac if spec.kind == "base" else PollingPadMac
            return cls(
                sim, medium, spec.name, position=spec.position,
                config=config if config is not None else PollingConfig(),
                timing=timing, queue_capacity=self.queue_capacity,
            )
        raise ValueError(f"unknown protocol {protocol!r}")

    def build(self) -> Scenario:
        """Materialize the scenario (idempotent: each call builds afresh)."""
        profile = self.profile
        sanitize = sanitize_enabled(profile.sanitize)
        report_digest = digests_enabled()
        report_trace = traces_enabled()
        sim = Simulator(
            seed=self.seed,
            trace=Trace(
                enabled=profile.trace or sanitize or report_digest or report_trace
            ),
            queue=profile.queue,
        )
        if self.medium_kind == "graph":
            medium: Medium = GraphMedium(sim, bitrate_bps=profile.bitrate_bps)
        else:
            medium = GridMedium(
                sim, bitrate_bps=profile.bitrate_bps, **profile.grid_dict()
            )
        recorder = FlowRecorder()
        scenario = Scenario(sim, medium, recorder, sanitize=sanitize)
        scenario.report_digest = report_digest
        scenario.report_trace = report_trace
        timing = profile.timing if profile.timing is not None else MacTiming(
            bitrate_bps=profile.bitrate_bps
        )

        for spec in self._stations:
            mac = self._make_mac(sim, medium, spec, timing)
            scenario.stations[spec.name] = Station(spec.name, spec.kind, mac, recorder)

        if self._links and self.medium_kind != "graph":
            raise ValueError("explicit links require the graph medium")
        if isinstance(medium, GraphMedium):
            for a, b, symmetric in self._links:
                medium.set_link(
                    scenario.stations[a].mac, scenario.stations[b].mac, True, symmetric
                )

        for model in self._noise:
            medium.add_noise_model(model)

        # Polling cells: each polling base learns the pads in its range.
        from repro.mac.polling import PollingBaseMac, PollingPadMac

        for station in scenario.stations.values():
            mac = station.mac
            if not isinstance(mac, PollingBaseMac):
                continue
            for other in scenario.stations.values():
                if isinstance(other.mac, PollingPadMac) and medium.in_range(
                    mac, other.mac
                ):
                    mac.register_pad(other.name)

        for kind, params in self._streams:
            src = scenario.stations[params["src"]]
            dst = scenario.stations[params["dst"]]
            stream_id = params["stream_id"]
            extra = {
                k: v for k, v in params.items()
                if k not in ("src", "dst", "stream_id", "rate_pps")
            }
            if kind == "udp":
                stream: Any = UdpStream(
                    sim, src.mac, dst.mac, stream_id, params["rate_pps"], **extra
                )
            else:
                stream = TcpStream(
                    sim, src.dispatcher, dst.dispatcher, stream_id,
                    params["rate_pps"], recorder=recorder, **extra
                )
            scenario.streams[stream_id] = stream

        for time, action in self._events:
            sim.at(time, action, scenario)

        # Faults compile onto the kernel after user events (same build
        # order every run) and before instrumentation, so the probes can
        # bind to the injector's counters.
        if profile.faults is not None:
            from repro.fault.inject import install_faults

            scenario.fault_injector = install_faults(
                scenario, profile.faults, declared_links=tuple(self._links)
            )

        # Instrument last, once every station and stream exists.  The
        # sampler attaches as the kernel's passive observer and the probes
        # only read model state, so an instrumented run fires the same
        # events and produces the same trace digest as a bare one.
        metrics_config = resolve_metrics(profile.metrics)
        if metrics_config is not None:
            from repro.obs.probes import instrument_scenario

            scenario.metrics = instrument_scenario(scenario, metrics_config)

        # Warm-start is the very last build step: with every component
        # wired (including instrumentation), the scenario either fast-
        # forwards by restoring a stored snapshot or runs the warm-up
        # once and stores it.  Either way it comes back sitting at
        # ``warm_start.at`` with state byte-identical to an uninterrupted
        # run.
        if profile.warm_start is not None:
            from repro.snapshot import apply_warm_start

            apply_warm_start(scenario, self, profile.warm_start)
        return scenario
